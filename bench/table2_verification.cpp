// Table 2 — verification results for two cities.
//
// Protocol (paper §4.2.1): extract a DT policy for Pittsburgh (ASHRAE 4A)
// and Tucson (2B) with the full pipeline, verify each against the three
// criteria, and report
//   * total number of tree nodes,
//   * number of leaf nodes (= unique root->leaf paths Algorithm 1 checks),
//   * safe probability estimated by criterion #1 (one-step Monte Carlo),
//   * number of leaves corrected under criterion #2 (too-warm inputs) and
//     criterion #3 (too-cold inputs).
// Paper values: 1199/3291 nodes, 599/1646 leaves, 94.6%/95.1% safe
// probability, 0/0 corrections under #2 and 0/88 under #3 — i.e. the
// heating-dominated city (Pittsburgh) needs no corrections while the
// cooling-dominated one (Tucson) has a tail of too-cold leaves to fix.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace verihvac;
  bench::print_banner("table2_verification", "Table 2 (verification results)");

  const std::vector<std::string> cities = {"Pittsburgh", "Tucson"};
  AsciiTable table("Table 2: verification results for two cities");
  table.set_header({"metric", "Pittsburgh", "Tucson"});

  std::vector<double> nodes;
  std::vector<double> leaves;
  std::vector<double> safe_prob;
  std::vector<double> corrected2;
  std::vector<double> corrected3;
  for (const auto& city : cities) {
    const core::PipelineArtifacts artifacts =
        core::run_pipeline(bench::bench_config(city));
    nodes.push_back(static_cast<double>(artifacts.policy->tree().node_count()));
    leaves.push_back(static_cast<double>(artifacts.policy->tree().leaf_count()));
    safe_prob.push_back(artifacts.probabilistic.safe_probability * 100.0);
    corrected2.push_back(static_cast<double>(artifacts.formal.corrected_crit2));
    corrected3.push_back(static_cast<double>(artifacts.formal.corrected_crit3));
  }
  table.add_row("Total No. of nodes", nodes, 0);
  table.add_row("No. of leaf nodes (unique path)", leaves, 0);
  table.add_row("Safe probability estimated by crit. #1 [%]", safe_prob, 1);
  table.add_row("No. of nodes corrected by crit. #2", corrected2, 0);
  table.add_row("No. of nodes corrected by crit. #3", corrected3, 0);
  table.print();

  std::printf("paper values:            Pittsburgh  Tucson\n"
              "  total nodes                  1199    3291\n"
              "  leaf nodes                    599    1646\n"
              "  safe probability [%%]         94.6    95.1\n"
              "  corrected by crit. #2           0       0\n"
              "  corrected by crit. #3           0      88\n\n"
              "shape to check: safe probability > 90%% in both cities; criterion #2\n"
              "corrections zero; criterion #3 corrections zero or small for the 4A\n"
              "city and larger for the hot 2B city; tree size grows with the\n"
              "diversity of the city's input distribution.\n");
  bench::write_csv("table2_verification.csv",
                   "city,nodes,leaves,safe_prob,corrected2,corrected3",
                   {{0, nodes[0], leaves[0], safe_prob[0], corrected2[0], corrected3[0]},
                    {1, nodes[1], leaves[1], safe_prob[1], corrected2[1], corrected3[1]}});
  return 0;
}
