// Bench — fleet-serving throughput and latency (ISSUE 4 acceptance).
//
// Measures the serving subsystem under its three traffic shapes:
//
//   * DT fast path: registry lookup + one tree walk per decision. The
//     deployable Table-3 artifact; acceptance asks >= 1e5 decisions/s
//     (the dev box does orders of magnitude more).
//   * MBRL fallback: random-shooting decisions, scalar per-session
//     serving vs cross-session micro-batched serving across thread
//     counts — the batching win is coalescing many sessions' candidates
//     into the shared pool's lock-step batched rollouts.
//   * Mixed fleet: FleetHarness drives buildings x presets through the
//     scheduler (DT majority + MBRL fallback minority), micro-batching
//     off vs on.
//
// A bit-equality gate runs first: micro-batched decisions must equal the
// per-session scalar reference at 1/4/8 threads before any number counts.
// Emits BENCH_serve.json (one row per measured point with p50/p95/p99).
//
// Usage: fleet_serving [--smoke]
//   --smoke: tiny workload for CI; equivalence gate + JSON emission, no
//            throughput assertion (shared runners are too noisy).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "serve/fleet_harness.hpp"

namespace {

using namespace verihvac;
using bench::seconds_since;

env::Observation observation_for(std::size_t i) {
  env::Observation obs;
  obs.zone_temp_c = 14.0 + static_cast<double>(i % 17);
  obs.weather.outdoor_temp_c = -8.0 + static_cast<double>(i % 23);
  obs.weather.humidity_pct = 50.0;
  obs.weather.wind_mps = 3.0;
  obs.weather.solar_wm2 = static_cast<double>((i * 37) % 400);
  obs.occupants = (i % 3 == 0) ? 11.0 : 0.0;
  return obs;
}

std::vector<env::Disturbance> forecast_for(const env::Observation& obs, std::size_t horizon) {
  env::Disturbance d;
  d.weather = obs.weather;
  d.occupants = obs.occupants;
  return std::vector<env::Disturbance>(horizon, d);
}

std::shared_ptr<const common::TaskPool> pool_with_threads(std::size_t threads) {
  return std::make_shared<const common::TaskPool>(
      common::TaskPoolConfig{threads, /*min_parallel_batch=*/1});
}

/// A fresh serving stack (registry + sessions + scheduler) over the shared
/// toy assets. Sessions are re-opened per stack so decision streams restart
/// at 0 — required for the equivalence comparisons.
struct Stack {
  std::shared_ptr<serve::PolicyRegistry> registry = std::make_shared<serve::PolicyRegistry>();
  std::shared_ptr<serve::SessionManager> sessions = std::make_shared<serve::SessionManager>();
  std::unique_ptr<serve::RequestScheduler> scheduler;
  std::vector<serve::SessionId> ids;

  Stack(const std::shared_ptr<const core::DtPolicy>& policy,
        const std::shared_ptr<const dyn::DynamicsModel>& model,
        const control::RandomShootingConfig& rs, std::size_t threads, std::size_t n_sessions,
        serve::SchedulerConfig config = {}) {
    registry->install("toy", policy);
    scheduler = std::make_unique<serve::RequestScheduler>(
        config, registry, sessions, rs, control::ActionSpace{}, env::RewardConfig{},
        pool_with_threads(threads));
    scheduler->install_model("toy", model);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      serve::SessionConfig session;
      session.policy_key = "toy";
      session.seed = 5000 + 13 * s;
      ids.push_back(sessions->open(session));
    }
  }

  serve::ControlRequest request(std::size_t i, serve::RequestKind kind,
                                std::size_t horizon) const {
    serve::ControlRequest request;
    request.session = ids[i % ids.size()];
    request.kind = kind;
    request.observation = observation_for(i);
    if (kind == serve::RequestKind::kMbrlFallback) {
      request.forecast = forecast_for(request.observation, horizon);
    }
    return request;
  }
};

struct BenchRow {
  std::string traffic;
  std::string mode;
  std::size_t threads = 0;
  std::size_t decisions = 0;
  double decisions_per_sec = 0.0;
  serve::LatencyStats latency;
};

void print_row(const BenchRow& row) {
  std::printf("%-6s %-9s %8zu %10zu %14.0f %10.1f %10.1f %10.1f\n", row.traffic.c_str(),
              row.mode.c_str(), row.threads, row.decisions, row.decisions_per_sec,
              row.latency.p50_us, row.latency.p95_us, row.latency.p99_us);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  control::RandomShootingConfig rs;
  rs.samples = static_cast<std::size_t>(env_or_long("VERI_HVAC_RS_SAMPLES", smoke ? 16 : 64));
  rs.horizon = static_cast<std::size_t>(env_or_long("VERI_HVAC_RS_HORIZON", smoke ? 3 : 5));

  const std::size_t dt_sessions = smoke ? 32 : 256;
  const std::size_t dt_decisions = smoke ? 2000 : 200000;
  const std::size_t mbrl_sessions = smoke ? 8 : 32;
  const std::size_t mbrl_decisions = smoke ? 16 : 256;

  std::printf("== fleet_serving — multi-building session serving: DT fast path vs "
              "micro-batched MBRL ==\n");
  std::printf("rs: samples=%zu horizon=%zu%s\n\n", rs.samples, rs.horizon,
              smoke ? " (smoke)" : "");

  const auto policy = bench::toy_decision_policy();
  const auto model = bench::toy_dynamics_model();

  // ---- Equivalence gate: micro-batched == per-session scalar, 1/4/8 threads.
  {
    const std::size_t n = smoke ? 12 : 48;
    Stack reference(policy, model, rs, /*threads=*/1, mbrl_sessions);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < n; ++i) {
      expected.push_back(
          reference.scheduler->serve(reference.request(i, serve::RequestKind::kMbrlFallback,
                                                       rs.horizon))
              .action_index);
    }
    for (const std::size_t threads : {1u, 4u, 8u}) {
      Stack stack(policy, model, rs, threads, mbrl_sessions);
      std::vector<serve::ControlRequest> requests;
      for (std::size_t i = 0; i < n; ++i) {
        requests.push_back(stack.request(i, serve::RequestKind::kMbrlFallback, rs.horizon));
      }
      const auto decisions = stack.scheduler->serve_batch(requests);
      for (std::size_t i = 0; i < n; ++i) {
        if (decisions[i].action_index != expected[i]) {
          std::printf("FAIL: micro-batched decision %zu diverges from scalar serving at %zu "
                      "threads (%zu vs %zu)\n",
                      i, threads, decisions[i].action_index, expected[i]);
          return 1;
        }
      }
    }
    std::printf("equivalence: micro-batched decisions bit-identical to scalar serving "
                "(%zu requests x {1,4,8} threads)\n\n",
                n);
  }

  std::vector<BenchRow> rows;
  std::printf("%-6s %-9s %8s %10s %14s %10s %10s %10s\n", "traffic", "mode", "threads",
              "decisions", "decisions/s", "p50 us", "p95 us", "p99 us");

  // ---- DT fast path: the 1127x artifact behind a registry lookup.
  double dt_rate = 0.0;
  {
    Stack stack(policy, model, rs, /*threads=*/1, dt_sessions);
    std::vector<double> latencies;
    latencies.reserve(dt_decisions);
    for (std::size_t i = 0; i < dt_decisions; ++i) {
      const serve::ControlRequest request = stack.request(i, serve::RequestKind::kDtPolicy, 0);
      const auto t0 = std::chrono::steady_clock::now();
      stack.scheduler->serve(request);
      latencies.push_back(seconds_since(t0));
    }
    BenchRow row;
    row.traffic = "dt";
    row.mode = "fastpath";
    row.threads = 1;
    row.decisions = dt_decisions;
    row.latency = serve::summarize_latencies(latencies);
    row.decisions_per_sec = row.latency.decisions_per_sec();
    dt_rate = row.decisions_per_sec;
    rows.push_back(row);
    print_row(row);
  }

  // ---- MBRL fallback: scalar per-session vs cross-session micro-batched.
  double mbrl_scalar_8t = 0.0;
  double mbrl_batched_8t = 0.0;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    for (const bool batched : {false, true}) {
      Stack stack(policy, model, rs, threads, mbrl_sessions);
      std::vector<double> latencies;
      const auto t0 = std::chrono::steady_clock::now();
      if (batched) {
        // Whole cohorts coalesce: cross-session batches of max_batch.
        const std::size_t batch_size = std::min<std::size_t>(32, mbrl_decisions);
        std::size_t served = 0;
        while (served < mbrl_decisions) {
          const std::size_t n = std::min(batch_size, mbrl_decisions - served);
          std::vector<serve::ControlRequest> requests;
          for (std::size_t i = 0; i < n; ++i) {
            requests.push_back(
                stack.request(served + i, serve::RequestKind::kMbrlFallback, rs.horizon));
          }
          const auto tb = std::chrono::steady_clock::now();
          stack.scheduler->serve_batch(requests);
          const double batch_seconds = seconds_since(tb);
          for (std::size_t i = 0; i < n; ++i) latencies.push_back(batch_seconds);
          served += n;
        }
      } else {
        for (std::size_t i = 0; i < mbrl_decisions; ++i) {
          const serve::ControlRequest request =
              stack.request(i, serve::RequestKind::kMbrlFallback, rs.horizon);
          const auto tr = std::chrono::steady_clock::now();
          stack.scheduler->serve(request);
          latencies.push_back(seconds_since(tr));
        }
      }
      const double wall = seconds_since(t0);
      BenchRow row;
      row.traffic = "mbrl";
      row.mode = batched ? "batched" : "scalar";
      row.threads = threads;
      row.decisions = mbrl_decisions;
      row.latency = serve::summarize_latencies(latencies);
      row.decisions_per_sec = static_cast<double>(mbrl_decisions) / wall;
      if (threads == 8 && batched) mbrl_batched_8t = row.decisions_per_sec;
      if (threads == 8 && !batched) mbrl_scalar_8t = row.decisions_per_sec;
      rows.push_back(row);
      print_row(row);
    }
  }

  // ---- Mixed fleet traffic through the harness (async queue + window).
  double mixed_unbatched = 0.0;
  double mixed_batched = 0.0;
  for (const bool batched : {false, true}) {
    serve::FleetConfig config;
    config.climates = {"Pittsburgh"};
    config.presets = {{"baseline", 1.0}};
    config.buildings_per_cell = smoke ? 6 : 24;
    config.mbrl_fraction = 0.25;
    config.steps = smoke ? 3 : 8;
    config.days = 1;
    config.rs = rs;
    config.async = true;
    // The cohort is submitted back-to-back, so a short window suffices to
    // coalesce it; a long one would just add tail latency per step.
    config.scheduler.micro_batching = batched;
    config.scheduler.max_batch = batched ? 64 : 1;
    config.scheduler.batch_window = std::chrono::microseconds(batched ? 100 : 0);
    const serve::FleetAssets assets{policy, model};
    serve::FleetHarness harness(
        config, [&assets](const std::string&, const serve::FleetPreset&) { return assets; },
        pool_with_threads(8));
    const serve::FleetReport report = harness.run();
    const double rate =
        static_cast<double>(report.dt_decisions + report.mbrl_decisions) / report.wall_seconds;
    if (batched) {
      mixed_batched = rate;
    } else {
      mixed_unbatched = rate;
    }
    BenchRow row;
    row.traffic = "mixed";
    row.mode = batched ? "batched" : "unbatched";
    row.threads = 8;
    row.decisions = report.dt_decisions + report.mbrl_decisions;
    row.latency = report.mbrl_latency;
    row.decisions_per_sec = rate;
    rows.push_back(row);
    print_row(row);
  }

  const double mbrl_win = mbrl_scalar_8t > 0.0 ? mbrl_batched_8t / mbrl_scalar_8t : 0.0;
  const double mixed_win = mixed_unbatched > 0.0 ? mixed_batched / mixed_unbatched : 0.0;
  std::printf("\nDT fast path:              %.0f decisions/s\n", dt_rate);
  std::printf("MBRL batched/scalar @ 8t:  %.2fx\n", mbrl_win);
  std::printf("mixed batched/unbatched:   %.2fx\n", mixed_win);

  // One JSON artifact for the perf trajectory (BENCH_serve.json).
  std::vector<bench::JsonObject> json_rows;
  for (const BenchRow& r : rows) {
    bench::JsonObject row;
    row.field("traffic", r.traffic)
        .field("mode", r.mode)
        .field("threads", r.threads)
        .field("decisions", r.decisions)
        .field("decisions_per_sec", r.decisions_per_sec)
        .field("p50_us", r.latency.p50_us)
        .field("p95_us", r.latency.p95_us)
        .field("p99_us", r.latency.p99_us);
    json_rows.push_back(std::move(row));
  }
  bench::JsonObject artifact;
  artifact.field("bench", std::string("fleet_serving"))
      .field("rs_samples", rs.samples)
      .field("rs_horizon", rs.horizon)
      .field_bool("smoke", smoke)
      .field_array("rows", json_rows)
      .field("dt_decisions_per_sec", dt_rate)
      .field("mbrl_batched_over_scalar_at_8_threads", mbrl_win)
      .field("mixed_batched_over_unbatched", mixed_win);
  const std::string path = bench::write_bench_json("BENCH_serve.json", artifact);
  std::printf("wrote %s\n", path.c_str());

  if (!smoke && dt_rate < 1e5) {
    std::printf("FAIL: DT fast path %.0f decisions/s below the 1e5 acceptance bar\n", dt_rate);
    return 1;
  }
  return 0;
}
