// Bench — fleet-scale soak: 10^5+ concurrent sessions through the
// SLO-aware sharded scheduler, with live adaptation contending for the
// shared pool (ISSUE 6 acceptance).
//
// Three sections:
//
//   1. Equivalence gate. The deadline-driven sharded queue path (async
//      submit with latency budgets, per-shard workers) must produce
//      decisions bit-identical to the per-session scalar reference at
//      engine pools of 1/4/8 threads. No number below counts unless this
//      passes: SLO-aware batching is a latency feature, never a decision
//      feature.
//
//   2. Sampled DT timing overhead. SchedulerConfig::dt_timing_sample_period
//      times 1-in-P DT decisions for the tap (p50/p99 telemetry without
//      paying two clock reads per ~150 ns decision). Measured as untapped
//      vs capture+sampled-timing decision rates over the same workload,
//      interleaved best-of-trials; the combined cost must stay inside the
//      <5% capture-overhead budget (full mode; smoke runners are too
//      noisy to gate).
//
//   3. Soak. A synthetic session population is admitted in staggered
//      waves (10^5+ concurrent at peak, full scale), served DT-heavy with
//      sampled caller-side timing plus async MBRL cohorts carrying
//      latency budgets, and idle waves are evicted — while, concurrently,
//      an env-backed climates x presets fleet serves real plants through
//      its own scheduler, degrades mid-run, and the adaptation controller
//      detects the drift and retrains on the SAME shared TaskPool the
//      soak serving uses. Gates: peak concurrent sessions, p99 latency,
//      decisions/s/core, zero dropped decisions, >= 1 drift event and
//      >= 1 adaptation attempt under contention.
//
// Emits BENCH_fleet_scale.json. --smoke shrinks every workload for CI and
// skips the noise-sensitive gates (overhead, latency, throughput); the
// exact gates (equivalence, peak sessions, drops, drift/adaptation
// counters) hold at any scale.
//
// Latency/throughput bars are env-overridable for slower runners:
//   VERI_HVAC_FLEET_DT_P99_US      (default 200)
//   VERI_HVAC_FLEET_MBRL_P99_US    (default 100000)
//   VERI_HVAC_FLEET_RATE_PER_CORE  (default 2e4 decisions/s/core)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adapt/adaptation_controller.hpp"
#include "bench_common.hpp"
#include "common/config.hpp"
#include "serve/fleet_harness.hpp"

namespace {

using namespace verihvac;
using bench::seconds_since;

env::Observation observation_for(std::size_t i) {
  env::Observation obs;
  obs.zone_temp_c = 14.0 + static_cast<double>(i % 17);
  obs.weather.outdoor_temp_c = -8.0 + static_cast<double>(i % 23);
  obs.weather.humidity_pct = 50.0;
  obs.weather.wind_mps = 3.0;
  obs.weather.solar_wm2 = static_cast<double>((i * 37) % 400);
  obs.occupants = (i % 3 == 0) ? 11.0 : 0.0;
  return obs;
}

std::vector<env::Disturbance> forecast_for(const env::Observation& obs, std::size_t horizon) {
  env::Disturbance d;
  d.weather = obs.weather;
  d.occupants = obs.occupants;
  return std::vector<env::Disturbance>(horizon, d);
}

std::shared_ptr<const common::TaskPool> pool_with_threads(std::size_t threads) {
  return std::make_shared<const common::TaskPool>(
      common::TaskPoolConfig{threads, /*min_parallel_batch=*/1});
}

/// Fresh serving stack over the shared toy assets (sections 1 and 2).
struct Stack {
  std::shared_ptr<serve::PolicyRegistry> registry = std::make_shared<serve::PolicyRegistry>();
  std::shared_ptr<serve::SessionManager> sessions = std::make_shared<serve::SessionManager>();
  std::unique_ptr<serve::RequestScheduler> scheduler;
  std::vector<serve::SessionId> ids;

  Stack(const std::shared_ptr<const core::DtPolicy>& policy,
        const std::shared_ptr<const dyn::DynamicsModel>& model,
        const control::RandomShootingConfig& rs, std::size_t threads, std::size_t n_sessions,
        serve::SchedulerConfig config = {},
        const std::shared_ptr<serve::DecisionTap>& tap = nullptr) {
    registry->install("toy", policy);
    scheduler = std::make_unique<serve::RequestScheduler>(
        config, registry, sessions, rs, control::ActionSpace{}, env::RewardConfig{},
        pool_with_threads(threads));
    scheduler->install_model("toy", model);
    if (tap != nullptr) scheduler->set_tap(tap);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      serve::SessionConfig session;
      session.policy_key = "toy";
      session.seed = 5000 + 13 * s;
      ids.push_back(sessions->open(session));
    }
  }

  serve::ControlRequest request(std::size_t i, serve::RequestKind kind,
                                std::size_t horizon) const {
    serve::ControlRequest request;
    request.session = ids[i % ids.size()];
    request.kind = kind;
    request.observation = observation_for(i);
    if (kind == serve::RequestKind::kMbrlFallback) {
      request.forecast = forecast_for(request.observation, horizon);
    }
    return request;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf("== fleet_scale — 10^5+ session soak through the SLO-aware sharded "
              "scheduler, adaptation contending ==\n%s\n\n",
              smoke ? "(smoke scale)" : "(soak scale)");

  const auto policy = bench::toy_decision_policy();
  const auto model = bench::toy_dynamics_model();
  control::RandomShootingConfig rs;
  rs.samples = smoke ? 16 : 64;
  rs.horizon = smoke ? 3 : 5;

  bench::JsonObject artifact;
  artifact.field("bench", std::string("fleet_scale")).field_bool("smoke", smoke);
  bool failed = false;

  // ---- Section 1: deadline-driven sharded serving == scalar reference.
  {
    const std::size_t n = smoke ? 24 : 64;
    Stack reference(policy, model, rs, /*threads=*/1, /*n_sessions=*/8);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < n; ++i) {
      expected.push_back(
          reference.scheduler->serve(reference.request(i, serve::RequestKind::kMbrlFallback,
                                                       rs.horizon))
              .action_index);
    }
    for (const std::size_t threads : {1u, 4u, 8u}) {
      serve::SchedulerConfig config;
      config.max_batch = 8;
      config.batch_window = std::chrono::microseconds(2000);
      config.default_latency_budget = std::chrono::microseconds(4000);
      Stack stack(policy, model, rs, threads, /*n_sessions=*/8, config);
      stack.scheduler->start();
      std::vector<std::future<serve::ControlDecision>> futures;
      for (std::size_t i = 0; i < n; ++i) {
        serve::ControlRequest request =
            stack.request(i, serve::RequestKind::kMbrlFallback, rs.horizon);
        // Mixed budgets: every third request closes its batch early.
        if (i % 3 == 0) request.latency_budget = std::chrono::microseconds(400);
        futures.push_back(stack.scheduler->submit(std::move(request)));
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (futures[i].get().action_index != expected[i]) {
          std::printf("FAIL: deadline-scheduled decision %zu diverges from scalar serving "
                      "at %zu threads\n",
                      i, threads);
          return 1;
        }
      }
      stack.scheduler->stop();
    }
    std::printf("equivalence: deadline-driven sharded decisions bit-identical to scalar "
                "serving (%zu requests x {1,4,8} threads)\n\n",
                n);
  }

  // ---- Section 2: sampled DT timing overhead (1-in-32 + 2-in-32 capture).
  {
    const std::size_t decisions = smoke ? 20000 : 200000;
    const std::size_t trials = smoke ? 3 : 9;
    // Mode 0: untapped. Mode 1: telemetry capture alone (2-in-32 record
    // sampling — the base cost adaptation_loop already gates under 5%).
    // Mode 2: capture plus 1-in-32 sampled timing — the soak's full
    // telemetry story. The gate here is the *timing increment* (mode 2
    // over mode 1): the new timestamps must fit inside the existing
    // capture-overhead budget, not re-litigate the capture cost itself.
    std::vector<std::unique_ptr<Stack>> stacks;
    for (int mode = 0; mode < 3; ++mode) {
      serve::SchedulerConfig config;
      std::shared_ptr<serve::DecisionTap> tap;
      if (mode >= 1) {
        adapt::TelemetryConfig telemetry;
        telemetry.shards = 4;
        telemetry.capacity_per_shard = 1024;
        telemetry.dt_sample_period = 32;
        tap = std::make_shared<adapt::TelemetryLog>(telemetry);
        if (mode == 2) config.dt_timing_sample_period = 32;
      }
      stacks.push_back(std::make_unique<Stack>(policy, model, rs, /*threads=*/1,
                                               /*n_sessions=*/64, config, tap));
    }
    std::vector<double> best_secs(stacks.size(), 0.0);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      // Rotate which mode leads each round: a fixed order would fold any
      // slow drift of the box (frequency, background load) into a
      // systematic bias against whichever mode always runs last.
      for (std::size_t slot = 0; slot < stacks.size(); ++slot) {
        const std::size_t mode = (trial + slot) % stacks.size();
        Stack& stack = *stacks[mode];
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < decisions; ++i) {
          stack.scheduler->serve(stack.request(i, serve::RequestKind::kDtPolicy, 0));
        }
        const double secs = seconds_since(t0);
        if (trial == 0 || secs < best_secs[mode]) best_secs[mode] = secs;
      }
    }
    const double untapped = static_cast<double>(decisions) / best_secs[0];
    const double capture = static_cast<double>(decisions) / best_secs[1];
    const double sampled = static_cast<double>(decisions) / best_secs[2];
    const double capture_overhead = capture > 0.0 ? untapped / capture - 1.0 : 1.0;
    const double timing_overhead = sampled > 0.0 ? capture / sampled - 1.0 : 1.0;
    std::printf("sampled timing: DT %.0f/s untapped | %.0f/s capture 2-in-32 (%.1f%% "
                "overhead) | %.0f/s +1-in-32 timing (%.1f%% timing increment)\n\n",
                untapped, capture, 100.0 * capture_overhead, sampled,
                100.0 * timing_overhead);
    artifact.field("dt_untapped_per_sec", untapped)
        .field("dt_capture_per_sec", capture)
        .field("dt_sampled_timing_per_sec", sampled)
        .field("capture_overhead_fraction", capture_overhead)
        .field("sampled_timing_overhead_fraction", timing_overhead);
    if (!smoke && timing_overhead >= 0.05) {
      std::printf("FAIL: sampled timing increment %.2f%% exceeds the 5%% bar\n",
                  100.0 * timing_overhead);
      failed = true;
    }
  }

  // ---- Section 3: the soak.
  {
    // One physical pool shared by the soak scheduler, the env-backed
    // fleet's scheduler AND the adaptation controller: drift-triggered
    // retraining steals the same workers that serve decisions, which is
    // exactly the contention the SLO gates must survive.
    const auto pool = pool_with_threads(8);

    // --- The env-backed fleet: real plants across climates x presets,
    // degraded mid-run, feeding telemetry to the adaptation controller.
    serve::FleetConfig fleet;
    fleet.climates = smoke ? std::vector<std::string>{"Pittsburgh", "Tucson"}
                           : std::vector<std::string>{"Pittsburgh", "Tucson", "NewYork"};
    fleet.presets = smoke ? std::vector<serve::FleetPreset>{{"baseline", 1.0}}
                          : std::vector<serve::FleetPreset>{{"baseline", 1.0},
                                                            {"derated", 0.85}};
    fleet.buildings_per_cell = smoke ? 2 : 3;
    fleet.mbrl_fraction = 0.34;
    fleet.steps = smoke ? 40 : 96;
    fleet.days = 2;
    fleet.seed = 2026;
    fleet.rs = rs;
    fleet.async = true;
    fleet.mbrl_latency_budget = std::chrono::microseconds(4000);
    fleet.scheduler.default_latency_budget = std::chrono::microseconds(4000);
    serve::FleetDriftEvent drift;
    drift.at_step = smoke ? 16 : 32;
    drift.degradation.hvac_capacity_factor = 0.45;
    drift.degradation.heating_efficiency_factor = 0.8;
    drift.degradation.envelope_leak_factor = 1.4;
    fleet.drift.push_back(drift);

    adapt::TelemetryConfig telemetry;
    telemetry.shards = 4;
    telemetry.capacity_per_shard = 16384;  // holds the whole fleet trace
    const auto log = std::make_shared<adapt::TelemetryLog>(telemetry);
    fleet.tap = log;
    fleet.on_session_open = [&log](serve::SessionId id, const serve::SessionConfig& config) {
      log->register_session(id, config.seed, config.policy_key);
    };

    const serve::FleetAssets cell_assets{policy, model};
    serve::FleetHarness harness(
        fleet, [&cell_assets](const std::string&, const serve::FleetPreset&) {
          return cell_assets;
        },
        pool);

    // Adaptation knobs sized for the soak: the gate is that drift fires
    // and retraining runs (and contends) — adaptation_loop gates recovery
    // quality. The toy model's baseline mismatch against the real plant
    // is absorbed by Page-Hinkley's calibrated mean; the injected
    // degradation shifts residuals well past it.
    adapt::AdaptationConfig adaptation;
    adaptation.drift.ph_delta = 0.02;
    adaptation.drift.ph_lambda = smoke ? 2.0 : 3.0;
    adaptation.drift.min_samples = smoke ? 24 : 64;
    adaptation.min_transitions = smoke ? 40 : 120;
    adaptation.fine_tune_epochs = 8;
    adaptation.probabilistic_samples = 120;
    adaptation.viper.iterations = 1;
    adaptation.viper.steps_per_iteration = 16;
    adaptation.viper.mc_repeats = 1;
    adaptation.teacher_rs = control::RandomShootingConfig{16, 3, 0.99};
    adaptation.max_generations = 1;
    adaptation.poll_interval = std::chrono::milliseconds(25);
    adaptation.seed = 2027;
    adapt::AdaptationController controller(adaptation, log, harness.registry_ptr(),
                                           harness.sessions_ptr(), harness.scheduler(), pool);
    for (const std::string& climate : fleet.climates) {
      for (const serve::FleetPreset& preset : fleet.presets) {
        adapt::ClusterAssets cluster;
        cluster.model = model;
        cluster.env.climate = weather::profile_by_name(climate);
        cluster.env.days = 2;
        cluster.env.hvac_capacity_scale = preset.hvac_scale;
        controller.register_cluster(climate + "/" + preset.name, cluster);
      }
    }
    controller.start();

    // --- The synthetic soak population: its own serving stack (sharded
    // deadline scheduler over the SAME pool), admitted in waves.
    const std::size_t waves = smoke ? 5 : 8;
    const std::size_t sessions_per_wave = static_cast<std::size_t>(
        env_or_long("VERI_HVAC_FLEET_WAVE", smoke ? 5000 : 25000));
    const std::size_t dt_rounds = 2;      ///< DT passes per wave over the working set
    const std::size_t mbrl_cohort = smoke ? 16 : 64;
    const std::size_t latency_sample = 32;  ///< caller-side timing duty cycle

    auto soak_registry = std::make_shared<serve::PolicyRegistry>();
    auto soak_sessions = std::make_shared<serve::SessionManager>();
    serve::SchedulerConfig soak_config;
    soak_config.default_latency_budget = std::chrono::microseconds(4000);
    soak_config.dt_timing_sample_period = 32;
    soak_registry->install("toy", policy);
    serve::RequestScheduler soak_scheduler(soak_config, soak_registry, soak_sessions, rs,
                                           control::ActionSpace{}, env::RewardConfig{}, pool);
    soak_scheduler.install_model("toy", model);
    soak_scheduler.start();

    // The env fleet runs concurrently on its own thread; its report is
    // collected after the soak loop drains.
    serve::FleetReport fleet_report;
    std::thread fleet_thread([&harness, &fleet_report] { fleet_report = harness.run(); });

    std::vector<std::vector<serve::SessionId>> wave_ids(waves);
    std::vector<double> dt_latencies;
    std::vector<double> mbrl_latencies;
    std::size_t dt_decisions = 0;
    std::size_t mbrl_decisions = 0;
    std::size_t peak_sessions = 0;
    std::size_t evicted_total = 0;
    double serve_seconds = 0.0;
    std::uint64_t last_wave_admissions = 0;

    const auto t_soak = std::chrono::steady_clock::now();
    for (std::size_t wave = 0; wave < waves; ++wave) {
      wave_ids[wave].reserve(sessions_per_wave);
      for (std::size_t s = 0; s < sessions_per_wave; ++s) {
        serve::SessionConfig session;
        session.policy_key = "toy";
        session.seed = 9000 + 31 * (wave * sessions_per_wave + s);
        wave_ids[wave].push_back(soak_sessions->open(session));
      }
      peak_sessions = std::max(peak_sessions, soak_sessions->size());

      // DT traffic over the working set (this wave + the previous one):
      // sampled caller-side timing, full count.
      const std::uint64_t admissions_before = soak_sessions->admission_clock();
      const auto t_wave = std::chrono::steady_clock::now();
      for (std::size_t round = 0; round < dt_rounds; ++round) {
        for (std::size_t w = wave == 0 ? 0 : wave - 1; w <= wave; ++w) {
          for (std::size_t s = 0; s < wave_ids[w].size(); ++s) {
            serve::ControlRequest request;
            request.session = wave_ids[w][s];
            request.kind = serve::RequestKind::kDtPolicy;
            request.observation = observation_for(dt_decisions);
            if (dt_decisions % latency_sample == 0) {
              const auto t0 = std::chrono::steady_clock::now();
              soak_scheduler.serve(request);
              dt_latencies.push_back(seconds_since(t0));
            } else {
              soak_scheduler.serve(request);
            }
            ++dt_decisions;
          }
        }
      }

      // Async MBRL cohort with latency budgets from this wave's sessions.
      std::vector<std::future<serve::ControlDecision>> futures;
      std::vector<std::chrono::steady_clock::time_point> submitted;
      futures.reserve(mbrl_cohort);
      submitted.reserve(mbrl_cohort);
      for (std::size_t i = 0; i < mbrl_cohort; ++i) {
        serve::ControlRequest request;
        request.session = wave_ids[wave][i % wave_ids[wave].size()];
        request.kind = serve::RequestKind::kMbrlFallback;
        request.observation = observation_for(mbrl_decisions + i);
        request.forecast = forecast_for(request.observation, rs.horizon);
        submitted.push_back(std::chrono::steady_clock::now());
        futures.push_back(soak_scheduler.submit(std::move(request)));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        futures[i].get();
        mbrl_latencies.push_back(seconds_since(submitted[i]));
        ++mbrl_decisions;
      }
      serve_seconds += seconds_since(t_wave);
      last_wave_admissions = soak_sessions->admission_clock() - admissions_before;

      // Staggered eviction: waves idle for more than ~3 waves of
      // admissions are swept, so the population plateaus instead of
      // growing without bound — the churn a real fleet has.
      if (wave >= 3) {
        evicted_total += soak_sessions->evict_idle(3 * last_wave_admissions);
      }
    }
    const double soak_wall = seconds_since(t_soak);

    fleet_thread.join();
    controller.stop();
    // Drain whatever telemetry the background worker had not reached yet
    // (bounded settle — detection is deterministic, its timing is not).
    for (int i = 0; i < 10 && controller.stats().drift_events == 0; ++i) controller.pump();
    controller.pump();
    const adapt::AdaptationController::Stats adapt_stats = controller.stats();

    const serve::LatencyStats dt_lat = serve::summarize_latencies(dt_latencies);
    const serve::LatencyStats mbrl_lat = serve::summarize_latencies(mbrl_latencies);
    const serve::RequestScheduler::Stats soak_stats = soak_scheduler.stats();
    soak_scheduler.stop();
    const std::size_t pool_threads = pool->thread_count();
    const double rate = serve_seconds > 0.0
                            ? static_cast<double>(dt_decisions + mbrl_decisions) / serve_seconds
                            : 0.0;
    const double rate_per_core = rate / static_cast<double>(pool_threads);

    std::printf("soak: peak %zu sessions (%zu opened, %zu evicted), %zu DT + %zu MBRL "
                "decisions in %.2fs serving (%.2fs wall)\n",
                peak_sessions, waves * sessions_per_wave, evicted_total, dt_decisions,
                mbrl_decisions, serve_seconds, soak_wall);
    std::printf("  DT   p50 %8.1fus p99 %8.1fus (sampled 1-in-%zu)\n", dt_lat.p50_us,
                dt_lat.p99_us, latency_sample);
    std::printf("  MBRL p50 %8.1fus p99 %8.1fus (budget 4000us, %llu deadline closes)\n",
                mbrl_lat.p50_us, mbrl_lat.p99_us,
                static_cast<unsigned long long>(soak_stats.deadline_closes +
                                                fleet_report.scheduler_stats.deadline_closes));
    std::printf("  %.0f decisions/s (%.0f/s/core over %zu pool threads)\n", rate,
                rate_per_core, pool_threads);
    std::printf("  fleet: %zu buildings x %zu steps, %zu dropped; drift events %llu, "
                "adaptations %llu attempted / %llu promoted\n",
                fleet_report.buildings, fleet_report.steps, fleet_report.dropped_decisions,
                static_cast<unsigned long long>(adapt_stats.drift_events),
                static_cast<unsigned long long>(adapt_stats.adaptations_attempted),
                static_cast<unsigned long long>(adapt_stats.adaptations_promoted));

    artifact.field("peak_sessions", peak_sessions)
        .field("sessions_opened", waves * sessions_per_wave)
        .field("sessions_evicted", evicted_total)
        .field("dt_decisions", dt_decisions)
        .field("mbrl_decisions", mbrl_decisions)
        .field("dt_p50_us", dt_lat.p50_us)
        .field("dt_p99_us", dt_lat.p99_us)
        .field("mbrl_p50_us", mbrl_lat.p50_us)
        .field("mbrl_p99_us", mbrl_lat.p99_us)
        .field("decisions_per_sec", rate)
        .field("decisions_per_sec_per_core", rate_per_core)
        .field("pool_threads", pool_threads)
        .field("deadline_closes", static_cast<std::size_t>(soak_stats.deadline_closes))
        .field("queue_shards", soak_scheduler.queue_shard_count())
        .field("fleet_buildings", fleet_report.buildings)
        .field("fleet_dropped_decisions", fleet_report.dropped_decisions)
        .field("drift_events", static_cast<std::size_t>(adapt_stats.drift_events))
        .field("adaptations_attempted",
               static_cast<std::size_t>(adapt_stats.adaptations_attempted))
        .field("adaptations_promoted",
               static_cast<std::size_t>(adapt_stats.adaptations_promoted))
        .field("soak_wall_seconds", soak_wall);

    // Exact gates (any scale).
    const std::size_t peak_bar = smoke ? 20000 : 100000;
    if (peak_sessions < peak_bar) {
      std::printf("FAIL: peak %zu concurrent sessions below the %zu bar\n", peak_sessions,
                  peak_bar);
      failed = true;
    }
    if (fleet_report.dropped_decisions != 0) {
      std::printf("FAIL: %zu in-flight fleet decisions dropped\n",
                  fleet_report.dropped_decisions);
      failed = true;
    }
    if (adapt_stats.drift_events == 0) {
      std::printf("FAIL: injected degradation was never detected under load\n");
      failed = true;
    }
    if (adapt_stats.adaptations_attempted == 0) {
      std::printf("FAIL: no adaptation ran, so nothing contended with serving\n");
      failed = true;
    }
    // Noise-sensitive gates (full scale only; bars env-overridable).
    if (!smoke) {
      const double dt_p99_bar = env_or_double("VERI_HVAC_FLEET_DT_P99_US", 200.0);
      // MBRL p99 includes retrain contention on the shared pool — the bar
      // is sized for a saturated single-socket box, not an idle one.
      const double mbrl_p99_bar = env_or_double("VERI_HVAC_FLEET_MBRL_P99_US", 100000.0);
      const double rate_bar = env_or_double("VERI_HVAC_FLEET_RATE_PER_CORE", 2e4);
      if (dt_lat.p99_us > dt_p99_bar) {
        std::printf("FAIL: DT p99 %.1fus exceeds the %.0fus bar\n", dt_lat.p99_us, dt_p99_bar);
        failed = true;
      }
      if (mbrl_lat.p99_us > mbrl_p99_bar) {
        std::printf("FAIL: MBRL p99 %.1fus exceeds the %.0fus bar\n", mbrl_lat.p99_us,
                    mbrl_p99_bar);
        failed = true;
      }
      if (rate_per_core < rate_bar) {
        std::printf("FAIL: %.0f decisions/s/core below the %.0f bar\n", rate_per_core,
                    rate_bar);
        failed = true;
      }
    }
  }

  const std::string path = bench::write_bench_json("BENCH_fleet_scale.json", artifact);
  std::printf("\nwrote %s\n", path.c_str());
  return failed ? 1 : 0;
}
