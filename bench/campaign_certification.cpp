// Bench — parallel certification throughput (core::VerificationEngine).
//
// The verification workloads are embarrassingly parallel: Monte-Carlo
// criterion-#1 per sample, interval certification per (leaf × cell),
// reachability tubes per initial state. This bench measures the wall-clock
// speedup of each workload as the shared TaskPool widens from 1 to 8
// threads, asserting along the way that every report is bit-identical to
// the single-threaded one (the engine's determinism contract). Shape to
// check: interval certification — the heaviest per-unit workload — should
// scale near-linearly (>2x at 8 threads is the acceptance bar); the
// Monte-Carlo sweep scales similarly once the sample count amortizes the
// fork; tube fan-out saturates earlier (few units, short rollouts).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "core/verification_engine.hpp"

namespace {

using namespace verihvac;
using bench::seconds_since;

bool same_report(const core::IntervalReport& a, const core::IntervalReport& b) {
  if (a.leaves_subject != b.leaves_subject || a.leaves_certified != b.leaves_certified ||
      a.results.size() != b.results.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].leaf != b.results[i].leaf ||
        a.results[i].cells_certified != b.results[i].cells_certified ||
        a.results[i].next_state.lo != b.results[i].next_state.lo ||
        a.results[i].next_state.hi != b.results[i].next_state.hi) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::print_banner("campaign_certification",
                      "parallel certification engine (ISSUE 2 acceptance)");

  core::PipelineConfig cfg = bench::bench_config("Pittsburgh");
  const core::PipelineArtifacts artifacts = core::run_pipeline(cfg);
  const core::DtPolicy& policy = *artifacts.policy;
  const core::AugmentedSampler sampler(artifacts.historical.policy_inputs(),
                                       cfg.decision.noise_level);

  // Fine input splitting over the full design envelope: tens of thousands
  // of IBP cells, the regime the campaign service runs in.
  core::IntervalVerifyConfig fine;
  fine.zone_slice_c = 0.05;
  fine.outdoor_slice_c = 1.0;
  const core::DisturbanceBounds envelope;  // design envelope
  const std::size_t mc_samples = 20000;
  const std::size_t tube_states = 256;

  std::vector<std::vector<double>> starts;
  {
    Rng rng = Rng::stream(7, 0);
    for (std::size_t i = 0; i < tube_states; ++i) {
      starts.push_back(core::sample_safe_occupied(sampler, cfg.criteria.comfort, rng).first);
    }
  }

  AsciiTable table("Wall-clock speedup vs pool width (reports bit-identical)");
  table.set_header({"threads", "interval s", "speedup", "mc s", "speedup", "tubes s", "speedup"});

  core::IntervalReport reference_interval;
  core::ProbabilisticReport reference_mc;
  double base_interval = 0.0, base_mc = 0.0, base_tubes = 0.0;
  std::vector<std::vector<double>> rows;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto pool = std::make_shared<const common::TaskPool>(
        common::TaskPoolConfig{threads, /*min_parallel_batch=*/1});
    const core::VerificationEngine engine(pool);

    auto t0 = std::chrono::steady_clock::now();
    const auto interval = engine.verify_interval(policy, *artifacts.model, cfg.criteria,
                                                 envelope, fine);
    const double interval_s = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    const auto mc = engine.verify_probabilistic(policy, *artifacts.model, sampler,
                                                cfg.criteria, mc_samples, 404);
    const double mc_s = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    const auto tubes = engine.reach_tubes(policy, *artifacts.model, starts, {}, 24);
    const double tubes_s = seconds_since(t0);
    (void)tubes;

    if (threads == 1) {
      reference_interval = interval;
      reference_mc = mc;
      base_interval = interval_s;
      base_mc = mc_s;
      base_tubes = tubes_s;
    } else if (!same_report(interval, reference_interval) ||
               mc.failures != reference_mc.failures) {
      std::fprintf(stderr, "DETERMINISM VIOLATION at %zu threads\n", threads);
      return 1;
    }
    table.add_row(std::to_string(threads),
                  {interval_s, base_interval / interval_s, mc_s, base_mc / mc_s, tubes_s,
                   base_tubes / tubes_s},
                  3);
    rows.push_back({static_cast<double>(threads), interval_s, base_interval / interval_s, mc_s,
                    base_mc / mc_s, tubes_s, base_tubes / tubes_s});
  }
  table.print();
  std::printf("interval workload: %zu subject leaves, certified fraction %.3f\n",
              reference_interval.leaves_subject, reference_interval.certified_fraction());

  const std::string path = bench::write_csv(
      "campaign_certification.csv",
      "threads,interval_s,interval_speedup,mc_s,mc_speedup,tubes_s,tubes_speedup", rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
