// Fig. 3 — calibrating the Eq. 5 noise level.
//
// Protocol (paper §3.2.1): take the historical policy-input distribution
// of Pittsburgh and of New York (both ASHRAE 4A, so a "similar city"),
// then for noise levels in [0.01, 0.5] compare
//   * the Jensen-Shannon distance between the original distribution and
//     the noise-augmented one (left subfigure), against the JSD between
//     Pittsburgh and New York as the reference line, and
//   * the information entropy of the augmented distribution (right
//     subfigure), against the entropies of the original and of New York.
// The paper picks the noise band where JSD(original -> augmented) stays
// below JSD(original -> similar city) while entropy strictly increases —
// landing on noise_level in [0.01, 0.09].
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/decision_data.hpp"
#include "dynamics/dataset.hpp"

namespace {

using namespace verihvac;

std::vector<std::vector<double>> matrix_rows(const Matrix& m) {
  std::vector<std::vector<double>> rows;
  rows.reserve(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) rows.push_back(m.row(r));
  return rows;
}

}  // namespace

int main() {
  bench::print_banner("fig3_noise_level", "Fig. 3 (noise-level calibration)");
  constexpr std::size_t kBins = 24;

  const core::PipelineConfig pit_cfg = bench::bench_config("Pittsburgh");
  const core::PipelineConfig nyc_cfg = bench::bench_config("NewYork");
  const auto pit_data = dyn::collect_historical_data(pit_cfg.env, pit_cfg.collection);
  const auto nyc_data = dyn::collect_historical_data(nyc_cfg.env, nyc_cfg.collection);
  const auto pit_rows = matrix_rows(pit_data.policy_inputs());
  const auto nyc_rows = matrix_rows(nyc_data.policy_inputs());

  const double jsd_similar_city = mean_marginal_jsd(pit_rows, nyc_rows, kBins);
  const double entropy_original = sum_marginal_entropy(pit_rows, kBins);
  const double entropy_similar = sum_marginal_entropy(nyc_rows, kBins);

  const std::vector<double> noise_levels = {0.01, 0.03, 0.05, 0.09, 0.15,
                                            0.20, 0.30, 0.40, 0.50};
  AsciiTable table("Fig. 3: JSD and entropy vs Eq. 5 noise level (Pittsburgh vs New York)");
  table.set_header({"noise level", "JSD(orig -> orig+noise)", "entropy(orig+noise) [bits]",
                    "below similar-city JSD?"});
  std::vector<std::vector<double>> csv_rows;
  Rng rng(7);
  for (double noise : noise_levels) {
    core::AugmentedSampler sampler(pit_data.policy_inputs(), noise);
    const auto augmented = sampler.sample_many(pit_rows.size(), rng);
    const double jsd = mean_marginal_jsd(pit_rows, augmented, kBins);
    const double entropy = sum_marginal_entropy(augmented, kBins);
    table.add_row(format_double(noise, 2),
                  {jsd, entropy, jsd < jsd_similar_city ? 1.0 : 0.0}, 3);
    csv_rows.push_back({noise, jsd, entropy});
  }
  table.print();

  std::printf("reference lines: JSD(Pittsburgh -> New York) = %.3f,\n"
              "entropy(original) = %.3f bits, entropy(New York) = %.3f bits\n\n",
              jsd_similar_city, entropy_original, entropy_similar);
  std::printf("paper shape: JSD grows monotonically with the noise level and crosses\n"
              "the similar-city distance around mid noise; entropy of the augmented\n"
              "distribution exceeds the original. The usable band (JSD below the\n"
              "similar-city line, entropy above original) is small noise, matching\n"
              "the paper's chosen noise_level in [0.01, 0.09].\n");
  const std::string path = bench::write_csv(
      "fig3_noise_level.csv", "noise_level,jsd_to_original,entropy_bits", csv_rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
