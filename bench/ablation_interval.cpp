// Ablation — sound interval certification vs Monte-Carlo estimation.
//
// Extension of §3.3.2: criterion #1 can be *certified* (not just
// estimated) by pushing each leaf's input box through the learned MLP with
// interval bound propagation (core/interval_verify). The certificate is
// sound but incomplete — IBP looseness grows with the disturbance
// envelope, the zone-slice width, and the network depth. This bench maps
// that certify/abstain frontier on the pipeline's verified policy:
//   1. certified fraction vs climate-envelope width,
//   2. certified fraction vs zone-slice width (input splitting budget),
//   3. shallow {16} vs paper-ish {32,32} dynamics model,
// alongside the Monte-Carlo safe-probability estimate for reference.
// Shape to check: certification decays toward zero as the envelope widens
// (while the MC estimate barely moves), finer slices recover certification
// at linear cost, and the shallow model certifies far more than the deep
// one at equal accuracy — "verifiability favours shallow dynamics models".
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "core/interval_verify.hpp"
#include "dynamics/model_eval.hpp"

namespace {

using namespace verihvac;

core::DisturbanceBounds envelope(double scale) {
  core::DisturbanceBounds b;
  b.outdoor = Interval::bounded(-1.0 * scale, 1.0 * scale);
  b.humidity = Interval::bounded(50.0 - 2.0 * scale, 50.0 + 2.0 * scale);
  b.wind = Interval::bounded(std::max(0.0, 3.0 - 0.5 * scale), 3.0 + 0.5 * scale);
  b.solar = Interval::bounded(std::max(0.0, 100.0 - 10.0 * scale), 100.0 + 10.0 * scale);
  b.occupancy = Interval::bounded(std::max(0.5, 11.0 - scale), 11.0 + scale);
  return b;
}

}  // namespace

int main() {
  bench::print_banner("ablation_interval", "DESIGN.md §5 (IBP certification frontier)");

  core::PipelineConfig cfg = bench::bench_config("Pittsburgh");
  const core::PipelineArtifacts artifacts = core::run_pipeline(cfg);
  const core::DtPolicy& policy = *artifacts.policy;

  // A shallow twin of the pipeline model, trained on the same data.
  dyn::DynamicsModelConfig shallow_cfg = cfg.model;
  shallow_cfg.hidden = {16};
  dyn::DynamicsModel shallow(shallow_cfg);
  shallow.train(artifacts.historical);
  std::printf("one-step RMSE: pipeline model %.4f degC, shallow model %.4f degC\n",
              dyn::one_step_rmse(*artifacts.model, artifacts.historical),
              dyn::one_step_rmse(shallow, artifacts.historical));
  std::printf("Monte-Carlo criterion-#1 estimate (reference): %.3f\n\n",
              artifacts.probabilistic.safe_probability);

  // --- Sweep 1: envelope width (shallow model, 0.25 degC slices). ---
  AsciiTable sweep1("Certified fraction vs climate-envelope width (shallow model)");
  sweep1.set_header({"envelope scale", "subject leaves", "certified", "fraction"});
  std::vector<std::vector<double>> rows1;
  core::IntervalVerifyConfig fine;
  fine.zone_slice_c = 0.25;
  for (double scale : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto report =
        core::verify_interval_one_step(policy, shallow, cfg.criteria, envelope(scale), fine);
    sweep1.add_row(format_double(scale, 1),
                   {static_cast<double>(report.leaves_subject),
                    static_cast<double>(report.leaves_certified),
                    report.certified_fraction()},
                   3);
    rows1.push_back({scale, static_cast<double>(report.leaves_subject),
                     static_cast<double>(report.leaves_certified),
                     report.certified_fraction()});
  }
  sweep1.print();

  // --- Sweep 2: zone-slice width (fixed mild envelope). ---
  AsciiTable sweep2("Certified fraction vs zone-slice width (input splitting)");
  sweep2.set_header({"slice degC", "cells examined", "fraction certified"});
  std::vector<std::vector<double>> rows2;
  for (double slice : {2.0, 1.0, 0.5, 0.25, 0.1}) {
    core::IntervalVerifyConfig split_cfg;
    split_cfg.zone_slice_c = slice;
    const auto report = core::verify_interval_one_step(policy, shallow, cfg.criteria,
                                                       envelope(1.0), split_cfg);
    std::size_t cells = 0;
    for (const auto& r : report.results) cells += r.cells;
    sweep2.add_row(format_double(slice, 2),
                   {static_cast<double>(cells), report.certified_fraction()}, 3);
    rows2.push_back({slice, static_cast<double>(cells), report.certified_fraction()});
  }
  sweep2.print();

  // --- Sweep 3: model depth at a fixed mild envelope. ---
  AsciiTable sweep3("Certified fraction vs dynamics-model depth");
  sweep3.set_header({"model", "fraction certified"});
  const auto deep_report = core::verify_interval_one_step(policy, *artifacts.model,
                                                          cfg.criteria, envelope(1.0), fine);
  const auto shallow_report =
      core::verify_interval_one_step(policy, shallow, cfg.criteria, envelope(1.0), fine);
  sweep3.add_row("pipeline (deep)", {deep_report.certified_fraction()}, 3);
  sweep3.add_row("shallow {16}", {shallow_report.certified_fraction()}, 3);
  sweep3.print();

  bench::write_csv("ablation_interval_envelope.csv",
                   "scale,subject,certified,fraction", rows1);
  const std::string path =
      bench::write_csv("ablation_interval_slices.csv", "slice,cells,fraction", rows2);
  std::printf("series written next to %s\n", path.c_str());
  return 0;
}
