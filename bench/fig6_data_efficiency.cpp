// Fig. 6 — data efficiency of the DT policy.
//
// Protocol (paper §4.2.2): sweep the number of decision-data entries,
// refit the DT policy on each prefix, deploy it into the simulated
// building, and record the energy-efficiency score
//     comfort_rate / energy_kwh * 1000
// for both cities. The paper finds the score converges within ~100
// decision points — far fewer than one would expect from gridding the
// 6-dim input space, which is the payoff of the Eq. 5 importance sampling.
// Also reports the per-point generation overhead (paper: 16.8 s/point on
// a GPU box; absolute values are hardware-bound, the shape is what
// matters).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"

int main() {
  using namespace verihvac;
  bench::print_banner("fig6_data_efficiency", "Fig. 6 (efficiency vs decision data)");

  const bool full = full_scale();
  const std::vector<std::size_t> sizes =
      full ? std::vector<std::size_t>{10, 50, 100, 250, 500, 1000, 2000, 3000}
           : std::vector<std::size_t>{10, 25, 50, 100, 200, 400, 600};

  std::vector<std::vector<double>> csv_rows;
  for (const std::string city : {"Pittsburgh", "Tucson"}) {
    core::PipelineConfig cfg = bench::bench_config(city);
    cfg.decision_points = sizes.back();
    const core::PipelineArtifacts base = core::run_pipeline(cfg);
    const double seconds_per_point =
        base.decision_data_seconds / static_cast<double>(base.decisions.size());

    AsciiTable table("Fig. 6 [" + city + "]: energy-efficiency score vs decision data");
    table.set_header({"decision data", "efficiency score", "energy [kWh]",
                      "violation rate"});
    double converged_score = 0.0;
    for (std::size_t n : sizes) {
      const core::PipelineArtifacts fitted = core::refit_policy(base, n);
      auto policy = fitted.make_dt_policy();
      const auto metrics = bench::run_full_episode(cfg.env, *policy);
      table.add_row(std::to_string(n),
                    {metrics.energy_efficiency_score(), metrics.total_energy_kwh(),
                     metrics.violation_rate()},
                    3);
      csv_rows.push_back({city == "Pittsburgh" ? 0.0 : 1.0, static_cast<double>(n),
                          metrics.energy_efficiency_score(), metrics.total_energy_kwh(),
                          metrics.violation_rate()});
      converged_score = metrics.energy_efficiency_score();
    }
    table.print();
    std::printf("[%s] decision-data generation overhead: %.3f s/point "
                "(paper: 16.8 s/point on i9 + RTX 3080Ti)\n\n",
                city.c_str(), seconds_per_point);
    (void)converged_score;
  }

  std::printf("paper shape: the score rises steeply and converges within ~100\n"
              "decision points for both cities, then stays flat — extraction needs\n"
              "minutes of offline compute, not the 444 hours of input gridding.\n");
  const std::string path = bench::write_csv(
      "fig6_data_efficiency.csv",
      "city,decision_points,efficiency_score,energy_kwh,violation_rate", csv_rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
