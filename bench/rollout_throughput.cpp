// Bench — candidate-scoring throughput: scalar vs lock-step batched
// (ISSUE 3 acceptance).
//
// The whole evaluation loop — RS/CEM/MPPI candidate scoring,
// decision-data generation, Monte-Carlo verification — bottoms out in
// dynamics-model inference. PR 1–2 parallelized *across* samples (scalar
// predict per candidate, sharded over common::TaskPool); PR 3 batches
// *within* a worker: every horizon step advances the worker's whole
// sub-batch with one blocked-GEMM forward. This bench sweeps
// scalar-vs-batched across thread counts, asserts bit-identical returns
// along the way, and emits one JSON row per (mode, threads) point into
// BENCH_rollout.json for the perf trajectory.
//
// Acceptance shape: batched throughput at 8 threads >= 3x scalar at 8
// threads. The win is architectural, not cache traffic (the network's
// weights fit in L1 either way): the scalar dot product is latency-bound
// on its FP-add dependency chain and cannot vectorize (it is a
// reduction), while the batched Linear kernels vectorize across
// independent output columns (wide layers) or retire eight independent
// per-candidate chains per pass (thin layers).
//
// Usage: rollout_throughput [--smoke]
//   --smoke: tiny workload for CI (equivalence check + JSON emission, no
//            throughput assertion — shared runners are too noisy).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "control/random_shooting.hpp"
#include "control/rollout_engine.hpp"

namespace {

using namespace verihvac;
using bench::best_of_trials;
using bench::seconds_since;

env::Observation cold_occupied() {
  env::Observation obs;
  obs.zone_temp_c = 17.5;
  obs.weather.outdoor_temp_c = -5.0;
  obs.weather.humidity_pct = 50.0;
  obs.weather.wind_mps = 3.0;
  obs.occupants = 11.0;
  return obs;
}

struct BenchRow {
  std::string mode;
  std::size_t threads = 0;
  double seconds = 0.0;
  double candidates_per_sec = 0.0;
  double model_steps_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::size_t samples =
      static_cast<std::size_t>(env_or_long("VERI_HVAC_RS_SAMPLES", smoke ? 64 : 512));
  const std::size_t horizon =
      static_cast<std::size_t>(env_or_long("VERI_HVAC_RS_HORIZON", smoke ? 5 : 20));
  const std::size_t reps = smoke ? 2 : 12;
  std::printf("== rollout_throughput — scalar vs lock-step batched candidate scoring ==\n");
  std::printf("candidates=%zu horizon=%zu reps=%zu%s\n\n", samples, horizon, reps,
              smoke ? " (smoke)" : "");

  const std::shared_ptr<const dyn::DynamicsModel> model_ptr = bench::toy_dynamics_model();
  const dyn::DynamicsModel& model = *model_ptr;
  const control::ActionSpace actions;
  const control::RandomShooting rs(control::RandomShootingConfig{1, horizon, 0.99}, actions,
                                   env::RewardConfig{});
  const env::Observation obs = cold_occupied();
  env::Disturbance d;
  d.weather = obs.weather;
  d.occupants = obs.occupants;
  const std::vector<env::Disturbance> forecast(horizon, d);

  Rng rng(7);
  std::vector<std::vector<std::size_t>> sequences(samples, std::vector<std::size_t>(horizon));
  for (auto& seq : sequences) {
    for (auto& a : seq) a = rng.index(actions.size());
  }

  // Equivalence gate first: the batched pipeline must reproduce the scalar
  // path bit-for-bit before any throughput number means anything.
  std::vector<double> scalar_returns(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    scalar_returns[s] = rs.rollout_return(model, obs, forecast, sequences[s]);
  }
  {
    std::vector<double> batched_returns;
    rs.rollout_returns(model, obs, forecast, sequences, batched_returns);
    for (std::size_t s = 0; s < samples; ++s) {
      if (batched_returns[s] != scalar_returns[s]) {
        std::printf("FAIL: batched return diverges from scalar at candidate %zu "
                    "(%.17g vs %.17g)\n",
                    s, batched_returns[s], scalar_returns[s]);
        return 1;
      }
    }
  }
  std::printf("equivalence: batched returns bit-identical to scalar (%zu candidates)\n\n",
              samples);

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  std::vector<BenchRow> rows;
  std::printf("%-8s %8s %12s %16s %18s\n", "mode", "threads", "seconds", "candidates/s",
              "model steps/s");
  for (std::size_t threads : thread_counts) {
    const auto engine = std::make_shared<const control::RolloutEngine>(
        control::RolloutEngineConfig{threads, /*min_parallel_batch=*/1});
    for (const bool batched : {false, true}) {
      std::vector<double> returns(samples);
      control::RandomShooting scorer(control::RandomShootingConfig{1, horizon, 0.99}, actions,
                                     env::RewardConfig{});
      if (batched) scorer.set_engine(engine);

      // Best-of-N timed repetitions (bench_common::best_of_trials):
      // scheduler noise only ever slows a trial down, so the max
      // throughput is the stable estimate.
      const double secs = best_of_trials(smoke ? 1 : 3, [&] {
        for (std::size_t rep = 0; rep < reps; ++rep) {
          if (batched) {
            scorer.rollout_returns(model, obs, forecast, sequences, returns);
          } else {
            // The PR 1–2 path: per-candidate scalar rollouts sharded over
            // the same pool, with per-worker scalar predict scratch.
            std::vector<dyn::PredictScratch> scratches(engine->thread_count());
            engine->parallel_for(samples, [&](std::size_t worker, std::size_t begin,
                                              std::size_t end) {
              for (std::size_t s = begin; s < end; ++s) {
                returns[s] = scorer.rollout_return(model, obs, forecast, sequences[s],
                                                   scratches[worker]);
              }
            });
          }
        }
      });
      for (std::size_t s = 0; s < samples; ++s) {
        if (returns[s] != scalar_returns[s]) {
          std::printf("FAIL: %s mode at %zu threads diverged at candidate %zu\n",
                      batched ? "batched" : "scalar", threads, s);
          return 1;
        }
      }

      BenchRow row;
      row.mode = batched ? "batched" : "scalar";
      row.threads = threads;
      row.seconds = secs;
      const double total = static_cast<double>(samples * reps);
      row.candidates_per_sec = total / secs;
      row.model_steps_per_sec = total * static_cast<double>(horizon) / secs;
      rows.push_back(row);
      std::printf("%-8s %8zu %12.4f %16.0f %18.0f\n", row.mode.c_str(), row.threads,
                  row.seconds, row.candidates_per_sec, row.model_steps_per_sec);
    }
  }

  auto throughput = [&rows](const std::string& mode, std::size_t threads) {
    for (const auto& r : rows) {
      if (r.mode == mode && r.threads == threads) return r.candidates_per_sec;
    }
    return 0.0;
  };
  const double speedup_8t = throughput("batched", 8) / throughput("scalar", 8);
  const double speedup_vs_serial = throughput("batched", 8) / throughput("scalar", 1);
  std::printf("\nbatched/scalar @ 8 threads: %.2fx\n", speedup_8t);
  std::printf("batched@8 / scalar@1:       %.2fx\n", speedup_vs_serial);

  // One JSON artifact for the perf trajectory (BENCH_rollout.json schema:
  // a "rows" array with one object per (mode, threads) point plus the two
  // headline speedups).
  std::vector<bench::JsonObject> json_rows;
  for (const BenchRow& r : rows) {
    bench::JsonObject row;
    row.field("mode", r.mode)
        .field("threads", r.threads)
        .field("seconds", r.seconds)
        .field("candidates_per_sec", r.candidates_per_sec)
        .field("model_steps_per_sec", r.model_steps_per_sec);
    json_rows.push_back(std::move(row));
  }
  bench::JsonObject artifact;
  artifact.field("bench", std::string("rollout_throughput"))
      .field("samples", samples)
      .field("horizon", horizon)
      .field("reps", reps)
      .field_bool("smoke", smoke)
      .field_array("rows", json_rows)
      .field("batched_over_scalar_at_8_threads", speedup_8t)
      .field("batched_8t_over_scalar_1t", speedup_vs_serial);
  const std::string path = bench::write_bench_json("BENCH_rollout.json", artifact);
  std::printf("wrote %s\n", path.c_str());

  if (!smoke && speedup_8t < 3.0) {
    std::printf("FAIL: batched/scalar @ 8 threads %.2fx below the 3x acceptance bar\n",
                speedup_8t);
    return 1;
  }
  return 0;
}
