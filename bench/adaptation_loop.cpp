// Bench — closed-loop adaptation: telemetry -> drift -> retrain ->
// certify -> hot-swap (ISSUE 5 acceptance).
//
// Three sections, each gating one promise of the adaptation subsystem:
//
//   1. Telemetry overhead. The TelemetryLog tap rides the DT fast path
//      (sub-microsecond decisions); capture must cost < 5% of serving
//      throughput. Measured as tap-on vs tap-off DT decision rates over
//      the same workload (best-of-N trials).
//
//   2. Trace replay. A live mixed (DT + micro-batched MBRL) run is
//      captured, round-tripped through the versioned binary format, and
//      replayed from the records alone — Rng::stream(session_seed,
//      decision_index) reconstructs each MBRL decision's draws. Replayed
//      decisions must be bit-identical to the live run at engine pools of
//      1/4/8 threads.
//
//   3. Closed-loop drift recovery. Real pipeline assets serve a fleet;
//      mid-run every building degrades (HVAC efficiency loss + envelope
//      leak). The monitor must detect the drift from residuals, the
//      controller must produce a *certified* bundle (fine-tune -> VIPER ->
//      Algorithm 1 + criterion #1 -> shadow gate) and hot-swap it with
//      zero dropped in-flight decisions, and the post-swap comfort
//      violation rate must recover to within 10% of the pre-drift
//      baseline (full-day windows so diurnal occupancy compares like for
//      like).
//
// Emits BENCH_adapt.json. --smoke shrinks every workload for CI and skips
// the noise-sensitive gates (overhead, recovery); the exact gates (replay
// bit-identity, zero drops, certified-promotion) hold at any scale.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "adapt/adaptation_controller.hpp"
#include "bench_common.hpp"
#include "common/config.hpp"
#include "serve/fleet_harness.hpp"

namespace {

using namespace verihvac;
using bench::seconds_since;

env::Observation observation_for(std::size_t i) {
  env::Observation obs;
  obs.zone_temp_c = 14.0 + static_cast<double>(i % 17);
  obs.weather.outdoor_temp_c = -8.0 + static_cast<double>(i % 23);
  obs.weather.humidity_pct = 50.0;
  obs.weather.wind_mps = 3.0;
  obs.weather.solar_wm2 = static_cast<double>((i * 37) % 400);
  obs.occupants = (i % 3 == 0) ? 11.0 : 0.0;
  return obs;
}

std::vector<env::Disturbance> forecast_for(const env::Observation& obs, std::size_t horizon) {
  env::Disturbance d;
  d.weather = obs.weather;
  d.occupants = obs.occupants;
  return std::vector<env::Disturbance>(horizon, d);
}

std::shared_ptr<const common::TaskPool> pool_with_threads(std::size_t threads) {
  return std::make_shared<const common::TaskPool>(
      common::TaskPoolConfig{threads, /*min_parallel_batch=*/1});
}

/// Fresh serving stack over the shared toy assets (sections 1 and 2).
struct Stack {
  std::shared_ptr<serve::PolicyRegistry> registry = std::make_shared<serve::PolicyRegistry>();
  std::shared_ptr<serve::SessionManager> sessions = std::make_shared<serve::SessionManager>();
  std::unique_ptr<serve::RequestScheduler> scheduler;
  std::vector<serve::SessionId> ids;
  std::uint64_t policy_version = 0;
  std::uint64_t model_generation = 0;

  Stack(const std::shared_ptr<const core::DtPolicy>& policy,
        const std::shared_ptr<const dyn::DynamicsModel>& model,
        const control::RandomShootingConfig& rs, std::size_t threads, std::size_t n_sessions,
        const std::shared_ptr<adapt::TelemetryLog>& tap = nullptr) {
    policy_version = registry->install("toy", policy);
    scheduler = std::make_unique<serve::RequestScheduler>(
        serve::SchedulerConfig{}, registry, sessions, rs, control::ActionSpace{},
        env::RewardConfig{}, pool_with_threads(threads));
    model_generation = scheduler->install_model("toy", model);
    if (tap != nullptr) scheduler->set_tap(tap);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      serve::SessionConfig session;
      session.policy_key = "toy";
      session.seed = 5000 + 13 * s;
      ids.push_back(sessions->open(session));
      if (tap != nullptr) tap->register_session(ids.back(), session.seed, session.policy_key);
    }
  }

  serve::ControlRequest request(std::size_t i, serve::RequestKind kind,
                                std::size_t horizon) const {
    serve::ControlRequest request;
    request.session = ids[i % ids.size()];
    request.kind = kind;
    request.observation = observation_for(i);
    if (kind == serve::RequestKind::kMbrlFallback) {
      request.forecast = forecast_for(request.observation, horizon);
    }
    return request;
  }
};

double violation_rate_of_window(const std::vector<serve::FleetStepMetrics>& steps,
                                std::size_t begin, std::size_t end) {
  std::size_t occupied = 0;
  std::size_t violations = 0;
  for (std::size_t s = begin; s < std::min(end, steps.size()); ++s) {
    occupied += steps[s].occupied_steps;
    violations += steps[s].occupied_violations;
  }
  return occupied == 0 ? 0.0 : static_cast<double>(violations) / static_cast<double>(occupied);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf("== adaptation_loop — telemetry capture, drift detection, verified "
              "retrain->certify->hot-swap ==\n%s\n\n", smoke ? "(smoke scale)" : "(bench scale)");

  const auto toy_policy = bench::toy_decision_policy();
  const auto toy_model = bench::toy_dynamics_model();
  control::RandomShootingConfig toy_rs;
  toy_rs.samples = smoke ? 16 : 64;
  toy_rs.horizon = smoke ? 3 : 5;

  bench::JsonObject artifact;
  artifact.field("bench", std::string("adaptation_loop")).field_bool("smoke", smoke);
  bool failed = false;

  // ---- Section 1: telemetry capture overhead on the DT fast path.
  // Three capture configs: full fidelity (every decision — what the
  // replay and drift tests use on bounded fleets) and deterministic
  // 2-in-16 / 2-in-32 DT sampling. The sampled duty cycle is what makes
  // the <5% budget meetable on a ~150 ns decision path: the per-record
  // cost is already down to a wait-free claim plus two cache lines, and
  // sampling divides how often it is paid.
  {
    const std::size_t decisions = smoke ? 20000 : 200000;
    const std::size_t trials = smoke ? 3 : 9;
    std::vector<double> rates(4, 0.0);
    const std::size_t periods[4] = {0, 1, 16, 32};  // 0 = tap off
    // Build all four stacks up front and interleave their trials so slow
    // machine-load drift hits every mode equally (best-of per mode).
    std::vector<std::unique_ptr<Stack>> stacks;
    for (int mode = 0; mode < 4; ++mode) {
      adapt::TelemetryConfig telemetry;
      telemetry.shards = 4;
      telemetry.capacity_per_shard = 1024;  // cache-resident ring
      telemetry.dt_sample_period = std::max<std::size_t>(1, periods[mode]);
      const auto log =
          mode == 0 ? nullptr : std::make_shared<adapt::TelemetryLog>(telemetry);
      stacks.push_back(std::make_unique<Stack>(toy_policy, toy_model, toy_rs, /*threads=*/1,
                                               /*n_sessions=*/64, log));
    }
    std::vector<double> best_secs(4, 0.0);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      for (int mode = 0; mode < 4; ++mode) {
        Stack& stack = *stacks[mode];
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < decisions; ++i) {
          stack.scheduler->serve(stack.request(i, serve::RequestKind::kDtPolicy, 0));
        }
        const double secs = seconds_since(t0);
        if (trial == 0 || secs < best_secs[mode]) best_secs[mode] = secs;
      }
    }
    for (int mode = 0; mode < 4; ++mode) {
      rates[mode] = static_cast<double>(decisions) / best_secs[mode];
    }
    const auto overhead = [&rates](int mode) {
      return rates[mode] > 0.0 ? rates[0] / rates[mode] - 1.0 : 1.0;
    };
    std::printf("telemetry overhead: DT fast path %.0f/s untapped | full %.0f/s (%.1f%%) | "
                "2-in-16 %.0f/s (%.1f%%) | 2-in-32 %.0f/s (%.1f%%)\n",
                rates[0], rates[1], 100.0 * overhead(1), rates[2], 100.0 * overhead(2),
                rates[3], 100.0 * overhead(3));
    artifact.field("dt_untapped_per_sec", rates[0])
        .field("dt_full_capture_per_sec", rates[1])
        .field("dt_sampled16_per_sec", rates[2])
        .field("dt_sampled32_per_sec", rates[3])
        .field("telemetry_full_overhead_fraction", overhead(1))
        .field("telemetry_sampled16_overhead_fraction", overhead(2))
        .field("telemetry_sampled32_overhead_fraction", overhead(3));
    if (!smoke && overhead(3) >= 0.05) {
      std::printf("FAIL: sampled (2-in-32) telemetry overhead %.2f%% exceeds the 5%% bar\n",
                  100.0 * overhead(3));
      failed = true;
    }
  }

  // ---- Section 2: live capture -> binary trace -> bit-identical replay.
  {
    const auto log = std::make_shared<adapt::TelemetryLog>();
    Stack stack(toy_policy, toy_model, toy_rs, /*threads=*/2, /*n_sessions=*/8, log);
    const std::size_t rounds = smoke ? 4 : 12;
    std::size_t served = 0;
    for (std::size_t round = 0; round < rounds; ++round) {
      std::vector<serve::ControlRequest> batch;
      for (std::size_t s = 0; s < stack.ids.size(); ++s) {
        const auto kind = s % 4 == 0 ? serve::RequestKind::kDtPolicy
                                     : serve::RequestKind::kMbrlFallback;
        batch.push_back(stack.request(round * stack.ids.size() + s, kind, toy_rs.horizon));
      }
      served += stack.scheduler->serve_batch(batch).size();
    }

    adapt::TelemetryTrace trace;
    trace.sessions = log->sessions();
    const std::uint64_t lost = log->drain(trace.records);

    // Round-trip the versioned binary format before replaying.
    const std::string path = bench::artifact_path("adaptation_loop_trace.bin");
    adapt::save_trace(trace, path);
    const adapt::TelemetryTrace loaded = adapt::load_trace(path);

    adapt::ReplayAssets assets;
    assets.policies[stack.policy_version] = toy_policy;
    assets.models[stack.model_generation] = toy_model;
    bool replay_ok = lost == 0 && loaded.records.size() == served;
    for (const std::size_t threads : {1u, 4u, 8u}) {
      adapt::ReplayConfig replay;
      replay.rs = toy_rs;
      replay.engine = std::make_shared<const control::RolloutEngine>(
          control::RolloutEngineConfig{threads, /*min_parallel_batch=*/1});
      const adapt::ReplayReport report = adapt::replay_trace(loaded, assets, replay);
      const bool ok = report.bit_identical() && report.replayed == loaded.records.size();
      std::printf("replay @ %zu threads: %zu/%zu decisions bit-identical%s\n", threads,
                  report.matched, report.replayed, ok ? "" : "  <-- MISMATCH");
      replay_ok = replay_ok && ok;
    }
    artifact.field("replay_decisions", served).field_bool("replay_bit_identical", replay_ok);
    if (!replay_ok) {
      std::printf("FAIL: trace replay diverged from the live run\n");
      failed = true;
    }
  }

  // ---- Section 3: closed-loop drift recovery on pipeline assets.
  {
    core::PipelineConfig pipeline = core::PipelineConfig::for_city("Pittsburgh");
    pipeline.env.days = smoke ? 2 : 6;
    pipeline.collection.episodes = smoke ? 1 : 2;
    pipeline.model.trainer.epochs = static_cast<std::size_t>(
        env_or_long("VERI_HVAC_EPOCHS", smoke ? 15 : 60));
    pipeline.decision_points = static_cast<std::size_t>(
        env_or_long("VERI_HVAC_DECISION_POINTS", smoke ? 80 : 400));
    pipeline.rs.samples = static_cast<std::size_t>(
        env_or_long("VERI_HVAC_RS_SAMPLES", smoke ? 16 : 64));
    pipeline.rs.horizon = static_cast<std::size_t>(
        env_or_long("VERI_HVAC_RS_HORIZON", smoke ? 3 : 5));
    pipeline.decision.mc_repeats = smoke ? 2 : 3;
    pipeline.rs_distill = pipeline.rs;
    pipeline.rs_distill.refine_first_action = true;
    pipeline.probabilistic_samples = smoke ? 150 : 500;
    std::printf("\nextracting pipeline assets for the drift scenario...\n");
    const core::PipelineArtifacts artifacts = core::run_pipeline(pipeline);

    // Non-smoke timeline (15-min steps, 96/day; the episode starts on a
    // Friday): day 1 (Fri) is the occupied pre-drift baseline, days 2-3
    // are the unoccupied weekend, degradation lands Monday 08:00 — in the
    // middle of occupied hours, when a capacity/envelope hit bites — the
    // loop detects and adapts through Monday, and Tuesday is the recovery
    // window. Comparing Friday to Tuesday is like for like: both occupied
    // weekdays with a normal overnight-setback morning ramp.
    const std::size_t steps_per_day = 96;
    const std::size_t drift_step = smoke ? 32 : 3 * steps_per_day + 32;
    const std::size_t total_steps = smoke ? 96 : 5 * steps_per_day;
    const std::size_t pre_begin = 0;
    const std::size_t pre_end = smoke ? drift_step : steps_per_day;
    const std::size_t post_begin_full = 4 * steps_per_day;

    serve::FleetConfig fleet;
    fleet.climates = {"Pittsburgh"};
    fleet.presets = {{"baseline", 1.0}};
    fleet.buildings_per_cell = smoke ? 4 : 8;
    fleet.mbrl_fraction = 0.25;
    fleet.steps = total_steps;
    fleet.days = smoke ? 2 : 6;
    fleet.rs = pipeline.rs;
    fleet.async = true;
    serve::FleetDriftEvent drift;
    drift.at_step = drift_step;
    // Calibrated so the degraded plant is clearly worse (sustained
    // residual shift + comfort sag) yet still has enough capacity that a
    // re-distilled policy can hold the band — drift the loop can actually
    // recover from, not a plant that physically cannot heat the zone.
    drift.degradation.hvac_capacity_factor = 0.45;
    drift.degradation.heating_efficiency_factor = 0.8;
    drift.degradation.envelope_leak_factor = 1.4;
    fleet.drift.push_back(drift);

    adapt::TelemetryConfig telemetry;
    telemetry.shards = 4;
    telemetry.capacity_per_shard = 16384;
    const auto log = std::make_shared<adapt::TelemetryLog>(telemetry);
    fleet.tap = log;
    fleet.on_session_open = [&log](serve::SessionId id, const serve::SessionConfig& config) {
      log->register_session(id, config.seed, config.policy_key);
    };

    adapt::AdaptationConfig adaptation;
    // Calibrated against the healthy plant's residual wander: the scaled-
    // down pipeline model carries a few tenths of a degree of one-step
    // error with strong *diurnal* structure (the first occupied morning
    // alone pushes Page-Hinkley to ~10), so at bench scale the alarm is
    // held until a full day of per-building samples has calibrated the
    // mean and lambda sits above the diurnal excursion. The injected
    // degradation drives PH an order of magnitude past that.
    adaptation.drift.ph_delta = smoke ? 0.02 : 0.1;
    adaptation.drift.ph_lambda = smoke ? 2.0 : 16.0;
    adaptation.drift.min_samples =
        smoke ? 48 : fleet.buildings_per_cell * steps_per_day;
    adaptation.min_transitions = smoke ? 60 : 240;
    adaptation.fine_tune_epochs = smoke ? 10 : 30;
    adaptation.probabilistic_samples = pipeline.probabilistic_samples;
    adaptation.criteria = pipeline.criteria;
    // Certification threshold for the *degraded* plant: the paper's 0.9 is
    // calibrated to the healthy building; a plant at half capacity cannot
    // always hold one-step safety from the comfort edge no matter what the
    // policy commands. 0.75 keeps the promotion gate meaningful (an
    // uncertified bundle is still rejected — the controller tests lock
    // that) without demanding physics the degraded plant does not have.
    adaptation.criteria.safe_probability_threshold = 0.75;
    adaptation.viper.iterations = smoke ? 2 : 3;
    adaptation.viper.steps_per_iteration = smoke ? 24 : 48;
    adaptation.viper.mc_repeats = smoke ? 1 : 2;
    adaptation.teacher_rs = pipeline.rs_distill;
    adaptation.seed = 2027;

    // Un-adapted counterfactual first: the same fleet, seeds and injected
    // degradation with the adaptation loop disconnected. Its final-day
    // violation rate is the damage the drift actually causes — the
    // baseline the adapted run's recovery is measured against.
    serve::FleetAssets counterfactual_assets{artifacts.policy, artifacts.model};
    serve::FleetConfig counterfactual_config = fleet;
    counterfactual_config.tap = nullptr;
    counterfactual_config.on_session_open = nullptr;
    serve::FleetHarness counterfactual(
        counterfactual_config,
        [&counterfactual_assets](const std::string&, const serve::FleetPreset&) {
          return counterfactual_assets;
        },
        common::TaskPool::shared());
    const serve::FleetReport counterfactual_report = counterfactual.run();

    // Pump the adaptation loop after every fleet step (the background
    // worker would race the bench's determinism, so the bench paces it).
    // The controller is built after the harness (it adapts the harness's
    // own registry/scheduler), hence the indirection.
    adapt::AdaptationController* controller_ptr = nullptr;
    fleet.on_step = [&controller_ptr, drift_step, total_steps](serve::FleetHarness&,
                                                              std::size_t step) {
      if (controller_ptr == nullptr) return;
      controller_ptr->pump();
      if (step + 1 == drift_step || step + 1 == total_steps) {
        const adapt::DriftStats stats =
            controller_ptr->monitor().stats("Pittsburgh/baseline");
        std::printf("  [monitor @ step %zu] n=%zu mean=%.3f std=%.3f max=%.3f ph=%.3f%s\n",
                    step + 1, stats.samples, stats.mean, stats.stddev, stats.max_residual,
                    stats.ph_statistic, stats.drifted ? " DRIFTED" : "");
      }
    };

    serve::FleetAssets cell_assets{artifacts.policy, artifacts.model};
    serve::FleetHarness harness(
        fleet,
        [&cell_assets](const std::string&, const serve::FleetPreset&) { return cell_assets; },
        common::TaskPool::shared());

    adapt::AdaptationController controller(adaptation, log, harness.registry_ptr(),
                                           harness.sessions_ptr(), harness.scheduler());
    adapt::ClusterAssets cluster;
    cluster.model = artifacts.model;
    cluster.env = pipeline.env;
    cluster.env.days = 2;  // VIPER student-rollout episodes
    cluster.baseline = artifacts.historical;
    controller.register_cluster("Pittsburgh/baseline", cluster);
    controller_ptr = &controller;

    std::printf("running %zu buildings x %zu steps (drift at step %zu)...\n",
                fleet.buildings_per_cell, total_steps, drift_step);
    const auto t0 = std::chrono::steady_clock::now();
    const serve::FleetReport report = harness.run();
    const double loop_seconds = seconds_since(t0);

    // Phase windows: full pre-drift window vs the trailing window after
    // the swap landed.
    const std::uint64_t base_version = 1;
    std::size_t swap_step = total_steps;
    for (std::size_t s = 0; s < report.step_metrics.size(); ++s) {
      if (report.step_metrics[s].max_policy_version > base_version) {
        swap_step = s;
        break;
      }
    }
    const auto history = controller.history();
    const auto stats = controller.stats();
    bool promoted_certified = false;
    for (const adapt::AdaptationReport& attempt : history) {
      if (attempt.promoted && attempt.certified) promoted_certified = true;
    }

    const double pre_rate = violation_rate_of_window(report.step_metrics, pre_begin, pre_end);
    const std::size_t post_begin =
        smoke ? std::min(swap_step + 4, total_steps) : post_begin_full;
    const double post_rate =
        violation_rate_of_window(report.step_metrics, post_begin, total_steps);
    // Damage: the same recovery window in the un-adapted counterfactual.
    const double damage_rate =
        violation_rate_of_window(counterfactual_report.step_metrics, post_begin, total_steps);
    const double excess_damage = damage_rate - pre_rate;
    const double residual_excess = post_rate - pre_rate;

    std::printf("\nphases: pre-drift violation %.4f | un-adapted counterfactual %.4f | "
                "post-swap adapted %.4f\n",
                pre_rate, damage_rate, post_rate);

    // Per-step trajectory artifact (plots + debugging): both runs' fleet
    // occupancy/violation/energy per control step.
    {
      std::vector<std::vector<double>> rows;
      for (std::size_t s = 0; s < report.step_metrics.size(); ++s) {
        const serve::FleetStepMetrics& adapted = report.step_metrics[s];
        const serve::FleetStepMetrics& control = counterfactual_report.step_metrics[s];
        rows.push_back({static_cast<double>(s), static_cast<double>(adapted.occupied_steps),
                        static_cast<double>(adapted.occupied_violations), adapted.energy_kwh,
                        static_cast<double>(control.occupied_violations), control.energy_kwh,
                        static_cast<double>(adapted.max_policy_version)});
      }
      bench::write_csv("adaptation_loop_steps.csv",
                       "step,occupied,adapted_violations,adapted_kwh,"
                       "counterfactual_violations,counterfactual_kwh,policy_version",
                       rows);
    }
    std::printf("drift events %llu, adaptations %llu attempted / %llu promoted, swap at "
                "step %zu, dropped decisions %zu, %.1fs loop\n",
                static_cast<unsigned long long>(stats.drift_events),
                static_cast<unsigned long long>(stats.adaptations_attempted),
                static_cast<unsigned long long>(stats.adaptations_promoted), swap_step,
                report.dropped_decisions, loop_seconds);
    for (const adapt::AdaptationReport& attempt : history) {
      std::printf("  gen %llu: certified=%d (safe prob %.3f) shadow=%d promoted=%d -> "
                  "bundle v%llu\n",
                  static_cast<unsigned long long>(attempt.generation), attempt.certified,
                  attempt.probabilistic.safe_probability, attempt.shadow_passed,
                  attempt.promoted,
                  static_cast<unsigned long long>(attempt.promoted_policy_version));
    }

    std::vector<bench::JsonObject> attempts;
    for (const adapt::AdaptationReport& attempt : history) {
      bench::JsonObject row;
      row.field("generation", static_cast<std::size_t>(attempt.generation))
          .field_bool("certified", attempt.certified)
          .field("safe_probability", attempt.probabilistic.safe_probability)
          .field("interval_certified_fraction", attempt.interval.certified_fraction())
          .field("recert_cells_total", attempt.recert.cells_total)
          .field("recert_cells_computed", attempt.recert.cells_computed)
          .field_bool("recert_fallback_full", attempt.recert.fallback_full)
          .field_bool("shadow_passed", attempt.shadow_passed)
          .field_bool("promoted", attempt.promoted)
          .field("train_transitions", attempt.train_transitions)
          .field("seconds", attempt.seconds);
      attempts.push_back(std::move(row));
    }
    artifact.field("pre_drift_violation_rate", pre_rate)
        .field("counterfactual_violation_rate", damage_rate)
        .field("post_swap_violation_rate", post_rate)
        .field("drift_events", static_cast<std::size_t>(stats.drift_events))
        .field("adaptations_promoted", static_cast<std::size_t>(stats.adaptations_promoted))
        .field("swap_step", swap_step)
        .field("dropped_decisions", report.dropped_decisions)
        .field("telemetry_lost", static_cast<std::size_t>(stats.records_lost))
        .field("loop_seconds", loop_seconds)
        .field_array("adaptations", attempts);

    // Exact gates hold at any scale.
    if (report.dropped_decisions != 0) {
      std::printf("FAIL: %zu in-flight decisions dropped across the hot swap\n",
                  report.dropped_decisions);
      failed = true;
    }
    if (stats.drift_events == 0) {
      std::printf("FAIL: injected degradation was never detected\n");
      failed = true;
    }
    if (!promoted_certified) {
      std::printf("FAIL: no certified bundle was promoted\n");
      failed = true;
    }
    // Recovery gates only at bench scale (the smoke fleet is too small
    // for stable rates). The injected degradation must demonstrably hurt
    // comfort in the counterfactual, and the adapted fleet must claw back
    // at least 90% of that excess — i.e. land within 10% of the pre-drift
    // baseline, measured against the damage actually on the table.
    if (!smoke) {
      if (excess_damage < 0.05) {
        std::printf("FAIL: counterfactual damage %.4f too small — the injected degradation "
                    "did not meaningfully hurt comfort\n",
                    excess_damage);
        failed = true;
      } else if (residual_excess > 0.10 * excess_damage) {
        std::printf("FAIL: adapted fleet keeps %.4f excess violation (> 10%% of the %.4f "
                    "counterfactual damage)\n",
                    residual_excess, excess_damage);
        failed = true;
      }
    }
  }

  const std::string path = bench::write_bench_json("BENCH_adapt.json", artifact);
  std::printf("\nwrote %s\n", path.c_str());
  return failed ? 1 : 0;
}
