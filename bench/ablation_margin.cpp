// Ablation — extraction comfort margin vs boundary-riding violations.
//
// DESIGN.md §5.y item 15: the RS teacher is boundary-riding-optimal. With
// the dynamics model predicting exact landings, holding the zone at the
// comfort ceiling is the cheapest "non-violating" behaviour — but the real
// plant's substep limit cycle pokes past the line every other step, which
// is exactly the mechanism behind the paper's ~30% Tucson violation rates
// (Fig. 4, right panel). Extracting against a band shrunk by a margin
// delta on both edges (training-time robustness) and evaluating on the
// true band trades a little energy for a collapse in violations. This
// bench sweeps delta on the cooling-season scenario where the effect is
// largest.
// Shape to check: violations fall steeply from delta = 0 and flatten by
// ~0.5 degC; energy rises mildly; the verified safe probability (measured
// against the margin band) stays high.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "control/evaluate.hpp"

int main() {
  using namespace verihvac;
  bench::print_banner("ablation_margin", "DESIGN.md §5.y.15 (extraction comfort margin)");

  AsciiTable table("Extraction margin sweep (TucsonJuly, true band [23, 26] degC)");
  table.set_header({"margin degC", "safe prob", "energy kWh", "violation (true band)"});
  std::vector<std::vector<double>> rows;

  const env::ComfortRange true_comfort = env::summer_comfort();
  for (double margin : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    core::PipelineConfig config = bench::bench_config("TucsonJuly");
    env::ComfortRange band = true_comfort;
    band.lo += margin;
    band.hi -= margin;
    config.env.reward.comfort = band;
    config.criteria.comfort = band;
    config.env.default_occupied = {21.0, 24.0};
    config.env.default_unoccupied = {15.0, 27.0};
    config.env.hvac_capacity_scale = 2.5;

    const core::PipelineArtifacts artifacts = core::run_pipeline(config);

    env::EnvConfig deploy_env = config.env;
    deploy_env.reward.comfort = true_comfort;
    auto policy = artifacts.make_dt_policy();
    const env::EpisodeMetrics run = bench::run_full_episode(deploy_env, *policy);

    table.add_row(format_double(margin, 2),
                  {artifacts.probabilistic.safe_probability, run.total_energy_kwh(),
                   run.violation_rate()},
                  3);
    rows.push_back({margin, artifacts.probabilistic.safe_probability,
                    run.total_energy_kwh(), run.violation_rate()});
  }
  table.print();
  std::printf("shape to check: violations collapse by margin ~0.5 degC at a mild\n"
              "energy cost; margin 0 reproduces the boundary-riding pathology.\n");
  const std::string path = bench::write_csv(
      "ablation_margin.csv", "margin,safe_probability,energy_kwh,violation_rate", rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
