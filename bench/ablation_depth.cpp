// Ablation — CART depth cap vs verification and control quality.
//
// The paper "left the depth unbounded" (§4.1) and observes (Fig. 6/7)
// that control quality converges long before tree size does — i.e. most
// of the unbounded tree's nodes buy no performance. This bench probes the
// same claim from the regularization side: fit the SAME decision dataset
// under depth caps 2..unbounded, push each tree through the full
// verification (Algorithm 1 + criterion #1), deploy it, and additionally
// apply the function-preserving redundant-leaf merge. Shape to check:
// quality and safe probability saturate at a shallow depth (~6-8) while
// node counts keep growing; pruning removes a visible fraction of nodes
// at zero functional cost.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "core/verification.hpp"
#include "tree/prune.hpp"

int main() {
  using namespace verihvac;
  bench::print_banner("ablation_depth", "DESIGN.md §5 (depth cap; Fig. 6/7 claim)");

  core::PipelineConfig cfg = bench::bench_config("Pittsburgh");
  const core::PipelineArtifacts artifacts = core::run_pipeline(cfg);
  core::DecisionDataGenerator generator(artifacts.historical, cfg.decision);

  AsciiTable table("CART depth cap (same decision data, full verification each)");
  table.set_header({"max depth", "nodes", "after merge", "corrected", "safe prob",
                    "energy kWh", "violation"});
  std::vector<std::vector<double>> rows;

  for (std::size_t depth : {2u, 4u, 6u, 8u, 0u}) {  // 0 = unbounded (paper)
    tree::TreeConfig tree_cfg;
    tree_cfg.max_depth = depth;
    core::DtPolicy policy =
        core::DtPolicy::fit(artifacts.decisions, artifacts.policy->actions(), tree_cfg);

    const core::FormalReport formal =
        core::verify_formal(policy, cfg.criteria, /*correct=*/true);
    Rng rng(cfg.verification_seed);
    const core::ProbabilisticReport prob = core::verify_probabilistic_one_step(
        policy, *artifacts.model, generator.sampler(), cfg.criteria,
        cfg.probabilistic_samples, rng);
    const std::size_t nodes_before = policy.tree().node_count();
    const tree::PruneReport pruned = tree::merge_redundant_leaves(policy.mutable_tree());

    const env::EpisodeMetrics run = bench::run_full_episode(cfg.env, policy);
    const std::string label = depth == 0 ? "unbounded (paper)" : std::to_string(depth);
    table.add_row(label,
                  {static_cast<double>(nodes_before),
                   static_cast<double>(pruned.nodes_after),
                   static_cast<double>(formal.corrected_crit2 + formal.corrected_crit3),
                   prob.safe_probability, run.total_energy_kwh(), run.violation_rate()},
                  3);
    rows.push_back({static_cast<double>(depth), static_cast<double>(nodes_before),
                    static_cast<double>(pruned.nodes_after), prob.safe_probability,
                    run.total_energy_kwh(), run.violation_rate()});
  }
  table.print();
  std::printf("shape to check: energy/violation/safe-prob flat from depth ~6-8 up while\n"
              "node counts keep growing; the merge shrinks trees at zero function cost\n"
              "(the Fig. 6/7 'size does not buy quality' claim, from the other side).\n");
  const std::string path = bench::write_csv(
      "ablation_depth.csv", "max_depth,nodes,nodes_merged,safe_probability,energy_kwh,violation",
      rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
