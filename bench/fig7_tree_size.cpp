// Fig. 7 — decision-tree size vs number of decision data.
//
// Protocol (paper §4.2.2): the same decision-data sweep as Fig. 6, but
// recording the structure of the fitted tree: total node count, leaf
// count and the number of leaves corrected by the formal verifier.
// The paper observes tree size keeps growing long after control
// performance (Fig. 6) has converged — i.e. there is no definitive
// relationship between DT size and control quality.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"

int main() {
  using namespace verihvac;
  bench::print_banner("fig7_tree_size", "Fig. 7 (tree size vs decision data)");

  const bool full = full_scale();
  const std::vector<std::size_t> sizes =
      full ? std::vector<std::size_t>{10, 100, 500, 1000, 2000, 3000, 4500, 6000}
           : std::vector<std::size_t>{10, 25, 50, 100, 200, 400, 600};

  std::vector<std::vector<double>> csv_rows;
  for (const std::string city : {"Pittsburgh", "Tucson"}) {
    core::PipelineConfig cfg = bench::bench_config(city);
    cfg.decision_points = sizes.back();
    const core::PipelineArtifacts base = core::run_pipeline(cfg);

    AsciiTable table("Fig. 7 [" + city + "]: DT size vs decision data");
    table.set_header({"decision data", "nodes", "leaf nodes", "corrected leaves"});
    for (std::size_t n : sizes) {
      const core::PipelineArtifacts fitted = core::refit_policy(base, n);
      const double nodes = static_cast<double>(fitted.policy->tree().node_count());
      const double leaves = static_cast<double>(fitted.policy->tree().leaf_count());
      const double corrected = static_cast<double>(fitted.formal.corrected_crit2 +
                                                   fitted.formal.corrected_crit3);
      table.add_row(std::to_string(n), {nodes, leaves, corrected}, 0);
      csv_rows.push_back({city == "Pittsburgh" ? 0.0 : 1.0, static_cast<double>(n),
                          nodes, leaves, corrected});
    }
    table.print();
  }

  std::printf("paper shape: node and leaf counts grow roughly linearly with the\n"
              "decision-data count (Pittsburgh to ~1200 nodes at 6000 points, Tucson\n"
              "to ~3300) and converge much later than the Fig. 6 control scores, if\n"
              "at all; corrected-leaf counts stay a small fraction of all leaves.\n");
  const std::string path = bench::write_csv(
      "fig7_tree_size.csv", "city,decision_points,nodes,leaves,corrected", csv_rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
