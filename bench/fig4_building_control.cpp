// Fig. 4 — building control results (the headline experiment).
//
// Protocol (paper §4.2.1): deploy four controllers into the simulated
// 5-zone building for the full January episode in Pittsburgh and Tucson,
// and record monthly HVAC energy [kWh] against the occupied-hours comfort
// violation rate. Agents:
//   * default  — the building's rule-based schedule controller [12],
//   * MBRL     — the RS-based model-based agent (MB2C [9]),
//   * CLUE     — ensemble-uncertainty-gated MBRL [1] (state of the art),
//   * DT(ours) — the verified decision-tree policy extracted offline.
// The lower-left direction is better on both axes. The paper reports
// savings vs the default controller: CLUE 129.6 / 32.5 kWh per month for
// Pittsburgh / Tucson, DT 149.6 / 71.8 kWh — a 68.4% increase in savings
// with a 14.8% comfort gain on average.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace verihvac;

struct AgentResult {
  std::string name;
  double energy_kwh = 0.0;
  double violation_rate = 0.0;
};

}  // namespace

int main() {
  bench::print_banner("fig4_building_control", "Fig. 4 (energy vs violation rate)");

  std::vector<std::vector<double>> csv_rows;
  double dt_saving[2] = {0.0, 0.0};
  double clue_saving[2] = {0.0, 0.0};
  double dt_viol[2] = {0.0, 0.0};
  double clue_viol[2] = {0.0, 0.0};

  const std::vector<std::string> cities = {"Pittsburgh", "Tucson"};
  for (std::size_t c = 0; c < cities.size(); ++c) {
    core::PipelineConfig cfg = bench::bench_config(cities[c]);
    cfg.train_ensemble = true;  // CLUE needs the bootstrap ensemble
    const core::PipelineArtifacts artifacts = core::run_pipeline(cfg);

    std::vector<AgentResult> results;
    {
      // The paper's default_agent is the building's stock controller [12]:
      // Sinergym's 5Zone schedule conditions to the comfort band around
      // the clock (no night setback). That always-on waste is exactly the
      // energy the learned agents harvest in Fig. 4 — a setback schedule
      // here would be a *smarter* baseline than the paper compares to.
      control::RuleBasedController agent(cfg.env.default_occupied,
                                         cfg.env.default_occupied);
      const auto m = bench::run_full_episode(cfg.env, agent);
      results.push_back({"default_agent", m.total_energy_kwh(), m.violation_rate()});
    }
    {
      auto agent = artifacts.make_mbrl_agent();
      const auto m = bench::run_full_episode(cfg.env, *agent);
      results.push_back({"MBRL_agent", m.total_energy_kwh(), m.violation_rate()});
    }
    {
      auto agent = artifacts.make_clue_agent();
      const auto m = bench::run_full_episode(cfg.env, *agent);
      results.push_back({"CLUE", m.total_energy_kwh(), m.violation_rate()});
    }
    {
      auto agent = artifacts.make_dt_policy();
      const auto m = bench::run_full_episode(cfg.env, *agent);
      results.push_back({"DT_agent (ours)", m.total_energy_kwh(), m.violation_rate()});
    }

    AsciiTable table("Fig. 4 [" + cities[c] + "]: energy vs violation rate, January");
    table.set_header({"agent", "energy [kWh/month]", "violation rate",
                      "savings vs default [kWh]"});
    const double default_energy = results.front().energy_kwh;
    for (const auto& r : results) {
      table.add_row(r.name,
                    {r.energy_kwh, r.violation_rate, default_energy - r.energy_kwh}, 3);
      csv_rows.push_back({static_cast<double>(c), r.energy_kwh, r.violation_rate});
    }
    table.print();

    clue_saving[c] = default_energy - results[2].energy_kwh;
    dt_saving[c] = default_energy - results[3].energy_kwh;
    clue_viol[c] = results[2].violation_rate;
    dt_viol[c] = results[3].violation_rate;
  }

  const double saving_gain =
      (dt_saving[0] + dt_saving[1]) / std::max(1e-9, clue_saving[0] + clue_saving[1]) - 1.0;
  std::printf("paper: CLUE saves 129.6 / 32.5 kWh vs default (Pittsburgh / Tucson);\n"
              "DT saves 149.6 / 71.8 kWh — 68.4%% more savings, 14.8%% comfort gain.\n");
  std::printf("measured: CLUE saves %.1f / %.1f kWh, DT saves %.1f / %.1f kWh "
              "(DT saving gain vs CLUE: %+.1f%%)\n",
              clue_saving[0], clue_saving[1], dt_saving[0], dt_saving[1],
              saving_gain * 100.0);
  std::printf("measured violation rates: CLUE %.3f / %.3f, DT %.3f / %.3f\n",
              clue_viol[0], clue_viol[1], dt_viol[0], dt_viol[1]);
  std::printf("shape to check: DT sits in the lower-left of (violation, energy)\n"
              "relative to MBRL and CLUE in both cities; all learned agents beat\n"
              "the default controller on energy.\n");
  const std::string path = bench::write_csv(
      "fig4_building_control.csv", "city,energy_kwh,violation_rate", csv_rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
