// Table 3 — online computation overhead per setpoint decision.
//
// Protocol (paper §4.2.3): deploy each controller "online" and time every
// setpoint selection over a stream of live observations. The paper
// reports mean/std per decision: default 0.0 ms (a schedule lookup),
// MBRL 212.87 +/- 266.89 ms, CLUE 326.30 +/- 102.30 ms, DT 0.1888 +/-
// 0.4423 ms — i.e. the DT is 1127-1728x faster than the optimizing
// agents. Absolute numbers are hardware- and scale-dependent; the shape
// to check is the ratio: DT within a few x of the free default lookup and
// orders of magnitude below MBRL/CLUE, whose cost scales with
// samples x horizon (x ensemble members for CLUE).
//
// Implementation: google-benchmark drives the per-decision timing; a
// paper-style summary table with the mean/std over a fixed decision
// stream is printed afterwards.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "envlib/env.hpp"

namespace {

using namespace verihvac;

/// Artifacts are expensive; build once and share across benchmarks.
const core::PipelineArtifacts& artifacts() {
  static const core::PipelineArtifacts instance = [] {
    core::PipelineConfig cfg = bench::bench_config("Pittsburgh");
    cfg.train_ensemble = true;
    return core::run_pipeline(cfg);
  }();
  return instance;
}

/// A day of live observations + forecasts for the decision stream.
struct DecisionStream {
  std::vector<env::Observation> observations;
  std::vector<std::vector<env::Disturbance>> forecasts;
};

const DecisionStream& stream() {
  static const DecisionStream instance = [] {
    DecisionStream s;
    env::EnvConfig day = artifacts().config.env;
    day.days = 1;
    env::BuildingEnv environment(day);
    auto policy = artifacts().make_dt_policy();
    env::Observation obs = environment.reset();
    const std::size_t horizon = artifacts().config.rs.horizon;
    for (std::size_t i = 0; i < environment.horizon_steps(); ++i) {
      s.observations.push_back(obs);
      s.forecasts.push_back(environment.forecast(horizon));
      obs = environment.step(policy->act(obs, s.forecasts.back())).observation;
    }
    return s;
  }();
  return instance;
}

template <typename MakeAgent>
void decision_benchmark(benchmark::State& state, MakeAgent make_agent) {
  auto agent = make_agent();
  const DecisionStream& s = stream();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent->act(s.observations[i], s.forecasts[i]));
    i = (i + 1) % s.observations.size();
  }
}

void BM_DefaultDecision(benchmark::State& state) {
  decision_benchmark(state, [] { return artifacts().make_default_controller(); });
}
void BM_MbrlDecision(benchmark::State& state) {
  decision_benchmark(state, [] { return artifacts().make_mbrl_agent(); });
}
void BM_ClueDecision(benchmark::State& state) {
  decision_benchmark(state, [] { return artifacts().make_clue_agent(); });
}
void BM_DtDecision(benchmark::State& state) {
  decision_benchmark(state, [] { return artifacts().make_dt_policy(); });
}

BENCHMARK(BM_DefaultDecision)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MbrlDecision)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClueDecision)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DtDecision)->Unit(benchmark::kMicrosecond);

/// Paper-style mean/std over the whole decision stream (the paper's std is
/// across decisions, which aggregate benchmark stats do not capture).
struct PaperRow {
  std::string name;
  double mean_ms = 0.0;
  double std_ms = 0.0;
};

template <typename Agent>
PaperRow time_stream(const std::string& name, Agent& agent) {
  const DecisionStream& s = stream();
  std::vector<double> ms;
  ms.reserve(s.observations.size());
  for (std::size_t i = 0; i < s.observations.size(); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(agent.act(s.observations[i], s.forecasts[i]));
    const auto t1 = std::chrono::steady_clock::now();
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return {name, bench::mean_of(ms), bench::std_of(ms)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("table3_overhead", "Table 3 (online computation overhead)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::vector<PaperRow> rows;
  {
    auto agent = artifacts().make_default_controller();
    rows.push_back(time_stream("default", *agent));
  }
  {
    auto agent = artifacts().make_mbrl_agent();
    rows.push_back(time_stream("MBRL", *agent));
  }
  {
    auto agent = artifacts().make_clue_agent();
    rows.push_back(time_stream("CLUE", *agent));
  }
  {
    auto agent = artifacts().make_dt_policy();
    rows.push_back(time_stream("DT (ours)", *agent));
  }

  AsciiTable table("Table 3: per-decision computation overhead over one live day");
  table.set_header({"agent", "average [ms]", "std [ms]"});
  for (const auto& r : rows) table.add_row(r.name, {r.mean_ms, r.std_ms}, 4);
  table.print();

  const double mbrl_ratio = rows[1].mean_ms / std::max(1e-9, rows[3].mean_ms);
  const double clue_ratio = rows[2].mean_ms / std::max(1e-9, rows[3].mean_ms);
  std::printf("paper: default 0.0, MBRL 212.87 +/- 266.89, CLUE 326.30 +/- 102.30,\n"
              "DT 0.1888 +/- 0.4423 ms -> DT is 1127x (vs MBRL@paper-scale) and\n"
              "1728x (vs CLUE) faster.\n");
  std::printf("measured speedup: DT is %.0fx faster than MBRL and %.0fx faster than "
              "CLUE at this scale.\n",
              mbrl_ratio, clue_ratio);
  std::printf("shape to check: DT within microseconds (comparable to the default\n"
              "lookup), MBRL/CLUE in the millisecond range growing linearly with\n"
              "samples x horizon (set VERI_HVAC_FULL=1 for the paper's 1000 x 20).\n");
  bench::write_csv("table3_overhead.csv", "agent,mean_ms,std_ms",
                   {{0, rows[0].mean_ms, rows[0].std_ms},
                    {1, rows[1].mean_ms, rows[1].std_ms},
                    {2, rows[2].mean_ms, rows[2].std_ms},
                    {3, rows[3].mean_ms, rows[3].std_ms}});
  benchmark::Shutdown();
  return 0;
}
