// Bench — incremental re-certification through the certificate cache
// (ISSUE 8 acceptance).
//
// Four sections, each gating one promise of core::CertificateCache +
// VerificationEngine::verify_interval_incremental:
//
//   1. Localized degradation. ~5% of the incumbent policy's subject
//      leaves are relabeled (equipment-fade style action drift) and one
//      leaf is re-split; the dynamics are untouched. Incremental
//      re-certification against a warm cache must recompute at least
//      RATIO× fewer (leaf × cell) IBP units than the full Algorithm 1
//      re-run (deterministic cell accounting, so the gate holds at smoke
//      scale), and the spliced report must be bit-identical to the
//      from-scratch report at engine pools of 1/4/8 threads.
//
//   2. Identical retrain. Re-certifying the unchanged bundle must splice
//      100% of cells (zero IBP forwards) and reproduce the report exactly.
//
//   3. Broad invalidation. A fine-tuned model moves the dynamics content
//      hash, invalidating every cached cell: the engine must take the
//      automatic full-certification fallback (no futile splicing) and
//      still produce a report bit-identical to the full run.
//
//   4. Wall-clock (full scale only — wall time is CI-noise-sensitive;
//      the cell-ratio gate above is the scale-independent cost proxy).
//
// Emits BENCH_recert.json. Gates are overridable via
// VERI_HVAC_RECERT_MIN_RATIO / VERI_HVAC_RECERT_MIN_SPEEDUP.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/task_pool.hpp"
#include "core/certificate_cache.hpp"
#include "core/verification_engine.hpp"

using namespace verihvac;

namespace {

std::shared_ptr<const common::TaskPool> pool_with_threads(std::size_t threads) {
  return std::make_shared<const common::TaskPool>(
      common::TaskPoolConfig{threads, /*min_parallel_batch=*/1});
}

/// Field-by-field exact comparison — "bit-identical certificates" is the
/// contract, so no tolerances anywhere.
bool reports_equal(const core::IntervalReport& a, const core::IntervalReport& b) {
  if (a.leaves_total != b.leaves_total || a.leaves_subject != b.leaves_subject ||
      a.leaves_certified != b.leaves_certified || a.results.size() != b.results.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const core::IntervalLeafResult& x = a.results[i];
    const core::IntervalLeafResult& y = b.results[i];
    if (x.leaf != y.leaf || x.cells != y.cells || x.cells_certified != y.cells_certified ||
        x.certified != y.certified || std::memcmp(&x.zone_temp, &y.zone_temp, sizeof(Interval)) ||
        std::memcmp(&x.next_state, &y.next_state, sizeof(Interval))) {
      return false;
    }
  }
  return true;
}

/// The localized drift: relabel every 20th subject leaf (the leaf ids come
/// from the incumbent's report, so only in-scope certificates are
/// perturbed) and re-split the first relabeled leaf on the zone dimension.
core::DtPolicy degrade_locally(const core::DtPolicy& incumbent,
                               const core::IntervalReport& incumbent_report) {
  core::DtPolicy candidate = incumbent;
  tree::DecisionTreeClassifier& tree = candidate.mutable_tree();
  const int num_classes = static_cast<int>(tree.num_classes());
  int split_candidate = -1;
  for (std::size_t i = 0; i < incumbent_report.results.size(); i += 20) {
    const int leaf = incumbent_report.results[i].leaf;
    tree.set_leaf_label(leaf, (tree.node(static_cast<std::size_t>(leaf)).label + 1) %
                                  num_classes);
    if (split_candidate < 0) split_candidate = leaf;
  }
  if (split_candidate >= 0) {
    const Interval zone = incumbent_report.results[0].zone_temp;
    const std::size_t zone_dim = candidate.schema().zone_temp_index();
    tree.split_leaf(split_candidate, static_cast<int>(zone_dim),
                    0.5 * (zone.lo + zone.hi));
  }
  return candidate;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::print_banner("recert_incremental",
                      "incremental re-certification (certificate cache, ISSUE 8)");

  // The ISSUE's ">=5x cheaper" lock is the deterministic cells-computed
  // ratio (holds at ~20x here). The wall gate is deliberately looser: both
  // paths pay the same O(total cells) work-item construction before any
  // splicing can happen, so wall speedup floors well below the cell ratio
  // on this paper-shaped ({32,32}) model.
  const double min_ratio = env_or_double("VERI_HVAC_RECERT_MIN_RATIO", 5.0);
  const double min_speedup = env_or_double("VERI_HVAC_RECERT_MIN_SPEEDUP", 2.0);

  const auto incumbent = bench::toy_decision_policy(smoke ? 200 : 1200);
  const auto model = bench::toy_dynamics_model(smoke ? 800 : 2000, smoke ? 8 : 15);

  core::VerificationCriteria criteria;
  const core::DisturbanceBounds bounds;
  core::IntervalVerifyConfig interval;
  interval.grid_aligned = true;  // the cache paths' slicing layout
  const core::RecertConfig recert;

  bool failed = false;
  bench::JsonObject artifact;
  artifact.field("bench", std::string("recert_incremental"))
      .field("mode", std::string(smoke ? "smoke" : "full"));

  // Incumbent certification (the state of the world before drift) and the
  // locally degraded candidate, shared across the thread sweep.
  const core::VerificationEngine reference_engine(pool_with_threads(2));
  const core::IntervalReport incumbent_report =
      reference_engine.verify_interval(*incumbent, *model, criteria, bounds, interval);
  const core::DtPolicy candidate = degrade_locally(*incumbent, incumbent_report);

  // ---- Sections 1 + 2 + 3 at pools 1/4/8: splice accounting is
  // deterministic, so every stat must agree across pools and every spliced
  // report must match the from-scratch run bit for bit.
  core::RecertStats localized_stats;
  core::RecertStats identical_stats;
  core::RecertStats broad_stats;
  auto broad_model = std::make_shared<dyn::DynamicsModel>(*model);
  {
    // The "broad drift": a fine-tune moves every weight, however small the
    // dataset — the dynamics content hash must invalidate everything.
    Rng rng(11);
    dyn::TransitionDataset fade;
    for (int i = 0; i < 64; ++i) {
      dyn::Transition t;
      t.input = {rng.uniform(16.0, 26.0), rng.uniform(-5.0, 10.0), 50.0, 3.0,
                 rng.uniform(0.0, 400.0), 11.0};
      t.action.heating_c = 21.0;
      t.action.cooling_c = 26.0;
      // 30% weaker heating than the plant the model was trained on.
      const double healthy = bench::toy_plant(t.input, t.action);
      t.next_zone_temp = t.input[0] + 0.7 * (healthy - t.input[0]);
      fade.add(t);
    }
    broad_model->fine_tune(fade, smoke ? 3 : 8);
  }

  bool bit_identical = true;
  bool stats_agree = true;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    const core::VerificationEngine engine(pool_with_threads(threads));
    const core::IntervalReport full_candidate =
        engine.verify_interval(candidate, *model, criteria, bounds, interval);
    const core::IntervalReport full_broad =
        engine.verify_interval(*incumbent, *broad_model, criteria, bounds, interval);

    // Warm cache = the incumbent's certification run.
    core::CertificateCache cache;
    engine.verify_interval_incremental(*incumbent, *model, criteria, cache, bounds, interval,
                                       recert);

    core::RecertStats stats;
    const core::IntervalReport spliced = engine.verify_interval_incremental(
        candidate, *model, criteria, cache, bounds, interval, recert, &stats);
    bit_identical = bit_identical && reports_equal(spliced, full_candidate);

    core::RecertStats identical;
    const core::IntervalReport replayed = engine.verify_interval_incremental(
        candidate, *model, criteria, cache, bounds, interval, recert, &identical);
    bit_identical = bit_identical && reports_equal(replayed, full_candidate);

    core::RecertStats broad;
    const core::IntervalReport broad_report = engine.verify_interval_incremental(
        *incumbent, *broad_model, criteria, cache, bounds, interval, recert, &broad);
    bit_identical = bit_identical && reports_equal(broad_report, full_broad);

    std::printf("pool %zu: localized %zu/%zu cells computed, identical %zu/%zu, broad "
                "fallback=%d, reports %s\n",
                threads, stats.cells_computed, stats.cells_total, identical.cells_computed,
                identical.cells_total, broad.fallback_full ? 1 : 0,
                bit_identical ? "bit-identical" : "MISMATCH");

    if (threads == 1u) {
      localized_stats = stats;
      identical_stats = identical;
      broad_stats = broad;
    } else {
      stats_agree = stats_agree && stats.cells_computed == localized_stats.cells_computed &&
                    stats.cells_total == localized_stats.cells_total &&
                    identical.cells_computed == identical_stats.cells_computed &&
                    broad.fallback_full == broad_stats.fallback_full;
    }
  }

  const double ratio =
      static_cast<double>(localized_stats.cells_total) /
      static_cast<double>(std::max<std::size_t>(1, localized_stats.cells_computed));
  artifact.field("cells_total", localized_stats.cells_total)
      .field("cells_computed_localized", localized_stats.cells_computed)
      .field("cells_cached_localized", localized_stats.cells_cached)
      .field("localized_cost_ratio", ratio)
      .field("min_ratio_gate", min_ratio)
      .field("diff_leaves_changed", localized_stats.diff_leaves_changed)
      .field("diff_leaves_total", localized_stats.diff_leaves_total)
      .field("identical_cells_computed", identical_stats.cells_computed)
      .field_bool("broad_fallback_full", broad_stats.fallback_full)
      .field_bool("broad_dynamics_changed", broad_stats.dynamics_changed)
      .field_bool("reports_bit_identical", bit_identical)
      .field_bool("stats_thread_invariant", stats_agree);

  if (!bit_identical) {
    std::printf("FAIL: a spliced report diverged from the from-scratch run\n");
    failed = true;
  }
  if (!stats_agree) {
    std::printf("FAIL: splice accounting varied with the thread count\n");
    failed = true;
  }
  if (ratio < min_ratio) {
    std::printf("FAIL: localized re-certification recomputed %zu/%zu cells (%.1fx < the "
                "%.1fx gate)\n",
                localized_stats.cells_computed, localized_stats.cells_total, ratio, min_ratio);
    failed = true;
  }
  if (identical_stats.cells_computed != 0 ||
      identical_stats.cells_cached != identical_stats.cells_total) {
    std::printf("FAIL: identical retrain recomputed %zu cells (want 0)\n",
                identical_stats.cells_computed);
    failed = true;
  }
  if (!broad_stats.fallback_full || !broad_stats.dynamics_changed ||
      broad_stats.cells_computed != broad_stats.cells_total) {
    std::printf("FAIL: broad weight change did not take the full-certification fallback\n");
    failed = true;
  }

  // ---- Section 4: wall clock, full scale only (the ratio gate above is
  // the deterministic cost proxy; wall time additionally shows the
  // bookkeeping does not eat the saving). Each trial re-warms a fresh
  // cache untimed, then times exactly one localized re-certification.
  {
    const core::VerificationEngine engine(pool_with_threads(2));
    const double full_s = bench::best_of_trials(smoke ? 2 : 5, [&] {
      (void)engine.verify_interval(candidate, *model, criteria, bounds, interval);
    });
    double incremental_s = 0.0;
    for (std::size_t trial = 0; trial < (smoke ? 2u : 5u); ++trial) {
      core::CertificateCache cache;
      engine.verify_interval_incremental(*incumbent, *model, criteria, cache, bounds, interval,
                                         recert);
      const double secs = bench::best_of_trials(1, [&] {
        (void)engine.verify_interval_incremental(candidate, *model, criteria, cache, bounds,
                                                 interval, recert);
      });
      if (trial == 0 || secs < incremental_s) incremental_s = secs;
    }
    const double speedup = incremental_s > 0.0 ? full_s / incremental_s : 0.0;
    std::printf("wall: full %.6fs, incremental %.6fs (%.1fx)\n", full_s, incremental_s,
                speedup);
    artifact.field("wall_full_s", full_s)
        .field("wall_incremental_s", incremental_s)
        .field("wall_speedup", speedup);
    if (!smoke && speedup < min_speedup) {
      std::printf("FAIL: wall speedup %.1fx below the %.1fx gate\n", speedup, min_speedup);
      failed = true;
    }
    const core::VerificationEngine::Stats engine_stats = engine.stats();
    artifact.field("engine_interval_runs", engine_stats.interval_runs)
        .field("engine_incremental_runs", engine_stats.incremental_runs)
        .field("engine_recert_cells_cached", engine_stats.recert_cells_cached)
        .field("engine_recert_cells_computed", engine_stats.recert_cells_computed)
        .field("engine_recert_fallbacks", engine_stats.recert_fallbacks);
  }

  const std::string path = bench::write_bench_json("BENCH_recert.json", artifact);
  std::printf("\nwrote %s\n", path.c_str());
  return failed ? 1 : 0;
}
