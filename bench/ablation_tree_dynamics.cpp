// Ablation — MLP vs CART-regression thermal dynamics (extension).
//
// The paper keeps the dynamics model a black-box MLP and makes only the
// *policy* interpretable. dyn::TreeDynamicsModel closes the gap with a
// regression tree over the same transitions. This bench quantifies what
// that buys and what it costs on the pipeline's historical dataset:
//   * one-step RMSE on held-out data (accuracy cost of piecewise-constant
//     deltas),
//   * per-prediction latency (a tree walk vs dense mat-vecs),
//   * auditability statistics (nodes, depth — a human can read the tree).
// Shape to check: the tree is within a modest RMSE factor of the MLP on
// this low-dimensional plant, predicts faster, and is fully auditable —
// the same trade the paper makes for the policy, replayed for the model.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "dynamics/model_eval.hpp"
#include "dynamics/tree_dynamics.hpp"

int main() {
  using namespace verihvac;
  bench::print_banner("ablation_tree_dynamics", "DESIGN.md §5 (interpretable dynamics)");

  core::PipelineConfig cfg = bench::bench_config("Pittsburgh");
  const core::PipelineArtifacts artifacts = core::run_pipeline(cfg);

  // Held-out transitions: a fresh collection episode with a shifted seed.
  dyn::CollectionConfig holdout_cfg = cfg.collection;
  holdout_cfg.seed = cfg.collection.seed + 1000;
  holdout_cfg.episodes = 1;
  const dyn::TransitionDataset holdout =
      dyn::collect_historical_data(cfg.env, holdout_cfg);

  dyn::TreeDynamicsModel tree_model;
  tree_model.train(artifacts.historical);

  // RMSE.
  const double mlp_rmse = dyn::one_step_rmse(*artifacts.model, holdout);
  const double tree_rmse = tree_model.rmse(holdout);

  // Latency (single-sample prediction, averaged).
  const auto& probe = artifacts.historical.transitions().front();
  const int reps = 20000;
  const auto t0 = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (int i = 0; i < reps; ++i) sink += artifacts.model->predict(probe.input, probe.action);
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) sink += tree_model.predict(probe.input, probe.action);
  const auto t2 = std::chrono::steady_clock::now();
  const double mlp_us = std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
  const double tree_us = std::chrono::duration<double, std::micro>(t2 - t1).count() / reps;
  if (sink == 42.0) std::printf("(unlikely)\n");  // keep `sink` alive

  AsciiTable table("Dynamics-model ablation (same training data, same holdout)");
  table.set_header({"model", "holdout RMSE degC", "latency us", "nodes", "depth"});
  table.add_row("MLP (paper)",
                {mlp_rmse, mlp_us,
                 static_cast<double>(artifacts.model->network().parameter_count()), 0.0},
                3);
  table.add_row("CART regression (ours)",
                {tree_rmse, tree_us, static_cast<double>(tree_model.tree().node_count()),
                 static_cast<double>(tree_model.tree().depth())},
                3);
  table.print();
  std::printf("(the MLP row reports parameter count in the nodes column)\n");
  std::printf("shape to check: tree RMSE within ~2x of the MLP, faster single-sample\n"
              "prediction, and a human-auditable structure.\n");

  std::vector<std::vector<double>> rows;
  rows.push_back({0, mlp_rmse, mlp_us});
  rows.push_back({1, tree_rmse, tree_us});
  const std::string path = bench::write_csv("ablation_tree_dynamics.csv",
                                            "model,holdout_rmse,latency_us", rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
