// Fig. 5 — the DT policy's deterministic behaviour.
//
// Protocol (paper §4.2.1): the exact Fig. 1 experiment, but with the
// verified DT policy instead of the MBRL agent — 10 runs over the same
// fixed-disturbance day. Because the tree is a deterministic function of
// (s, d), every run reproduces the same setpoint trajectory bit-for-bit:
// the +/- std band collapses to zero width and the pooled setpoint
// distribution concentrates on single spikes.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "envlib/env.hpp"

namespace {

using namespace verihvac;

constexpr int kRuns = 10;
constexpr double kWindowStart = 8.0;
constexpr double kWindowEnd = 22.0;

}  // namespace

int main() {
  bench::print_banner("fig5_behavior", "Fig. 5 (deterministic DT behaviour)");

  core::PipelineConfig cfg = bench::bench_config("Pittsburgh");
  const core::PipelineArtifacts artifacts = core::run_pipeline(cfg);

  env::EnvConfig day = cfg.env;
  day.days = 1;

  std::vector<std::vector<double>> setpoints(kRuns);
  for (int run = 0; run < kRuns; ++run) {
    auto policy = artifacts.make_dt_policy();
    control::EpisodeTrace trace;
    bench::run_full_episode(day, *policy, &trace);
    setpoints[run].reserve(trace.actions.size());
    for (const auto& a : trace.actions) setpoints[run].push_back(a.heating_c);
  }

  const std::size_t steps = setpoints.front().size();
  AsciiTable table("Fig. 5 (left): DT heating setpoint over " + std::to_string(kRuns) +
                   " runs, fixed disturbances");
  table.set_header({"hour", "mean [degC]", "std [degC]"});
  std::vector<std::vector<double>> csv_rows;
  double max_std = 0.0;
  for (std::size_t s = 0; s < steps; ++s) {
    const double hour = static_cast<double>(s) / 4.0;
    if (hour < kWindowStart || hour > kWindowEnd) continue;
    std::vector<double> at_step;
    at_step.reserve(kRuns);
    for (const auto& run : setpoints) at_step.push_back(run[s]);
    const double m = bench::mean_of(at_step);
    const double sd = bench::std_of(at_step);
    max_std = std::max(max_std, sd);
    csv_rows.push_back({hour, m, sd});
    if (s % 4 == 0) table.add_row(format_double(hour, 2), {m, sd}, 2);
  }
  table.print();

  std::map<int, std::size_t> counts;
  std::size_t total = 0;
  for (const auto& run : setpoints) {
    for (std::size_t s = 0; s < steps; ++s) {
      const double hour = static_cast<double>(s) / 4.0;
      if (hour < kWindowStart || hour > kWindowEnd) continue;
      ++counts[static_cast<int>(run[s])];
      ++total;
    }
  }
  AsciiTable hist("Fig. 5 (right): pooled DT heating-setpoint distribution");
  hist.set_header({"heating setpoint [degC]", "probability"});
  double max_p = 0.0;
  for (const auto& [sp, n] : counts) {
    const double p = static_cast<double>(n) / static_cast<double>(total);
    max_p = std::max(max_p, p);
    hist.add_row(std::to_string(sp), {p}, 3);
  }
  hist.print();

  std::printf("paper shape: zero-width std band (every run identical) and a\n"
              "concentrated setpoint distribution, versus Fig. 1's near-uniform one.\n");
  std::printf("measured: max per-step std across runs = %.4f degC (must be exactly 0);\n"
              "largest setpoint probability mass = %.2f\n",
              max_std, max_p);
  const std::string path = bench::write_csv(
      "fig5_behavior.csv", "hour,mean_heating_sp,std_heating_sp", csv_rows);
  std::printf("series written to %s\n", path.c_str());
  return max_std == 0.0 ? 0 : 1;
}
