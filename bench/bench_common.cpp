#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "common/config.hpp"
#include "common/rng.hpp"

namespace verihvac::bench {

core::PipelineConfig bench_config(const std::string& city) {
  core::PipelineConfig cfg = core::PipelineConfig::for_city(city);
  cfg.env.days = static_cast<int>(env_or_long("VERI_HVAC_DAYS", 31));
  return cfg;
}

void print_banner(const std::string& bench, const std::string& artifact) {
  const bool full = full_scale();
  std::printf("== %s — reproduces %s ==\n", bench.c_str(), artifact.c_str());
  std::printf("scale: %s (VERI_HVAC_FULL=%d, days=%ld, RS samples=%ld, horizon=%ld, "
              "MC repeats=%ld, decision points=%ld)\n\n",
              full ? "paper" : "quick", full ? 1 : 0, env_or_long("VERI_HVAC_DAYS", 31),
              env_or_long("VERI_HVAC_RS_SAMPLES", full ? 1000 : 128),
              env_or_long("VERI_HVAC_RS_HORIZON", full ? 20 : 10),
              env_or_long("VERI_HVAC_MC_REPEATS", full ? 10 : 5),
              env_or_long("VERI_HVAC_DECISION_POINTS", full ? 3000 : 600));
}

env::EpisodeMetrics run_full_episode(const env::EnvConfig& config,
                                     control::Controller& controller,
                                     control::EpisodeTrace* trace) {
  env::BuildingEnv environment(config);
  return control::run_episode(environment, controller, trace);
}

std::string artifact_path(const std::string& filename) {
  const std::filesystem::path dir(output_dir());
  std::filesystem::create_directories(dir);
  return (dir / filename).string();
}

std::string write_csv(const std::string& filename, const std::string& header,
                      const std::vector<std::vector<double>>& rows) {
  const std::string path = artifact_path(filename);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  out << header << '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  return path;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double std_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double best_of_trials(std::size_t trials, const std::function<void()>& timed_run) {
  double best = 0.0;
  for (std::size_t trial = 0; trial < std::max<std::size_t>(1, trials); ++trial) {
    const auto t0 = std::chrono::steady_clock::now();
    timed_run();
    const double secs = seconds_since(t0);
    if (trial == 0 || secs < best) best = secs;
  }
  return best;
}

double toy_plant(const std::vector<double>& x, const sim::SetpointPair& a) {
  const double t = x[env::kZoneTemp];
  double dt = 0.08 * (x[env::kOutdoorTemp] - t);
  if (t < a.heating_c) dt += 0.4 * std::min(a.heating_c - t, 1.2);
  if (t > a.cooling_c) dt -= 0.35 * std::min(t - a.cooling_c, 1.2);
  return t + dt;
}

std::shared_ptr<const dyn::DynamicsModel> toy_dynamics_model(std::size_t points,
                                                             std::size_t epochs) {
  Rng rng(1);
  dyn::TransitionDataset data;
  for (std::size_t i = 0; i < points; ++i) {
    dyn::Transition t;
    t.input = {rng.uniform(14.0, 28.0), rng.uniform(-8.0, 12.0), 50.0, 3.0,
               rng.uniform(0.0, 400.0), rng.bernoulli(0.5) ? 11.0 : 0.0};
    t.action.heating_c = static_cast<double>(rng.uniform_int(15, 23));
    t.action.cooling_c = static_cast<double>(
        rng.uniform_int(std::max(21, static_cast<int>(t.action.heating_c)), 30));
    t.next_zone_temp = toy_plant(t.input, t.action);
    data.add(t);
  }
  dyn::DynamicsModelConfig cfg;
  cfg.trainer.epochs = epochs;
  auto model = std::make_shared<dyn::DynamicsModel>(cfg);
  model->train(data);
  return model;
}

std::shared_ptr<const core::DtPolicy> toy_decision_policy(std::size_t points) {
  control::ActionSpace actions;
  Rng rng(3);
  core::DecisionDataset data;
  for (std::size_t i = 0; i < points; ++i) {
    core::DecisionRecord rec;
    rec.input = {rng.uniform(12.0, 30.0), rng.uniform(-10.0, 35.0), rng.uniform(20.0, 95.0),
                 rng.uniform(0.0, 12.0), rng.uniform(0.0, 600.0),
                 rng.bernoulli(0.5) ? 11.0 : 0.0};
    rec.action_index = rng.index(actions.size());
    data.records.push_back(std::move(rec));
  }
  return std::make_shared<const core::DtPolicy>(core::DtPolicy::fit(data, actions));
}

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

}  // namespace

JsonObject& JsonObject::field(const std::string& name, double value) {
  fields_.emplace_back(name, json_number(value));
  return *this;
}

JsonObject& JsonObject::field(const std::string& name, std::size_t value) {
  fields_.emplace_back(name, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::field(const std::string& name, const std::string& value) {
  fields_.emplace_back(name, "\"" + json_escape(value) + "\"");
  return *this;
}

JsonObject& JsonObject::field_bool(const std::string& name, bool value) {
  fields_.emplace_back(name, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::field_raw(const std::string& name, const std::string& json) {
  fields_.emplace_back(name, json);
  return *this;
}

JsonObject& JsonObject::field_array(const std::string& name,
                                    const std::vector<JsonObject>& rows) {
  std::string json = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) json += ", ";
    json += rows[i].str();
  }
  json += "]";
  fields_.emplace_back(name, std::move(json));
  return *this;
}

std::string JsonObject::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + json_escape(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

std::string write_bench_json(const std::string& filename, const JsonObject& object) {
  const std::string path = artifact_path(filename);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_bench_json: cannot open " + path);
  out << object.str() << "\n";
  return path;
}

}  // namespace verihvac::bench
