#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/config.hpp"

namespace verihvac::bench {

core::PipelineConfig bench_config(const std::string& city) {
  core::PipelineConfig cfg = core::PipelineConfig::for_city(city);
  cfg.env.days = static_cast<int>(env_or_long("VERI_HVAC_DAYS", 31));
  return cfg;
}

void print_banner(const std::string& bench, const std::string& artifact) {
  const bool full = full_scale();
  std::printf("== %s — reproduces %s ==\n", bench.c_str(), artifact.c_str());
  std::printf("scale: %s (VERI_HVAC_FULL=%d, days=%ld, RS samples=%ld, horizon=%ld, "
              "MC repeats=%ld, decision points=%ld)\n\n",
              full ? "paper" : "quick", full ? 1 : 0, env_or_long("VERI_HVAC_DAYS", 31),
              env_or_long("VERI_HVAC_RS_SAMPLES", full ? 1000 : 128),
              env_or_long("VERI_HVAC_RS_HORIZON", full ? 20 : 10),
              env_or_long("VERI_HVAC_MC_REPEATS", full ? 10 : 5),
              env_or_long("VERI_HVAC_DECISION_POINTS", full ? 3000 : 600));
}

env::EpisodeMetrics run_full_episode(const env::EnvConfig& config,
                                     control::Controller& controller,
                                     control::EpisodeTrace* trace) {
  env::BuildingEnv environment(config);
  return control::run_episode(environment, controller, trace);
}

std::string write_csv(const std::string& filename, const std::string& header,
                      const std::vector<std::vector<double>>& rows) {
  const std::filesystem::path dir(output_dir());
  std::filesystem::create_directories(dir);
  const std::string path = (dir / filename).string();
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  out << header << '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  return path;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double std_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

}  // namespace verihvac::bench
