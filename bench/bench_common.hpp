// Shared bench harness utilities.
//
// Every bench binary reproduces one table or figure of the paper and is
// expected to run standalone on a single CPU core in seconds at the quick
// (default) scale, or with the paper's exact hyperparameters under
// VERI_HVAC_FULL=1. This header centralizes workload scaling, artifact
// construction and output formatting so the per-bench sources read like
// the experiment protocol they implement.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "control/evaluate.hpp"
#include "core/pipeline.hpp"

namespace verihvac::bench {

/// Pipeline config for `city` scaled by the VERI_HVAC_* environment knobs,
/// plus bench-specific day-count override (VERI_HVAC_DAYS; the paper runs
/// January 1-31).
core::PipelineConfig bench_config(const std::string& city);

/// Prints the standard banner: bench name, paper artifact, scale knobs.
void print_banner(const std::string& bench, const std::string& artifact);

/// Runs one full January episode of `controller` in a fresh environment
/// built from `config`, returning the paper's metrics.
env::EpisodeMetrics run_full_episode(const env::EnvConfig& config,
                                     control::Controller& controller,
                                     control::EpisodeTrace* trace = nullptr);

/// Writes a CSV artifact into VERI_HVAC_OUT (default ".") and returns the
/// path; header is written first, then one line per row.
std::string write_csv(const std::string& filename, const std::string& header,
                      const std::vector<std::vector<double>>& rows);

/// Mean of a vector (empty -> 0), shared by the per-hour aggregations.
double mean_of(const std::vector<double>& xs);
/// Population standard deviation (empty -> 0).
double std_of(const std::vector<double>& xs);

}  // namespace verihvac::bench
