// Shared bench harness utilities.
//
// Every bench binary reproduces one table or figure of the paper and is
// expected to run standalone on a single CPU core in seconds at the quick
// (default) scale, or with the paper's exact hyperparameters under
// VERI_HVAC_FULL=1. This header centralizes workload scaling, artifact
// construction and output formatting so the per-bench sources read like
// the experiment protocol they implement.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timing.hpp"
#include "control/evaluate.hpp"
#include "core/pipeline.hpp"

namespace verihvac::bench {

// Timing helpers come from common/timing.hpp; re-exported here so bench
// sources keep addressing them as bench::seconds_since.
using verihvac::seconds_since;

/// Pipeline config for `city` scaled by the VERI_HVAC_* environment knobs,
/// plus bench-specific day-count override (VERI_HVAC_DAYS; the paper runs
/// January 1-31).
core::PipelineConfig bench_config(const std::string& city);

/// Prints the standard banner: bench name, paper artifact, scale knobs.
void print_banner(const std::string& bench, const std::string& artifact);

/// Runs one full January episode of `controller` in a fresh environment
/// built from `config`, returning the paper's metrics.
env::EpisodeMetrics run_full_episode(const env::EnvConfig& config,
                                     control::Controller& controller,
                                     control::EpisodeTrace* trace = nullptr);

/// Canonical location for a bench artifact: VERI_HVAC_OUT (default
/// "bench_out") joined with `filename`, parent directory created. EVERY
/// bench artifact — BENCH_*.json, CSVs, binary traces — resolves its path
/// through this one helper, so the whole output set lands in one
/// directory and CI uploads it with the single glob bench_out/BENCH_*.json.
std::string artifact_path(const std::string& filename);

/// Writes a CSV artifact to artifact_path(filename) and returns the path;
/// header is written first, then one line per row.
std::string write_csv(const std::string& filename, const std::string& header,
                      const std::vector<std::vector<double>>& rows);

/// Mean of a vector (empty -> 0), shared by the per-hour aggregations.
double mean_of(const std::vector<double>& xs);
/// Population standard deviation (empty -> 0).
double std_of(const std::vector<double>& xs);

// ---------------------------------------------------------------------------
// Trial aggregation (shared by the throughput/serving/adaptation benches).

/// Runs `timed_run` `trials` times and returns the *minimum* wall seconds:
/// scheduler noise only ever slows a trial down, so the best trial is the
/// stable throughput estimate. (Percentile aggregation of latency samples
/// is shared through serve::summarize_latencies.)
double best_of_trials(std::size_t trials, const std::function<void()>& timed_run);

// ---------------------------------------------------------------------------
// Shared toy serving assets. The serving-layer benches measure machinery
// (scheduler, telemetry, adaptation plumbing), not model quality: they need
// artifacts with the paper's shapes and deterministic seeds, built in
// milliseconds rather than via the full pipeline.

/// Single-zone synthetic plant with HVAC pull toward the setpoints.
double toy_plant(const std::vector<double>& x, const sim::SetpointPair& a);

/// Paper-shaped dynamics model ({8, 32, 32, 1}) trained on toy_plant.
std::shared_ptr<const dyn::DynamicsModel> toy_dynamics_model(std::size_t points = 2000,
                                                             std::size_t epochs = 15);

/// DT policy fitted on synthetic decision data over the default grid.
std::shared_ptr<const core::DtPolicy> toy_decision_policy(std::size_t points = 400);

// ---------------------------------------------------------------------------
// BENCH_*.json emission: a minimal append-only JSON object writer so every
// bench produces the same artifact shape without hand-rolled streams.

class JsonObject {
 public:
  JsonObject& field(const std::string& name, double value);
  JsonObject& field(const std::string& name, std::size_t value);
  JsonObject& field(const std::string& name, const std::string& value);
  JsonObject& field_bool(const std::string& name, bool value);
  /// Pre-rendered JSON (nested objects / arrays), inserted verbatim.
  JsonObject& field_raw(const std::string& name, const std::string& json);
  /// Renders a "name": [obj, obj, ...] array field.
  JsonObject& field_array(const std::string& name, const std::vector<JsonObject>& rows);

  std::string str() const;  ///< "{...}"

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Writes `object` (plus trailing newline) to artifact_path(filename) and
/// returns the path.
std::string write_bench_json(const std::string& filename, const JsonObject& object);

}  // namespace verihvac::bench
