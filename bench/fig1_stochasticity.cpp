// Fig. 1 — stochasticity of the existing MBRL method.
//
// Protocol (paper §2.2): run the RS-based MBRL agent 10 times over the
// same simulated day with *fixed disturbances* (same weather seed, same
// occupancy), and record the heating setpoint it chooses at every step.
// The paper reports (left) the per-time mean +/- one std of the heating
// setpoint over the 8:00-22:00 window, and (right) the pooled probability
// distribution of the chosen setpoints — both showing large spread
// (> 10% probability on both the lowest and the highest setpoint).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "envlib/env.hpp"

namespace {

using namespace verihvac;

constexpr int kRuns = 10;
constexpr double kWindowStart = 8.0;
constexpr double kWindowEnd = 22.0;

}  // namespace

int main() {
  bench::print_banner("fig1_stochasticity", "Fig. 1 (MBRL setpoint spread)");

  core::PipelineConfig cfg = bench::bench_config("Pittsburgh");
  const core::PipelineArtifacts artifacts = core::run_pipeline(cfg);

  // One fixed day: first weekday of the simulated January (day 0 is a
  // Friday), weather pinned by the seed so all runs see identical
  // disturbances.
  env::EnvConfig day = cfg.env;
  day.days = 1;

  // heating setpoint per step, one row per run
  std::vector<std::vector<double>> setpoints(kRuns);
  for (int run = 0; run < kRuns; ++run) {
    auto agent = std::make_unique<control::MbrlAgent>(
        *artifacts.model, cfg.rs, control::ActionSpace(cfg.action_space), cfg.env.reward,
        /*seed=*/1000 + static_cast<std::uint64_t>(run) * 7919);
    control::EpisodeTrace trace;
    bench::run_full_episode(day, *agent, &trace);
    setpoints[run].reserve(trace.actions.size());
    for (const auto& a : trace.actions) setpoints[run].push_back(a.heating_c);
  }

  const std::size_t steps = setpoints.front().size();
  AsciiTable table("Fig. 1 (left): heating setpoint mean +/- std over " +
                   std::to_string(kRuns) + " runs, fixed disturbances");
  table.set_header({"hour", "mean [degC]", "std [degC]", "min", "max"});
  std::vector<std::vector<double>> csv_rows;
  double max_std = 0.0;
  double mean_std = 0.0;
  std::size_t window_steps = 0;
  for (std::size_t s = 0; s < steps; ++s) {
    const double hour = static_cast<double>(s) / 4.0;
    if (hour < kWindowStart || hour > kWindowEnd) continue;
    std::vector<double> at_step;
    at_step.reserve(kRuns);
    for (const auto& run : setpoints) at_step.push_back(run[s]);
    const double m = bench::mean_of(at_step);
    const double sd = bench::std_of(at_step);
    max_std = std::max(max_std, sd);
    mean_std += sd;
    ++window_steps;
    csv_rows.push_back({hour, m, sd});
    if (s % 4 == 0) {  // hourly rows in the printed table, full grid in CSV
      double lo = at_step.front();
      double hi = at_step.front();
      for (double v : at_step) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      table.add_row(format_double(hour, 2), {m, sd, lo, hi}, 2);
    }
  }
  mean_std /= static_cast<double>(window_steps);
  table.print();

  // Right subfigure: pooled setpoint distribution over the window.
  std::map<int, std::size_t> counts;
  std::size_t total = 0;
  for (const auto& run : setpoints) {
    for (std::size_t s = 0; s < steps; ++s) {
      const double hour = static_cast<double>(s) / 4.0;
      if (hour < kWindowStart || hour > kWindowEnd) continue;
      ++counts[static_cast<int>(run[s])];
      ++total;
    }
  }
  AsciiTable hist("Fig. 1 (right): pooled heating-setpoint distribution");
  hist.set_header({"heating setpoint [degC]", "probability"});
  double p_lowest = 0.0;
  double p_highest = 0.0;
  for (const auto& [sp, n] : counts) {
    const double p = static_cast<double>(n) / static_cast<double>(total);
    hist.add_row(std::to_string(sp), {p}, 3);
    if (sp == counts.begin()->first) p_lowest = p;
    if (sp == counts.rbegin()->first) p_highest = p;
  }
  hist.print();

  std::printf("paper shape: mean setpoint fluctuates across [15, 22] degC with a wide\n"
              "+/- 1 std band; no single setpoint dominates the distribution.\n");
  std::printf("measured: mean per-step std = %.2f degC, max = %.2f degC; "
              "P(lowest) = %.2f, P(highest) = %.2f\n",
              mean_std, max_std, p_lowest, p_highest);
  const std::string path =
      bench::write_csv("fig1_stochasticity.csv", "hour,mean_heating_sp,std_heating_sp",
                       csv_rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
