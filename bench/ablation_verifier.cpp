// Ablation — one-step vs H-step probabilistic verification (§3.3.2).
//
// The paper proves that estimating criterion #1 by checking only the
// immediate successor of each sampled state equals the H-step bootstrap
// estimate of the forward reachability tube, at a fraction of the model
// queries. This bench measures both estimators on the same verified
// policy: the safe-probability estimates should agree within Monte-Carlo
// noise while the one-step verifier issues ~1/H the predictions and runs
// correspondingly faster.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "core/verification.hpp"

int main() {
  using namespace verihvac;
  bench::print_banner("ablation_verifier", "DESIGN.md §5.3 (one-step vs H-step)");

  core::PipelineConfig cfg = bench::bench_config("Pittsburgh");
  const core::PipelineArtifacts artifacts = core::run_pipeline(cfg);
  core::DecisionDataGenerator sampler_source(artifacts.historical, cfg.decision);
  const core::AugmentedSampler& sampler = sampler_source.sampler();

  AsciiTable table("Probabilistic verifier ablation (same policy, same sample budget)");
  table.set_header({"estimator", "safe probability", "samples", "wall time [ms]",
                    "time ratio"});
  std::vector<std::vector<double>> csv_rows;

  const std::size_t n = cfg.probabilistic_samples;
  Rng rng_one(cfg.verification_seed);
  const auto t0 = std::chrono::steady_clock::now();
  const auto one = core::verify_probabilistic_one_step(
      *artifacts.policy, *artifacts.model, sampler, cfg.criteria, n, rng_one);
  const auto t1 = std::chrono::steady_clock::now();
  Rng rng_h(cfg.verification_seed);
  const auto h = core::verify_probabilistic_h_step(
      *artifacts.policy, *artifacts.model, sampler, cfg.criteria, n, rng_h);
  const auto t2 = std::chrono::steady_clock::now();

  const double ms_one = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double ms_h = std::chrono::duration<double, std::milli>(t2 - t1).count();
  table.add_row("one-step (ours)",
                {one.safe_probability, static_cast<double>(one.samples), ms_one, 1.0}, 3);
  table.add_row("H-step bootstrap (H=" + std::to_string(cfg.criteria.horizon) + ")",
                {h.safe_probability, static_cast<double>(h.samples), ms_h,
                 ms_h / std::max(1e-9, ms_one)},
                3);
  table.print();

  const double gap = std::abs(one.safe_probability - h.safe_probability);
  std::printf("estimate gap |one-step - H-step| = %.4f (Monte-Carlo noise at %zu\n"
              "samples is ~%.4f); wall-time advantage of the one-step verifier: "
              "%.1fx\n",
              gap, n, 2.0 / std::sqrt(static_cast<double>(n)),
              ms_h / std::max(1e-9, ms_one));
  std::printf("shape to check: the two estimates agree within sampling noise and the\n"
              "one-step estimator is ~H times cheaper, as proven in §3.3.2.\n");
  csv_rows.push_back({0, one.safe_probability, static_cast<double>(one.samples), ms_one});
  csv_rows.push_back({1, h.safe_probability, static_cast<double>(h.samples), ms_h});
  const std::string path = bench::write_csv(
      "ablation_verifier.csv", "estimator,safe_probability,samples,wall_ms", csv_rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
