// Bench — durable telemetry store correctness + overhead (ISSUE 10
// acceptance).
//
// The store's promise: what lands on disk IS the decision stream — not a
// lossy approximation of it — and making it durable costs the serve path
// (almost) nothing. Four sections gate that promise:
//
//   1. Durability equivalence. A mixed (DT + MBRL) serving run is captured
//      through ONE TelemetryLog tap consumed via TelemetryStore::fetch()
//      (the adapt-loop seam), with tiny segments so the run crosses several
//      rotation boundaries. The directory must reload record-for-record
//      byte-identical to the fetched in-memory stream, every sealed
//      segment must replay-certify (`verify_segment` with assets), and the
//      reloaded trace must replay bit-identically at engine pools 1/4/8.
//
//   2. Compaction. Merging every sealed segment into one must preserve the
//      stream byte-for-byte and keep it replay-bit-identical at pools
//      1/4/8; compacting after an eviction sweep must drop exactly the
//      evicted session's records and nothing else.
//
//   3. Crash recovery. A tail segment truncated mid-frame is trimmed to
//      the last whole record and counted — the surviving prefix is
//      byte-identical to the captured stream. A flipped payload byte and a
//      corrupted header are both detected (read refuses, verify fails) —
//      a damaged segment is never silently replayed.
//
//   4. Overhead. The same serve loop with the in-memory tap alone vs tap +
//      background-writer store, interleaved best-of trials: durable
//      logging must cost < 5% serve-path throughput.
//
// Emits BENCH_telemetry.json. --smoke shrinks workloads and skips the
// noise-sensitive overhead gate; the exact gates (equivalence, compaction,
// recovery) hold at any scale.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "adapt/telemetry.hpp"
#include "adapt/telemetry_store.hpp"
#include "bench_common.hpp"
#include "control/rollout_engine.hpp"
#include "obs/instruments.hpp"
#include "serve/request_scheduler.hpp"

namespace {

using namespace verihvac;
namespace fs = std::filesystem;
using bench::seconds_since;

env::Observation observation_for(std::size_t i) {
  env::Observation obs;
  obs.zone_temp_c = 14.0 + static_cast<double>(i % 17);
  obs.weather.outdoor_temp_c = -8.0 + static_cast<double>(i % 23);
  obs.weather.humidity_pct = 50.0;
  obs.weather.wind_mps = 3.0;
  obs.weather.solar_wm2 = static_cast<double>((i * 37) % 400);
  obs.occupants = (i % 3 == 0) ? 11.0 : 0.0;
  return obs;
}

std::shared_ptr<const common::TaskPool> pool_with_threads(std::size_t threads) {
  return std::make_shared<const common::TaskPool>(
      common::TaskPoolConfig{threads, /*min_parallel_batch=*/1});
}

/// Fresh serving stack over the shared toy assets, always tapped.
struct Stack {
  std::shared_ptr<adapt::TelemetryLog> log;
  std::shared_ptr<serve::PolicyRegistry> registry = std::make_shared<serve::PolicyRegistry>();
  std::shared_ptr<serve::SessionManager> sessions = std::make_shared<serve::SessionManager>();
  std::unique_ptr<serve::RequestScheduler> scheduler;
  std::uint64_t policy_version = 0;
  std::uint64_t model_generation = 0;
  std::vector<serve::SessionId> ids;

  Stack(const std::shared_ptr<const core::DtPolicy>& policy,
        const std::shared_ptr<const dyn::DynamicsModel>& model,
        const control::RandomShootingConfig& rs, std::size_t n_sessions)
      : log(std::make_shared<adapt::TelemetryLog>()) {
    policy_version = registry->install("toy", policy);
    scheduler = std::make_unique<serve::RequestScheduler>(
        serve::SchedulerConfig{}, registry, sessions, rs, control::ActionSpace{},
        env::RewardConfig{}, pool_with_threads(2));
    model_generation = scheduler->install_model("toy", model);
    scheduler->set_tap(log);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      serve::SessionConfig session;
      session.policy_key = "toy";
      session.seed = 5000 + 13 * s;
      ids.push_back(sessions->open(session));
      log->register_session(ids.back(), session.seed, session.policy_key);
    }
  }

  serve::ControlRequest request(std::size_t i, std::size_t horizon) const {
    serve::ControlRequest request;
    request.session = ids[i % ids.size()];
    request.kind =
        i % 4 == 0 ? serve::RequestKind::kMbrlFallback : serve::RequestKind::kDtPolicy;
    request.observation = observation_for(i);
    if (request.kind == serve::RequestKind::kMbrlFallback) {
      env::Disturbance d;
      d.weather = request.observation.weather;
      d.occupants = request.observation.occupants;
      request.forecast = std::vector<env::Disturbance>(horizon, d);
    }
    return request;
  }
};

/// A record's exact wire bytes (the trace/segment serialization) — the
/// identity the byte-for-byte gates compare, with no struct-padding noise.
std::string record_bytes(const adapt::TelemetryRecord& record) {
  std::ostringstream out;
  adapt::detail::write_record(out, record);
  return out.str();
}

bool records_identical(const std::vector<adapt::TelemetryRecord>& a,
                       const std::vector<adapt::TelemetryRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (record_bytes(a[i]) != record_bytes(b[i])) return false;
  }
  return true;
}

/// Replays `trace` at engine pools 1/4/8; true only if every pool
/// reproduces every recorded action.
bool replays_bit_identical(const adapt::TelemetryTrace& trace, const adapt::ReplayAssets& assets,
                           const control::RandomShootingConfig& rs, const char* label) {
  bool all = true;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    adapt::ReplayConfig config;
    config.rs = rs;
    config.engine = std::make_shared<const control::RolloutEngine>(
        control::RolloutEngineConfig{threads, /*min_parallel_batch=*/1});
    const adapt::ReplayReport report = adapt::replay_trace(trace, assets, config);
    const bool ok = report.replayed == trace.records.size() && report.bit_identical();
    std::printf("  %s pool %zu: %zu/%zu replayed, %zu matched%s\n", label, threads,
                report.replayed, trace.records.size(), report.matched, ok ? "" : "  <-- DIVERGED");
    all = all && ok;
  }
  return all;
}

/// Flips one byte in place at `offset`.
void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("verihvac_bench_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf("== telemetry_store — byte-identical durability, verified replay, <5%% "
              "serve overhead ==\n%s\n\n",
              smoke ? "(smoke scale)" : "(bench scale)");

  obs::register_catalog();
  const auto toy_policy = bench::toy_decision_policy();
  const auto toy_model = bench::toy_dynamics_model();
  control::RandomShootingConfig toy_rs;
  toy_rs.samples = smoke ? 16 : 32;
  toy_rs.horizon = smoke ? 3 : 5;

  bench::JsonObject artifact;
  artifact.field("bench", std::string("telemetry_store")).field_bool("smoke", smoke);
  bool failed = false;

  // The in-memory stream section 1 captures; sections 2 and 3 compare
  // against (slices of) it.
  adapt::TelemetryTrace memory;
  adapt::ReplayAssets assets;
  serve::SessionId evict_target = 0;
  const fs::path capture_dir = fresh_dir("telemetry_capture");

  // ---- Section 1: durability equivalence across rotation boundaries.
  {
    const std::size_t decisions = smoke ? 240 : 960;
    Stack stack(toy_policy, toy_model, toy_rs, /*n_sessions=*/3);
    assets.policies[stack.policy_version] = toy_policy;
    assets.models[stack.model_generation] = toy_model;
    evict_target = stack.ids[0];

    adapt::TelemetryStoreConfig config;
    config.directory = capture_dir.string();
    config.segment_max_bytes = 4096;  // ~10 records/segment: many rotations
    config.start_writer = false;
    adapt::TelemetryStore store(stack.log, config);

    std::vector<adapt::TelemetryRecord> fetched;
    std::uint64_t lost = 0;
    for (std::size_t i = 0; i < decisions; ++i) {
      stack.scheduler->serve(stack.request(i, toy_rs.horizon));
      if (i % 32 == 31) lost += store.fetch(fetched);
    }
    lost += store.fetch(fetched);
    store.stop();  // seals the tail

    memory.sessions = stack.log->sessions();
    memory.records = std::move(fetched);

    const adapt::TelemetryTrace disk = adapt::load_directory(capture_dir.string());
    const auto stats = store.stats();
    const bool bytes_equal = lost == 0 && records_identical(memory.records, disk.records) &&
                             disk.sessions.size() == memory.sessions.size();
    std::printf("capture: %zu decisions -> %llu persisted across %llu rotation(s), "
                "%llu capture-lost; disk vs memory: %s\n",
                decisions, static_cast<unsigned long long>(stats.records_persisted),
                static_cast<unsigned long long>(stats.rotations),
                static_cast<unsigned long long>(lost),
                bytes_equal ? "byte-identical" : "DIVERGED");

    bool verified = true;
    adapt::ReplayConfig verify_config;
    verify_config.rs = toy_rs;
    for (const adapt::SegmentInfo& seg : adapt::list_segments(capture_dir.string())) {
      const adapt::SegmentVerifyReport report =
          adapt::verify_segment(seg.path, &assets, &verify_config);
      verified = verified && report.ok() && report.replay_ok;
    }
    std::printf("verify: every sealed segment replay-certified: %s\n",
                verified ? "yes" : "NO");
    const bool replay_ok = replays_bit_identical(disk, assets, toy_rs, "disk replay");

    artifact.field("capture_decisions", decisions)
        .field("capture_rotations", static_cast<std::size_t>(stats.rotations))
        .field_bool("disk_equals_memory", bytes_equal)
        .field_bool("segments_replay_certified", verified)
        .field_bool("replay_bit_identical_pools_1_4_8", replay_ok);
    if (!bytes_equal || !verified || !replay_ok || stats.rotations < 2) {
      std::printf("FAIL: durable stream is not the decision stream\n");
      failed = true;
    }
  }

  // ---- Section 2: compaction preserves the stream; eviction drops
  // exactly the evicted session.
  {
    const fs::path merge_dir = fresh_dir("telemetry_compact");
    const fs::path evict_dir = fresh_dir("telemetry_evict");
    const auto copy_all = fs::copy_options::overwrite_existing | fs::copy_options::recursive;
    fs::copy(capture_dir, merge_dir, copy_all);
    fs::copy(capture_dir, evict_dir, copy_all);

    const std::size_t before = adapt::list_segments(merge_dir.string()).size();
    adapt::TelemetryStoreConfig config;
    config.directory = merge_dir.string();
    config.start_writer = false;
    bool merged = false;
    {
      adapt::TelemetryStore store(std::make_shared<adapt::TelemetryLog>(), config);
      merged = store.compact_now();
    }
    const std::size_t after = adapt::list_segments(merge_dir.string()).size();
    const adapt::TelemetryTrace compacted = adapt::load_directory(merge_dir.string());
    const bool preserved = merged && records_identical(memory.records, compacted.records);
    std::printf("compaction: %zu -> %zu segment(s); stream %s\n", before, after,
                preserved ? "byte-identical" : "DIVERGED");
    const bool replay_ok = replays_bit_identical(compacted, assets, toy_rs, "compacted replay");

    std::vector<adapt::TelemetryRecord> expected;
    for (const adapt::TelemetryRecord& r : memory.records) {
      if (r.session != evict_target) expected.push_back(r);
    }
    config.directory = evict_dir.string();
    std::uint64_t dropped = 0;
    {
      adapt::TelemetryStore store(std::make_shared<adapt::TelemetryLog>(), config);
      store.note_sessions_evicted({evict_target});
      store.compact_now();
      dropped = store.stats().records_dropped_evicted;
    }
    const adapt::TelemetryTrace surviving = adapt::load_directory(evict_dir.string());
    const bool evicted_only = records_identical(expected, surviving.records) &&
                              dropped == memory.records.size() - expected.size();
    std::printf("eviction compaction: dropped %llu record(s) of session %llu, kept %zu: %s\n",
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(evict_target), surviving.records.size(),
                evicted_only ? "exactly the evicted session" : "WRONG RECORDS");

    artifact.field("compact_segments_before", before)
        .field("compact_segments_after", after)
        .field_bool("compaction_preserves_stream", preserved)
        .field_bool("compacted_replay_bit_identical", replay_ok)
        .field_bool("eviction_drops_exactly_evicted", evicted_only);
    if (!preserved || !replay_ok || !evicted_only) {
      std::printf("FAIL: compaction altered the stream\n");
      failed = true;
    }
  }

  // ---- Section 3: crash recovery — torn tails trimmed and counted,
  // corruption detected, never silently replayed.
  {
    const fs::path dir = fresh_dir("telemetry_crash");
    const std::size_t decisions = smoke ? 48 : 96;
    Stack stack(toy_policy, toy_model, toy_rs, /*n_sessions=*/3);

    adapt::TelemetryStoreConfig config;
    config.directory = dir.string();
    config.start_writer = false;
    config.seal_on_close = false;  // leave the .open tail a crash would
    std::vector<adapt::TelemetryRecord> captured;
    {
      adapt::TelemetryStore store(stack.log, config);
      for (std::size_t i = 0; i < decisions; ++i) {
        stack.scheduler->serve(stack.request(i, toy_rs.horizon));
      }
      store.fetch(captured);
      store.stop();
    }

    fs::path open_tail;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().string().ends_with(".open")) open_tail = entry.path();
    }
    const std::uint64_t full_size = fs::file_size(open_tail);
    fs::resize_file(open_tail, full_size - 7);  // tear the last frame

    std::uint64_t truncations = 0;
    std::uint64_t torn = 0;
    {
      adapt::TelemetryStore store(std::make_shared<adapt::TelemetryLog>(), config);
      truncations = store.stats().truncations;
      torn = store.stats().records_dropped_torn;
    }
    const adapt::TelemetryTrace recovered = adapt::load_directory(dir.string());
    const std::vector<adapt::TelemetryRecord> expected(captured.begin(),
                                                       captured.end() - static_cast<long>(torn));
    const bool trimmed = truncations == 1 && torn >= 1 &&
                         recovered.records.size() == captured.size() - torn &&
                         records_identical(expected, recovered.records);
    std::printf("torn tail: %llu byte(s) cut mid-frame -> %llu truncation(s), %llu record(s) "
                "dropped, %zu recovered: %s\n",
                7ull, static_cast<unsigned long long>(truncations),
                static_cast<unsigned long long>(torn), recovered.records.size(),
                trimmed ? "byte-identical prefix" : "WRONG");

    // Flip one payload byte in a sealed segment: read refuses, verify fails.
    const auto segments = adapt::list_segments(dir.string());
    const std::string victim = segments.front().path;
    flip_byte(victim, adapt::kSegmentHeaderBytes + 60);  // 60 lands in a frame
    bool read_refused = false;
    try {
      adapt::TelemetryTrace trace;
      adapt::read_segment(victim, trace);
    } catch (const std::exception&) {
      read_refused = true;
    }
    const adapt::SegmentVerifyReport flipped = adapt::verify_segment(victim);
    std::printf("flipped payload byte: read_segment %s, verify structure_ok=%d (%s)\n",
                read_refused ? "refused" : "ACCEPTED", flipped.structure_ok ? 1 : 0,
                flipped.error.c_str());

    // Corrupt the header of another segment: even the header parse refuses.
    const std::string victim2 = segments.back().path;
    flip_byte(victim2, 8);
    bool header_refused = false;
    try {
      adapt::read_segment_header(victim2);
    } catch (const std::exception&) {
      header_refused = true;
    }
    std::printf("corrupted header: read_segment_header %s\n",
                header_refused ? "refused" : "ACCEPTED");

    const bool detected = trimmed && read_refused && !flipped.structure_ok && header_refused;
    artifact.field_bool("torn_tail_trimmed_and_counted", trimmed)
        .field_bool("payload_corruption_detected", read_refused && !flipped.structure_ok)
        .field_bool("header_corruption_detected", header_refused);
    if (!detected) {
      std::printf("FAIL: corruption was not (fully) detected\n");
      failed = true;
    }
  }

  // ---- Section 4: serve-path overhead of durable logging.
  // Identical serve loops with an identical drain cadence (every 256
  // decisions, the adaptation pump's consumption pattern), pumped inline
  // so the delta is exactly the durability work — serialize + CRC +
  // buffered write — and not thread-scheduling noise: mode 0 drains the
  // tap in memory and discards, mode 1 drains through the store.
  // Interleaved trials, best-of per mode (noise only ever slows a trial
  // down).
  {
    const std::size_t decisions = smoke ? 4000 : 40000;
    const std::size_t trials = smoke ? 3 : 9;
    const std::size_t cadence = 256;
    const fs::path dir = fresh_dir("telemetry_overhead");

    std::vector<std::unique_ptr<Stack>> stacks;
    stacks.push_back(std::make_unique<Stack>(toy_policy, toy_model, toy_rs, /*n_sessions=*/16));
    stacks.push_back(std::make_unique<Stack>(toy_policy, toy_model, toy_rs, /*n_sessions=*/16));
    adapt::TelemetryStoreConfig config;
    config.directory = dir.string();
    config.start_writer = false;  // the serve loop is the pump
    adapt::TelemetryStore store(stacks[1]->log, config);

    std::vector<adapt::TelemetryRecord> buffer;
    std::vector<double> best_secs(2, 0.0);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      for (int mode = 0; mode < 2; ++mode) {
        Stack& stack = *stacks[mode];
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < decisions; ++i) {
          stack.scheduler->serve(stack.request(i, toy_rs.horizon));
          if (i % cadence == cadence - 1) {
            if (mode == 0) {
              buffer.clear();
              stack.log->drain(buffer);
            } else {
              store.pump_once();
            }
          }
        }
        const double secs = seconds_since(t0);
        if (trial == 0 || secs < best_secs[mode]) best_secs[mode] = secs;
      }
#ifdef __unix__
      // Push this trial's dirty pages to disk OUTSIDE the timed windows, so
      // kernel writeback of mode 1's segments does not bleed into later
      // trials (best-of can only reject noise that is not systematic).
      ::sync();
#endif
    }
    store.stop();
    const double rate_tap = static_cast<double>(decisions) / best_secs[0];
    const double rate_store = static_cast<double>(decisions) / best_secs[1];
    const double overhead = rate_store > 0.0 ? rate_tap / rate_store - 1.0 : 1.0;
    const auto stats = store.stats();
    std::printf("overhead: %.0f/s in-memory tap | %.0f/s + durable store (%.2f%%), "
                "%llu record(s), %llu byte(s) persisted off-thread\n",
                rate_tap, rate_store, 100.0 * overhead,
                static_cast<unsigned long long>(stats.records_persisted),
                static_cast<unsigned long long>(stats.bytes_written));
    artifact.field("serve_per_sec_tap", rate_tap)
        .field("serve_per_sec_durable", rate_store)
        .field("durable_overhead_fraction", overhead)
        .field("overhead_records_persisted", static_cast<std::size_t>(stats.records_persisted));
    if (!smoke && overhead >= 0.05) {
      std::printf("FAIL: durable logging overhead %.2f%% exceeds the 5%% bar\n",
                  100.0 * overhead);
      failed = true;
    }
    fs::remove_all(dir);
  }

  const std::string path = bench::write_bench_json("BENCH_telemetry.json", artifact);
  std::printf("\nwrote %s\n", path.c_str());
  return failed ? 1 : 0;
}
