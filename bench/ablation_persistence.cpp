// Ablation — persistent (constant) candidate sequences in Random Shooting.
//
// Argmax over the summed return of fully random candidate sequences exerts
// almost no selection pressure on the first action — the one actually
// executed. That weakness is visible twice in the paper: as the Fig. 1
// stochasticity of the MBRL agent, and (in our reproduction) as noisy
// decision labels wherever the reward depends only on the action (the
// unoccupied, energy-only regime). Mixing a fraction of *constant*
// candidate sequences restores first-action pressure in exactly those
// regimes. This ablation sweeps the fraction and reports (a) the quality
// of the decision labels at night (how often the label is a deep-setback
// action) and (b) the deployed DT's building-control performance.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "core/decision_data.hpp"

int main() {
  using namespace verihvac;
  bench::print_banner("ablation_persistence", "DESIGN.md §5 (RS persistent candidates)");

  core::PipelineConfig cfg = bench::bench_config("Pittsburgh");
  const core::PipelineArtifacts base = core::run_pipeline(cfg);

  AsciiTable table("RS persistent-candidate ablation (Pittsburgh, January)");
  table.set_header({"persistent fraction", "night labels <= 17 degC [%]",
                    "energy [kWh]", "violation rate", "efficiency score"});
  std::vector<std::vector<double>> csv_rows;
  for (double fraction : {0.0, 0.1, 0.25, 0.5}) {
    core::PipelineConfig variant = cfg;
    variant.rs.persistent_fraction = fraction;

    auto agent = std::make_unique<control::MbrlAgent>(
        *base.model, variant.rs, control::ActionSpace(variant.action_space),
        variant.env.reward, variant.agent_seed);
    core::DecisionDataGenerator generator(base.historical, variant.decision);
    const core::DecisionDataset decisions =
        generator.generate(*agent, variant.decision_points);

    // Label quality: among unoccupied (night/weekend) decision inputs, how
    // often is the label a deep setback (heating setpoint <= 17 degC)?
    const control::ActionSpace actions(variant.action_space);
    std::size_t night = 0;
    std::size_t night_setback = 0;
    for (const auto& record : decisions.records) {
      if (record.input[env::kOccupancy] > 0.5) continue;
      ++night;
      if (actions.action(record.action_index).heating_c <= 17.0) ++night_setback;
    }
    const double setback_pct =
        night ? 100.0 * static_cast<double>(night_setback) / static_cast<double>(night)
              : 0.0;

    core::DtPolicy policy =
        core::DtPolicy::fit(decisions, control::ActionSpace(variant.action_space));
    core::verify_formal(policy, variant.criteria, /*correct=*/true);
    const auto metrics = bench::run_full_episode(cfg.env, policy);

    table.add_row(format_double(fraction, 2),
                  {setback_pct, metrics.total_energy_kwh(), metrics.violation_rate(),
                   metrics.energy_efficiency_score()},
                  3);
    csv_rows.push_back({fraction, setback_pct, metrics.total_energy_kwh(),
                        metrics.violation_rate(), metrics.energy_efficiency_score()});
  }
  table.print();

  std::printf("shape to check: the deep-setback share of unoccupied labels rises\n"
              "steeply with the persistent fraction (near-random at 0.0) and the\n"
              "deployed DT's energy drops accordingly; violations stay flat because\n"
              "occupied-hours behaviour is comfort-dominated either way.\n");
  const std::string path = bench::write_csv(
      "ablation_persistence.csv",
      "persistent_fraction,night_setback_pct,energy_kwh,violation_rate,efficiency_score",
      csv_rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
