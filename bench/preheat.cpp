// Morning pre-heat recovery — the time-aware schema's first client.
//
// Protocol: undersize the January plant (hvac_capacity_scale < 1) so the
// zone cannot recover from the overnight setback within one step of the
// 8:00 arrival. A memoryless baseline-schema policy sees identical
// observations at 3:00 and 7:00 (same weather, zero occupants) and so
// cannot pre-heat; the time-aware schema adds hour-of-day (sin/cos) and a
// one-hour occupancy forecast, letting the distilled tree split on
// "occupants arriving soon" and start heating before the ramp. Both
// policies come from the same pipeline recipe on the same seeds — the
// schema is the only difference.
//
// Gates (exit 1 on failure, so CI catches a regression):
//   * the time-aware policy logs strictly fewer morning-ramp violations
//     (occupied violations within the first two hours after each arrival);
//   * a certification campaign over the widened 9-dim boxes completes and
//     produces a report row per cell.
// Emits BENCH_preheat.json next to the other bench artifacts.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "core/viper.hpp"
#include "envlib/feature_schema.hpp"

namespace {

using namespace verihvac;

/// Occupied comfort violations inside the first two hours (8 steps) after each
/// unoccupied -> occupied transition, plus the totals around it.
struct RampCount {
  std::size_t arrivals = 0;
  std::size_t morning_violations = 0;
  std::size_t occupied_violations = 0;
  double energy_kwh = 0.0;
};

RampCount count_morning_ramp(const env::EnvConfig& config, core::DtPolicy policy) {
  constexpr std::size_t kRampSteps = 8;  // two hours at 15-minute steps
  env::BuildingEnv building(config);
  env::Observation obs = building.reset();
  RampCount count;
  bool prev_occupied = false;
  std::size_t ramp_remaining = 0;
  while (true) {
    const env::StepOutcome outcome = building.step(policy.act(obs, {}));
    count.energy_kwh += outcome.energy_kwh;
    if (outcome.occupied && !prev_occupied) {
      ++count.arrivals;
      ramp_remaining = kRampSteps;
    }
    if (outcome.occupied && outcome.comfort_violation) {
      ++count.occupied_violations;
      if (ramp_remaining > 0) ++count.morning_violations;
    }
    if (ramp_remaining > 0) --ramp_remaining;
    prev_occupied = outcome.occupied;
    if (outcome.done) break;
    obs = outcome.observation;
  }
  return count;
}

RampCount extract_and_count(const std::string& city, const env::FeatureSchema& schema,
                            double hvac_scale) {
  core::PipelineConfig cfg = bench::bench_config(city);
  cfg.set_schema(schema);
  cfg.env.hvac_capacity_scale = hvac_scale;
  const core::PipelineArtifacts artifacts = core::run_pipeline(cfg);
  // On-policy (VIPER) distillation: the DAgger rollouts walk through the
  // 7:00 pre-arrival window every simulated weekday, so the teacher's
  // pre-heat decisions land in the aggregated dataset at trajectory
  // frequency — random state sampling visits that sliver of the input
  // space far too rarely for the tree to carve it out.
  auto teacher = artifacts.make_mbrl_agent();
  env::BuildingEnv viper_env(cfg.env);
  core::ViperConfig viper;
  viper.iterations = 3;
  viper.steps_per_iteration = 5 * 96;  // one work week per iteration
  viper.mc_repeats = 1;
  viper.seed = 23;
  const core::ViperResult distilled = core::viper_extract(*teacher, viper_env, viper);
  if (distilled.policy == nullptr) {
    std::fprintf(stderr, "preheat: VIPER produced no policy\n");
    std::exit(1);
  }
  return count_morning_ramp(cfg.env, *distilled.policy);
}

}  // namespace

int main() {
  bench::print_banner("preheat", "time-aware schema: morning pre-heat recovery");

  const std::string city = "Pittsburgh";
  // Undersized enough that cold-start recovery takes over an hour, so
  // pre-heating beats the reactive policy on comfort for a small energy
  // premium (at the January-sized plant the reactive recovery is 2 steps
  // and pre-heating never pays off — the contrast would vanish).
  const double hvac_scale = 0.45;

  std::printf("extracting baseline-schema policy (%s, hvac x%.2f)...\n", city.c_str(),
              hvac_scale);
  const RampCount baseline = extract_and_count(city, env::baseline_schema(), hvac_scale);
  std::printf("extracting time-aware-schema policy (same seeds)...\n");
  const RampCount time_aware = extract_and_count(city, env::time_aware_schema(), hvac_scale);

  AsciiTable table("morning-ramp comfort (first 2h after each weekday arrival)");
  table.set_header({"schema", "arrivals", "ramp violations", "occupied violations",
                    "energy [kWh]"});
  table.add_row("baseline",
                {static_cast<double>(baseline.arrivals),
                 static_cast<double>(baseline.morning_violations),
                 static_cast<double>(baseline.occupied_violations), baseline.energy_kwh},
                1);
  table.add_row("time-aware",
                {static_cast<double>(time_aware.arrivals),
                 static_cast<double>(time_aware.morning_violations),
                 static_cast<double>(time_aware.occupied_violations), time_aware.energy_kwh},
                1);
  table.print();

  const bool ramp_gate = time_aware.morning_violations < baseline.morning_violations;
  std::printf("gate: time-aware ramp violations %zu %s baseline %zu\n",
              time_aware.morning_violations, ramp_gate ? "<" : "NOT <",
              baseline.morning_violations);

  // Certification over the widened boxes: the full campaign machinery on
  // the 9-dim schema, shrunk to one cell. Completing at all exercises the
  // interval slicer / reachability over the temporal dimensions.
  std::printf("running time-aware certification campaign (1 cell)...\n");
  core::CampaignConfig campaign;
  campaign.schema = env::time_aware_schema();
  campaign.climates = {city};
  campaign.buildings = {{"undersized", hvac_scale}};
  campaign.probabilistic_samples = 200;
  campaign.reach_states = 8;
  campaign.decision_points = 200;
  campaign.seed = 404;
  const core::VerificationEngine engine;
  const core::CampaignResult result =
      core::run_campaign(campaign, engine, core::pipeline_asset_provider(campaign));
  std::printf("%s", result.to_table().c_str());
  const bool campaign_gate = !result.rows.empty();

  bench::JsonObject json;
  json.field("hvac_capacity_scale", hvac_scale)
      .field("city", city)
      .field("arrivals", baseline.arrivals)
      .field("baseline_morning_violations", baseline.morning_violations)
      .field("time_aware_morning_violations", time_aware.morning_violations)
      .field("baseline_occupied_violations", baseline.occupied_violations)
      .field("time_aware_occupied_violations", time_aware.occupied_violations)
      .field("baseline_energy_kwh", baseline.energy_kwh)
      .field("time_aware_energy_kwh", time_aware.energy_kwh)
      .field("campaign_cells", result.rows.size())
      .field_bool("ramp_gate", ramp_gate)
      .field_bool("campaign_gate", campaign_gate);
  const std::string path = bench::write_bench_json("BENCH_preheat.json", json);
  std::printf("bench artifact written to %s\n", path.c_str());

  if (!ramp_gate || !campaign_gate) {
    std::fprintf(stderr, "preheat: gate failed (ramp=%d, campaign=%d)\n", ramp_gate,
                 campaign_gate);
    return 1;
  }
  return 0;
}
