// Ablation — one-shot extraction (§3.2, the paper) vs VIPER (Bastani [5]).
//
// The paper distills the RS teacher in one shot: importance-sample inputs
// from the historical distribution (Eq. 5), label each with the teacher's
// modal action, fit CART once. Its cited foundation VIPER instead iterates
// DAgger-style, labelling the states the *student* visits and resampling
// by action-value criticality. This bench gives both the same teacher,
// the same label budget and the same building, then compares:
//   * teacher-match rate (distillation fidelity),
//   * deployed January performance (energy, violation rate),
//   * verification outcome of the resulting trees (corrections needed).
// Shape to check: at matched budgets the two are close — Eq. 5 sampling
// already covers the deployment distribution (that is the paper's point),
// so the H environment steps VIPER spends per label buy little here.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "core/viper.hpp"

int main() {
  using namespace verihvac;
  bench::print_banner("ablation_viper", "DESIGN.md §5 (one-shot vs VIPER extraction)");

  core::PipelineConfig cfg = bench::bench_config("Pittsburgh");
  const core::PipelineArtifacts artifacts = core::run_pipeline(cfg);

  // --- VIPER with the same teacher and an equal label budget. ---
  core::ViperConfig viper_cfg;
  viper_cfg.iterations = static_cast<std::size_t>(env_or_long("VERI_HVAC_VIPER_ITERS", 4));
  viper_cfg.steps_per_iteration = cfg.decision_points / viper_cfg.iterations;
  viper_cfg.mc_repeats = cfg.decision.mc_repeats;
  viper_cfg.seed = cfg.verification_seed;

  auto teacher = artifacts.make_mbrl_agent();
  env::BuildingEnv rollout_env(cfg.env);
  const core::ViperResult viper = core::viper_extract(*teacher, rollout_env, viper_cfg);

  // --- Verify the VIPER tree with the same Algorithm 1 + criterion #1. ---
  core::DtPolicy viper_policy = *viper.policy;
  const core::FormalReport viper_formal =
      core::verify_formal(viper_policy, cfg.criteria, /*correct=*/true);
  core::DecisionDataGenerator generator(artifacts.historical, cfg.decision);
  Rng verify_rng(cfg.verification_seed);
  const core::ProbabilisticReport viper_prob = core::verify_probabilistic_one_step(
      viper_policy, *artifacts.model, generator.sampler(), cfg.criteria,
      cfg.probabilistic_samples, verify_rng);

  // --- Deploy both in the same simulated January. ---
  auto one_shot_policy = artifacts.make_dt_policy();
  const env::EpisodeMetrics one_shot_run = bench::run_full_episode(cfg.env, *one_shot_policy);
  const env::EpisodeMetrics viper_run = bench::run_full_episode(cfg.env, viper_policy);

  AsciiTable table("One-shot (paper) vs VIPER extraction, equal label budgets");
  table.set_header({"method", "labels", "tree nodes", "corrected", "safe prob",
                    "energy kWh", "violation"});
  table.add_row("one-shot Eq.5 (paper)",
                {static_cast<double>(artifacts.decisions.size()),
                 static_cast<double>(artifacts.policy->tree().node_count()),
                 static_cast<double>(artifacts.formal.corrected_crit2 +
                                     artifacts.formal.corrected_crit3),
                 artifacts.probabilistic.safe_probability, one_shot_run.total_energy_kwh(),
                 one_shot_run.violation_rate()},
                3);
  table.add_row("VIPER (iterative)",
                {static_cast<double>(viper.aggregated.size()),
                 static_cast<double>(viper_policy.tree().node_count()),
                 static_cast<double>(viper_formal.corrected_crit2 +
                                     viper_formal.corrected_crit3),
                 viper_prob.safe_probability, viper_run.total_energy_kwh(),
                 viper_run.violation_rate()},
                3);
  table.print();

  std::printf("VIPER per-iteration teacher-match rate:");
  for (const auto& it : viper.iterations) std::printf(" %.3f", it.teacher_match_rate);
  std::printf("  (best: iteration %zu)\n", viper.best_iteration);

  std::vector<std::vector<double>> rows;
  rows.push_back({0, static_cast<double>(artifacts.decisions.size()),
                  artifacts.probabilistic.safe_probability, one_shot_run.total_energy_kwh(),
                  one_shot_run.violation_rate()});
  rows.push_back({1, static_cast<double>(viper.aggregated.size()),
                  viper_prob.safe_probability, viper_run.total_energy_kwh(),
                  viper_run.violation_rate()});
  const std::string path = bench::write_csv(
      "ablation_viper.csv", "method,labels,safe_probability,energy_kwh,violation_rate", rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
