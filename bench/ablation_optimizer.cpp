// Ablation — the stochastic optimizer behind the MBRL teacher.
//
// The paper plans with Random Shooting (RS, the MB2C configuration) and
// cites MPPI via CLUE; CEM completes the shooting family. This bench runs
// all three as *online* planners on the same dynamics model and building:
//   * January performance (energy, violation rate),
//   * per-decision latency,
//   * decision stochasticity (distinct actions over repeated decisions on
//     a fixed input — the Fig. 1 phenomenon, which is optimizer-specific).
// Shape to check: all three land in the same performance region (the
// learned model, not the optimizer, is the bottleneck) while latency and
// stochasticity differ — RS is cheapest and most stochastic, the
// iterative optimizers are slower and more concentrated. This motivates
// the paper's choice: RS labels are cheap, and the modal distillation of
// §3.2.1 removes their stochasticity anyway.
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "control/cem.hpp"
#include "control/mppi.hpp"

namespace {

using namespace verihvac;

/// Adapter: drives an iterative optimizer through the Controller interface
/// (the RS planner already has MbrlAgent; these mirror it for MPPI/CEM).
template <typename Optimizer>
class PlannerAgent final : public control::Controller {
 public:
  PlannerAgent(std::string name, Optimizer optimizer, const dyn::DynamicsModel& model,
               std::uint64_t seed)
      : name_(std::move(name)), optimizer_(std::move(optimizer)), model_(&model), rng_(seed) {}

  sim::SetpointPair act(const env::Observation& obs,
                        const std::vector<env::Disturbance>& forecast) override {
    const std::size_t index = optimizer_.optimize(*model_, obs, forecast, rng_);
    return actions_.action(index);
  }
  std::size_t forecast_horizon() const override { return optimizer_.config().horizon; }
  std::string name() const override { return name_; }

  std::size_t decide_once(const env::Observation& obs,
                          const std::vector<env::Disturbance>& forecast) {
    return optimizer_.optimize(*model_, obs, forecast, rng_);
  }

 private:
  std::string name_;
  Optimizer optimizer_;
  const dyn::DynamicsModel* model_;
  control::ActionSpace actions_;
  Rng rng_;
};

struct Row {
  std::string name;
  double energy = 0.0;
  double violation = 0.0;
  double latency_ms = 0.0;
  double distinct = 0.0;
};

template <typename Agent>
Row measure(const std::string& name, Agent& agent, const env::EnvConfig& env_cfg) {
  Row row;
  row.name = name;
  const env::EpisodeMetrics metrics = bench::run_full_episode(env_cfg, agent);
  row.energy = metrics.total_energy_kwh();
  row.violation = metrics.violation_rate();

  // Fixed-input stochasticity + latency.
  env::BuildingEnv probe(env_cfg);
  const env::Observation obs = probe.reset();
  const auto forecast = probe.forecast(agent.forecast_horizon());
  std::set<std::size_t> seen;
  const int repeats = 20;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) seen.insert(agent.decide_once(obs, forecast));
  const auto t1 = std::chrono::steady_clock::now();
  row.latency_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count() / repeats;
  row.distinct = static_cast<double>(seen.size());
  return row;
}

}  // namespace

int main() {
  bench::print_banner("ablation_optimizer", "DESIGN.md §5 (RS vs MPPI vs CEM planner)");

  core::PipelineConfig cfg = bench::bench_config("Pittsburgh");
  cfg.train_ensemble = false;
  const core::PipelineArtifacts artifacts = core::run_pipeline(cfg);

  // Lives as long as every PlannerAgent below: Mppi/Cem keep a pointer.
  const control::ActionSpace action_space;

  std::vector<Row> rows;
  {
    auto rs_agent = artifacts.make_mbrl_agent();
    rows.push_back(measure("RS (paper)", *rs_agent, cfg.env));
  }
  {
    control::MppiConfig mppi_cfg;
    mppi_cfg.horizon = cfg.rs.horizon;
    mppi_cfg.samples = std::max<std::size_t>(16, cfg.rs.samples / 4);
    mppi_cfg.iterations = 3;
    control::Mppi mppi(mppi_cfg, action_space, cfg.env.reward);
    mppi.set_engine(control::RolloutEngine::shared());
    PlannerAgent<control::Mppi> agent("MPPI", std::move(mppi), *artifacts.model,
                                      cfg.agent_seed);
    rows.push_back(measure("MPPI", agent, cfg.env));
  }
  {
    control::CemConfig cem_cfg;
    cem_cfg.horizon = cfg.rs.horizon;
    cem_cfg.samples = std::max<std::size_t>(16, cfg.rs.samples / 4);
    cem_cfg.iterations = 4;
    control::Cem cem(cem_cfg, action_space, cfg.env.reward);
    cem.set_engine(control::RolloutEngine::shared());
    PlannerAgent<control::Cem> agent("CEM", std::move(cem), *artifacts.model,
                                     cfg.agent_seed);
    rows.push_back(measure("CEM", agent, cfg.env));
  }

  AsciiTable table("Online planner ablation (same model, same January)");
  table.set_header(
      {"optimizer", "energy kWh", "violation", "latency ms", "distinct actions (20x)"});
  std::vector<std::vector<double>> csv_rows;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    table.add_row(r.name, {r.energy, r.violation, r.latency_ms, r.distinct}, 3);
    csv_rows.push_back({static_cast<double>(i), r.energy, r.violation, r.latency_ms,
                        r.distinct});
  }
  table.print();
  std::printf("shape to check: comparable energy/violation across optimizers; RS is\n"
              "fastest per decision; iterative optimizers concentrate their decisions\n"
              "(fewer distinct actions on a fixed input).\n");
  const std::string path =
      bench::write_csv("ablation_optimizer.csv",
                       "optimizer,energy_kwh,violation_rate,latency_ms,distinct", csv_rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
