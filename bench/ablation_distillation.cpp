// Ablation — modal distillation (§3.2.1) vs single-shot labels.
//
// The paper's key fix for optimizer stochasticity is to label each
// decision input with the *modal* action over Monte-Carlo repeats of the
// RS optimizer rather than a single draw. This ablation fits DT policies
// from decision datasets generated with mc_repeats in {1, 3, paper-K} and
// deploys each into the building: modal labels should match or beat
// single-shot labels on energy and violations, with the gap shrinking as
// the optimizer itself gets less noisy.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "core/decision_data.hpp"

int main() {
  using namespace verihvac;
  bench::print_banner("ablation_distillation", "DESIGN.md §5.1 (modal vs single-shot)");

  core::PipelineConfig cfg = bench::bench_config("Pittsburgh");
  const std::size_t paper_repeats = cfg.decision.mc_repeats;
  const std::vector<std::size_t> repeat_choices = {1, 3, paper_repeats};

  // Heavy artifacts (historical data + model) are shared; only the
  // decision-data generation and tree fit vary with mc_repeats.
  const core::PipelineArtifacts base = core::run_pipeline(cfg);

  AsciiTable table("Modal distillation ablation (Pittsburgh, January)");
  table.set_header({"mc_repeats", "energy [kWh]", "violation rate",
                    "efficiency score", "tree leaves"});
  std::vector<std::vector<double>> csv_rows;
  for (std::size_t repeats : repeat_choices) {
    core::PipelineConfig variant = cfg;
    variant.decision.mc_repeats = repeats;
    auto agent = base.make_mbrl_agent();
    core::DecisionDataGenerator generator(base.historical, variant.decision);
    const core::DecisionDataset decisions =
        generator.generate(*agent, variant.decision_points);
    core::DtPolicy policy =
        core::DtPolicy::fit(decisions, control::ActionSpace(variant.action_space));
    core::verify_formal(policy, variant.criteria, /*correct=*/true);

    const auto metrics = bench::run_full_episode(cfg.env, policy);
    table.add_row(std::to_string(repeats),
                  {metrics.total_energy_kwh(), metrics.violation_rate(),
                   metrics.energy_efficiency_score(),
                   static_cast<double>(policy.tree().leaf_count())},
                  3);
    csv_rows.push_back({static_cast<double>(repeats), metrics.total_energy_kwh(),
                        metrics.violation_rate(), metrics.energy_efficiency_score()});
  }
  table.print();

  std::printf("shape to check: modal labels (repeats > 1) give an equal or better\n"
              "efficiency score than single-shot labels (repeats = 1); the paper\n"
              "attributes the DT's energy advantage over its own MBRL teacher to\n"
              "exactly this de-noising.\n");
  const std::string path = bench::write_csv(
      "ablation_distillation.csv",
      "mc_repeats,energy_kwh,violation_rate,efficiency_score", csv_rows);
  std::printf("series written to %s\n", path.c_str());
  return 0;
}
