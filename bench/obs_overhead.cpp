// Bench — observability overhead + invariants (ISSUE 9 acceptance).
//
// The obs fabric promises to be free where it matters and rich where it
// pays: wait-free sharded counters on the decision fast path, spans and
// histograms everywhere wall time actually goes. Three sections gate
// that promise:
//
//   1. Bit-identity. Observability must NEVER perturb decisions: the
//      same mixed (DT + micro-batched MBRL) scenario is served with
//      tracing off and with tracing fully on, at engine pools of 1/4/8
//      threads. All six runs must produce bit-identical decisions.
//
//   2. DT fast-path overhead. The DT decision path is ~150 ns; the obs
//      gate is < 2% throughput regression with observability fully on
//      (tracing enabled) vs off, best-of-N interleaved trials. A third
//      mode adds a telemetry tap with sampled DT timing (the heaviest
//      configuration — reported, but gated by the telemetry bench's own
//      5% budget, not here).
//
//   3. Adaptation trace coverage. A drifted toy plant drives one full
//      adaptation generation under tracing; the captured trace must
//      contain every pipeline stage — drift alarm -> fine-tune -> VIPER
//      re-distill -> incremental re-certify -> shadow gate -> hot-swap —
//      with non-zero durations, and the run's metrics snapshot + Chrome
//      trace are written as artifacts next to BENCH_obs.json.
//
// Emits BENCH_obs.json. --smoke shrinks workloads and skips the
// noise-sensitive overhead gate; the exact gates (bit-identity, trace
// coverage) hold at any scale.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adapt/adaptation_controller.hpp"
#include "bench_common.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/request_scheduler.hpp"

namespace {

using namespace verihvac;
using bench::seconds_since;

env::Observation observation_for(std::size_t i) {
  env::Observation obs;
  obs.zone_temp_c = 14.0 + static_cast<double>(i % 17);
  obs.weather.outdoor_temp_c = -8.0 + static_cast<double>(i % 23);
  obs.weather.humidity_pct = 50.0;
  obs.weather.wind_mps = 3.0;
  obs.weather.solar_wm2 = static_cast<double>((i * 37) % 400);
  obs.occupants = (i % 3 == 0) ? 11.0 : 0.0;
  return obs;
}

std::shared_ptr<const common::TaskPool> pool_with_threads(std::size_t threads) {
  return std::make_shared<const common::TaskPool>(
      common::TaskPoolConfig{threads, /*min_parallel_batch=*/1});
}

/// Fresh serving stack over the shared toy assets (sections 1 and 2).
struct Stack {
  std::shared_ptr<serve::PolicyRegistry> registry = std::make_shared<serve::PolicyRegistry>();
  std::shared_ptr<serve::SessionManager> sessions = std::make_shared<serve::SessionManager>();
  std::unique_ptr<serve::RequestScheduler> scheduler;
  std::vector<serve::SessionId> ids;

  Stack(const std::shared_ptr<const core::DtPolicy>& policy,
        const std::shared_ptr<const dyn::DynamicsModel>& model,
        const control::RandomShootingConfig& rs, std::size_t threads, std::size_t n_sessions,
        const serve::SchedulerConfig& config = serve::SchedulerConfig{},
        const std::shared_ptr<adapt::TelemetryLog>& tap = nullptr) {
    registry->install("toy", policy);
    scheduler = std::make_unique<serve::RequestScheduler>(config, registry, sessions, rs,
                                                          control::ActionSpace{},
                                                          env::RewardConfig{},
                                                          pool_with_threads(threads));
    scheduler->install_model("toy", model);
    if (tap != nullptr) scheduler->set_tap(tap);
    for (std::size_t s = 0; s < n_sessions; ++s) {
      serve::SessionConfig session;
      session.policy_key = "toy";
      session.seed = 5000 + 13 * s;
      ids.push_back(sessions->open(session));
      if (tap != nullptr) tap->register_session(ids.back(), session.seed, session.policy_key);
    }
  }

  serve::ControlRequest request(std::size_t i, serve::RequestKind kind,
                                std::size_t horizon) const {
    serve::ControlRequest request;
    request.session = ids[i % ids.size()];
    request.kind = kind;
    request.observation = observation_for(i);
    if (kind == serve::RequestKind::kMbrlFallback) {
      env::Disturbance d;
      d.weather = request.observation.weather;
      d.occupants = request.observation.occupants;
      request.forecast = std::vector<env::Disturbance>(horizon, d);
    }
    return request;
  }
};

/// The full action+version identity of one decision; doubles compare
/// bitwise (operator==), which is exactly the identity the gate demands.
struct DecisionKey {
  std::size_t action_index;
  double heating_c;
  double cooling_c;
  std::uint64_t policy_version;

  bool operator==(const DecisionKey& other) const {
    return action_index == other.action_index && heating_c == other.heating_c &&
           cooling_c == other.cooling_c && policy_version == other.policy_version;
  }
};

/// The building after equipment wear: heating delivers 30% less than the
/// toy plant the model was trained on — a residual shift the monitor must
/// flag, still certifiable inside the wide toy comfort band.
double drifted_plant(const std::vector<double>& x, const sim::SetpointPair& a) {
  const double t = x[env::kZoneTemp];
  double dt = 0.08 * (x[env::kOutdoorTemp] - t);
  if (t < a.heating_c) dt += 0.28 * std::min(a.heating_c - t, 1.2);
  if (t > a.cooling_c) dt -= 0.35 * std::min(t - a.cooling_c, 1.2);
  return t + dt;
}

env::Observation mild_occupied(double zone_temp) {
  env::Observation obs;
  obs.zone_temp_c = zone_temp;
  obs.weather.outdoor_temp_c = 15.0;
  obs.weather.humidity_pct = 50.0;
  obs.weather.wind_mps = 3.0;
  obs.weather.solar_wm2 = 120.0;
  obs.occupants = 11.0;
  return obs;
}

/// Dynamics model trained on bench::toy_plant over the region the drift
/// trajectories actually visit (mild outdoors), so the pre-drift residual
/// baseline is small and the degradation stands out.
std::shared_ptr<const dyn::DynamicsModel> loop_model() {
  Rng rng(1);
  dyn::TransitionDataset data;
  for (int i = 0; i < 1500; ++i) {
    dyn::Transition t;
    t.input = {rng.uniform(17.0, 24.0), rng.uniform(12.0, 18.0), 50.0, 3.0,
               rng.uniform(0.0, 400.0), 11.0};
    t.action.heating_c = 22.5;
    t.action.cooling_c = 26.0;
    t.next_zone_temp = bench::toy_plant(t.input, t.action);
    data.add(t);
  }
  dyn::DynamicsModelConfig config;
  config.trainer.epochs = 60;
  auto model = std::make_shared<dyn::DynamicsModel>(config);
  model->train(data);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf("== obs_overhead — never-perturb-decisions, <2%% DT fast path, full "
              "adaptation trace ==\n%s\n\n", smoke ? "(smoke scale)" : "(bench scale)");

  obs::register_catalog();
  obs::TraceCollector& trace = obs::TraceCollector::global();

  const auto toy_policy = bench::toy_decision_policy();
  const auto toy_model = bench::toy_dynamics_model();
  control::RandomShootingConfig toy_rs;
  toy_rs.samples = smoke ? 16 : 64;
  toy_rs.horizon = smoke ? 3 : 5;

  bench::JsonObject artifact;
  artifact.field("bench", std::string("obs_overhead")).field_bool("smoke", smoke);
  bool failed = false;

  // ---- Section 1: observability never perturbs decisions.
  // The same mixed scenario, served request-by-request in a fixed order,
  // across {tracing off, tracing on} x engine pools {1, 4, 8}. The six
  // decision sequences must agree bitwise — the whole point of wait-free
  // dual-publication is that turning the lights on changes nothing.
  {
    const std::size_t decisions = smoke ? 256 : 2048;
    std::vector<std::vector<DecisionKey>> runs;
    for (const bool traced : {false, true}) {
      for (const std::size_t threads : {1u, 4u, 8u}) {
        trace.clear();
        if (traced) {
          trace.enable();
        } else {
          trace.disable();
        }
        Stack stack(toy_policy, toy_model, toy_rs, threads, /*n_sessions=*/16);
        std::vector<DecisionKey> keys;
        keys.reserve(decisions);
        for (std::size_t i = 0; i < decisions; ++i) {
          const auto kind =
              i % 4 == 0 ? serve::RequestKind::kDtPolicy : serve::RequestKind::kMbrlFallback;
          const serve::ControlDecision d =
              stack.scheduler->serve(stack.request(i, kind, toy_rs.horizon));
          keys.push_back({d.action_index, d.action.heating_c, d.action.cooling_c,
                          d.policy_version});
        }
        runs.push_back(std::move(keys));
      }
    }
    trace.disable();
    trace.clear();
    bool identical = true;
    for (std::size_t r = 1; r < runs.size(); ++r) {
      if (!(runs[r] == runs[0])) identical = false;
    }
    std::printf("bit-identity: %zu mixed decisions x {off,on} x pools {1,4,8}: %s\n", decisions,
                identical ? "all identical" : "DIVERGED");
    artifact.field("identity_decisions", decisions).field_bool("decisions_bit_identical",
                                                               identical);
    if (!identical) {
      std::printf("FAIL: observability perturbed decisions\n");
      failed = true;
    }
  }

  // ---- Section 2: DT fast-path throughput overhead.
  // Mode 0: tracing off, no tap (metrics counters are always on — they
  // are part of the serving fabric). Mode 1: tracing fully on — the
  // observability switch the <2% gate covers. Mode 2: tracing on plus a
  // telemetry tap with 1-in-16 sampled DT timing feeding the latency
  // histogram — the heaviest configuration, reported for context (its
  // capture cost is the telemetry bench's 5% budget, not obs's).
  // Stacks are built up front and trials interleaved so machine-load
  // drift hits every mode equally (best-of per mode).
  {
    const std::size_t decisions = smoke ? 20000 : 200000;
    const std::size_t trials = smoke ? 3 : 9;
    std::vector<std::unique_ptr<Stack>> stacks;
    for (int mode = 0; mode < 3; ++mode) {
      serve::SchedulerConfig config;
      std::shared_ptr<adapt::TelemetryLog> tap;
      if (mode == 2) {
        adapt::TelemetryConfig telemetry;
        telemetry.shards = 4;
        telemetry.capacity_per_shard = 1024;  // cache-resident ring
        telemetry.dt_sample_period = 16;
        tap = std::make_shared<adapt::TelemetryLog>(telemetry);
        config.dt_timing_sample_period = 16;
      }
      stacks.push_back(std::make_unique<Stack>(toy_policy, toy_model, toy_rs, /*threads=*/1,
                                               /*n_sessions=*/64, config, tap));
    }
    std::vector<double> best_secs(3, 0.0);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      for (int mode = 0; mode < 3; ++mode) {
        if (mode == 0) {
          trace.disable();
        } else {
          trace.enable();
        }
        Stack& stack = *stacks[mode];
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < decisions; ++i) {
          stack.scheduler->serve(stack.request(i, serve::RequestKind::kDtPolicy, 0));
        }
        const double secs = seconds_since(t0);
        if (trial == 0 || secs < best_secs[mode]) best_secs[mode] = secs;
      }
    }
    trace.disable();
    trace.clear();
    std::vector<double> rates(3, 0.0);
    for (int mode = 0; mode < 3; ++mode) {
      rates[mode] = static_cast<double>(decisions) / best_secs[mode];
    }
    const auto overhead = [&rates](int mode) {
      return rates[mode] > 0.0 ? rates[0] / rates[mode] - 1.0 : 1.0;
    };
    std::printf("DT fast path: %.0f/s obs-off | %.0f/s tracing-on (%.2f%%) | %.0f/s "
                "+sampled-timing tap (%.2f%%)\n",
                rates[0], rates[1], 100.0 * overhead(1), rates[2], 100.0 * overhead(2));
    artifact.field("dt_obs_off_per_sec", rates[0])
        .field("dt_tracing_on_per_sec", rates[1])
        .field("dt_full_tap_per_sec", rates[2])
        .field("obs_overhead_fraction", overhead(1))
        .field("obs_with_tap_overhead_fraction", overhead(2));
    if (!smoke && overhead(1) >= 0.02) {
      std::printf("FAIL: observability overhead %.2f%% exceeds the 2%% bar\n",
                  100.0 * overhead(1));
      failed = true;
    }
  }

  // ---- Section 3: the adaptation generation under tracing.
  // A toy serving stack's plant degrades; the controller detects drift
  // and runs one full generation to a certified hot-swap. The captured
  // trace must cover every stage with non-zero wall time.
  {
    const auto model = loop_model();
    adapt::AdaptationConfig config;
    config.drift.ph_delta = 0.01;
    config.drift.ph_lambda = 0.5;
    config.drift.min_samples = 16;
    config.min_transitions = 48;
    config.fine_tune_epochs = smoke ? 10 : 20;
    config.probabilistic_samples = smoke ? 150 : 300;
    // Mechanism under test is the trace, not paper-grade safety: a wide
    // comfort band keeps toy-plant certification stable (the adaptation
    // bench drives the real thresholds on real pipeline assets).
    config.criteria.comfort = {17.0, 26.0};
    config.criteria.safe_probability_threshold = 0.5;
    config.viper.iterations = 2;
    config.viper.steps_per_iteration = smoke ? 12 : 24;
    config.viper.mc_repeats = 1;
    config.teacher_rs = {12, 3, 0.99};
    config.seed = 99;

    const auto log = std::make_shared<adapt::TelemetryLog>();
    auto registry = std::make_shared<serve::PolicyRegistry>();
    auto sessions = std::make_shared<serve::SessionManager>();
    const std::uint64_t base_version = registry->install("toy", toy_policy);
    serve::RequestScheduler scheduler(serve::SchedulerConfig{}, registry, sessions,
                                      control::RandomShootingConfig{16, 3, 0.99},
                                      control::ActionSpace{}, env::RewardConfig{},
                                      pool_with_threads(2));
    scheduler.install_model("toy", model);
    scheduler.set_tap(log);
    adapt::AdaptationController controller(config, log, registry, sessions, scheduler,
                                           pool_with_threads(2));
    adapt::ClusterAssets assets;
    assets.model = model;
    assets.env.days = 1;
    controller.register_cluster("toy", assets);

    serve::SessionConfig session_config;
    session_config.policy_key = "toy";
    session_config.seed = 4242;
    const serve::SessionId session = sessions->open(session_config);
    log->register_session(session, session_config.seed, session_config.policy_key);

    std::uint64_t next_decision = 0;
    double zone_temp = 20.4;
    const auto emit = [&](std::size_t n, double (*plant)(const std::vector<double>&,
                                                         const sim::SetpointPair&)) {
      const sim::SetpointPair action{22.5, 26.0};
      const std::string key = "toy";
      for (std::size_t i = 0; i < n; ++i) {
        env::Observation obs = mild_occupied(zone_temp);
        serve::DecisionEvent event;
        event.session = session;
        event.decision_index = next_decision++;
        event.session_seed = 4242;
        event.kind = serve::RequestKind::kDtPolicy;
        event.policy_key = &key;
        event.policy_version = base_version;
        event.action_index = 0;
        event.action = action;
        event.observation = &obs;
        log->on_decision(event);
        zone_temp = plant(obs.to_vector(), action);
      }
    };

    trace.clear();
    trace.enable();
    emit(80, bench::toy_plant);  // healthy baseline
    controller.pump();
    emit(120, drifted_plant);  // the plant degrades under the same stack
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t attempts = controller.pump();
    const double generation_seconds = seconds_since(t0);
    trace.disable();

    const auto history = controller.history();
    const bool promoted =
        !history.empty() && history.back().promoted && history.back().certified;

    const std::vector<obs::SpanRecord> spans = trace.snapshot();
    const char* stages[] = {"adapt.drift_alarm", "adapt.fine_tune", "adapt.redistill",
                            "adapt.recertify",   "adapt.shadow_gate", "adapt.hot_swap",
                            "adapt.generation"};
    std::map<std::string, std::uint64_t> stage_ns;
    for (const obs::SpanRecord& span : spans) stage_ns[span.name] += span.duration_ns;
    bool covered = attempts == 1 && promoted;
    std::printf("adaptation generation: %zu attempt(s), promoted=%d, %.1fs, %zu spans\n",
                attempts, promoted ? 1 : 0, generation_seconds, spans.size());
    for (const char* stage : stages) {
      const std::uint64_t ns = stage_ns.count(stage) ? stage_ns[stage] : 0;
      std::printf("  %-18s %10.3f ms%s\n", stage, static_cast<double>(ns) / 1e6,
                  ns > 0 ? "" : "  <-- MISSING");
      if (ns == 0) covered = false;
      std::string field_name = stage;
      std::replace(field_name.begin(), field_name.end(), '.', '_');
      artifact.field(field_name + "_ms", static_cast<double>(ns) / 1e6);
    }
    artifact.field_bool("trace_covers_generation", covered)
        .field("trace_spans", spans.size())
        .field("generation_seconds", generation_seconds);
    if (!covered) {
      std::printf("FAIL: trace does not cover the full adaptation generation\n");
      failed = true;
    }

    // Artifacts for CI: the run's Chrome trace + metrics exposition.
    const std::string trace_path = bench::artifact_path("obs_adaptation_trace.json");
    trace.write_chrome_trace(trace_path);
    const std::string metrics_path = bench::artifact_path("obs_metrics_snapshot.prom");
    {
      std::ofstream out(metrics_path);
      out << obs::MetricsRegistry::global().expose_text();
    }
    trace.clear();
    std::printf("wrote %s and %s\n", trace_path.c_str(), metrics_path.c_str());
  }

  const std::string path = bench::write_bench_json("BENCH_obs.json", artifact);
  std::printf("\nwrote %s\n", path.c_str());
  return failed ? 1 : 0;
}
