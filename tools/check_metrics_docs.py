#!/usr/bin/env python3
"""Fail when docs/OPERATIONS.md and the instrument catalog diverge.

The catalog in src/obs/instruments.cpp is the single source of truth for
the observability surface (obs::counter/gauge/histogram refuse names it
does not list). The monitoring table in docs/OPERATIONS.md must document
every cataloged instrument under its cataloged kind, and must not list
instruments the catalog no longer has. Run with --print-table to emit a
fresh markdown table generated from the catalog (paste it into the doc
when instruments change).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CATALOG = ROOT / "src" / "obs" / "instruments.cpp"
DOC = ROOT / "docs" / "OPERATIONS.md"

# One catalog entry: {"name", InstrumentKind::kCounter, "help", "alert"}.
# Entries are required to stay literal (no macros) precisely so this
# parse stays trivial; string fragments may be split across lines.
ENTRY_RE = re.compile(
    r'\{"(?P<name>[a-z0-9_]+)",\s*InstrumentKind::k(?P<kind>Counter|Gauge|Histogram),'
    r"(?P<rest>.*?)\},",
    re.S,
)
# A markdown table row: | `name` | kind | ... |
DOC_ROW_RE = re.compile(r"^\|\s*`(?P<name>[a-z0-9_]+)`\s*\|\s*(?P<kind>counter|gauge|histogram)\s*\|", re.M)


def catalog_entries(text):
    """[(name, kind, help, alert)] in catalog order."""
    entries = []
    for match in ENTRY_RE.finditer(text):
        strings = re.findall(r'"((?:[^"\\]|\\.)*)"', match.group("rest"))
        help_text = strings[0] if strings else ""
        alert = strings[1] if len(strings) > 1 else ""
        entries.append((match.group("name"), match.group("kind").lower(), help_text, alert))
    return entries


def print_table(entries):
    print("| Instrument | Type | Meaning | When it misbehaves |")
    print("| --- | --- | --- | --- |")
    for name, kind, help_text, alert in entries:
        alert_cell = "—" if alert == "none" else alert
        print(f"| `{name}` | {kind} | {help_text} | {alert_cell} |")


def main():
    entries = catalog_entries(CATALOG.read_text())
    if not entries:
        print(f"error: no catalog entries parsed from {CATALOG}", file=sys.stderr)
        return 1
    if "--print-table" in sys.argv[1:]:
        print_table(entries)
        return 0

    catalog = {name: kind for name, kind, _, _ in entries}
    documented = {m.group("name"): m.group("kind") for m in DOC_ROW_RE.finditer(DOC.read_text())}

    problems = []
    for name, kind in catalog.items():
        if name not in documented:
            problems.append(f"undocumented instrument: {name} ({kind})")
        elif documented[name] != kind:
            problems.append(
                f"kind mismatch for {name}: catalog says {kind}, doc says {documented[name]}"
            )
    for name in documented:
        if name not in catalog:
            problems.append(f"stale doc row (not in catalog): {name}")

    if problems:
        print(f"{DOC.relative_to(ROOT)} diverges from {CATALOG.relative_to(ROOT)}:", file=sys.stderr)
        for problem in sorted(problems):
            print(f"  {problem}", file=sys.stderr)
        print("regenerate with: tools/check_metrics_docs.py --print-table", file=sys.stderr)
        return 1
    print(f"ok: {len(catalog)} instruments documented in {DOC.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
