// verihvac — command-line front end for the extract -> verify -> deploy
// -> serve workflow of the paper (Fig. 2), operating on policy-bundle
// files.
//
//   verihvac extract     --city Pittsburgh --points 600 --out policy.vhp
//   verihvac verify      --policy policy.vhp [--city Pittsburgh] [--correct]
//   verihvac campaign    [--climates A,B] [--buildings name:scale,..]
//                        [--recert full|incremental] [--out FILE]
//   verihvac simulate    --policy policy.vhp --city Pittsburgh [--days 31]
//   verihvac serve-bench [--climates A,B] [--buildings N] [--steps N] [--mbrl-frac F]
//   verihvac adapt-bench [--city NAME] [--buildings N] [--steps N] [--drift-step N]
//                        [--recert full|incremental]
//   verihvac export-c    --policy policy.vhp --prefix veri_hvac --out DIR
//   verihvac explain     --policy policy.vhp --input s,To,RH,w,S,occ
//   verihvac print       --policy policy.vhp [--rules]
//   verihvac stats       [--json] [--out FILE]
//   verihvac trace ls     --dir DIR
//   verihvac trace info   --segment FILE
//   verihvac trace dump   --dir DIR [--out FILE.vht] [--limit N]
//   verihvac trace replay --dir DIR (--city NAME | --policy FILE) [...]
//   verihvac trace verify --dir DIR [--city NAME | --policy FILE] [...]
//
// The `trace` family operates on a durable-telemetry segment directory
// (adapt::TelemetryStore; adapt-bench --telemetry-dir writes one): list
// and inspect segments, consolidate them into a portable trace file, and
// re-verify the store's integrity — `verify` recomputes every decision
// from its RNG stream coordinates and checks the replay fingerprint, so a
// passing segment is certified by bit-identical replay, not just CRCs.
//
// Observability: campaign/serve-bench/adapt-bench accept --metrics-out
// (obs registry snapshot after the run; .json suffix selects the JSON
// form, anything else Prometheus text) and --trace-out (Chrome
// trace_event JSON of the run's spans — load in chrome://tracing or
// Perfetto). `stats` dumps the full instrument catalog exposition.
//
// Every subcommand exits non-zero on failure and prints to stderr; option
// parsing is strict (unknown --options and missing values are rejected
// against a per-subcommand spec, with that subcommand's usage printed).
// The formats are the library's own (core/policy_io bundles,
// core/edge_export C modules), so artifacts interoperate with the
// examples and benches.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "adapt/adaptation_controller.hpp"
#include "adapt/telemetry_store.hpp"
#include "core/campaign.hpp"
#include "core/edge_export.hpp"
#include "core/interpret.hpp"
#include "core/pipeline.hpp"
#include "core/policy_io.hpp"
#include "core/verification.hpp"
#include "envlib/env.hpp"
#include "envlib/feature_schema.hpp"
#include "envlib/metrics.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/fleet_harness.hpp"

namespace {

using namespace verihvac;

/// Strict "--key value" argument map, validated against a per-subcommand
/// option spec: unknown keys, missing values and values handed to pure
/// flags are all rejected with a clear message (the driver then prints the
/// subcommand's usage and exits non-zero).
class Args {
 public:
  /// Option name -> whether it takes a value (false = pure flag).
  using Spec = std::map<std::string, bool>;

  Args(int argc, char** argv, int first, const Spec& spec) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected argument: " + key);
      }
      key = key.substr(2);
      const auto option = spec.find(key);
      if (option == spec.end()) {
        throw std::invalid_argument("unknown option --" + key);
      }
      const bool has_next_value =
          i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0;
      if (option->second) {
        if (!has_next_value) {
          throw std::invalid_argument("option --" + key + " requires a value");
        }
        values_[key] = argv[++i];
      } else {
        if (has_next_value) {
          throw std::invalid_argument("option --" + key + " does not take a value (got '" +
                                      argv[i + 1] + "')");
        }
        values_[key] = "";
      }
    }
  }

  std::string required(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) {
      throw std::invalid_argument("missing required option --" + key);
    }
    return it->second;
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() || it->second.empty() ? fallback : it->second;
  }
  long get_long(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() || it->second.empty() ? fallback : std::stol(it->second);
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() || it->second.empty() ? fallback : std::stod(it->second);
  }
  bool flag(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_extract(const Args& args) {
  core::PipelineConfig config = core::PipelineConfig::for_city(args.get("city", "Pittsburgh"));
  config.decision_points =
      static_cast<std::size_t>(args.get_long("points", static_cast<long>(config.decision_points)));
  const std::string out = args.required("out");

  const core::PipelineArtifacts artifacts = core::run_pipeline(config);
  core::save_policy(*artifacts.policy, out);
  std::printf("extracted + verified policy for %s\n", config.city.c_str());
  std::printf("  tree: %zu nodes, %zu leaves, depth %zu\n",
              artifacts.policy->tree().node_count(), artifacts.policy->tree().leaf_count(),
              artifacts.policy->tree().depth());
  std::printf("  Algorithm 1 corrections: #2=%zu #3=%zu\n", artifacts.formal.corrected_crit2,
              artifacts.formal.corrected_crit3);
  std::printf("  criterion #1 safe probability: %.3f (%zu samples)\n",
              artifacts.probabilistic.safe_probability, artifacts.probabilistic.samples);
  std::printf("  bundle written to %s\n", out.c_str());
  return 0;
}

int cmd_verify(const Args& args) {
  core::DtPolicy policy = core::load_policy(args.required("policy"));
  core::VerificationCriteria criteria;
  const bool correct = args.flag("correct");

  const core::FormalReport formal = core::verify_formal(policy, criteria, correct);
  std::printf("Algorithm 1 (criteria #2/#3):\n");
  std::printf("  leaves: %zu total, %zu subject #2, %zu subject #3\n", formal.leaves_total,
              formal.leaves_subject_crit2, formal.leaves_subject_crit3);
  std::printf("  violations: #2=%zu #3=%zu%s\n", formal.violations_crit2,
              formal.violations_crit3,
              correct ? " (corrected in-memory; use --out to persist)" : "");

  if (args.flag("city")) {
    // Criterion #1 needs a dynamics model + the city's input distribution;
    // rebuild both from a fresh historical collection.
    core::PipelineConfig config = core::PipelineConfig::for_city(args.get("city", "Pittsburgh"));
    const dyn::TransitionDataset historical =
        dyn::collect_historical_data(config.env, config.collection);
    dyn::DynamicsModel model(config.model);
    model.train(historical);
    core::DecisionDataGenerator generator(historical, config.decision);
    Rng rng(config.verification_seed);
    const core::ProbabilisticReport prob = core::verify_probabilistic_one_step(
        policy, model, generator.sampler(), criteria, config.probabilistic_samples, rng);
    std::printf("criterion #1 (probabilistic, %s): safe probability %.3f -> %s\n",
                config.city.c_str(), prob.safe_probability,
                prob.passes(criteria) ? "PASS" : "FAIL");
  }
  if (correct && args.flag("out")) {
    core::save_policy(policy, args.required("out"));
    std::printf("corrected bundle written to %s\n", args.required("out").c_str());
  }
  return 0;
}

std::vector<std::string> split_csv_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string cell;
  while (std::getline(stream, cell, ',')) {
    if (!cell.empty()) out.push_back(cell);
  }
  return out;
}

/// Parses "name" / "name:scale" building-preset specs ("oversized"
/// defaults to the 2x design-day plant of the summer extension).
template <typename Preset>
std::vector<Preset> parse_presets(const std::string& csv) {
  std::vector<Preset> presets;
  for (const std::string& spec : split_csv_list(csv)) {
    Preset preset;
    const auto colon = spec.find(':');
    preset.name = spec.substr(0, colon);
    if (colon != std::string::npos) {
      preset.hvac_scale = std::stod(spec.substr(colon + 1));
    } else if (preset.name == "oversized") {
      preset.hvac_scale = 2.0;
    }
    presets.push_back(std::move(preset));
  }
  return presets;
}

/// Shared --metrics-out/--trace-out handling for the long-running
/// subcommands. Construct right after parsing (tracing must be live before
/// the instrumented work starts); call finish() once the run is done.
class ObsOutputs {
 public:
  explicit ObsOutputs(const Args& args)
      : metrics_path_(args.get("metrics-out", "")), trace_path_(args.get("trace-out", "")) {
    if (!trace_path_.empty()) {
      obs::TraceCollector::global().clear();
      obs::TraceCollector::global().enable();
    }
  }

  void finish() const {
    if (!metrics_path_.empty()) {
      // Register the whole catalog so the snapshot lists every instrument,
      // including the ones this run never touched.
      obs::register_catalog();
      const bool json = metrics_path_.size() >= 5 &&
                        metrics_path_.compare(metrics_path_.size() - 5, 5, ".json") == 0;
      std::ofstream file(metrics_path_);
      if (!file) throw std::runtime_error("cannot write " + metrics_path_);
      file << (json ? obs::MetricsRegistry::global().expose_json() + "\n"
                    : obs::MetricsRegistry::global().expose_text());
      std::printf("metrics snapshot written to %s (%s)\n", metrics_path_.c_str(),
                  json ? "json" : "prometheus text");
    }
    if (!trace_path_.empty()) {
      obs::TraceCollector& collector = obs::TraceCollector::global();
      collector.disable();
      const std::size_t spans = collector.snapshot().size();
      collector.write_chrome_trace(trace_path_);
      std::printf("trace written to %s (%zu spans, %llu overwritten)\n", trace_path_.c_str(),
                  spans, static_cast<unsigned long long>(collector.spans_dropped()));
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

/// Parses the --recert mode shared by campaign and adapt-bench; returns
/// whether the incremental certificate-cache path is selected. Anything but
/// 'full'/'incremental' throws std::invalid_argument, which the driver
/// turns into exit 2 plus the subcommand's usage.
bool parse_recert_incremental(const Args& args, bool fallback) {
  const std::string mode = args.get("recert", fallback ? "incremental" : "full");
  if (mode == "incremental") return true;
  if (mode == "full") return false;
  throw std::invalid_argument("--recert must be 'full' or 'incremental' (got '" + mode + "')");
}

int cmd_campaign(const Args& args) {
  const ObsOutputs obs_outputs(args);
  core::CampaignConfig config;
  // Throws std::invalid_argument on an unknown name, which the driver
  // turns into exit 2 plus this subcommand's usage.
  config.schema = env::schema_by_name(args.get("schema", "baseline"));
  config.climates = split_csv_list(args.get("climates", "Pittsburgh,Tucson,NewYork"));
  config.buildings =
      parse_presets<core::CampaignBuilding>(args.get("buildings", "baseline,oversized"));

  config.comfort_bands.clear();
  for (const std::string& name : split_csv_list(args.get("comfort", "winter"))) {
    if (name == "winter") {
      config.comfort_bands.push_back({"winter", env::winter_comfort()});
    } else if (name == "summer") {
      config.comfort_bands.push_back({"summer", env::summer_comfort()});
    } else {
      throw std::invalid_argument("--comfort entries must be 'winter' or 'summer'");
    }
  }

  config.envelopes.clear();
  for (const std::string& name : split_csv_list(args.get("envelopes", "mild"))) {
    if (name == "mild") {
      config.envelopes.push_back({"mild", core::mild_envelope()});
    } else if (name == "design") {
      config.envelopes.push_back({"design", core::DisturbanceBounds{}});
    } else {
      throw std::invalid_argument("--envelopes entries must be 'mild' or 'design'");
    }
  }

  config.probabilistic_samples = static_cast<std::size_t>(
      args.get_long("samples", static_cast<long>(config.probabilistic_samples)));
  config.reach_states = static_cast<std::size_t>(
      args.get_long("reach-states", static_cast<long>(config.reach_states)));
  config.decision_points = static_cast<std::size_t>(args.get_long("points", 0));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 404));
  config.incremental_recert = parse_recert_incremental(args, config.incremental_recert);

  const core::VerificationEngine engine;  // shared VERI_HVAC_THREADS pool
  const core::CampaignResult result =
      core::run_campaign(config, engine, core::pipeline_asset_provider(config));
  std::printf("%s", result.to_table().c_str());
  std::printf("verification pool: %zu thread(s)\n", engine.thread_count());

  if (args.flag("out")) {
    const std::string path = args.required("out");
    std::ofstream file(path);
    if (!file) throw std::runtime_error("cannot write " + path);
    file << result.to_csv();
    std::printf("campaign CSV written to %s\n", path.c_str());
  }
  obs_outputs.finish();
  return 0;
}

int cmd_simulate(const Args& args) {
  core::DtPolicy policy = core::load_policy(args.required("policy"));
  core::PipelineConfig config = core::PipelineConfig::for_city(args.get("city", "Pittsburgh"));
  config.env.days = static_cast<int>(args.get_long("days", config.env.days));

  env::BuildingEnv building(config.env);
  env::EpisodeMetrics dt_metrics;
  env::Observation obs = building.reset();
  while (true) {
    const auto outcome = building.step(policy.act(obs, {}));
    dt_metrics.add(outcome);
    if (outcome.done) break;
    obs = outcome.observation;
  }

  control::RuleBasedController schedule(config.env.default_occupied,
                                        config.env.default_unoccupied);
  env::BuildingEnv baseline_env(config.env);
  env::EpisodeMetrics default_metrics;
  obs = baseline_env.reset();
  while (true) {
    const auto outcome = baseline_env.step(schedule.act(obs, {}));
    default_metrics.add(outcome);
    if (outcome.done) break;
    obs = outcome.observation;
  }

  std::printf("%-18s %12s %12s\n", "controller", "energy kWh", "violation");
  std::printf("%-18s %12.1f %12.3f\n", "default schedule", default_metrics.total_energy_kwh(),
              default_metrics.violation_rate());
  std::printf("%-18s %12.1f %12.3f\n", "DT policy", dt_metrics.total_energy_kwh(),
              dt_metrics.violation_rate());
  return 0;
}

int cmd_serve_bench(const Args& args) {
  const ObsOutputs obs_outputs(args);
  const env::FeatureSchema schema = env::schema_by_name(args.get("schema", "baseline"));
  serve::FleetConfig config;
  config.climates = split_csv_list(args.get("climates", "Pittsburgh"));
  config.presets = parse_presets<serve::FleetPreset>(args.get("presets", "baseline"));
  config.buildings_per_cell = static_cast<std::size_t>(args.get_long("buildings", 8));
  config.steps = static_cast<std::size_t>(args.get_long("steps", 12));
  config.mbrl_fraction = args.get_double("mbrl-frac", 0.25);
  config.days = static_cast<int>(args.get_long("days", 2));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 2024));
  config.rs.samples = static_cast<std::size_t>(args.get_long("samples", 64));
  config.rs.horizon = static_cast<std::size_t>(args.get_long("horizon", 5));
  config.async = !args.flag("sync");
  // SLO knobs: per-request MBRL latency budget (0 = window-only batching)
  // and MBRL queue shard override (0 = align to the session manager).
  config.mbrl_latency_budget = std::chrono::microseconds(args.get_long("budget-us", 0));
  config.scheduler.queue_shards = static_cast<std::size_t>(args.get_long("queue-shards", 0));

  // Per-cell serving assets from the extraction pipeline, cached by
  // (climate x hvac scale): presets only differ in plant sizing.
  auto cache = std::make_shared<std::map<std::string, serve::FleetAssets>>();
  const serve::FleetAssetProvider provider = [cache, schema](const std::string& climate,
                                                             const serve::FleetPreset& preset) {
    const std::string key = climate + "/" + std::to_string(preset.hvac_scale);
    const auto it = cache->find(key);
    if (it != cache->end()) return it->second;
    std::printf("extracting serving bundle for %s (hvac x%.2f, schema %s)...\n", climate.c_str(),
                preset.hvac_scale, schema.name().c_str());
    core::PipelineConfig pipeline = core::PipelineConfig::for_city(climate);
    pipeline.set_schema(schema);
    pipeline.env.hvac_capacity_scale = preset.hvac_scale;
    const core::PipelineArtifacts artifacts = core::run_pipeline(pipeline);
    const serve::FleetAssets assets{artifacts.policy, artifacts.model};
    cache->emplace(key, assets);
    return assets;
  };

  serve::FleetHarness harness(config, provider);
  std::printf("serving %zu climates x %zu presets x %zu buildings for %zu steps "
              "(mbrl fraction %.2f, %s, pool %zu thread(s))\n",
              config.climates.size(), config.presets.size(), config.buildings_per_cell,
              config.steps, config.mbrl_fraction, config.async ? "async" : "inline",
              harness.scheduler().thread_count());
  const serve::FleetReport report = harness.run();
  std::printf("%s", report.summary().c_str());

  if (args.flag("out")) {
    const std::string path = args.required("out");
    std::ofstream file(path);
    if (!file) throw std::runtime_error("cannot write " + path);
    file << report.to_json() << "\n";
    std::printf("serving report written to %s\n", path.c_str());
  }
  obs_outputs.finish();
  return 0;
}

int cmd_adapt_bench(const Args& args) {
  const ObsOutputs obs_outputs(args);
  const env::FeatureSchema schema = env::schema_by_name(args.get("schema", "baseline"));
  const std::string city = args.get("city", "Pittsburgh");
  serve::FleetConfig config;
  config.climates = {city};
  config.presets = {{"baseline", 1.0}};
  config.buildings_per_cell = static_cast<std::size_t>(args.get_long("buildings", 6));
  config.steps = static_cast<std::size_t>(args.get_long("steps", 96));
  config.mbrl_fraction = args.get_double("mbrl-frac", 0.25);
  config.days = static_cast<int>(args.get_long("days", 2));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 2024));
  config.rs.samples = static_cast<std::size_t>(args.get_long("samples", 32));
  config.rs.horizon = static_cast<std::size_t>(args.get_long("horizon", 5));

  serve::FleetDriftEvent drift;
  drift.at_step = static_cast<std::size_t>(args.get_long("drift-step", 32));
  drift.degradation.hvac_capacity_factor = args.get_double("hvac-factor", 0.55);
  drift.degradation.heating_efficiency_factor = args.get_double("eff-factor", 0.85);
  drift.degradation.envelope_leak_factor = args.get_double("leak-factor", 1.3);
  config.drift.push_back(drift);

  const auto log = std::make_shared<adapt::TelemetryLog>();
  config.tap = log;
  config.on_session_open = [&log](serve::SessionId id, const serve::SessionConfig& session) {
    log->register_session(id, session.seed, session.policy_key);
  };
  // Optional durable tap: every decision the adapt loop consumes is also
  // persisted to rotated segments (inspect with `verihvac trace`). The
  // controller's pump drives the store (attach_store below), so no writer
  // thread is needed.
  std::shared_ptr<adapt::TelemetryStore> store;
  if (args.flag("telemetry-dir")) {
    adapt::TelemetryStoreConfig store_config;
    store_config.directory = args.required("telemetry-dir");
    store_config.segment_max_bytes =
        static_cast<std::uint64_t>(args.get_long("segment-bytes", 4ll << 20));
    store_config.start_writer = false;
    store = std::make_shared<adapt::TelemetryStore>(log, store_config);
  }
  adapt::AdaptationController* controller_ptr = nullptr;
  config.on_step = [&controller_ptr](serve::FleetHarness&, std::size_t) {
    if (controller_ptr != nullptr) controller_ptr->pump();
  };

  // Pipeline-extracted serving assets for the cell (same recipe as
  // serve-bench, shrunk by the VERI_HVAC_* knobs).
  std::printf("extracting serving bundle for %s (schema %s)...\n", city.c_str(),
              schema.name().c_str());
  core::PipelineConfig pipeline = core::PipelineConfig::for_city(city);
  pipeline.set_schema(schema);
  const core::PipelineArtifacts artifacts = core::run_pipeline(pipeline);
  const serve::FleetAssets assets{artifacts.policy, artifacts.model};

  serve::FleetHarness harness(
      config, [&assets](const std::string&, const serve::FleetPreset&) { return assets; });

  adapt::AdaptationConfig adaptation;
  adaptation.drift.ph_delta = args.get_double("ph-delta", 0.02);
  adaptation.drift.ph_lambda = args.get_double("ph-lambda", 2.0);
  adaptation.drift.min_samples = 48;
  adaptation.min_transitions = static_cast<std::size_t>(args.get_long("min-transitions", 60));
  adaptation.criteria = pipeline.criteria;
  adaptation.criteria.safe_probability_threshold = args.get_double("safe-threshold", 0.75);
  adaptation.probabilistic_samples = pipeline.probabilistic_samples / 4;
  adaptation.viper.iterations = 2;
  adaptation.viper.steps_per_iteration = 24;
  adaptation.viper.mc_repeats = 1;
  adaptation.teacher_rs = pipeline.rs_distill;
  adaptation.recert_mode =
      parse_recert_incremental(args, adaptation.recert_mode == adapt::RecertMode::kIncremental)
          ? adapt::RecertMode::kIncremental
          : adapt::RecertMode::kFull;
  adaptation.seed = config.seed + 3;
  adapt::AdaptationController controller(adaptation, log, harness.registry_ptr(),
                                         harness.sessions_ptr(), harness.scheduler());
  adapt::ClusterAssets cluster;
  cluster.model = artifacts.model;
  cluster.env = pipeline.env;
  cluster.env.days = 2;
  cluster.baseline = artifacts.historical;
  controller.register_cluster(city + "/baseline", cluster);
  if (store != nullptr) controller.attach_store(store);
  controller_ptr = &controller;

  std::printf("closed loop: %zu buildings x %zu steps, degradation at step %zu "
              "(hvac x%.2f, eff x%.2f, leak x%.2f)\n",
              config.buildings_per_cell, config.steps, drift.at_step,
              drift.degradation.hvac_capacity_factor,
              drift.degradation.heating_efficiency_factor,
              drift.degradation.envelope_leak_factor);
  const serve::FleetReport report = harness.run();
  std::printf("%s", report.summary().c_str());

  const auto stats = controller.stats();
  std::printf("telemetry: %llu records (%llu lost), %llu transitions; drift events %llu; "
              "adaptations %llu attempted, %llu promoted; dropped decisions %zu\n",
              static_cast<unsigned long long>(stats.records_drained),
              static_cast<unsigned long long>(stats.records_lost),
              static_cast<unsigned long long>(stats.transitions),
              static_cast<unsigned long long>(stats.drift_events),
              static_cast<unsigned long long>(stats.adaptations_attempted),
              static_cast<unsigned long long>(stats.adaptations_promoted),
              report.dropped_decisions);
  for (const adapt::AdaptationReport& attempt : controller.history()) {
    if (attempt.promoted) {
      std::printf("  generation %llu: certified (safe prob %.3f), shadow passed -> "
                  "promoted bundle v%llu\n",
                  static_cast<unsigned long long>(attempt.generation),
                  attempt.probabilistic.safe_probability,
                  static_cast<unsigned long long>(attempt.promoted_policy_version));
    } else {
      std::printf("  generation %llu: NOT promoted (certified=%d, safe prob %.3f, "
                  "shadow=%d) — incumbent keeps serving\n",
                  static_cast<unsigned long long>(attempt.generation), attempt.certified,
                  attempt.probabilistic.safe_probability, attempt.shadow_passed);
    }
  }
  if (store != nullptr) {
    store->stop();  // flush + seal, so `trace verify` can certify the tail
    const auto store_stats = store->stats();
    std::printf("durable telemetry: %llu record(s) persisted (%llu byte(s), %llu rotation(s), "
                "%llu compaction(s)) in %s\n",
                static_cast<unsigned long long>(store_stats.records_persisted),
                static_cast<unsigned long long>(store_stats.bytes_written),
                static_cast<unsigned long long>(store_stats.rotations),
                static_cast<unsigned long long>(store_stats.compactions),
                store->directory().c_str());
  }

  if (args.flag("out")) {
    const std::string path = args.required("out");
    std::ofstream file(path);
    if (!file) throw std::runtime_error("cannot write " + path);
    file << report.to_json() << "\n";
    std::printf("adaptation report written to %s\n", path.c_str());
  }
  obs_outputs.finish();
  return 0;
}

int cmd_stats(const Args& args) {
  // The full catalog, so even a traffic-less process lists every
  // instrument with its zero value (what a scrape endpoint would export).
  obs::register_catalog();
  const std::string text = args.flag("json")
                               ? obs::MetricsRegistry::global().expose_json() + "\n"
                               : obs::MetricsRegistry::global().expose_text();
  if (args.flag("out")) {
    const std::string path = args.required("out");
    std::ofstream file(path);
    if (!file) throw std::runtime_error("cannot write " + path);
    file << text;
    std::printf("stats written to %s\n", path.c_str());
  } else {
    std::printf("%s", text.c_str());
  }
  return 0;
}

// --- trace: durable telemetry segment tooling -------------------------------

// Replay artifacts for `trace replay`/`trace verify`. A pipeline-extracted
// cell (`--city`) maps its bundle to registry version 1 and its model to
// generation 1 — the versions a fresh fleet serves — while `--policy FILE`
// loads a saved bundle at `--policy-version` (adapted bundles land at 2, 3,
// ...). The optimizer knobs must match the capture run; the defaults mirror
// adapt-bench.
bool build_replay_assets(const Args& args, adapt::ReplayAssets& assets,
                         adapt::ReplayConfig& config) {
  config.rs.samples = static_cast<std::size_t>(args.get_long("samples", 32));
  config.rs.horizon = static_cast<std::size_t>(args.get_long("horizon", 5));
  if (args.flag("city")) {
    const std::string city = args.required("city");
    std::printf("extracting replay assets for %s...\n", city.c_str());
    core::PipelineConfig pipeline = core::PipelineConfig::for_city(city);
    pipeline.set_schema(env::schema_by_name(args.get("schema", "baseline")));
    const core::PipelineArtifacts artifacts = core::run_pipeline(pipeline);
    assets.policies[1] = artifacts.policy;
    assets.models[1] = artifacts.model;
  }
  if (args.flag("policy")) {
    const auto version = static_cast<std::uint64_t>(args.get_long("policy-version", 1));
    assets.policies[version] =
        std::make_shared<core::DtPolicy>(core::load_policy(args.required("policy")));
  }
  return !assets.policies.empty() || !assets.models.empty();
}

int cmd_trace_ls(const Args& args) {
  const auto segments = adapt::list_segments(args.required("dir"));
  std::printf("%-28s %-6s %10s %9s %21s %12s  %s\n", "segment", "state", "records", "sessions",
              "decisions", "bytes", "replay-fp");
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  for (const adapt::SegmentInfo& seg : segments) {
    const adapt::SegmentHeader& h = seg.header;
    const std::string name = std::filesystem::path(seg.path).filename().string();
    std::string span = "-";
    if (h.record_count > 0) {
      span = std::to_string(h.decision_min) + ".." + std::to_string(h.decision_max);
    }
    std::printf("%-28s %-6s %10llu %9llu %21s %12llu  %016llx\n", name.c_str(),
                seg.open ? "open" : "sealed", static_cast<unsigned long long>(h.record_count),
                static_cast<unsigned long long>(h.session_count), span.c_str(),
                static_cast<unsigned long long>(h.payload_bytes),
                static_cast<unsigned long long>(h.replay_fingerprint));
    records += h.record_count;
    bytes += h.payload_bytes;
  }
  std::printf("%zu segment(s), %llu record(s), %llu payload byte(s)\n", segments.size(),
              static_cast<unsigned long long>(records), static_cast<unsigned long long>(bytes));
  return 0;
}

int cmd_trace_info(const Args& args) {
  const std::string path = args.required("segment");
  const adapt::SegmentHeader h = adapt::read_segment_header(path);
  std::printf("segment            %s\n", path.c_str());
  std::printf("format version     %u (trace v%u)\n", h.format_version, h.trace_version);
  std::printf("sealed             %s\n", h.sealed != 0 ? "yes" : "no (active/torn tail)");
  std::printf("base seq           %llu\n", static_cast<unsigned long long>(h.base_seq));
  std::printf("records            %llu\n", static_cast<unsigned long long>(h.record_count));
  std::printf("session frames     %llu\n", static_cast<unsigned long long>(h.session_count));
  if (h.record_count > 0) {
    std::printf("sessions           %llu..%llu\n", static_cast<unsigned long long>(h.session_min),
                static_cast<unsigned long long>(h.session_max));
    std::printf("decisions          %llu..%llu\n", static_cast<unsigned long long>(h.decision_min),
                static_cast<unsigned long long>(h.decision_max));
  }
  std::printf("schema fingerprint %016llx\n",
              static_cast<unsigned long long>(h.schema_fingerprint));
  std::printf("steady span        %.3fs\n",
              static_cast<double>(h.close_steady_ns - h.open_steady_ns) * 1e-9);
  std::printf("payload            %llu byte(s), crc %08x\n",
              static_cast<unsigned long long>(h.payload_bytes), h.payload_crc);
  std::printf("replay fingerprint %016llx\n",
              static_cast<unsigned long long>(h.replay_fingerprint));
  return 0;
}

int cmd_trace_dump(const Args& args) {
  const adapt::TelemetryTrace trace = adapt::load_directory(args.required("dir"));
  if (args.flag("out")) {
    const std::string path = args.required("out");
    adapt::save_trace(trace, path);
    std::printf("consolidated %zu session(s), %zu record(s) into %s\n", trace.sessions.size(),
                trace.records.size(), path.c_str());
    return 0;
  }
  const auto limit = static_cast<std::size_t>(args.get_long("limit", 20));
  std::printf("%zu session(s), %zu record(s)\n", trace.sessions.size(), trace.records.size());
  for (std::size_t i = 0; i < trace.records.size() && i < limit; ++i) {
    const adapt::TelemetryRecord& r = trace.records[i];
    std::printf("  session %llu decision %llu %s v%llu action %u (obs %u dims, forecast %u)\n",
                static_cast<unsigned long long>(r.session),
                static_cast<unsigned long long>(r.decision_index),
                r.request_kind() == serve::RequestKind::kDtPolicy ? "dt" : "mbrl",
                static_cast<unsigned long long>(r.policy_version), r.action_index, r.obs_len,
                r.forecast_len);
  }
  if (trace.records.size() > limit) {
    std::printf("  ... %zu more (raise --limit or use --out FILE)\n",
                trace.records.size() - limit);
  }
  return 0;
}

int cmd_trace_replay(const Args& args) {
  const adapt::TelemetryTrace trace = adapt::load_directory(args.required("dir"));
  adapt::ReplayAssets assets;
  adapt::ReplayConfig config;
  if (!build_replay_assets(args, assets, config)) {
    throw std::invalid_argument("trace replay needs assets: --city NAME and/or --policy FILE");
  }
  const adapt::ReplayReport report = adapt::replay_trace(trace, assets, config);
  std::printf("replayed %zu/%zu record(s): %zu matched, %zu skipped (%zu truncated, "
              "%zu missing assets)\n",
              report.replayed, trace.records.size(), report.matched,
              report.skipped_truncated + report.skipped_missing_assets, report.skipped_truncated,
              report.skipped_missing_assets);
  for (const auto& m : report.mismatches) {
    std::printf("  MISMATCH record %zu: served action %zu, replay chose %zu\n", m[0], m[1], m[2]);
  }
  if (report.matched != report.replayed) {
    std::printf("replay DIVERGED — captured decisions are not reproducible with these assets\n");
    return 1;
  }
  std::printf("replay bit-identical\n");
  return 0;
}

int cmd_trace_verify(const Args& args) {
  adapt::ReplayAssets assets;
  adapt::ReplayConfig config;
  const bool with_replay = build_replay_assets(args, assets, config);
  const auto segments = adapt::list_segments(args.required("dir"));
  bool all_ok = true;
  for (const adapt::SegmentInfo& seg : segments) {
    const std::string name = std::filesystem::path(seg.path).filename().string();
    if (seg.open) {
      std::printf("%-28s SKIP  active/torn tail (seal the store first)\n", name.c_str());
      continue;
    }
    const adapt::SegmentVerifyReport report = adapt::verify_segment(
        seg.path, with_replay ? &assets : nullptr, with_replay ? &config : nullptr);
    all_ok = all_ok && report.ok();
    if (!report.structure_ok) {
      std::printf("%-28s FAIL  structure: %s\n", name.c_str(), report.error.c_str());
    } else if (!report.fingerprint_ok) {
      std::printf("%-28s FAIL  recorded-action fingerprint %016llx != header\n", name.c_str(),
                  static_cast<unsigned long long>(report.replay_fingerprint));
    } else if (report.replayed_pass && !report.replay_ok) {
      std::printf("%-28s FAIL  replay: %zu/%zu matched, fingerprint %016llx\n", name.c_str(),
                  report.matched, report.replayed,
                  static_cast<unsigned long long>(report.replay_fingerprint));
    } else {
      std::printf("%-28s OK    %zu record(s)%s\n", name.c_str(), report.records,
                  report.replayed_pass
                      ? (" — replay certified (" + std::to_string(report.replayed) +
                         " replayed, " +
                         std::to_string(report.skipped_truncated +
                                        report.skipped_missing_assets) +
                         " skipped)")
                            .c_str()
                      : " — structural only (pass --city/--policy to replay-certify)");
    }
  }
  if (!all_ok) {
    std::printf("verification FAILED\n");
    return 1;
  }
  std::printf("all %zu segment(s) verified\n", segments.size());
  return 0;
}

int cmd_export_c(const Args& args) {
  const core::DtPolicy policy = core::load_policy(args.required("policy"));
  core::EdgeExportOptions options;
  options.prefix = args.get("prefix", "veri_hvac");
  const std::string style = args.get("style", "table");
  if (style == "nested") {
    options.style = tree::CodegenStyle::kNestedIf;
  } else if (style == "table") {
    options.style = tree::CodegenStyle::kFlatTable;
  } else {
    throw std::invalid_argument("--style must be 'table' or 'nested'");
  }
  const std::string dir = args.get("out", ".");
  core::export_policy_c(policy, dir, options);
  std::printf("wrote %s/%s.c and %s/%s.h\n", dir.c_str(), options.prefix.c_str(), dir.c_str(),
              options.prefix.c_str());
  return 0;
}

int cmd_explain(const Args& args) {
  const core::DtPolicy policy = core::load_policy(args.required("policy"));
  const std::string csv = args.required("input");
  std::vector<double> x;
  std::stringstream stream(csv);
  std::string cell;
  while (std::getline(stream, cell, ',')) x.push_back(std::stod(cell));
  if (x.size() != policy.schema().dims()) {
    // The bundle knows its own layout — report it so a time-aware policy
    // asks for its 9 features by name rather than a hard-coded 6.
    std::string names;
    for (const std::string& name : policy.schema().feature_names()) {
      if (!names.empty()) names += ",";
      names += name;
    }
    throw std::invalid_argument("--input needs " + std::to_string(policy.schema().dims()) +
                                " comma-separated values (" + names + ")");
  }
  std::printf("%s", core::explain(policy, x).to_string().c_str());
  return 0;
}

int cmd_print(const Args& args) {
  const core::DtPolicy policy = core::load_policy(args.required("policy"));
  std::printf("policy: %zu nodes, %zu leaves, depth %zu, %zu actions\n",
              policy.tree().node_count(), policy.tree().leaf_count(), policy.tree().depth(),
              policy.actions().size());
  std::printf("%s\n", core::feature_importance_report(policy).c_str());
  std::printf("%s", core::policy_summary_report(policy).c_str());
  if (args.flag("rules")) {
    std::printf("\n%s", policy.to_text().c_str());
  }
  return 0;
}

/// One subcommand: its option spec (strict), usage line(s), and handler.
struct Command {
  Args::Spec spec;
  std::string usage;
  std::function<int(const Args&)> run;
};

const std::map<std::string, Command>& commands() {
  static const std::map<std::string, Command> table = {
      {"extract",
       {{{"out", true}, {"city", true}, {"points", true}},
        "extract  --out FILE [--city NAME] [--points N]",
        cmd_extract}},
      {"verify",
       {{{"policy", true}, {"city", true}, {"correct", false}, {"out", true}},
        "verify   --policy FILE [--city NAME] [--correct] [--out FILE]",
        cmd_verify}},
      {"campaign",
       {{{"climates", true},
         {"buildings", true},
         {"comfort", true},
         {"envelopes", true},
         {"schema", true},
         {"samples", true},
         {"reach-states", true},
         {"points", true},
         {"seed", true},
         {"recert", true},
         {"out", true},
         {"metrics-out", true},
         {"trace-out", true}},
        "campaign [--climates A,B,..] [--buildings name[:scale],..]\n"
        "         [--comfort winter,summer] [--envelopes mild,design]\n"
        "         [--schema baseline|time-aware] [--samples N]\n"
        "         [--reach-states N] [--points N] [--seed N]\n"
        "         [--recert full|incremental] [--out FILE.csv]\n"
        "         [--metrics-out FILE] [--trace-out FILE.json]",
        cmd_campaign}},
      {"simulate",
       {{{"policy", true}, {"city", true}, {"days", true}},
        "simulate --policy FILE [--city NAME] [--days N]",
        cmd_simulate}},
      {"serve-bench",
       {{{"climates", true},
         {"presets", true},
         {"buildings", true},
         {"steps", true},
         {"mbrl-frac", true},
         {"days", true},
         {"seed", true},
         {"samples", true},
         {"horizon", true},
         {"sync", false},
         {"budget-us", true},
         {"queue-shards", true},
         {"schema", true},
         {"out", true},
         {"metrics-out", true},
         {"trace-out", true}},
        "serve-bench [--climates A,B,..] [--presets name[:scale],..]\n"
        "            [--buildings N] [--steps N] [--mbrl-frac F] [--days N]\n"
        "            [--samples N] [--horizon N] [--seed N] [--sync]\n"
        "            [--budget-us N] [--queue-shards N]\n"
        "            [--schema baseline|time-aware] [--out FILE.json]\n"
        "            [--metrics-out FILE] [--trace-out FILE.json]",
        cmd_serve_bench}},
      {"adapt-bench",
       {{{"city", true},
         {"buildings", true},
         {"steps", true},
         {"drift-step", true},
         {"hvac-factor", true},
         {"eff-factor", true},
         {"leak-factor", true},
         {"mbrl-frac", true},
         {"days", true},
         {"samples", true},
         {"horizon", true},
         {"seed", true},
         {"ph-delta", true},
         {"ph-lambda", true},
         {"min-transitions", true},
         {"safe-threshold", true},
         {"schema", true},
         {"recert", true},
         {"out", true},
         {"telemetry-dir", true},
         {"segment-bytes", true},
         {"metrics-out", true},
         {"trace-out", true}},
        "adapt-bench [--city NAME] [--buildings N] [--steps N] [--drift-step N]\n"
        "            [--hvac-factor F] [--eff-factor F] [--leak-factor F]\n"
        "            [--mbrl-frac F] [--days N] [--samples N] [--horizon N]\n"
        "            [--ph-delta F] [--ph-lambda F] [--min-transitions N]\n"
        "            [--safe-threshold F] [--schema baseline|time-aware]\n"
        "            [--recert full|incremental] [--seed N] [--out FILE.json]\n"
        "            [--telemetry-dir DIR] [--segment-bytes N]\n"
        "            [--metrics-out FILE] [--trace-out FILE.json]",
        cmd_adapt_bench}},
      {"export-c",
       {{{"policy", true}, {"prefix", true}, {"out", true}, {"style", true}},
        "export-c --policy FILE [--prefix ID] [--out DIR] [--style table|nested]",
        cmd_export_c}},
      {"explain",
       {{{"policy", true}, {"input", true}},
        "explain  --policy FILE --input s,To,RH,w,S,occ[,...]  (bundle's schema order)",
        cmd_explain}},
      {"print",
       {{{"policy", true}, {"rules", false}},
        "print    --policy FILE [--rules]",
        cmd_print}},
      {"stats",
       {{{"json", false}, {"out", true}},
        "stats    [--json] [--out FILE]  (instrument-catalog exposition)",
        cmd_stats}},
      // The trace family shares this table: each verb is a two-word key
      // ("trace ls") with its own strict spec, so unknown options and
      // missing values get the same exit-2 + usage discipline as every
      // other subcommand (main() splices the verb into the lookup key).
      {"trace ls", {{{"dir", true}}, "trace ls     --dir DIR", cmd_trace_ls}},
      {"trace info", {{{"segment", true}}, "trace info   --segment FILE", cmd_trace_info}},
      {"trace dump",
       {{{"dir", true}, {"out", true}, {"limit", true}},
        "trace dump   --dir DIR [--out FILE.vht] [--limit N]",
        cmd_trace_dump}},
      {"trace replay",
       {{{"dir", true},
         {"city", true},
         {"schema", true},
         {"policy", true},
         {"policy-version", true},
         {"samples", true},
         {"horizon", true}},
        "trace replay --dir DIR (--city NAME | --policy FILE [--policy-version N])\n"
        "             [--schema baseline|time-aware] [--samples N] [--horizon N]",
        cmd_trace_replay}},
      {"trace verify",
       {{{"dir", true},
         {"city", true},
         {"schema", true},
         {"policy", true},
         {"policy-version", true},
         {"samples", true},
         {"horizon", true}},
        "trace verify --dir DIR [--city NAME] [--policy FILE [--policy-version N]]\n"
        "             [--schema baseline|time-aware] [--samples N] [--horizon N]",
        cmd_trace_verify}},
  };
  return table;
}

void usage() {
  std::fprintf(stderr, "usage: verihvac <command> [options]\n");
  for (const auto& [name, command] : commands()) {
    (void)name;
    std::fprintf(stderr, "  %s\n", command.usage.c_str());
  }
  std::fprintf(stderr,
               "cities: Pittsburgh, Tucson, NewYork. VERI_HVAC_FULL=1 restores the\n"
               "paper-scale hyperparameters for extract/verify; VERI_HVAC_THREADS\n"
               "sizes the shared worker pool for campaign/serve-bench.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    usage();
    return 0;
  }
  // Two-word commands ("trace ls"): splice the verb into the lookup key so
  // the whole family lives in the same spec table as everything else.
  int first_option = 2;
  if (command == "trace") {
    if (argc < 3) {
      std::fprintf(stderr, "verihvac: trace needs a verb (ls|info|dump|replay|verify)\n");
      usage();
      return 2;
    }
    command += " " + std::string(argv[2]);
    first_option = 3;
  }
  const auto it = commands().find(command);
  if (it == commands().end()) {
    std::fprintf(stderr, "verihvac: unknown command '%s'\n", command.c_str());
    usage();
    return 2;
  }
  try {
    const Args args(argc, argv, first_option, it->second.spec);
    return it->second.run(args);
  } catch (const std::invalid_argument& error) {
    // Option/spec errors: say what was wrong and how to call this command.
    std::fprintf(stderr, "verihvac %s: %s\nusage: verihvac %s\n", command.c_str(), error.what(),
                 it->second.usage.c_str());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "verihvac %s: %s\n", command.c_str(), error.what());
    return 1;
  }
}
