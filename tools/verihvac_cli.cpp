// verihvac — command-line front end for the extract -> verify -> deploy
// workflow of the paper (Fig. 2), operating on policy-bundle files.
//
//   verihvac extract  --city Pittsburgh --points 600 --out policy.vhp
//   verihvac verify   --policy policy.vhp [--city Pittsburgh] [--correct]
//   verihvac campaign [--climates A,B] [--buildings name:scale,..] [--out FILE]
//   verihvac simulate --policy policy.vhp --city Pittsburgh [--days 31]
//   verihvac export-c --policy policy.vhp --prefix veri_hvac --out DIR
//   verihvac explain  --policy policy.vhp --input s,To,RH,w,S,occ
//   verihvac print    --policy policy.vhp [--rules]
//
// Every subcommand exits non-zero on failure and prints to stderr; the
// formats are the library's own (core/policy_io bundles, core/edge_export
// C modules), so artifacts interoperate with the examples and benches.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/edge_export.hpp"
#include "core/interpret.hpp"
#include "core/pipeline.hpp"
#include "core/policy_io.hpp"
#include "core/verification.hpp"
#include "envlib/env.hpp"
#include "envlib/metrics.hpp"

namespace {

using namespace verihvac;

/// "--key value" argument map (flags without a value store "").
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected argument: " + key);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  std::string required(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) {
      throw std::invalid_argument("missing required option --" + key);
    }
    return it->second;
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() || it->second.empty() ? fallback : it->second;
  }
  long get_long(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() || it->second.empty() ? fallback : std::stol(it->second);
  }
  bool flag(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_extract(const Args& args) {
  core::PipelineConfig config = core::PipelineConfig::for_city(args.get("city", "Pittsburgh"));
  config.decision_points =
      static_cast<std::size_t>(args.get_long("points", static_cast<long>(config.decision_points)));
  const std::string out = args.required("out");

  const core::PipelineArtifacts artifacts = core::run_pipeline(config);
  core::save_policy(*artifacts.policy, out);
  std::printf("extracted + verified policy for %s\n", config.city.c_str());
  std::printf("  tree: %zu nodes, %zu leaves, depth %zu\n",
              artifacts.policy->tree().node_count(), artifacts.policy->tree().leaf_count(),
              artifacts.policy->tree().depth());
  std::printf("  Algorithm 1 corrections: #2=%zu #3=%zu\n", artifacts.formal.corrected_crit2,
              artifacts.formal.corrected_crit3);
  std::printf("  criterion #1 safe probability: %.3f (%zu samples)\n",
              artifacts.probabilistic.safe_probability, artifacts.probabilistic.samples);
  std::printf("  bundle written to %s\n", out.c_str());
  return 0;
}

int cmd_verify(const Args& args) {
  core::DtPolicy policy = core::load_policy(args.required("policy"));
  core::VerificationCriteria criteria;
  const bool correct = args.flag("correct");

  const core::FormalReport formal = core::verify_formal(policy, criteria, correct);
  std::printf("Algorithm 1 (criteria #2/#3):\n");
  std::printf("  leaves: %zu total, %zu subject #2, %zu subject #3\n", formal.leaves_total,
              formal.leaves_subject_crit2, formal.leaves_subject_crit3);
  std::printf("  violations: #2=%zu #3=%zu%s\n", formal.violations_crit2,
              formal.violations_crit3,
              correct ? " (corrected in-memory; use --out to persist)" : "");

  if (args.flag("city")) {
    // Criterion #1 needs a dynamics model + the city's input distribution;
    // rebuild both from a fresh historical collection.
    core::PipelineConfig config = core::PipelineConfig::for_city(args.get("city", "Pittsburgh"));
    const dyn::TransitionDataset historical =
        dyn::collect_historical_data(config.env, config.collection);
    dyn::DynamicsModel model(config.model);
    model.train(historical);
    core::DecisionDataGenerator generator(historical, config.decision);
    Rng rng(config.verification_seed);
    const core::ProbabilisticReport prob = core::verify_probabilistic_one_step(
        policy, model, generator.sampler(), criteria, config.probabilistic_samples, rng);
    std::printf("criterion #1 (probabilistic, %s): safe probability %.3f -> %s\n",
                config.city.c_str(), prob.safe_probability,
                prob.passes(criteria) ? "PASS" : "FAIL");
  }
  if (correct && args.flag("out")) {
    core::save_policy(policy, args.required("out"));
    std::printf("corrected bundle written to %s\n", args.required("out").c_str());
  }
  return 0;
}

std::vector<std::string> split_csv_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string cell;
  while (std::getline(stream, cell, ',')) {
    if (!cell.empty()) out.push_back(cell);
  }
  return out;
}

int cmd_campaign(const Args& args) {
  core::CampaignConfig config;
  config.climates = split_csv_list(args.get("climates", "Pittsburgh,Tucson,NewYork"));

  // Building presets: "name" (scale 1.0) or "name:scale". "oversized"
  // defaults to the 2x design-day plant of the summer extension.
  config.buildings.clear();
  for (const std::string& spec : split_csv_list(args.get("buildings", "baseline,oversized"))) {
    core::CampaignBuilding building;
    const auto colon = spec.find(':');
    building.name = spec.substr(0, colon);
    if (colon != std::string::npos) {
      building.hvac_scale = std::stod(spec.substr(colon + 1));
    } else if (building.name == "oversized") {
      building.hvac_scale = 2.0;
    }
    config.buildings.push_back(std::move(building));
  }

  config.comfort_bands.clear();
  for (const std::string& name : split_csv_list(args.get("comfort", "winter"))) {
    if (name == "winter") {
      config.comfort_bands.push_back({"winter", env::winter_comfort()});
    } else if (name == "summer") {
      config.comfort_bands.push_back({"summer", env::summer_comfort()});
    } else {
      throw std::invalid_argument("--comfort entries must be 'winter' or 'summer'");
    }
  }

  config.envelopes.clear();
  for (const std::string& name : split_csv_list(args.get("envelopes", "mild"))) {
    if (name == "mild") {
      config.envelopes.push_back({"mild", core::mild_envelope()});
    } else if (name == "design") {
      config.envelopes.push_back({"design", core::DisturbanceBounds{}});
    } else {
      throw std::invalid_argument("--envelopes entries must be 'mild' or 'design'");
    }
  }

  config.probabilistic_samples = static_cast<std::size_t>(
      args.get_long("samples", static_cast<long>(config.probabilistic_samples)));
  config.reach_states = static_cast<std::size_t>(
      args.get_long("reach-states", static_cast<long>(config.reach_states)));
  config.decision_points = static_cast<std::size_t>(args.get_long("points", 0));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 404));

  const core::VerificationEngine engine;  // shared VERI_HVAC_THREADS pool
  const core::CampaignResult result =
      core::run_campaign(config, engine, core::pipeline_asset_provider(config));
  std::printf("%s", result.to_table().c_str());
  std::printf("verification pool: %zu thread(s)\n", engine.thread_count());

  if (args.flag("out")) {
    const std::string path = args.required("out");
    std::ofstream file(path);
    if (!file) throw std::runtime_error("cannot write " + path);
    file << result.to_csv();
    std::printf("campaign CSV written to %s\n", path.c_str());
  }
  return 0;
}

int cmd_simulate(const Args& args) {
  core::DtPolicy policy = core::load_policy(args.required("policy"));
  core::PipelineConfig config = core::PipelineConfig::for_city(args.get("city", "Pittsburgh"));
  config.env.days = static_cast<int>(args.get_long("days", config.env.days));

  env::BuildingEnv building(config.env);
  env::EpisodeMetrics dt_metrics;
  env::Observation obs = building.reset();
  while (true) {
    const auto outcome = building.step(policy.act(obs, {}));
    dt_metrics.add(outcome);
    if (outcome.done) break;
    obs = outcome.observation;
  }

  control::RuleBasedController schedule(config.env.default_occupied,
                                        config.env.default_unoccupied);
  env::BuildingEnv baseline_env(config.env);
  env::EpisodeMetrics default_metrics;
  obs = baseline_env.reset();
  while (true) {
    const auto outcome = baseline_env.step(schedule.act(obs, {}));
    default_metrics.add(outcome);
    if (outcome.done) break;
    obs = outcome.observation;
  }

  std::printf("%-18s %12s %12s\n", "controller", "energy kWh", "violation");
  std::printf("%-18s %12.1f %12.3f\n", "default schedule", default_metrics.total_energy_kwh(),
              default_metrics.violation_rate());
  std::printf("%-18s %12.1f %12.3f\n", "DT policy", dt_metrics.total_energy_kwh(),
              dt_metrics.violation_rate());
  return 0;
}

int cmd_export_c(const Args& args) {
  const core::DtPolicy policy = core::load_policy(args.required("policy"));
  core::EdgeExportOptions options;
  options.prefix = args.get("prefix", "veri_hvac");
  const std::string style = args.get("style", "table");
  if (style == "nested") {
    options.style = tree::CodegenStyle::kNestedIf;
  } else if (style == "table") {
    options.style = tree::CodegenStyle::kFlatTable;
  } else {
    throw std::invalid_argument("--style must be 'table' or 'nested'");
  }
  const std::string dir = args.get("out", ".");
  core::export_policy_c(policy, dir, options);
  std::printf("wrote %s/%s.c and %s/%s.h\n", dir.c_str(), options.prefix.c_str(), dir.c_str(),
              options.prefix.c_str());
  return 0;
}

int cmd_explain(const Args& args) {
  const core::DtPolicy policy = core::load_policy(args.required("policy"));
  const std::string csv = args.required("input");
  std::vector<double> x;
  std::stringstream stream(csv);
  std::string cell;
  while (std::getline(stream, cell, ',')) x.push_back(std::stod(cell));
  if (x.size() != env::kInputDims) {
    throw std::invalid_argument("--input needs 6 comma-separated values "
                                "(zone_temp,outdoor,humidity,wind,solar,occupants)");
  }
  std::printf("%s", core::explain(policy, x).to_string().c_str());
  return 0;
}

int cmd_print(const Args& args) {
  const core::DtPolicy policy = core::load_policy(args.required("policy"));
  std::printf("policy: %zu nodes, %zu leaves, depth %zu, %zu actions\n",
              policy.tree().node_count(), policy.tree().leaf_count(), policy.tree().depth(),
              policy.actions().size());
  std::printf("%s\n", core::feature_importance_report(policy).c_str());
  std::printf("%s", core::policy_summary_report(policy).c_str());
  if (args.flag("rules")) {
    std::printf("\n%s", policy.to_text().c_str());
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: verihvac <command> [options]\n"
               "  extract  --out FILE [--city NAME] [--points N]\n"
               "  verify   --policy FILE [--city NAME] [--correct] [--out FILE]\n"
               "  campaign [--climates A,B,..] [--buildings name[:scale],..]\n"
               "           [--comfort winter,summer] [--envelopes mild,design]\n"
               "           [--samples N] [--reach-states N] [--points N] [--seed N]\n"
               "           [--out FILE.csv]\n"
               "  simulate --policy FILE [--city NAME] [--days N]\n"
               "  export-c --policy FILE [--prefix ID] [--out DIR] [--style table|nested]\n"
               "  explain  --policy FILE --input s,To,RH,w,S,occ\n"
               "  print    --policy FILE [--rules]\n"
               "cities: Pittsburgh, Tucson, NewYork. VERI_HVAC_FULL=1 restores the\n"
               "paper-scale hyperparameters for extract/verify.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (command == "extract") return cmd_extract(args);
    if (command == "verify") return cmd_verify(args);
    if (command == "campaign") return cmd_campaign(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "export-c") return cmd_export_c(args);
    if (command == "explain") return cmd_explain(args);
    if (command == "print") return cmd_print(args);
    usage();
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "verihvac %s: %s\n", command.c_str(), error.what());
    return 1;
  }
}
