#!/usr/bin/env python3
"""Markdown link checker for the repo docs (CI gate, stdlib only).

Checks every inline link in the given markdown files (default: README.md
and docs/*.md):

  * relative file links must resolve to an existing file or directory,
  * fragment links (``file.md#section`` or ``#section``) must match a
    heading in the target file, using GitHub's anchor slugification,
  * absolute URLs (http/https/mailto) are *not* fetched — CI must not
    depend on the network — but must at least parse as URLs.

Exit status is the number of broken links (0 = clean).

Usage: tools/check_markdown_links.py [FILE.md ...]
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) — target may carry a title suffix.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def strip_code_blocks(text: str) -> str:
    """Blanks fenced code blocks so example links inside them are ignored."""
    out: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return "\n".join(out)


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor rule: lowercase, drop punctuation,
    spaces to dashes (inline code/emphasis markers removed first)."""
    text = re.sub(r"[`*_]", "", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    for line in strip_code_blocks(path.read_text(encoding="utf-8")).splitlines():
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(path: Path, repo_root: Path) -> list[str]:
    errors: list[str] = []
    text = strip_code_blocks(path.read_text(encoding="utf-8"))
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.is_relative_to(repo_root):
                # Escapes the repo tree: a site-relative GitHub path (the
                # CI badge's ../../actions/...), resolvable only online.
                continue
            if not resolved.exists():
                errors.append(f"{path.relative_to(repo_root)}: broken link -> {target}")
                continue
        else:
            resolved = path
        if fragment and resolved.suffix == ".md":
            if fragment.lower() not in anchors_of(resolved):
                errors.append(f"{path.relative_to(repo_root)}: missing anchor -> {target}")
    return errors


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(arg).resolve() for arg in argv]
    else:
        files = [repo_root / "README.md"] + sorted((repo_root / "docs").glob("*.md"))
    errors: list[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            errors.append(f"missing file: {path}")
            continue
        checked += 1
        errors.extend(check_file(path, repo_root))
    for error in errors:
        print(error)
    print(f"checked {checked} file(s): {len(errors)} broken link(s)")
    return min(len(errors), 255)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
