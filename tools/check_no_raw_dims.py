#!/usr/bin/env python3
"""Forbid new hard-coded observation-layout references in src/ (CI gate).

The observation layout is owned by ``env::FeatureSchema``
(src/envlib/feature_schema.hpp): code reads dimensions via
``schema.dims()`` and finds semantic columns via role lookup
(``zone_temp_index()``, ``occupancy_index()``, ``index_of(role)``).
Hard-coding ``env::kInputDims`` or the legacy ``InputDim`` enumerators
(``env::kZoneTemp`` .. ``env::kOccupancy``) re-bakes the baseline 6-dim
layout into a layer and silently breaks every non-baseline schema, so new
references outside the allowlisted legacy seams fail this check.

Allowlisted (each keeps a documented legacy-compat duty):

  * envlib/observation.*   — defines the legacy constants themselves,
  * envlib/feature_schema.* — the schema module (maps roles <-> legacy),
  * dynamics/dataset.hpp   — legacy kModelInputDims/kHeatSpIndex aliases,
  * adapt/telemetry.*      — v1 trace compat + schema-less tap fallback.

bench/ and tests/ are intentionally out of scope: pinning the baseline
layout there is the point (bit-identity regressions).

Exit status is the number of violations (0 = clean).

Usage: tools/check_no_raw_dims.py [SRC_DIR]
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

# \b keeps kOccupancyForecastSteps and friends out of the match.
RAW_DIM_RE = re.compile(
    r"\bkInputDims\b|\benv::k(?:ZoneTemp|OutdoorTemp|Humidity|Wind|Solar|Occupancy)\b"
)

ALLOWLIST = {
    "envlib/observation.hpp",
    "envlib/observation.cpp",
    "envlib/feature_schema.hpp",
    "envlib/feature_schema.cpp",
    "dynamics/dataset.hpp",
    "adapt/telemetry.hpp",
    "adapt/telemetry.cpp",
}


def main(argv: list[str]) -> int:
    src = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent / "src"
    violations = 0
    for path in sorted(src.rglob("*")):
        if path.suffix not in {".hpp", ".cpp", ".h", ".cc"}:
            continue
        rel = path.relative_to(src).as_posix()
        if rel in ALLOWLIST:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            match = RAW_DIM_RE.search(line)
            if match:
                violations += 1
                print(f"{src / rel}:{lineno}: raw observation-layout reference "
                      f"'{match.group(0)}' — use the FeatureSchema role lookup instead")
    if violations:
        print(f"{violations} raw-dimension reference(s); the observation layout "
              "belongs to env::FeatureSchema (see src/envlib/feature_schema.hpp)")
    else:
        print("no raw observation-layout references outside the schema module")
    return violations


if __name__ == "__main__":
    sys.exit(main(sys.argv))
