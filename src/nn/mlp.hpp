// Multilayer perceptron with ReLU hidden activations.
//
// Architecture is given as a width list, e.g. {8, 32, 32, 1}. The final
// layer is linear (regression head). Provides batched forward, a
// scratch-free single-sample fast path (the random-shooting optimizer calls
// it millions of times), and backward for training.
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace verihvac::nn {

/// Caller-owned ping-pong activation matrices for the allocation-free
/// batched inference path (same ownership convention as IbpScratch /
/// dyn::PredictScratch: the network stays const, so one scratch per worker
/// thread makes batched inference on a shared model thread-safe).
/// Buffers grow to the largest (batch x width) seen and are then reused.
struct BatchScratch {
  Matrix a;
  Matrix b;
  /// Per-layer transposed-weight staging (see Linear::forward_into).
  std::vector<Matrix> wt;
};

class Mlp {
 public:
  /// Builds the network; `widths` must have >= 2 entries.
  explicit Mlp(const std::vector<std::size_t>& widths);

  std::size_t input_dim() const { return layers_.front().in_features(); }
  std::size_t output_dim() const { return layers_.back().out_features(); }
  std::size_t parameter_count() const;

  void init(Rng& rng);

  /// Batched forward (training / vectorized rollouts).
  Matrix forward(const Matrix& input);
  /// Backward from dL/dY; returns dL/dX (gradients accumulate in layers).
  Matrix backward(const Matrix& grad_output);
  void zero_grad();

  /// Allocation-free single-sample inference into caller-provided scratch.
  /// `scratch` is resized on first use; result has output_dim() entries.
  void predict(const std::vector<double>& input, std::vector<double>& output,
               std::vector<double>& scratch) const;

  /// Batched allocation-free inference: rows of `input` are samples, `out`
  /// becomes (rows x output_dim()). No autograd buffers are touched, so
  /// this is safe on a shared const network with one scratch per thread.
  /// Row r of the result is bit-identical to predict() on row r — the
  /// batched Linear kernel keeps the scalar path's accumulation order (see
  /// Linear::forward_into), which rollout/verification equivalence tests
  /// lock in. `out` must not alias `input` or the scratch buffers.
  void forward_into(const Matrix& input, Matrix& out, BatchScratch& scratch) const;

  std::vector<Linear>& layers() { return layers_; }
  const std::vector<Linear>& layers() const { return layers_; }

  /// Flat parameter access (serialization, tests, optimizer hookup).
  std::vector<double> parameters() const;
  void set_parameters(const std::vector<double>& params);

 private:
  std::vector<Linear> layers_;
  std::vector<Relu> activations_;  // one per hidden layer
};

}  // namespace verihvac::nn
