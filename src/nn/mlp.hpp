// Multilayer perceptron with ReLU hidden activations.
//
// Architecture is given as a width list, e.g. {8, 32, 32, 1}. The final
// layer is linear (regression head). Provides batched forward, a
// scratch-free single-sample fast path (the random-shooting optimizer calls
// it millions of times), and backward for training.
#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace verihvac::nn {

class Mlp {
 public:
  /// Builds the network; `widths` must have >= 2 entries.
  explicit Mlp(const std::vector<std::size_t>& widths);

  std::size_t input_dim() const { return layers_.front().in_features(); }
  std::size_t output_dim() const { return layers_.back().out_features(); }
  std::size_t parameter_count() const;

  void init(Rng& rng);

  /// Batched forward (training / vectorized rollouts).
  Matrix forward(const Matrix& input);
  /// Backward from dL/dY; returns dL/dX (gradients accumulate in layers).
  Matrix backward(const Matrix& grad_output);
  void zero_grad();

  /// Allocation-free single-sample inference into caller-provided scratch.
  /// `scratch` is resized on first use; result has output_dim() entries.
  void predict(const std::vector<double>& input, std::vector<double>& output,
               std::vector<double>& scratch) const;

  std::vector<Linear>& layers() { return layers_; }
  const std::vector<Linear>& layers() const { return layers_; }

  /// Flat parameter access (serialization, tests, optimizer hookup).
  std::vector<double> parameters() const;
  void set_parameters(const std::vector<double>& params);

 private:
  std::vector<Linear> layers_;
  std::vector<Relu> activations_;  // one per hidden layer
};

}  // namespace verihvac::nn
