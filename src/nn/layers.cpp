#include "nn/layers.hpp"

#include <cassert>
#include <cmath>

namespace verihvac::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : weight_(out_features, in_features),
      bias_(1, out_features),
      weight_grad_(out_features, in_features),
      bias_grad_(1, out_features) {}

void Linear::init(Rng& rng) {
  // Kaiming-uniform with gain for ReLU fan-in, as in torch.nn.Linear.
  const double bound = std::sqrt(1.0 / static_cast<double>(in_features()));
  for (double& w : weight_.data()) w = rng.uniform(-bound, bound);
  for (double& b : bias_.data()) b = rng.uniform(-bound, bound);
}

Matrix Linear::forward(const Matrix& input) {
  assert(input.cols() == in_features());
  cached_input_ = input;
  Matrix out = Matrix::multiply_a_bt(input, weight_);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double* row = out.row_data(r);
    for (std::size_t c = 0; c < out.cols(); ++c) row[c] += bias_(0, c);
  }
  return out;
}

Matrix Linear::backward(const Matrix& grad_output) {
  assert(grad_output.cols() == out_features());
  assert(grad_output.rows() == cached_input_.rows());
  // dW += dY^T X ; db += column sums of dY ; dX = dY W.
  weight_grad_ += Matrix::multiply_at_b(grad_output, cached_input_);
  for (std::size_t r = 0; r < grad_output.rows(); ++r) {
    const double* row = grad_output.row_data(r);
    for (std::size_t c = 0; c < grad_output.cols(); ++c) bias_grad_(0, c) += row[c];
  }
  return Matrix::multiply(grad_output, weight_);
}

void Linear::zero_grad() {
  weight_grad_.fill(0.0);
  bias_grad_.fill(0.0);
}

Matrix Relu::forward(const Matrix& input) {
  mask_ = Matrix(input.rows(), input.cols());
  Matrix out = input;
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    if (out.data()[i] > 0.0) {
      mask_.data()[i] = 1.0;
    } else {
      out.data()[i] = 0.0;
    }
  }
  return out;
}

Matrix Relu::backward(const Matrix& grad_output) const {
  assert(grad_output.rows() == mask_.rows() && grad_output.cols() == mask_.cols());
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i) grad.data()[i] *= mask_.data()[i];
  return grad;
}

}  // namespace verihvac::nn
