#include "nn/layers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace verihvac::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : weight_(out_features, in_features),
      bias_(1, out_features),
      weight_grad_(out_features, in_features),
      bias_grad_(1, out_features) {}

void Linear::init(Rng& rng) {
  // Kaiming-uniform with gain for ReLU fan-in, as in torch.nn.Linear.
  const double bound = std::sqrt(1.0 / static_cast<double>(in_features()));
  for (double& w : weight_.data()) w = rng.uniform(-bound, bound);
  for (double& b : bias_.data()) b = rng.uniform(-bound, bound);
}

Matrix Linear::forward(const Matrix& input) {
  assert(input.cols() == in_features());
  cached_input_ = input;
  Matrix out = Matrix::multiply_a_bt(input, weight_);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double* row = out.row_data(r);
    for (std::size_t c = 0; c < out.cols(); ++c) row[c] += bias_(0, c);
  }
  return out;
}

void Linear::forward_into(const Matrix& input, Matrix& out, Matrix& wt_scratch) const {
  assert(input.cols() == in_features());
  assert(&input != &out && "forward_into: output aliases the input");
  const std::size_t n = input.rows();
  const std::size_t in = in_features();
  const std::size_t on = out_features();

  // Thin output layers (e.g. the 32 -> 1 regression head) are pure
  // reductions over k — latency-bound on one FP-add chain per output. Row
  // blocking flips the parallelism axis: eight candidates' chains retire
  // together, each still bias-first k-ascending, so bits are unchanged.
  if (on < 8) {
    out.reshape(n, on);
    const double* bias = bias_.row_data(0);
    constexpr std::size_t kRows = 8;
    std::size_t r = 0;
    for (; r + kRows <= n; r += kRows) {
      const double* x[kRows];
      for (std::size_t j = 0; j < kRows; ++j) x[j] = input.row_data(r + j);
      for (std::size_t o = 0; o < on; ++o) {
        const double* __restrict wrow = weight_.row_data(o);
        double acc[kRows];
        for (std::size_t j = 0; j < kRows; ++j) acc[j] = bias[o];
        for (std::size_t k = 0; k < in; ++k) {
          const double wk = wrow[k];
          for (std::size_t j = 0; j < kRows; ++j) acc[j] += wk * x[j][k];
        }
        for (std::size_t j = 0; j < kRows; ++j) out(r + j, o) = acc[j];
      }
    }
    for (; r < n; ++r) {
      const double* __restrict x = input.row_data(r);
      double* __restrict y = out.row_data(r);
      for (std::size_t o = 0; o < on; ++o) {
        const double* __restrict wrow = weight_.row_data(o);
        double sum = bias[o];
        for (std::size_t k = 0; k < in; ++k) sum += wrow[k] * x[k];
        y[o] = sum;
      }
    }
    return;
  }

  // Stage W^T (in x out) so the GEMM inner loop is contiguous in both the
  // output row and the weight row. The copy is O(in*on) against the
  // O(n*in*on) product — noise for any real batch.
  wt_scratch.reshape(in, on);
  for (std::size_t o = 0; o < on; ++o) {
    const double* wrow = weight_.row_data(o);
    for (std::size_t k = 0; k < in; ++k) wt_scratch(k, o) = wrow[k];
  }

  // i-k-j with register-tiled outputs: each kOTile-wide slice of the
  // output row lives in a fixed-size local accumulator (compile-time
  // bounds, so it stays in vector registers) across the whole k loop, and
  // is stored exactly once. Element (r, o) accumulates bias[o] first, then
  // w[o][k] * x[r][k] with k ascending — exactly the scalar predict order,
  // so batched results match it bit-for-bit; the vector lanes are
  // *independent* outputs, so vectorization reorders no chain.
  out.reshape(n, on);
  const double* bias = bias_.row_data(0);
  constexpr std::size_t kOTile = 32;
  for (std::size_t r = 0; r < n; ++r) {
    const double* __restrict x = input.row_data(r);
    double* __restrict y = out.row_data(r);
    std::size_t o0 = 0;
    for (; o0 + kOTile <= on; o0 += kOTile) {
      double acc[kOTile];
      for (std::size_t j = 0; j < kOTile; ++j) acc[j] = bias[o0 + j];
      for (std::size_t k = 0; k < in; ++k) {
        const double xk = x[k];
        const double* __restrict wrow = wt_scratch.row_data(k) + o0;
        for (std::size_t j = 0; j < kOTile; ++j) acc[j] += xk * wrow[j];
      }
      for (std::size_t j = 0; j < kOTile; ++j) y[o0 + j] = acc[j];
    }
    if (o0 < on) {  // remainder tile with a runtime width
      const std::size_t width = on - o0;
      double acc[kOTile];
      for (std::size_t j = 0; j < width; ++j) acc[j] = bias[o0 + j];
      for (std::size_t k = 0; k < in; ++k) {
        const double xk = x[k];
        const double* __restrict wrow = wt_scratch.row_data(k) + o0;
        for (std::size_t j = 0; j < width; ++j) acc[j] += xk * wrow[j];
      }
      for (std::size_t j = 0; j < width; ++j) y[o0 + j] = acc[j];
    }
  }
}

void Linear::forward_into(const Matrix& input, Matrix& out) const {
  static thread_local Matrix wt_scratch;
  forward_into(input, out, wt_scratch);
}

Matrix Linear::backward(const Matrix& grad_output) {
  assert(grad_output.cols() == out_features());
  assert(grad_output.rows() == cached_input_.rows());
  // dW += dY^T X ; db += column sums of dY ; dX = dY W.
  weight_grad_ += Matrix::multiply_at_b(grad_output, cached_input_);
  for (std::size_t r = 0; r < grad_output.rows(); ++r) {
    const double* row = grad_output.row_data(r);
    for (std::size_t c = 0; c < grad_output.cols(); ++c) bias_grad_(0, c) += row[c];
  }
  return Matrix::multiply(grad_output, weight_);
}

void Linear::zero_grad() {
  weight_grad_.fill(0.0);
  bias_grad_.fill(0.0);
}

Matrix Relu::forward(const Matrix& input) {
  mask_ = Matrix(input.rows(), input.cols());
  Matrix out = input;
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    if (out.data()[i] > 0.0) {
      mask_.data()[i] = 1.0;
    } else {
      out.data()[i] = 0.0;
    }
  }
  return out;
}

void Relu::forward_into(const Matrix& input, Matrix& out) const {
  out.reshape(input.rows(), input.cols());  // every element is overwritten
  const std::vector<double>& src = input.data();
  std::vector<double>& dst = out.data();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = std::max(src[i], 0.0);
}

void Relu::forward_inplace(Matrix& x) const {
  for (double& v : x.data()) v = std::max(v, 0.0);
}

Matrix Relu::backward(const Matrix& grad_output) const {
  assert(grad_output.rows() == mask_.rows() && grad_output.cols() == mask_.cols());
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i) grad.data()[i] *= mask_.data()[i];
  return grad;
}

}  // namespace verihvac::nn
