#include "nn/interval_bounds.hpp"

#include <algorithm>
#include <stdexcept>

namespace verihvac::nn {

std::vector<Interval> propagate_linear(const Linear& layer, const std::vector<Interval>& input) {
  if (input.size() != layer.in_features()) {
    throw std::invalid_argument("propagate_linear: input box has wrong dimension");
  }
  const Matrix& w = layer.weight();  // out x in
  const Matrix& b = layer.bias();    // 1 x out
  std::vector<Interval> out(layer.out_features());
  for (std::size_t j = 0; j < layer.out_features(); ++j) {
    double lo = b(0, j);
    double hi = b(0, j);
    for (std::size_t i = 0; i < layer.in_features(); ++i) {
      const double weight = w(j, i);
      if (weight >= 0.0) {
        lo += weight * input[i].lo;
        hi += weight * input[i].hi;
      } else {
        lo += weight * input[i].hi;
        hi += weight * input[i].lo;
      }
    }
    out[j] = Interval{lo, hi};
  }
  return out;
}

std::vector<Interval> propagate_relu(const std::vector<Interval>& input) {
  std::vector<Interval> out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    out[i] = Interval{std::max(input[i].lo, 0.0), std::max(input[i].hi, 0.0)};
  }
  return out;
}

std::vector<Interval> propagate_bounds(const Mlp& mlp, const std::vector<Interval>& input) {
  if (input.size() != mlp.input_dim()) {
    throw std::invalid_argument("propagate_bounds: input box has wrong dimension");
  }
  const auto& layers = mlp.layers();
  std::vector<Interval> bounds = input;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    bounds = propagate_linear(layers[l], bounds);
    const bool is_hidden = l + 1 < layers.size();
    if (is_hidden) bounds = propagate_relu(bounds);
  }
  return bounds;
}

}  // namespace verihvac::nn
