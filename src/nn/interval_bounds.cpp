#include "nn/interval_bounds.hpp"

#include <algorithm>
#include <stdexcept>

namespace verihvac::nn {

void propagate_linear(const Linear& layer, const std::vector<Interval>& input,
                      std::vector<Interval>& out) {
  if (input.size() != layer.in_features()) {
    throw std::invalid_argument("propagate_linear: input box has wrong dimension");
  }
  const Matrix& w = layer.weight();  // out x in
  const Matrix& b = layer.bias();    // 1 x out
  out.resize(layer.out_features());
  for (std::size_t j = 0; j < layer.out_features(); ++j) {
    double lo = b(0, j);
    double hi = b(0, j);
    for (std::size_t i = 0; i < layer.in_features(); ++i) {
      const double weight = w(j, i);
      if (weight >= 0.0) {
        lo += weight * input[i].lo;
        hi += weight * input[i].hi;
      } else {
        lo += weight * input[i].hi;
        hi += weight * input[i].lo;
      }
    }
    out[j] = Interval{lo, hi};
  }
}

std::vector<Interval> propagate_linear(const Linear& layer, const std::vector<Interval>& input) {
  std::vector<Interval> out;
  propagate_linear(layer, input, out);
  return out;
}

void propagate_relu_inplace(std::vector<Interval>& bounds) {
  for (auto& iv : bounds) {
    iv = Interval{std::max(iv.lo, 0.0), std::max(iv.hi, 0.0)};
  }
}

std::vector<Interval> propagate_relu(const std::vector<Interval>& input) {
  std::vector<Interval> out = input;
  propagate_relu_inplace(out);
  return out;
}

const std::vector<Interval>& propagate_bounds(const Mlp& mlp, const std::vector<Interval>& input,
                                              IbpScratch& scratch) {
  if (input.size() != mlp.input_dim()) {
    throw std::invalid_argument("propagate_bounds: input box has wrong dimension");
  }
  const auto& layers = mlp.layers();
  // Ping-pong between the two scratch buffers: `current` always holds the
  // bounds entering the next layer.
  scratch.a.assign(input.begin(), input.end());
  std::vector<Interval>* current = &scratch.a;
  std::vector<Interval>* next = &scratch.b;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    propagate_linear(layers[l], *current, *next);
    std::swap(current, next);
    const bool is_hidden = l + 1 < layers.size();
    if (is_hidden) propagate_relu_inplace(*current);
  }
  return *current;
}

std::vector<Interval> propagate_bounds(const Mlp& mlp, const std::vector<Interval>& input) {
  IbpScratch scratch;
  return propagate_bounds(mlp, input, scratch);
}

}  // namespace verihvac::nn
