// Minibatch MSE trainer.
//
// Implements the paper's training loop: epochs = 150, Adam(lr 1e-3,
// weight-decay 1e-5), MSE loss, shuffled minibatches. Also reports
// train/validation loss histories so model quality is inspectable.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/adam.hpp"
#include "nn/mlp.hpp"

namespace verihvac::nn {

struct TrainerConfig {
  std::size_t epochs = 150;
  std::size_t batch_size = 64;
  AdamConfig adam;
  /// Fraction of the data held out for validation-loss reporting.
  double validation_fraction = 0.1;
  std::uint64_t shuffle_seed = 7;
};

struct TrainingReport {
  std::vector<double> train_loss_per_epoch;
  std::vector<double> val_loss_per_epoch;
  double final_train_loss = 0.0;
  double final_val_loss = 0.0;
};

/// Mean squared error over all elements.
double mse_loss(const Matrix& prediction, const Matrix& target);
/// Gradient of MSE w.r.t. prediction (2*(pred - target)/N).
Matrix mse_gradient(const Matrix& prediction, const Matrix& target);

/// Trains `model` in place on (inputs, targets); rows are samples. Inputs
/// and targets are expected pre-normalized by the caller (see
/// dynamics::DynamicsModel for the end-to-end wrapper).
TrainingReport train(Mlp& model, const Matrix& inputs, const Matrix& targets,
                     const TrainerConfig& config);

}  // namespace verihvac::nn
