#include "nn/mlp.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace verihvac::nn {

Mlp::Mlp(const std::vector<std::size_t>& widths) {
  if (widths.size() < 2) throw std::invalid_argument("Mlp needs >= 2 widths");
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    layers_.emplace_back(widths[i], widths[i + 1]);
  }
  activations_.resize(layers_.size() - 1);
}

std::size_t Mlp::parameter_count() const {
  std::size_t count = 0;
  for (const auto& layer : layers_) {
    count += layer.weight().size() + layer.bias().size();
  }
  return count;
}

void Mlp::init(Rng& rng) {
  for (auto& layer : layers_) layer.init(rng);
}

Matrix Mlp::forward(const Matrix& input) {
  Matrix x = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i].forward(x);
    if (i < activations_.size()) x = activations_[i].forward(x);
  }
  return x;
}

Matrix Mlp::backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    if (i < activations_.size()) grad = activations_[i].backward(grad);
    grad = layers_[i].backward(grad);
  }
  return grad;
}

void Mlp::zero_grad() {
  for (auto& layer : layers_) layer.zero_grad();
}

void Mlp::predict(const std::vector<double>& input, std::vector<double>& output,
                  std::vector<double>& scratch) const {
  assert(input.size() == input_dim());
  // Ping-pong between `scratch` and `output` so no layer allocates; the
  // source of layer 0 is the caller's input, afterwards the previous buffer.
  const std::vector<double>* src = &input;
  std::vector<double>* buffers[2] = {&scratch, &output};
  int which = 0;

  for (std::size_t li = 0; li < layers_.size(); ++li) {
    std::vector<double>* dst = buffers[which];
    which ^= 1;

    const Linear& layer = layers_[li];
    dst->assign(layer.out_features(), 0.0);
    const Matrix& w = layer.weight();
    const Matrix& b = layer.bias();
    for (std::size_t o = 0; o < layer.out_features(); ++o) {
      const double* wrow = w.row_data(o);
      double sum = b(0, o);
      for (std::size_t i = 0; i < layer.in_features(); ++i) sum += wrow[i] * (*src)[i];
      (*dst)[o] = sum;
    }
    if (li + 1 < layers_.size()) {
      for (double& v : *dst) v = std::max(v, 0.0);
    }
    src = dst;
  }
  if (src != &output) output = *src;
}

void Mlp::forward_into(const Matrix& input, Matrix& out, BatchScratch& scratch) const {
  assert(input.cols() == input_dim());
  // Same ping-pong as predict(), lifted to whole batches: layer li reads
  // one scratch matrix and writes the other, ReLU runs in place on the
  // freshly written buffer, and the final (narrow) activation is copied
  // into `out` once.
  const Matrix* src = &input;
  Matrix* buffers[2] = {&scratch.a, &scratch.b};
  int which = 0;
  scratch.wt.resize(layers_.size());

  for (std::size_t li = 0; li < layers_.size(); ++li) {
    Matrix* dst = buffers[which];
    which ^= 1;
    layers_[li].forward_into(*src, *dst, scratch.wt[li]);
    if (li < activations_.size()) activations_[li].forward_inplace(*dst);
    src = dst;
  }
  out = *src;  // vector copy-assign: reuses out's capacity
}

std::vector<double> Mlp::parameters() const {
  std::vector<double> flat;
  flat.reserve(parameter_count());
  for (const auto& layer : layers_) {
    const auto& w = layer.weight().data();
    const auto& b = layer.bias().data();
    flat.insert(flat.end(), w.begin(), w.end());
    flat.insert(flat.end(), b.begin(), b.end());
  }
  return flat;
}

void Mlp::set_parameters(const std::vector<double>& params) {
  if (params.size() != parameter_count()) {
    throw std::invalid_argument("set_parameters: wrong size");
  }
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    auto& w = layer.weight().data();
    std::copy_n(params.begin() + static_cast<long>(offset), w.size(), w.begin());
    offset += w.size();
    auto& b = layer.bias().data();
    std::copy_n(params.begin() + static_cast<long>(offset), b.size(), b.begin());
    offset += b.size();
  }
}

}  // namespace verihvac::nn
