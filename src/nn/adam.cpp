#include "nn/adam.hpp"

#include <cmath>

namespace verihvac::nn {

Adam::Adam(Mlp& model, AdamConfig config) : config_(config) {
  for (auto& layer : model.layers()) {
    auto add = [this](Matrix& params, Matrix& grads) {
      for (std::size_t i = 0; i < params.data().size(); ++i) {
        slots_.push_back(Slot{&params.data()[i], &grads.data()[i]});
      }
    };
    add(layer.weight(), layer.weight_grad());
    add(layer.bias(), layer.bias_grad());
  }
  m_.assign(slots_.size(), 0.0);
  v_.assign(slots_.size(), 0.0);
}

void Adam::step() {
  ++t_;
  const double bias_correction1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bias_correction2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    double g = *slots_[i].grad + config_.weight_decay * *slots_[i].param;
    m_[i] = config_.beta1 * m_[i] + (1.0 - config_.beta1) * g;
    v_[i] = config_.beta2 * v_[i] + (1.0 - config_.beta2) * g * g;
    const double m_hat = m_[i] / bias_correction1;
    const double v_hat = v_[i] / bias_correction2;
    *slots_[i].param -= config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
  }
}

}  // namespace verihvac::nn
