#include "nn/normalizer.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace verihvac::nn {

void Normalizer::fit(const Matrix& data) {
  if (data.rows() == 0) throw std::invalid_argument("Normalizer::fit on empty data");
  const std::size_t dims = data.cols();
  mean_.assign(dims, 0.0);
  std_.assign(dims, 0.0);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < dims; ++c) mean_[c] += data(r, c);
  }
  for (double& m : mean_) m /= static_cast<double>(data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < dims; ++c) {
      const double d = data(r, c) - mean_[c];
      std_[c] += d * d;
    }
  }
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(data.rows()));
    if (s < 1e-9) s = 1.0;  // constant feature: pass through
  }
}

Matrix Normalizer::transform(const Matrix& data) const {
  assert(fitted() && data.cols() == dims());
  Matrix out = data;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = (out(r, c) - mean_[c]) / std_[c];
    }
  }
  return out;
}

Matrix Normalizer::inverse_transform(const Matrix& data) const {
  assert(fitted() && data.cols() == dims());
  Matrix out = data;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = out(r, c) * std_[c] + mean_[c];
    }
  }
  return out;
}

void Normalizer::transform_into(const Matrix& data, Matrix& out) const {
  assert(fitted() && data.cols() == dims());
  assert(&data != &out && "transform_into: output aliases the input");
  out.reshape(data.rows(), data.cols());  // every element is overwritten
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const double* src = data.row_data(r);
    double* dst = out.row_data(r);
    for (std::size_t c = 0; c < data.cols(); ++c) dst[c] = (src[c] - mean_[c]) / std_[c];
  }
}

void Normalizer::inverse_transform_into(const Matrix& data, Matrix& out) const {
  assert(fitted() && data.cols() == dims());
  assert(&data != &out && "inverse_transform_into: output aliases the input");
  out.reshape(data.rows(), data.cols());  // every element is overwritten
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const double* src = data.row_data(r);
    double* dst = out.row_data(r);
    for (std::size_t c = 0; c < data.cols(); ++c) dst[c] = src[c] * std_[c] + mean_[c];
  }
}

void Normalizer::transform_inplace(std::vector<double>& x) const {
  assert(fitted() && x.size() == dims());
  for (std::size_t c = 0; c < x.size(); ++c) x[c] = (x[c] - mean_[c]) / std_[c];
}

void Normalizer::inverse_transform_inplace(std::vector<double>& x) const {
  assert(fitted() && x.size() == dims());
  for (std::size_t c = 0; c < x.size(); ++c) x[c] = x[c] * std_[c] + mean_[c];
}

}  // namespace verihvac::nn
