// Adam optimizer with decoupled L2 weight decay.
//
// Matches the paper's training setup: Adam, learning_rate = 1e-3,
// weight_decay = 1e-5 (applied as classic L2-into-gradient, which is what
// torch.optim.Adam's weight_decay does).
#pragma once

#include <vector>

#include "nn/mlp.hpp"

namespace verihvac::nn {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 1e-5;
};

class Adam {
 public:
  Adam(Mlp& model, AdamConfig config = {});

  /// Applies one update from the gradients accumulated in the model's
  /// layers, then leaves gradients untouched (caller zero_grads).
  void step();

  const AdamConfig& config() const { return config_; }
  std::size_t steps_taken() const { return t_; }

 private:
  // Parameter/gradient views over all layers, flattened.
  struct Slot {
    double* param;
    const double* grad;
  };
  std::vector<Slot> slots_;
  std::vector<double> m_;
  std::vector<double> v_;
  AdamConfig config_;
  std::size_t t_ = 0;
};

}  // namespace verihvac::nn
