#include "nn/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/rng.hpp"

namespace verihvac::nn {

double mse_loss(const Matrix& prediction, const Matrix& target) {
  assert(prediction.rows() == target.rows() && prediction.cols() == target.cols());
  double sum = 0.0;
  for (std::size_t i = 0; i < prediction.data().size(); ++i) {
    const double d = prediction.data()[i] - target.data()[i];
    sum += d * d;
  }
  return sum / static_cast<double>(prediction.data().size());
}

Matrix mse_gradient(const Matrix& prediction, const Matrix& target) {
  Matrix grad = prediction;
  grad -= target;
  grad *= 2.0 / static_cast<double>(prediction.data().size());
  return grad;
}

namespace {

Matrix gather_rows(const Matrix& data, const std::vector<std::size_t>& indices,
                   std::size_t begin, std::size_t end) {
  Matrix out(end - begin, data.cols());
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t c = 0; c < data.cols(); ++c) out(i - begin, c) = data(indices[i], c);
  }
  return out;
}

}  // namespace

TrainingReport train(Mlp& model, const Matrix& inputs, const Matrix& targets,
                     const TrainerConfig& config) {
  if (inputs.rows() != targets.rows() || inputs.rows() == 0) {
    throw std::invalid_argument("train: inputs/targets row mismatch or empty");
  }
  Rng rng(config.shuffle_seed);
  Adam optimizer(model, config.adam);

  // Split train/validation once.
  auto perm = rng.permutation(inputs.rows());
  const auto val_count = static_cast<std::size_t>(
      config.validation_fraction * static_cast<double>(inputs.rows()));
  const std::size_t train_count = inputs.rows() - val_count;
  std::vector<std::size_t> train_idx(perm.begin(), perm.begin() + static_cast<long>(train_count));
  std::vector<std::size_t> val_idx(perm.begin() + static_cast<long>(train_count), perm.end());

  const Matrix val_x = gather_rows(inputs, val_idx, 0, val_idx.size());
  const Matrix val_y = gather_rows(targets, val_idx, 0, val_idx.size());

  TrainingReport report;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Reshuffle training indices each epoch.
    for (std::size_t i = train_idx.size(); i > 1; --i) {
      std::swap(train_idx[i - 1], train_idx[rng.index(i)]);
    }
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < train_count; begin += config.batch_size) {
      const std::size_t end = std::min(begin + config.batch_size, train_count);
      const Matrix bx = gather_rows(inputs, train_idx, begin, end);
      const Matrix by = gather_rows(targets, train_idx, begin, end);

      model.zero_grad();
      const Matrix pred = model.forward(bx);
      epoch_loss += mse_loss(pred, by);
      ++batches;
      model.backward(mse_gradient(pred, by));
      optimizer.step();
    }
    report.train_loss_per_epoch.push_back(epoch_loss / static_cast<double>(std::max<std::size_t>(batches, 1)));
    if (val_idx.empty()) {
      report.val_loss_per_epoch.push_back(report.train_loss_per_epoch.back());
    } else {
      Matrix val_pred = model.forward(val_x);
      report.val_loss_per_epoch.push_back(mse_loss(val_pred, val_y));
    }
  }
  report.final_train_loss =
      report.train_loss_per_epoch.empty() ? 0.0 : report.train_loss_per_epoch.back();
  report.final_val_loss =
      report.val_loss_per_epoch.empty() ? 0.0 : report.val_loss_per_epoch.back();
  return report;
}

}  // namespace verihvac::nn
