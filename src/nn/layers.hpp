// Neural-network layers (PyTorch substitute, regression-scale).
//
// The paper's thermal dynamics model is a small fully-connected MLP; this
// module implements exactly the pieces needed to train one: a Linear layer
// with explicit forward/backward, and ReLU activation. Batches are dense
// row-major matrices (rows = samples).
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace verihvac::nn {

/// Fully-connected layer: Y = X W^T + b, with gradient accumulation.
class Linear {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  std::size_t in_features() const { return weight_.cols(); }
  std::size_t out_features() const { return weight_.rows(); }

  /// Kaiming-uniform initialization (the PyTorch default for Linear).
  void init(Rng& rng);

  /// Forward pass; caches the input for backward.
  Matrix forward(const Matrix& input);
  /// Allocation-free inference forward into caller-owned `out` (resized in
  /// place; must not alias `input`). No input caching, no autograd
  /// buffers — safe on a shared const layer from many threads at once.
  ///
  /// Bit-compat contract: every output element accumulates as
  /// bias + sum_k w[o][k] * x[k] with k ascending — the exact order of the
  /// scalar Mlp::predict hot path — so batched and scalar inference agree
  /// to the last bit. The kernel achieves this order with an i-k-j loop
  /// over the *transposed* weights (staged into `wt_scratch`): the inner
  /// loop runs across independent output columns, so it vectorizes freely
  /// without reassociating any single output's accumulation chain (the
  /// scalar path is an unvectorizable reduction — this is where the
  /// batch-pipeline speedup comes from).
  void forward_into(const Matrix& input, Matrix& out, Matrix& wt_scratch) const;
  /// Convenience overload with an internal thread-local weight-transpose
  /// scratch (tests, one-off calls; the Mlp hot path passes its own).
  void forward_into(const Matrix& input, Matrix& out) const;
  /// Backward pass: accumulates dW/db, returns dL/dX.
  Matrix backward(const Matrix& grad_output);

  void zero_grad();

  Matrix& weight() { return weight_; }
  Matrix& bias() { return bias_; }
  const Matrix& weight() const { return weight_; }
  const Matrix& bias() const { return bias_; }
  Matrix& weight_grad() { return weight_grad_; }
  Matrix& bias_grad() { return bias_grad_; }

 private:
  Matrix weight_;       // out x in
  Matrix bias_;         // 1 x out
  Matrix weight_grad_;  // out x in
  Matrix bias_grad_;    // 1 x out
  Matrix cached_input_;
};

/// Elementwise ReLU with cached mask.
class Relu {
 public:
  Matrix forward(const Matrix& input);
  Matrix backward(const Matrix& grad_output) const;

  /// Mask-free inference variants (no state touched, thread-safe on a
  /// shared const instance). Same max(v, 0.0) expression as the scalar
  /// Mlp::predict path, so NaN handling matches it bit-for-bit.
  void forward_into(const Matrix& input, Matrix& out) const;
  void forward_inplace(Matrix& x) const;

 private:
  Matrix mask_;
};

}  // namespace verihvac::nn
