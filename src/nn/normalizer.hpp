// Feature standardization (z-score) for network inputs/targets.
//
// Fitted on the training split; applied on every prediction. Constant
// features get unit scale so they pass through unchanged.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace verihvac::nn {

class Normalizer {
 public:
  Normalizer() = default;

  /// Fits per-column mean/std on `data` (rows = samples).
  void fit(const Matrix& data);

  bool fitted() const { return !mean_.empty(); }
  std::size_t dims() const { return mean_.size(); }

  Matrix transform(const Matrix& data) const;
  Matrix inverse_transform(const Matrix& data) const;

  /// Allocation-free batched variants into caller-owned `out` (resized in
  /// place, capacity reused; must not alias `data`). Same per-element
  /// expression as the in-place single-sample path, so batched and scalar
  /// normalization agree bit-for-bit.
  void transform_into(const Matrix& data, Matrix& out) const;
  void inverse_transform_into(const Matrix& data, Matrix& out) const;

  /// In-place single-sample variants (hot path of rollout prediction).
  void transform_inplace(std::vector<double>& x) const;
  void inverse_transform_inplace(std::vector<double>& x) const;

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& std() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace verihvac::nn
