// Interval bound propagation (IBP) through an MLP.
//
// Given elementwise intervals on the network input, computes *sound*
// intervals on every output: for any concrete x inside the input box, the
// network's output is guaranteed to lie inside the returned box. This is
// the standard IBP relaxation used by neural-network verifiers (and the
// simplest member of the CROWN/DeepPoly family): a Linear layer maps
// intervals through the exact interval image of an affine map, and ReLU
// clamps the bounds at zero. Soundness is exact per layer; looseness comes
// only from ignoring inter-neuron correlations, so bounds widen with depth
// and with input-box width — the classic IBP trade-off the interval
// verifier's tests and ablation bench quantify.
#pragma once

#include <vector>

#include "common/interval.hpp"
#include "nn/mlp.hpp"

namespace verihvac::nn {

/// Interval image of one Linear layer: y = W x + b.
std::vector<Interval> propagate_linear(const Linear& layer, const std::vector<Interval>& input);

/// Interval image of ReLU: [max(lo, 0), max(hi, 0)].
std::vector<Interval> propagate_relu(const std::vector<Interval>& input);

/// Sound output bounds of the full network over the input box.
/// Throws std::invalid_argument if the box does not match input_dim().
std::vector<Interval> propagate_bounds(const Mlp& mlp, const std::vector<Interval>& input);

}  // namespace verihvac::nn
