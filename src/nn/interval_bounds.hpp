// Interval bound propagation (IBP) through an MLP.
//
// Given elementwise intervals on the network input, computes *sound*
// intervals on every output: for any concrete x inside the input box, the
// network's output is guaranteed to lie inside the returned box. This is
// the standard IBP relaxation used by neural-network verifiers (and the
// simplest member of the CROWN/DeepPoly family): a Linear layer maps
// intervals through the exact interval image of an affine map, and ReLU
// clamps the bounds at zero. Soundness is exact per layer; looseness comes
// only from ignoring inter-neuron correlations, so bounds widen with depth
// and with input-box width — the classic IBP trade-off the interval
// verifier's tests and ablation bench quantify.
#pragma once

#include <vector>

#include "common/interval.hpp"
#include "nn/mlp.hpp"

namespace verihvac::nn {

/// Caller-owned ping-pong buffers for the allocation-free bound
/// propagation path. The MLP itself is immutable during propagation, so
/// giving each worker thread its own scratch makes IBP on a shared const
/// network thread-safe — the certification fan-out of
/// core::VerificationEngine runs one instance per pool worker.
struct IbpScratch {
  std::vector<Interval> a;
  std::vector<Interval> b;
};

/// Interval image of one Linear layer: y = W x + b.
std::vector<Interval> propagate_linear(const Linear& layer, const std::vector<Interval>& input);

/// Allocation-free variant writing into `out` (resized as needed).
/// `&input != &out` is required.
void propagate_linear(const Linear& layer, const std::vector<Interval>& input,
                      std::vector<Interval>& out);

/// Interval image of ReLU: [max(lo, 0), max(hi, 0)].
std::vector<Interval> propagate_relu(const std::vector<Interval>& input);

/// In-place ReLU clamp (the scratch path's variant).
void propagate_relu_inplace(std::vector<Interval>& bounds);

/// Sound output bounds of the full network over the input box.
/// Throws std::invalid_argument if the box does not match input_dim().
std::vector<Interval> propagate_bounds(const Mlp& mlp, const std::vector<Interval>& input);

/// Thread-safe scratch variant: identical arithmetic, all mutable state in
/// the caller-provided buffers. The returned reference points into
/// `scratch` and is valid until the next propagation with that scratch.
const std::vector<Interval>& propagate_bounds(const Mlp& mlp, const std::vector<Interval>& input,
                                              IbpScratch& scratch);

}  // namespace verihvac::nn
