#include "envlib/multizone_metrics.hpp"

#include <stdexcept>

namespace verihvac::env {

MultiZoneMetrics::MultiZoneMetrics(std::size_t zones) : zone_occupied_violations_(zones, 0) {
  if (zones == 0) throw std::invalid_argument("MultiZoneMetrics: zones must be positive");
}

void MultiZoneMetrics::add(const MultiZoneStepOutcome& outcome) {
  if (outcome.comfort_violations.size() != zones()) {
    throw std::invalid_argument("MultiZoneMetrics::add: zone count mismatch");
  }
  ++steps_;
  energy_kwh_ += outcome.energy_kwh;
  for (double r : outcome.rewards) reward_ += r;
  if (outcome.occupied) {
    ++occupied_steps_;
    for (std::size_t z = 0; z < zones(); ++z) {
      if (outcome.comfort_violations[z]) ++zone_occupied_violations_[z];
    }
  }
}

double MultiZoneMetrics::violation_rate(std::size_t z) const {
  if (occupied_steps_ == 0) return 0.0;
  return static_cast<double>(zone_occupied_violations_.at(z)) /
         static_cast<double>(occupied_steps_);
}

double MultiZoneMetrics::mean_violation_rate() const {
  double sum = 0.0;
  for (std::size_t z = 0; z < zones(); ++z) sum += violation_rate(z);
  return sum / static_cast<double>(zones());
}

}  // namespace verihvac::env
