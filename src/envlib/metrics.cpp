#include "envlib/metrics.hpp"

namespace verihvac::env {

void EpisodeMetrics::add(const StepOutcome& outcome) {
  ++steps_;
  energy_kwh_ += outcome.energy_kwh;
  reward_ += outcome.reward;
  if (outcome.occupied) {
    ++occupied_steps_;
    if (outcome.comfort_violation) ++occupied_violations_;
  }
}

double EpisodeMetrics::violation_rate() const {
  if (occupied_steps_ == 0) return 0.0;
  return static_cast<double>(occupied_violations_) / static_cast<double>(occupied_steps_);
}

double EpisodeMetrics::energy_efficiency_score() const {
  if (energy_kwh_ <= 0.0) return 0.0;
  return comfort_rate() / energy_kwh_ * 1000.0;
}

}  // namespace verihvac::env
