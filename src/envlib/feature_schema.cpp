#include "envlib/feature_schema.hpp"

#include <cmath>
#include <stdexcept>

namespace verihvac::env {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

FeatureSpec spec(std::string name, std::string unit, FeatureKind kind, FeatureRole role,
                 Interval bounds) {
  FeatureSpec s;
  s.name = std::move(name);
  s.unit = std::move(unit);
  s.kind = kind;
  s.role = role;
  s.bounds = bounds;
  return s;
}

}  // namespace

const char* feature_kind_name(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::kState:
      return "state";
    case FeatureKind::kDisturbance:
      return "disturbance";
    case FeatureKind::kTemporal:
      return "temporal";
  }
  return "unknown";
}

const char* feature_role_name(FeatureRole role) {
  switch (role) {
    case FeatureRole::kZoneTemp:
      return "zone_temp";
    case FeatureRole::kOutdoorTemp:
      return "outdoor_temp";
    case FeatureRole::kHumidity:
      return "humidity";
    case FeatureRole::kWind:
      return "wind";
    case FeatureRole::kSolar:
      return "solar";
    case FeatureRole::kOccupancy:
      return "occupancy";
    case FeatureRole::kHourSin:
      return "hour_sin";
    case FeatureRole::kHourCos:
      return "hour_cos";
    case FeatureRole::kOccupancyForecast:
      return "occupancy_forecast";
  }
  return "unknown";
}

FeatureKind feature_kind_from_name(const std::string& name) {
  for (FeatureKind kind :
       {FeatureKind::kState, FeatureKind::kDisturbance, FeatureKind::kTemporal}) {
    if (name == feature_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown feature kind '" + name + "'");
}

FeatureRole feature_role_from_name(const std::string& name) {
  for (FeatureRole role :
       {FeatureRole::kZoneTemp, FeatureRole::kOutdoorTemp, FeatureRole::kHumidity,
        FeatureRole::kWind, FeatureRole::kSolar, FeatureRole::kOccupancy,
        FeatureRole::kHourSin, FeatureRole::kHourCos, FeatureRole::kOccupancyForecast}) {
    if (name == feature_role_name(role)) return role;
  }
  throw std::invalid_argument("unknown feature role '" + name + "'");
}

FeatureSchema::FeatureSchema(std::string name, std::vector<FeatureSpec> features)
    : name_(std::move(name)), features_(std::move(features)) {
  if (features_.empty()) {
    throw std::invalid_argument("FeatureSchema '" + name_ + "': no features");
  }
  std::size_t state_dims = 0;
  bool has_occupancy = false;
  for (std::size_t i = 0; i < features_.size(); ++i) {
    for (std::size_t j = i + 1; j < features_.size(); ++j) {
      if (features_[i].role == features_[j].role) {
        throw std::invalid_argument("FeatureSchema '" + name_ + "': duplicate role " +
                                    feature_role_name(features_[i].role));
      }
    }
    if (features_[i].kind == FeatureKind::kState) {
      zone_temp_index_ = i;
      ++state_dims;
    }
    if (features_[i].role == FeatureRole::kOccupancy) {
      occupancy_index_ = i;
      has_occupancy = true;
    }
  }
  if (state_dims != 1) {
    throw std::invalid_argument("FeatureSchema '" + name_ +
                                "': exactly one state (zone-temperature) feature required");
  }
  if (features_[zone_temp_index_].role != FeatureRole::kZoneTemp) {
    throw std::invalid_argument("FeatureSchema '" + name_ +
                                "': the state feature must carry the zone_temp role");
  }
  if (!has_occupancy) {
    throw std::invalid_argument("FeatureSchema '" + name_ +
                                "': an occupancy feature is required (the criteria gate on "
                                "the occupied/unoccupied split)");
  }
}

std::vector<std::string> FeatureSchema::feature_names() const {
  std::vector<std::string> names;
  names.reserve(features_.size());
  for (const FeatureSpec& f : features_) names.push_back(f.name);
  return names;
}

bool FeatureSchema::has_role(FeatureRole role) const {
  for (const FeatureSpec& f : features_) {
    if (f.role == role) return true;
  }
  return false;
}

std::size_t FeatureSchema::index_of(FeatureRole role) const {
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (features_[i].role == role) return i;
  }
  throw std::invalid_argument("FeatureSchema '" + name_ + "': no feature with role " +
                              feature_role_name(role));
}

double FeatureSchema::feature_value(const Observation& obs, std::size_t i) const {
  switch (features_.at(i).role) {
    case FeatureRole::kZoneTemp:
      return obs.zone_temp_c;
    case FeatureRole::kOutdoorTemp:
      return obs.weather.outdoor_temp_c;
    case FeatureRole::kHumidity:
      return obs.weather.humidity_pct;
    case FeatureRole::kWind:
      return obs.weather.wind_mps;
    case FeatureRole::kSolar:
      return obs.weather.solar_wm2;
    case FeatureRole::kOccupancy:
      return obs.occupants;
    case FeatureRole::kHourSin:
      return obs.hour_sin;
    case FeatureRole::kHourCos:
      return obs.hour_cos;
    case FeatureRole::kOccupancyForecast:
      return obs.occupants_ahead;
  }
  return 0.0;
}

void FeatureSchema::write_observation(const Observation& obs, double* row) const {
  for (std::size_t i = 0; i < features_.size(); ++i) {
    row[i] = feature_value(obs, i);
  }
}

std::vector<double> FeatureSchema::to_vector(const Observation& obs) const {
  std::vector<double> x(features_.size());
  write_observation(obs, x.data());
  return x;
}

Observation FeatureSchema::to_observation(const std::vector<double>& x) const {
  if (x.size() != features_.size()) {
    throw std::invalid_argument("FeatureSchema '" + name_ + "'::to_observation: expected " +
                                std::to_string(features_.size()) + " dims, got " +
                                std::to_string(x.size()));
  }
  Observation obs;
  for (std::size_t i = 0; i < features_.size(); ++i) {
    switch (features_[i].role) {
      case FeatureRole::kZoneTemp:
        obs.zone_temp_c = x[i];
        break;
      case FeatureRole::kOutdoorTemp:
        obs.weather.outdoor_temp_c = x[i];
        break;
      case FeatureRole::kHumidity:
        obs.weather.humidity_pct = x[i];
        break;
      case FeatureRole::kWind:
        obs.weather.wind_mps = x[i];
        break;
      case FeatureRole::kSolar:
        obs.weather.solar_wm2 = x[i];
        break;
      case FeatureRole::kOccupancy:
        obs.occupants = x[i];
        break;
      case FeatureRole::kHourSin:
        obs.hour_sin = x[i];
        break;
      case FeatureRole::kHourCos:
        obs.hour_cos = x[i];
        break;
      case FeatureRole::kOccupancyForecast:
        obs.occupants_ahead = x[i];
        break;
    }
  }
  // Reconstructed clock for logging; the stored sin/cos above are what
  // round-trips bit-exactly.
  if (has_role(FeatureRole::kHourSin) && has_role(FeatureRole::kHourCos)) {
    double angle = std::atan2(obs.hour_sin, obs.hour_cos);
    if (angle < 0.0) angle += kTwoPi;
    obs.hour_of_day = angle * 24.0 / kTwoPi;
  }
  return obs;
}

double FeatureSchema::disturbance_value(const Disturbance& d, std::size_t i) const {
  switch (features_.at(i).role) {
    case FeatureRole::kZoneTemp:
      return 0.0;  // state: not part of the forecast
    case FeatureRole::kOutdoorTemp:
      return d.weather.outdoor_temp_c;
    case FeatureRole::kHumidity:
      return d.weather.humidity_pct;
    case FeatureRole::kWind:
      return d.weather.wind_mps;
    case FeatureRole::kSolar:
      return d.weather.solar_wm2;
    case FeatureRole::kOccupancy:
      return d.occupants;
    case FeatureRole::kHourSin:
      return d.hour_sin;
    case FeatureRole::kHourCos:
      return d.hour_cos;
    case FeatureRole::kOccupancyForecast:
      return d.occupants_ahead;
  }
  return 0.0;
}

Disturbance FeatureSchema::to_disturbance(const double* row) const {
  Disturbance d;
  for (std::size_t i = 0; i < features_.size(); ++i) {
    switch (features_[i].role) {
      case FeatureRole::kZoneTemp:
        break;  // state: not part of the forecast
      case FeatureRole::kOutdoorTemp:
        d.weather.outdoor_temp_c = row[i];
        break;
      case FeatureRole::kHumidity:
        d.weather.humidity_pct = row[i];
        break;
      case FeatureRole::kWind:
        d.weather.wind_mps = row[i];
        break;
      case FeatureRole::kSolar:
        d.weather.solar_wm2 = row[i];
        break;
      case FeatureRole::kOccupancy:
        d.occupants = row[i];
        break;
      case FeatureRole::kHourSin:
        d.hour_sin = row[i];
        break;
      case FeatureRole::kHourCos:
        d.hour_cos = row[i];
        break;
      case FeatureRole::kOccupancyForecast:
        d.occupants_ahead = row[i];
        break;
    }
  }
  return d;
}

void FeatureSchema::apply_disturbance(const Disturbance& d, double* row) const {
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (features_[i].kind == FeatureKind::kState) continue;
    row[i] = disturbance_value(d, i);
  }
}

bool FeatureSchema::operator==(const FeatureSchema& other) const {
  if (name_ != other.name_ || features_.size() != other.features_.size()) return false;
  for (std::size_t i = 0; i < features_.size(); ++i) {
    const FeatureSpec& a = features_[i];
    const FeatureSpec& b = other.features_[i];
    if (a.name != b.name || a.unit != b.unit || a.kind != b.kind || a.role != b.role ||
        a.bounds.lo != b.bounds.lo || a.bounds.hi != b.bounds.hi) {
      return false;
    }
  }
  return true;
}

const FeatureSchema& baseline_schema() {
  // Bounds on the five disturbance roles mirror core::DisturbanceBounds
  // defaults (documentation here; the interval verifier keeps using its
  // campaign-level envelopes for these roles).
  static const FeatureSchema schema(
      "baseline",
      {
          spec("zone_temp_c", "degC", FeatureKind::kState, FeatureRole::kZoneTemp,
               Interval::all()),
          spec("outdoor_temp_c", "degC", FeatureKind::kDisturbance, FeatureRole::kOutdoorTemp,
               Interval::bounded(-25.0, 45.0)),
          spec("humidity_pct", "%", FeatureKind::kDisturbance, FeatureRole::kHumidity,
               Interval::bounded(0.0, 100.0)),
          spec("wind_mps", "m/s", FeatureKind::kDisturbance, FeatureRole::kWind,
               Interval::bounded(0.0, 25.0)),
          spec("solar_wm2", "W/m^2", FeatureKind::kDisturbance, FeatureRole::kSolar,
               Interval::bounded(0.0, 1100.0)),
          spec("occupants", "count", FeatureKind::kDisturbance, FeatureRole::kOccupancy,
               Interval::bounded(0.0, 40.0)),
      });
  return schema;
}

const FeatureSchema& time_aware_schema() {
  static const FeatureSchema schema = [] {
    std::vector<FeatureSpec> features = baseline_schema().features();
    features.push_back(spec("hour_sin", "1", FeatureKind::kTemporal, FeatureRole::kHourSin,
                            Interval::bounded(-1.0, 1.0)));
    features.push_back(spec("hour_cos", "1", FeatureKind::kTemporal, FeatureRole::kHourCos,
                            Interval::bounded(-1.0, 1.0)));
    features.push_back(spec("occupants_ahead", "count", FeatureKind::kTemporal,
                            FeatureRole::kOccupancyForecast, Interval::bounded(0.0, 40.0)));
    return FeatureSchema("time-aware", std::move(features));
  }();
  return schema;
}

const FeatureSchema* find_schema(const std::string& name) {
  if (name == baseline_schema().name()) return &baseline_schema();
  if (name == time_aware_schema().name()) return &time_aware_schema();
  return nullptr;
}

const FeatureSchema& schema_by_name(const std::string& name) {
  const FeatureSchema* schema = find_schema(name);
  if (!schema) {
    throw std::invalid_argument("unknown observation schema '" + name +
                                "' (known: baseline, time-aware)");
  }
  return *schema;
}

std::vector<std::string> schema_names() {
  return {baseline_schema().name(), time_aware_schema().name()};
}

}  // namespace verihvac::env
