#include "envlib/env.hpp"

#include <cmath>
#include <stdexcept>
#include <tuple>

#include "common/units.hpp"
#include "weather/weather_generator.hpp"

namespace verihvac::env {

BuildingEnv::BuildingEnv(EnvConfig config)
    : config_(std::move(config)),
      simulator_(sim::five_zone_building(config_.hvac_capacity_scale),
                 config_.substep_seconds) {
  weather::WeatherGenerator generator(config_.climate, config_.weather_seed);
  series_ = generator.generate_days(config_.days);
  num_steps_ = series_.size();
  occupants_ = config_.occupancy.series(num_steps_);
}

Observation BuildingEnv::make_observation(std::size_t step, double zone_temp) const {
  Observation obs;
  obs.zone_temp_c = zone_temp;
  const std::size_t idx = std::min(step, num_steps_ - 1);
  obs.weather = series_.at(idx);
  obs.occupants = occupants_[idx];
  obs.step = step;
  obs.hour_of_day =
      static_cast<double>(step % kStepsPerDay) / static_cast<double>(kStepsPerHour);
  std::tie(obs.hour_sin, obs.hour_cos) = time_of_day_encoding(step);
  obs.occupants_ahead =
      occupants_[std::min(step + kOccupancyForecastSteps, num_steps_ - 1)];
  return obs;
}

Observation BuildingEnv::reset() {
  simulator_.reset(config_.initial_temp_c);
  cursor_ = 0;
  done_ = false;
  current_ = make_observation(0, simulator_.controlled_zone_temp());
  return current_;
}

void BuildingEnv::apply_degradation(const sim::Degradation& degradation) {
  simulator_.degrade(degradation);
}

StepOutcome BuildingEnv::step(const sim::SetpointPair& action) {
  if (done_) throw std::logic_error("BuildingEnv::step called on a finished episode");

  const bool occupied = occupants_[cursor_] > 0.5;

  // Build the per-zone setpoint command: agent's action in the controlled
  // zone, the default schedule everywhere else.
  const std::size_t zones = simulator_.building().zone_count();
  const sim::SetpointPair default_pair =
      occupied ? config_.default_occupied : config_.default_unoccupied;
  std::vector<sim::SetpointPair> commands(zones, default_pair);
  commands[simulator_.controlled_zone()] = action;

  // All zones share the building occupancy profile scaled by floor area;
  // the controlled zone carries the scheduled count exactly.
  std::vector<double> occupants(zones, 0.0);
  const double controlled_occupants = occupants_[cursor_];
  const double area_controlled =
      simulator_.building().zone(simulator_.controlled_zone()).floor_area_m2;
  for (std::size_t z = 0; z < zones; ++z) {
    const double scale = simulator_.building().zone(z).floor_area_m2 / area_controlled;
    occupants[z] = controlled_occupants * scale;
  }
  occupants[simulator_.controlled_zone()] = controlled_occupants;

  const sim::StepResult sim_result =
      simulator_.step(commands, series_.at(cursor_), occupants);

  StepOutcome outcome;
  outcome.energy_kwh = sim_result.consumed_kwh;
  outcome.occupied = occupied;
  outcome.reward =
      reward(config_.reward, sim_result.controlled_zone_temp_c, action, occupied);
  const double tol = config_.comfort_violation_tolerance_c;
  outcome.comfort_violation =
      sim_result.controlled_zone_temp_c < config_.reward.comfort.lo - tol ||
      sim_result.controlled_zone_temp_c > config_.reward.comfort.hi + tol;

  ++cursor_;
  done_ = cursor_ >= num_steps_;
  outcome.done = done_;
  current_ = make_observation(cursor_, sim_result.controlled_zone_temp_c);
  outcome.observation = current_;
  return outcome;
}

std::vector<Disturbance> BuildingEnv::forecast(std::size_t h) const {
  std::vector<Disturbance> out;
  out.reserve(h);
  for (std::size_t k = 0; k < h; ++k) {
    out.push_back(disturbance_at(cursor_ + k));
  }
  return out;
}

Disturbance BuildingEnv::disturbance_at(std::size_t step) const {
  const std::size_t idx = std::min(step, num_steps_ - 1);
  Disturbance d;
  d.weather = series_.at(idx);
  d.occupants = occupants_[idx];
  std::tie(d.hour_sin, d.hour_cos) = time_of_day_encoding(step);
  d.occupants_ahead = occupants_[std::min(step + kOccupancyForecastSteps, num_steps_ - 1)];
  return d;
}

}  // namespace verihvac::env
