#include "envlib/multizone_env.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/units.hpp"
#include "thermosim/building_presets.hpp"

namespace verihvac::env {

MultiZoneEnv::MultiZoneEnv(EnvConfig config)
    : config_(std::move(config)),
      simulator_(sim::five_zone_building(config_.hvac_capacity_scale),
                 config_.substep_seconds) {
  weather::WeatherGenerator generator(config_.climate, config_.weather_seed);
  series_ = generator.generate_days(config_.days);
  num_steps_ = series_.size();
  occupants_ = config_.occupancy.series(num_steps_);
}

std::vector<double> MultiZoneEnv::zone_occupants(std::size_t step) const {
  // Same convention as BuildingEnv: the schedule's count in the controlled
  // zone, area-scaled elsewhere (people per m2 is roughly uniform).
  const std::size_t zones = simulator_.building().zone_count();
  const std::size_t idx = std::min(step, num_steps_ - 1);
  const double scheduled = occupants_[idx];
  const double area_ref =
      simulator_.building().zone(simulator_.controlled_zone()).floor_area_m2;
  std::vector<double> out(zones, 0.0);
  for (std::size_t z = 0; z < zones; ++z) {
    out[z] = scheduled * simulator_.building().zone(z).floor_area_m2 / area_ref;
  }
  out[simulator_.controlled_zone()] = scheduled;
  return out;
}

std::vector<Observation> MultiZoneEnv::make_observations(
    std::size_t step, const std::vector<double>& zone_temps) const {
  const std::size_t idx = std::min(step, num_steps_ - 1);
  const std::vector<double> occupants = zone_occupants(step);
  std::vector<Observation> out(zone_temps.size());
  for (std::size_t z = 0; z < zone_temps.size(); ++z) {
    out[z].zone_temp_c = zone_temps[z];
    out[z].weather = series_.at(idx);
    out[z].occupants = occupants[z];
    out[z].step = step;
    out[z].hour_of_day =
        static_cast<double>(step % kStepsPerDay) / static_cast<double>(kStepsPerHour);
  }
  return out;
}

std::vector<Observation> MultiZoneEnv::reset() {
  simulator_.reset(config_.initial_temp_c);
  cursor_ = 0;
  done_ = false;
  current_ = make_observations(0, simulator_.zone_temps());
  return current_;
}

MultiZoneStepOutcome MultiZoneEnv::step(const std::vector<sim::SetpointPair>& actions) {
  if (done_) throw std::logic_error("MultiZoneEnv::step called on a finished episode");
  if (actions.size() != zone_count()) {
    throw std::invalid_argument("MultiZoneEnv::step: one setpoint pair per zone required");
  }
  const bool occupied = occupants_[cursor_] > 0.5;
  const std::vector<double> occupants = zone_occupants(cursor_);
  const sim::StepResult sim_result =
      simulator_.step(actions, series_.at(cursor_), occupants);

  MultiZoneStepOutcome outcome;
  outcome.energy_kwh = sim_result.consumed_kwh;
  outcome.occupied = occupied;
  outcome.rewards.reserve(zone_count());
  outcome.comfort_violations.reserve(zone_count());
  const double tol = config_.comfort_violation_tolerance_c;
  for (std::size_t z = 0; z < zone_count(); ++z) {
    const double temp = sim_result.zone_temps_c[z];
    outcome.rewards.push_back(reward(config_.reward, temp, actions[z], occupied));
    outcome.comfort_violations.push_back(temp < config_.reward.comfort.lo - tol ||
                                         temp > config_.reward.comfort.hi + tol);
  }

  ++cursor_;
  done_ = cursor_ >= num_steps_;
  outcome.done = done_;
  current_ = make_observations(cursor_, sim_result.zone_temps_c);
  outcome.observations = current_;
  return outcome;
}

std::vector<Disturbance> MultiZoneEnv::forecast(std::size_t h) const {
  std::vector<Disturbance> out;
  out.reserve(h);
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t idx = std::min(cursor_ + k, num_steps_ - 1);
    out.push_back(Disturbance{series_.at(idx), occupants_[idx]});
  }
  return out;
}

}  // namespace verihvac::env
