// Per-zone episode metrics for whole-building runs.
//
// The single-zone EpisodeMetrics tracks the paper's two headline numbers
// (energy, occupied violation rate) for the controlled zone. This
// accumulator keeps the same statistics for every zone simultaneously
// plus the building totals, so whole-building deployments (MultiZoneEnv)
// can report a Fig. 4-style row per zone.
#pragma once

#include <cstddef>
#include <vector>

#include "envlib/multizone_env.hpp"

namespace verihvac::env {

class MultiZoneMetrics {
 public:
  explicit MultiZoneMetrics(std::size_t zones);

  void add(const MultiZoneStepOutcome& outcome);

  std::size_t zones() const { return zone_occupied_violations_.size(); }
  std::size_t steps() const { return steps_; }
  std::size_t occupied_steps() const { return occupied_steps_; }
  double total_energy_kwh() const { return energy_kwh_; }

  /// Fraction of occupied steps in which zone `z` violated comfort.
  double violation_rate(std::size_t z) const;
  /// Mean of the per-zone violation rates.
  double mean_violation_rate() const;
  /// Sum of per-zone Eq. 2 rewards over the episode.
  double total_reward() const { return reward_; }

 private:
  std::size_t steps_ = 0;
  std::size_t occupied_steps_ = 0;
  double energy_kwh_ = 0.0;
  double reward_ = 0.0;
  std::vector<std::size_t> zone_occupied_violations_;
};

}  // namespace verihvac::env
