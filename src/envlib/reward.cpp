#include "envlib/reward.hpp"

#include <algorithm>
#include <cmath>

namespace verihvac::env {

ComfortRange winter_comfort() { return ComfortRange{20.0, 23.5}; }
ComfortRange summer_comfort() { return ComfortRange{23.0, 26.0}; }

double energy_proxy(const RewardConfig& config, const sim::SetpointPair& action) {
  return std::abs(action.heating_c - config.heating_off_c) +
         std::abs(config.cooling_off_c - action.cooling_c);
}

double comfort_penalty(const ComfortRange& comfort, double zone_temp_c) {
  const double above = std::max(0.0, zone_temp_c - comfort.hi);
  const double below = std::max(0.0, comfort.lo - zone_temp_c);
  return above + below;
}

double reward(const RewardConfig& config, double zone_temp_c,
              const sim::SetpointPair& action, bool occupied) {
  const double we = occupied ? config.we_occupied : config.we_unoccupied;
  return -we * energy_proxy(config, action) -
         (1.0 - we) * comfort_penalty(config.comfort, zone_temp_c);
}

}  // namespace verihvac::env
