// Observation schema — the feature layout as data, not a compile-time
// constant.
//
// Every layer that used to bake in `env::kInputDims = 6` and trust that
// "index 0 is the zone temperature" now consults a FeatureSchema: an
// ordered list of feature descriptors (name, unit, kind, verification
// bounds) with a stable *role* lookup. The verification criteria (#2/#3)
// and Algorithm 1 find the zone-temperature dimension via
// `schema.zone_temp_index()`; RandomShooting assembles disturbance
// forecasts via `schema.apply_disturbance`; policy bundles persist the
// schema so heterogeneous observation shapes coexist in one registry.
//
// Invariants:
//  - Exactly one feature has kind kState (the zone temperature — the
//    single dimension the dynamics model predicts).
//  - Roles are unique within a schema.
//  - `baseline_schema()` reproduces the legacy 6-dim Table-1 layout
//    *bit-identically*: same order, same names, and to_vector /
//    apply_disturbance copy the same stored doubles in the same order as
//    the old hand-written code, so baseline decisions, certificates and
//    trace replay are unchanged by the refactor.
//
// This header and feature_schema.cpp (plus observation.hpp, which defines
// the legacy constants) are the only places allowed to spell raw
// observation indices — tools/check_no_raw_dims.py enforces that.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/interval.hpp"
#include "envlib/observation.hpp"

namespace verihvac::env {

/// What a feature *is*, for layers that treat the kinds differently:
/// state is predicted by the dynamics model, disturbances come from the
/// forecast, temporal features are derived from the clock/schedule (and
/// also advance with the forecast during rollouts).
enum class FeatureKind : std::uint8_t {
  kState = 0,
  kDisturbance = 1,
  kTemporal = 2,
};

/// Stable semantic identity of a feature, independent of its position.
/// Role values are persisted in policy bundles (policy_io v2) — never
/// renumber, only append.
enum class FeatureRole : std::uint8_t {
  kZoneTemp = 0,
  kOutdoorTemp = 1,
  kHumidity = 2,
  kWind = 3,
  kSolar = 4,
  kOccupancy = 5,
  kHourSin = 6,
  kHourCos = 7,
  kOccupancyForecast = 8,
};

const char* feature_kind_name(FeatureKind kind);
const char* feature_role_name(FeatureRole role);
/// Inverse lookups (for bundle/trace parsing); throw std::invalid_argument
/// on unknown names.
FeatureKind feature_kind_from_name(const std::string& name);
FeatureRole feature_role_from_name(const std::string& name);

/// One observation dimension.
struct FeatureSpec {
  std::string name;
  std::string unit;
  FeatureKind kind = FeatureKind::kDisturbance;
  FeatureRole role = FeatureRole::kZoneTemp;
  /// Verification envelope for this dimension. For the five classic
  /// disturbance roles the campaign-level DisturbanceBounds still wins
  /// (bit-identity with the pre-schema interval verifier); for features
  /// beyond the baseline six these bounds are what the input boxes clip
  /// to.
  Interval bounds = Interval::all();
};

/// Ordered feature layout with role lookup. Cheap to copy; compared by
/// value (name + per-feature specs).
class FeatureSchema {
 public:
  FeatureSchema() = default;
  FeatureSchema(std::string name, std::vector<FeatureSpec> features);

  const std::string& name() const { return name_; }
  std::size_t dims() const { return features_.size(); }
  const FeatureSpec& at(std::size_t i) const { return features_.at(i); }
  const std::vector<FeatureSpec>& features() const { return features_; }
  /// Per-dimension names (for tree dumps / verification reports).
  std::vector<std::string> feature_names() const;

  bool has_role(FeatureRole role) const;
  /// Index of the dimension carrying `role`; throws std::invalid_argument
  /// if the schema has no such feature.
  std::size_t index_of(FeatureRole role) const;
  /// The single kState dimension (cached — this is on the decision hot
  /// path).
  std::size_t zone_temp_index() const { return zone_temp_index_; }
  /// The current-occupancy dimension (cached; every preset carries it —
  /// the occupied/unoccupied split is load-bearing for the criteria).
  std::size_t occupancy_index() const { return occupancy_index_; }

  /// Flattens an observation to this schema's layout.
  std::vector<double> to_vector(const Observation& obs) const;
  /// Writes the flattened observation into row[0..dims()-1].
  void write_observation(const Observation& obs, double* row) const;
  /// Value of a single feature of the observation.
  double feature_value(const Observation& obs, std::size_t i) const;
  /// Rebuilds an observation from a flattened vector. Temporal roles are
  /// restored into their stored fields; `hour_of_day` is additionally
  /// reconstructed from (hour_sin, hour_cos) when both are present
  /// (atan2-based — for logging, not for bit-exact re-flattening; the
  /// stored sin/cos fields round-trip exactly). `step` is not encoded in
  /// any schema and stays 0.
  Observation to_observation(const std::vector<double>& x) const;

  /// Overwrites the non-state dimensions of a model-input row with the
  /// forecast disturbance (rollout advance). Writes the same stored
  /// doubles, in the same dimension order, as the legacy hand-written
  /// loop — bit-identity of baseline rollouts depends on this.
  void apply_disturbance(const Disturbance& d, double* row) const;
  /// Value the forecast carries for feature i (state dims return 0).
  double disturbance_value(const Disturbance& d, std::size_t i) const;
  /// Rebuilds a forecast record from the non-state dimensions of a
  /// flattened row (inverse of apply_disturbance; used to continue
  /// historical disturbance trajectories).
  Disturbance to_disturbance(const double* row) const;

  bool operator==(const FeatureSchema& other) const;
  bool operator!=(const FeatureSchema& other) const { return !(*this == other); }

 private:
  std::string name_;
  std::vector<FeatureSpec> features_;
  std::size_t zone_temp_index_ = 0;
  std::size_t occupancy_index_ = 0;
};

/// The legacy 6-dim Table-1 layout (Zone Temp, Outdoor Temp, Humidity,
/// Wind, Solar, Occupancy) — the implicit schema of every v1 policy
/// bundle and v1 telemetry trace.
const FeatureSchema& baseline_schema();

/// Baseline + hour-of-day (sin/cos) + occupancy-forecast: the time-aware
/// preset that makes 7am distinguishable from 3am, unlocking preheat
/// (see bench/preheat.cpp).
const FeatureSchema& time_aware_schema();

/// Preset registry: returns nullptr for unknown names.
const FeatureSchema* find_schema(const std::string& name);
/// Preset registry: throws std::invalid_argument for unknown names.
const FeatureSchema& schema_by_name(const std::string& name);
/// Names of the registered presets, in registration order.
std::vector<std::string> schema_names();

}  // namespace verihvac::env
