// Whole-building (multi-zone) control environment.
//
// The paper's plant is a five-zone building of which ONE zone is
// agent-controlled (BuildingEnv); the others follow the default schedule.
// That is the formulation every experiment in the paper uses. This
// environment generalizes the same simulator to actuate EVERY zone — the
// deployment mode a real building would run once per-zone policies are
// verified. The policy input stays (s, d): zone identity is not a policy
// feature, so one verified tree per climate can drive all zones (each
// zone walks the tree with its own temperature), or distinct per-zone
// trees can be supplied. Examples and tests use this to measure
// whole-building energy/comfort under DT control vs the default schedule.
#pragma once

#include <cstddef>
#include <vector>

#include "envlib/env.hpp"

namespace verihvac::env {

/// Everything one whole-building step returns.
struct MultiZoneStepOutcome {
  /// Per-zone observations after the step (shared weather, own zone temp,
  /// own occupant count).
  std::vector<Observation> observations;
  std::vector<double> rewards;           ///< Eq. 2 per zone
  std::vector<bool> comfort_violations;  ///< per zone, any time
  double energy_kwh = 0.0;               ///< whole-building HVAC site energy
  bool occupied = false;
  bool done = false;
};

class MultiZoneEnv {
 public:
  /// Reuses EnvConfig: same climate/occupancy/reward; `default_*` pairs
  /// are only used by reset-time initialization (every zone is actuated).
  explicit MultiZoneEnv(EnvConfig config);

  const EnvConfig& config() const { return config_; }
  std::size_t zone_count() const { return simulator_.building().zone_count(); }
  std::size_t horizon_steps() const { return num_steps_; }

  /// Starts a new episode; returns one observation per zone.
  std::vector<Observation> reset();

  /// Applies one setpoint pair per zone and advances 15 minutes.
  /// Throws std::invalid_argument unless actions.size() == zone_count().
  MultiZoneStepOutcome step(const std::vector<sim::SetpointPair>& actions);

  /// Perfect disturbance forecast (same for all zones; occupant counts are
  /// the controlled-zone schedule, as in BuildingEnv).
  std::vector<Disturbance> forecast(std::size_t h) const;

  const std::vector<Observation>& observations() const { return current_; }

 private:
  std::vector<Observation> make_observations(std::size_t step,
                                             const std::vector<double>& zone_temps) const;
  std::vector<double> zone_occupants(std::size_t step) const;

  EnvConfig config_;
  sim::BuildingSimulator simulator_;
  weather::WeatherSeries series_;
  std::vector<double> occupants_;
  std::size_t num_steps_ = 0;
  std::size_t cursor_ = 0;
  bool done_ = false;
  std::vector<Observation> current_;
};

}  // namespace verihvac::env
