#include "envlib/observation.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace verihvac::env {

const std::array<std::string, kInputDims>& input_dim_names() {
  static const std::array<std::string, kInputDims> names = {
      "zone_temp_c",  "outdoor_temp_c", "humidity_pct",
      "wind_mps",     "solar_wm2",      "occupants",
  };
  return names;
}

std::pair<double, double> time_of_day_encoding(std::size_t step) {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double angle =
      kTwoPi * static_cast<double>(step % static_cast<std::size_t>(kStepsPerDay)) /
      static_cast<double>(kStepsPerDay);
  return {std::sin(angle), std::cos(angle)};
}

std::vector<double> Observation::to_vector() const {
  return {zone_temp_c,      weather.outdoor_temp_c, weather.humidity_pct,
          weather.wind_mps, weather.solar_wm2,      occupants};
}

Observation Observation::from_vector(const std::vector<double>& x) {
  if (x.size() != kInputDims) {
    throw std::invalid_argument("Observation::from_vector: expected 6 dims");
  }
  Observation obs;
  obs.zone_temp_c = x[kZoneTemp];
  obs.weather.outdoor_temp_c = x[kOutdoorTemp];
  obs.weather.humidity_pct = x[kHumidity];
  obs.weather.wind_mps = x[kWind];
  obs.weather.solar_wm2 = x[kSolar];
  obs.occupants = x[kOccupancy];
  return obs;
}

}  // namespace verihvac::env
