// Observation layout — Table 1 of the paper.
//
// The *baseline* policy input is the concatenation (s, d):
//   [0] Zone Air Temperature           [degC]   (state s)
//   [1] Outdoor Air Drybulb Temperature[degC]   (disturbance)
//   [2] Outdoor Air Relative Humidity  [%]      (disturbance)
//   [3] Site Wind Speed                [m/s]    (disturbance)
//   [4] Site Total Radiation Rate      [W/m^2]  (disturbance)
//   [5] Zone People Occupant Count     [count]  (disturbance)
//
// The layout is no longer load-bearing by position: layers consult
// env::FeatureSchema (feature_schema.hpp) and locate the zone-temperature
// dimension by *role* (schema.zone_temp_index()), so schemas with more
// dimensions — e.g. the time-aware preset with hour-of-day and
// occupancy-forecast features — flow through dynamics, control,
// verification, serving and telemetry unchanged. The constants below
// describe the baseline preset only and are kept for the legacy
// fixed-layout entry points (Observation::to_vector / from_vector).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "weather/weather_generator.hpp"

namespace verihvac::env {

/// Number of policy-input dimensions in the *baseline* schema. New code
/// should size buffers from FeatureSchema::dims() instead.
inline constexpr std::size_t kInputDims = 6;

/// Named indices into the baseline input vector. New code should locate
/// dimensions by role via FeatureSchema::index_of / zone_temp_index.
enum InputDim : std::size_t {
  kZoneTemp = 0,
  kOutdoorTemp = 1,
  kHumidity = 2,
  kWind = 3,
  kSolar = 4,
  kOccupancy = 5,
};

/// Control steps the occupancy-forecast feature looks ahead (1 hour at
/// the paper's 15-minute control step). Part of the time-aware schema
/// contract: the environment fills Observation::occupants_ahead and
/// Disturbance::occupants_ahead with the schedule this many steps out.
inline constexpr std::size_t kOccupancyForecastSteps = 4;

/// Human-readable names of the baseline dimensions (for tree dumps /
/// verification reports). Schema-aware code uses
/// FeatureSchema::feature_names().
const std::array<std::string, kInputDims>& input_dim_names();

/// (sin, cos) encoding of the 24h clock at control step `step` (wraps at
/// kStepsPerDay). Single source of truth for the time-of-day features:
/// the environment fills Observation/Disturbance from it, and scenario
/// generators that synthesize forecasts use it too, so the encoding
/// cannot drift between producers.
std::pair<double, double> time_of_day_encoding(std::size_t step);

/// Full observation returned by the environment.
struct Observation {
  double zone_temp_c = 20.0;
  weather::WeatherRecord weather;
  double occupants = 0.0;
  std::size_t step = 0;      ///< control-step index within the episode
  double hour_of_day = 0.0;  ///< derived, for logging/plots
  /// Stored time-of-day encoding, filled by the environment. Kept as
  /// materialized fields (not recomputed from hour_of_day at flatten
  /// time) so schema round-trips are bit-exact.
  double hour_sin = 0.0;
  double hour_cos = 1.0;
  /// Scheduled occupant count kOccupancyForecastSteps ahead.
  double occupants_ahead = 0.0;

  /// Flattens to the baseline 6-dim policy input (s, d). Schema-aware
  /// callers use FeatureSchema::to_vector.
  std::vector<double> to_vector() const;
  /// Rebuilds an observation from a *baseline* 6-dim policy-input vector.
  /// Contract: the temporal fields are NOT round-tripped — the baseline
  /// layout does not encode them, so `step` is 0 and `hour_of_day` /
  /// `hour_sin` / `hour_cos` / `occupants_ahead` hold their defaults on
  /// the result (regression-tested in tests/envlib/observation_test).
  /// Schema-aware callers use FeatureSchema::to_observation, which
  /// restores the temporal fields a schema actually encodes.
  static Observation from_vector(const std::vector<double>& x);
};

/// Disturbance-only record (what forecasts carry). Carries the temporal
/// features too: during a rollout the clock and the occupancy forecast
/// advance exactly like the weather does.
struct Disturbance {
  weather::WeatherRecord weather;
  double occupants = 0.0;
  double hour_sin = 0.0;
  double hour_cos = 1.0;
  double occupants_ahead = 0.0;
};

}  // namespace verihvac::env
