// Observation layout — Table 1 of the paper.
//
// The policy input is the concatenation (s, d):
//   [0] Zone Air Temperature           [degC]   (state s)
//   [1] Outdoor Air Drybulb Temperature[degC]   (disturbance)
//   [2] Outdoor Air Relative Humidity  [%]      (disturbance)
//   [3] Site Wind Speed                [m/s]    (disturbance)
//   [4] Site Total Radiation Rate      [W/m^2]  (disturbance)
//   [5] Zone People Occupant Count     [count]  (disturbance)
// Index 0 being the zone temperature is load-bearing: the verification
// criteria (#2/#3) and Algorithm 1 reason about that dimension.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "weather/weather_generator.hpp"

namespace verihvac::env {

/// Number of policy-input dimensions.
inline constexpr std::size_t kInputDims = 6;

/// Named indices into the input vector.
enum InputDim : std::size_t {
  kZoneTemp = 0,
  kOutdoorTemp = 1,
  kHumidity = 2,
  kWind = 3,
  kSolar = 4,
  kOccupancy = 5,
};

/// Human-readable names (for tree dumps / verification reports).
const std::array<std::string, kInputDims>& input_dim_names();

/// Full observation returned by the environment.
struct Observation {
  double zone_temp_c = 20.0;
  weather::WeatherRecord weather;
  double occupants = 0.0;
  std::size_t step = 0;      ///< control-step index within the episode
  double hour_of_day = 0.0;  ///< derived, for logging/plots

  /// Flattens to the 6-dim policy input (s, d).
  std::vector<double> to_vector() const;
  /// Rebuilds an observation from a policy-input vector (step/hour zeroed).
  static Observation from_vector(const std::vector<double>& x);
};

/// Disturbance-only record (what forecasts carry).
struct Disturbance {
  weather::WeatherRecord weather;
  double occupants = 0.0;
};

}  // namespace verihvac::env
