// Gym-style building environment (Sinergym substitute).
//
// Mediates between a control agent and the thermal plant: reset() starts a
// January episode driven by a (city, seed)-determined weather series and
// the office occupancy schedule; step(action) applies the agent's setpoint
// pair to the controlled zone (default schedule elsewhere), advances one
// 15-minute step and returns observation, reward and metering.
//
// Controllers that plan (RS/MPPI) additionally read the disturbance
// forecast — the paper, like MB2C/CLUE, assumes disturbances over the
// planning horizon are known (weather forecast + occupancy schedule).
#pragma once

#include <cstdint>
#include <vector>

#include "envlib/observation.hpp"
#include "envlib/reward.hpp"
#include "thermosim/building_presets.hpp"
#include "thermosim/simulation.hpp"
#include "weather/climate.hpp"
#include "weather/occupancy.hpp"

namespace verihvac::env {

struct EnvConfig {
  weather::ClimateProfile climate = weather::pittsburgh();
  std::uint64_t weather_seed = 2021;
  int days = 31;  ///< January
  RewardConfig reward;
  weather::OccupancySchedule occupancy = weather::office_schedule();
  /// Default schedule applied to the *uncontrolled* zones (and used by the
  /// rule-based baseline for the controlled zone as well).
  sim::SetpointPair default_occupied{20.0, 23.5};
  sim::SetpointPair default_unoccupied{15.0, 30.0};
  double initial_temp_c = 20.0;
  double substep_seconds = 60.0;
  /// Multiplies every HVAC unit's capacity (EnergyPlus-autosizing
  /// analogue). 1.0 = the January-sized paper plant; cooling-season runs
  /// (e.g. the TucsonJuly profile) need ~2x to meet the design day.
  double hvac_capacity_scale = 1.0;
  /// Dead-band applied to the *violation flag* only (never the reward):
  /// a zone counts as violating when it leaves comfort by more than this.
  /// Our ideal-loads thermostat settles exactly ON its setpoint, so a
  /// controller that holds the comfort edge (the building default heating
  /// to 20.0 = z_lo) grazes the boundary by load*dt/C every other substep;
  /// EnergyPlus's coil/throttling dynamics rest a hair inside instead.
  /// Without the tolerance that substrate difference mislabels the
  /// default controller as ~65% violating (the paper reports ~9%).
  double comfort_violation_tolerance_c = 0.05;
};

/// Everything the environment returns from one step.
struct StepOutcome {
  Observation observation;  ///< observation *after* the step (s_{t+1}, d_{t+1})
  double reward = 0.0;
  double energy_kwh = 0.0;  ///< metered building HVAC energy this step
  bool occupied = false;    ///< occupancy during the step just simulated
  bool comfort_violation = false;  ///< new zone temp outside comfort (any time)
  bool done = false;
};

class BuildingEnv {
 public:
  explicit BuildingEnv(EnvConfig config);

  const EnvConfig& config() const { return config_; }
  std::size_t horizon_steps() const { return num_steps_; }

  /// Starts a new episode; returns the initial observation (s_0, d_0).
  Observation reset();

  /// Applies the agent's setpoints to the controlled zone and advances one
  /// 15-minute step. Must not be called after done.
  StepOutcome step(const sim::SetpointPair& action);

  /// Injects in-service building drift (equipment wear, envelope leakage)
  /// into the running plant mid-episode. Thermal state, weather and
  /// occupancy are untouched: from the controller's point of view the
  /// *dynamics* silently changed — the drift-scenario axis the adaptation
  /// loop must detect and recover from.
  void apply_degradation(const sim::Degradation& degradation);

  /// Current observation (valid between reset/step calls).
  const Observation& observation() const { return current_; }

  /// Perfect disturbance forecast for steps t+1 .. t+h (clamped at the
  /// episode end by repeating the final record).
  std::vector<Disturbance> forecast(std::size_t h) const;

  /// Disturbance at an absolute step index (exposed for data collection).
  Disturbance disturbance_at(std::size_t step) const;

  /// The underlying weather series (for plots and historical datasets).
  const weather::WeatherSeries& weather_series() const { return series_; }

 private:
  Observation make_observation(std::size_t step, double zone_temp) const;

  EnvConfig config_;
  sim::BuildingSimulator simulator_;
  weather::WeatherSeries series_;
  std::vector<double> occupants_;  // controlled-zone occupancy per step
  std::size_t num_steps_ = 0;
  std::size_t cursor_ = 0;  // index of the *next* step to simulate
  Observation current_;
  bool done_ = true;
};

}  // namespace verihvac::env
