// Episode metrics — the quantities the paper's evaluation reports.
//
//  * energy consumption [kWh/month]                (Fig. 4 y-axis)
//  * violation rate = violating occupied steps /
//                     total occupied steps          (Fig. 4 x-axis)
//  * comfort rate   = 1 - violation rate
//  * energy-efficiency score = comfort rate /
//                     energy * 1000                 (Fig. 6 y-axis)
#pragma once

#include <cstddef>

#include "envlib/env.hpp"

namespace verihvac::env {

class EpisodeMetrics {
 public:
  void add(const StepOutcome& outcome);

  std::size_t steps() const { return steps_; }
  std::size_t occupied_steps() const { return occupied_steps_; }
  double total_energy_kwh() const { return energy_kwh_; }
  double total_reward() const { return reward_; }

  /// Fraction of *occupied* steps whose zone temperature violated comfort.
  double violation_rate() const;
  double comfort_rate() const { return 1.0 - violation_rate(); }

  /// Fig. 6 score: comfort rate / kWh, scaled by 1000.
  double energy_efficiency_score() const;

 private:
  std::size_t steps_ = 0;
  std::size_t occupied_steps_ = 0;
  std::size_t occupied_violations_ = 0;
  double energy_kwh_ = 0.0;
  double reward_ = 0.0;
};

}  // namespace verihvac::env
