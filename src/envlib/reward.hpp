// Reward function — Eq. 2 of the paper.
//
//   r(s_t) = -w_e * E_t - (1 - w_e) * (|s_t - z_hi|_+ + |z_lo - s_t|_+)
//
// E_t is the L1 distance between the commanded setpoints and the "HVAC off"
// setpoints (heating fully setback at 15 degC, cooling fully setback at
// 30 degC) — the energy *proxy* the paper adopts from Gnu-RL [7].
// w_e = 1e-2 while the zone is occupied (comfort-dominant) and w_e = 1
// while unoccupied (energy-dominant). The comfort zone is seasonal:
// [20, 23.5] degC in winter, [23, 26] degC in summer.
#pragma once

#include "thermosim/hvac.hpp"

namespace verihvac::env {

/// Seasonal comfort range [z_lo, z_hi].
struct ComfortRange {
  double lo = 20.0;
  double hi = 23.5;

  bool contains(double temp_c) const { return temp_c >= lo && temp_c <= hi; }
  double median() const { return 0.5 * (lo + hi); }
};

ComfortRange winter_comfort();  ///< [20.0, 23.5] degC
ComfortRange summer_comfort();  ///< [23.0, 26.0] degC

struct RewardConfig {
  ComfortRange comfort = winter_comfort();
  double we_occupied = 1e-2;
  double we_unoccupied = 1.0;
  /// Setpoints at which the HVAC is effectively off (full setback).
  double heating_off_c = 15.0;
  double cooling_off_c = 30.0;
};

/// The paper's energy proxy E_t: L1 distance from the full-setback pair.
double energy_proxy(const RewardConfig& config, const sim::SetpointPair& action);

/// Positive-part comfort penalty (|s - z_hi|_+ + |z_lo - s|_+).
double comfort_penalty(const ComfortRange& comfort, double zone_temp_c);

/// Eq. 2 evaluated for one step.
double reward(const RewardConfig& config, double zone_temp_c,
              const sim::SetpointPair& action, bool occupied);

}  // namespace verihvac::env
