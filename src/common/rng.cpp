#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace verihvac {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion guarantees a non-degenerate initial state even for
  // adjacent or zero seeds.
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next() % span);
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(next() % n);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform; u1 is kept away from zero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) return index(weights.size());
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::split() { return Rng(next() ^ 0xA3EC647659359ACDull); }

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) {
  // Hash the pair down to one well-mixed 64-bit key (SplitMix64 rounds with
  // an odd-multiplier fold of the stream id in between, so adjacent ids and
  // adjacent seeds both decorrelate); the constructor then expands the key
  // into the 256-bit xoshiro state.
  std::uint64_t x = seed;
  std::uint64_t key = splitmix64(x);
  x = key ^ (0xD1342543DE82EF95ull * (stream_id + 0x632BE59BD9B4E019ull));
  key = splitmix64(x);
  return Rng(key);
}

}  // namespace verihvac
