#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace verihvac {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 1) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return std::sqrt(sum / static_cast<double>(xs.size()));
}

double min_of(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::vector<double> xs, double q) {
  assert(!xs.empty());
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(bins > 0 && hi > lo);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

std::vector<double> Histogram::pmf() const {
  std::vector<double> p(counts_.size(), 0.0);
  if (total_ == 0) {
    const double u = 1.0 / static_cast<double>(counts_.size());
    std::fill(p.begin(), p.end(), u);
    return p;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    p[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return p;
}

double entropy_bits(const std::vector<double>& pmf) {
  double h = 0.0;
  for (double p : pmf) {
    if (p > 0.0) h -= p * std::log2(p);
  }
  return h;
}

double kl_divergence_bits(const std::vector<double>& p, const std::vector<double>& q) {
  assert(p.size() == q.size());
  constexpr double kEps = 1e-12;
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] > 0.0) d += p[i] * std::log2(p[i] / std::max(q[i], kEps));
  }
  return d;
}

double jensen_shannon_distance(const std::vector<double>& p, const std::vector<double>& q) {
  assert(p.size() == q.size());
  std::vector<double> m(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  const double js = 0.5 * kl_divergence_bits(p, m) + 0.5 * kl_divergence_bits(q, m);
  // Numerical noise can push js infinitesimally negative; clamp before sqrt.
  return std::sqrt(std::max(js, 0.0));
}

namespace {

// Shared-support histogram bounds across both samples for one dimension.
std::pair<double, double> joint_range(const std::vector<std::vector<double>>& a,
                                      const std::vector<std::vector<double>>& b,
                                      std::size_t dim) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& row : a) {
    lo = std::min(lo, row[dim]);
    hi = std::max(hi, row[dim]);
  }
  for (const auto& row : b) {
    lo = std::min(lo, row[dim]);
    hi = std::max(hi, row[dim]);
  }
  if (!(hi > lo)) hi = lo + 1.0;  // degenerate constant dimension
  return {lo, hi};
}

}  // namespace

double mean_marginal_jsd(const std::vector<std::vector<double>>& a,
                         const std::vector<std::vector<double>>& b,
                         std::size_t bins) {
  assert(!a.empty() && !b.empty() && a.front().size() == b.front().size());
  const std::size_t dims = a.front().size();
  double total = 0.0;
  for (std::size_t dim = 0; dim < dims; ++dim) {
    const auto [lo, hi] = joint_range(a, b, dim);
    Histogram ha(lo, hi, bins);
    Histogram hb(lo, hi, bins);
    for (const auto& row : a) ha.add(row[dim]);
    for (const auto& row : b) hb.add(row[dim]);
    total += jensen_shannon_distance(ha.pmf(), hb.pmf());
  }
  return total / static_cast<double>(dims);
}

double sum_marginal_entropy(const std::vector<std::vector<double>>& a, std::size_t bins) {
  assert(!a.empty());
  const std::size_t dims = a.front().size();
  double total = 0.0;
  for (std::size_t dim = 0; dim < dims; ++dim) {
    const auto [lo, hi] = joint_range(a, a, dim);
    Histogram h(lo, hi, bins);
    for (const auto& row : a) h.add(row[dim]);
    total += entropy_bits(h.pmf());
  }
  return total;
}

}  // namespace verihvac
