// Leveled stderr logging.
//
// Kept intentionally minimal: a leveled logger with an env-controlled
// threshold (VERI_HVAC_LOG=debug|info|warn|error, default info) and
// monotonic-since-start timestamps. The threshold is an atomic behind a
// once-initialized load, so the first log call from any thread is safe.
// An optional process-wide hook observes emitted lines — obs uses it to
// count warn/error rates without this leaf layer depending on obs.
#pragma once

#include <sstream>
#include <string>

namespace verihvac {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold, initialized once from VERI_HVAC_LOG (thread-safe).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Monotonic seconds since logging start (the timestamp prefix's clock).
double log_uptime_seconds();

/// Observer invoked for every emitted (post-threshold) line. One hook
/// process-wide; nullptr uninstalls; returns the previous hook so callers
/// can restore it. Hooks must be signal-safe-ish: no logging from inside
/// the hook.
using LogHook = void (*)(LogLevel);
LogHook set_log_hook(LogHook hook);

void log_message(LogLevel level, const std::string& message);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename Head, typename... Tail>
void format_into(std::ostringstream& os, const Head& head, const Tail&... tail) {
  os << head;
  format_into(os, tail...);
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_threshold() > LogLevel::kDebug) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(LogLevel::kDebug, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_threshold() > LogLevel::kInfo) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(LogLevel::kInfo, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_threshold() > LogLevel::kWarn) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(LogLevel::kWarn, os.str());
}

template <typename... Args>
void log_error(const Args&... args) {
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(LogLevel::kError, os.str());
}

}  // namespace verihvac
