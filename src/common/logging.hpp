// Leveled stderr logging.
//
// Kept intentionally minimal: experiments are batch jobs, so a
// timestamp-free leveled logger with an env-controlled threshold
// (VERI_HVAC_LOG=debug|info|warn|error, default info) is all that is needed.
#pragma once

#include <sstream>
#include <string>

namespace verihvac {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold, initialized once from VERI_HVAC_LOG.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

void log_message(LogLevel level, const std::string& message);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename Head, typename... Tail>
void format_into(std::ostringstream& os, const Head& head, const Tail&... tail) {
  os << head;
  format_into(os, tail...);
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_threshold() > LogLevel::kDebug) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(LogLevel::kDebug, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_threshold() > LogLevel::kInfo) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(LogLevel::kInfo, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_threshold() > LogLevel::kWarn) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(LogLevel::kWarn, os.str());
}

template <typename... Args>
void log_error(const Args&... args) {
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(LogLevel::kError, os.str());
}

}  // namespace verihvac
