// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components in the library (weather synthesis, random
// shooting, Monte-Carlo verification, data augmentation) draw from this
// generator so that every experiment is reproducible from a single seed.
//
// The engine is xoshiro256++ seeded through SplitMix64, which is the
// recommended initialization of the xoshiro family. It is small, fast and
// has no measurable bias for the sample counts used here.
#pragma once

#include <cstdint>
#include <vector>

namespace verihvac {

/// xoshiro256++ PRNG with convenience distributions.
///
/// The class satisfies the essentials of UniformRandomBitGenerator so it
/// can also be handed to <random> utilities if ever needed, but the
/// built-in distributions below are preferred: they are guaranteed to be
/// identical across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Raw 64 random bits.
  result_type operator()() { return next(); }
  result_type next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi);
  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);
  /// Standard normal via Box-Muller (cached second deviate).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli draw.
  bool bernoulli(double p);
  /// Samples an index proportionally to non-negative `weights`.
  /// Falls back to uniform if all weights are zero.
  std::size_t categorical(const std::vector<double>& weights);
  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child stream (for parallel-safe substreams).
  Rng split();

  /// Counter-based stream derivation: the `stream_id`-th substream of
  /// `seed`, computed purely from the (seed, stream_id) pair — no shared
  /// generator state is consumed, so streams can be constructed in any
  /// order, on any thread, and always yield the same draws. This is the
  /// determinism contract the parallel Monte-Carlo verifier relies on:
  /// sample i draws from stream(seed, i) regardless of which worker runs
  /// it, making reports bit-identical across thread counts.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id);

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace verihvac
