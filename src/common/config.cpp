#include "common/config.hpp"

#include <algorithm>
#include <cstdlib>

namespace verihvac {

std::string env_or(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return fallback;
  return value;
}

long env_or_long(const std::string& name, long fallback) {
  const std::string raw = env_or(name, "");
  if (raw.empty()) return fallback;
  try {
    return std::stol(raw);
  } catch (...) {
    return fallback;
  }
}

double env_or_double(const std::string& name, double fallback) {
  const std::string raw = env_or(name, "");
  if (raw.empty()) return fallback;
  try {
    return std::stod(raw);
  } catch (...) {
    return fallback;
  }
}

bool env_flag(const std::string& name) {
  std::string raw = env_or(name, "");
  std::transform(raw.begin(), raw.end(), raw.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return raw == "1" || raw == "true" || raw == "on" || raw == "yes";
}

bool full_scale() { return env_flag("VERI_HVAC_FULL"); }

std::string output_dir() { return env_or("VERI_HVAC_OUT", "bench_out"); }

}  // namespace verihvac
