#include "common/logging.hpp"

#include <cstdio>

#include "common/config.hpp"

namespace verihvac {
namespace {

LogLevel parse_level(const std::string& raw) {
  if (raw == "debug") return LogLevel::kDebug;
  if (raw == "warn") return LogLevel::kWarn;
  if (raw == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

LogLevel& threshold_storage() {
  static LogLevel level = parse_level(env_or("VERI_HVAC_LOG", "info"));
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() { return threshold_storage(); }

void set_log_threshold(LogLevel level) { threshold_storage() = level; }

void log_message(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace verihvac
