#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/config.hpp"

namespace verihvac {
namespace {

LogLevel parse_level(const std::string& raw) {
  if (raw == "debug") return LogLevel::kDebug;
  if (raw == "warn") return LogLevel::kWarn;
  if (raw == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> level{-1};  // -1 = not yet initialized
  return level;
}

std::atomic<LogHook>& hook_storage() {
  static std::atomic<LogHook> hook{nullptr};
  return hook;
}

/// Monotonic epoch for the timestamp prefix, pinned on first use.
std::chrono::steady_clock::time_point uptime_epoch() {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return epoch;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() {
  std::atomic<int>& storage = threshold_storage();
  int raw = storage.load(std::memory_order_acquire);
  if (raw < 0) {
    // First call races are resolved by the once_flag: exactly one thread
    // reads the environment; the rest observe its published store.
    static std::once_flag once;
    std::call_once(once, [&storage] {
      int expected = -1;
      const int parsed = static_cast<int>(parse_level(env_or("VERI_HVAC_LOG", "info")));
      // compare_exchange: an explicit set_log_threshold that beat the lazy
      // env read must win.
      storage.compare_exchange_strong(expected, parsed, std::memory_order_acq_rel);
    });
    raw = storage.load(std::memory_order_acquire);
  }
  return static_cast<LogLevel>(raw);
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level), std::memory_order_release);
}

double log_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - uptime_epoch()).count();
}

LogHook set_log_hook(LogHook hook) {
  return hook_storage().exchange(hook, std::memory_order_acq_rel);
}

void log_message(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%10.3f] [%s] %s\n", log_uptime_seconds(), level_name(level),
               message.c_str());
  if (const LogHook hook = hook_storage().load(std::memory_order_acquire)) hook(level);
}

}  // namespace verihvac
