// ASCII table rendering for bench/example output.
//
// Every bench prints the same rows/series the paper reports; this helper
// keeps the formatting consistent (aligned columns, optional title) so
// the harness output is directly comparable to the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace verihvac {

class AsciiTable {
 public:
  explicit AsciiTable(std::string title = "");

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with `precision` decimals.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  std::string render() const;
  /// Renders and writes to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by benches).
std::string format_double(double value, int precision = 3);

}  // namespace verihvac
