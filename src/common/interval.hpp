// Interval and axis-aligned box arithmetic.
//
// Algorithm 1 of the paper ("decision path verification") intersects the
// half-space constraints along every root-to-leaf path of the decision tree
// into an axis-aligned box over the policy input space, then asks whether
// that box reaches the unsafe regions (zone temperature above/below the
// comfort range). These types implement exactly that computation.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace verihvac {

/// A closed-ish interval [lo, hi). Decision-tree splits are of the form
/// `x <= t` (left) / `x > t` (right); we track lo/hi with the convention
/// that lo is inclusive and hi is inclusive as well — at the precision of
/// the verification queries the boundary measure is irrelevant, but keeping
/// both endpoints makes the box algebra simple and conservative.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  static Interval all();
  static Interval at_most(double t);   // (-inf, t]
  static Interval greater(double t);   // (t, +inf) — stored as [t, inf) with open_lo
  static Interval bounded(double lo, double hi);

  bool empty() const { return lo > hi; }
  bool contains(double x) const { return x >= lo && x <= hi; }
  double width() const;
  Interval intersect(const Interval& other) const;
  std::string to_string() const;
};

/// Axis-aligned box over an n-dimensional input space.
class Box {
 public:
  Box() = default;
  explicit Box(std::size_t dims) : dims_(dims, Interval::all()) {}

  std::size_t size() const { return dims_.size(); }
  Interval& operator[](std::size_t i) { return dims_[i]; }
  const Interval& operator[](std::size_t i) const { return dims_[i]; }

  bool empty() const;
  bool contains(const std::vector<double>& x) const;
  /// Intersects dimension `dim` with `iv` in place.
  void clip(std::size_t dim, const Interval& iv);
  Box intersect(const Box& other) const;
  std::string to_string() const;

 private:
  std::vector<Interval> dims_;
};

}  // namespace verihvac
