#include "common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace verihvac {

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return static_cast<std::size_t>(-1);
}

std::vector<double> CsvTable::numeric_column(const std::string& name) const {
  const std::size_t idx = column_index(name);
  if (idx == static_cast<std::size_t>(-1)) {
    throw std::runtime_error("CSV column not found: " + name);
  }
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    if (idx >= row.size()) throw std::runtime_error("CSV row too short for " + name);
    out.push_back(std::stod(row[idx]));
  }
  return out;
}

CsvWriter::CsvWriter(std::string path) : path_(std::move(path)) {}

void CsvWriter::write_header(const std::vector<std::string>& names) { write_row(names); }

void CsvWriter::write_row(const std::vector<double>& values) {
  std::ostringstream os;
  os.precision(17);  // round-trip exact for doubles
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ',';
    os << values[i];
  }
  os << '\n';
  buffer_ += os.str();
}

void CsvWriter::write_row(const std::vector<std::string>& values) {
  std::string line;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) line += ',';
    line += values[i];
  }
  line += '\n';
  buffer_ += line;
}

void CsvWriter::flush() {
  std::ofstream out(path_);
  if (!out) throw std::runtime_error("cannot open for writing: " + path_);
  out << buffer_;
  flushed_ = true;
}

CsvWriter::~CsvWriter() {
  if (!flushed_) {
    try {
      flush();
    } catch (...) {
      // Destructors must not throw; a failed best-effort flush is dropped.
    }
  }
}

CsvTable read_csv(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV: " + path);
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ls(line);
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    if (first && has_header) {
      table.header = std::move(cells);
      first = false;
    } else {
      table.rows.push_back(std::move(cells));
      first = false;
    }
  }
  return table;
}

void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows) {
  CsvWriter writer(path);
  writer.write_header(header);
  for (const auto& row : rows) writer.write_row(row);
  writer.flush();
}

}  // namespace verihvac
