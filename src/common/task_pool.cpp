#include "common/task_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>

namespace verihvac::common {
namespace {

// Process-wide (all pools share the hook, so the in-flight gauge spans
// pools too — the shared pool is the one that matters in production).
std::atomic<TaskPool::MetricsHook> g_metrics_hook{nullptr};
std::atomic<std::size_t> g_active_jobs{0};

/// RAII observation around one parallel_for: times the fan-out and fires
/// the hook on exit. No clock reads while no hook is installed, so the
/// instrumented and uninstrumented paths only differ by one relaxed load.
class ScopedPoolObservation {
 public:
  explicit ScopedPoolObservation(std::size_t items)
      : hook_(g_metrics_hook.load(std::memory_order_relaxed)), items_(items) {
    if (hook_ == nullptr) return;
    active_ = g_active_jobs.fetch_add(1, std::memory_order_relaxed) + 1;
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedPoolObservation() {
    if (hook_ == nullptr) return;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    g_active_jobs.fetch_sub(1, std::memory_order_relaxed);
    hook_(items_, seconds, active_);
  }

 private:
  TaskPool::MetricsHook hook_;
  std::size_t items_;
  std::size_t active_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace

// Shared state for one parallel_for invocation plus the pool's lifecycle.
// Workers sleep on `cv_work` between jobs; the caller sleeps on `cv_done`
// while chunks drain. Chunks are claimed dynamically through `next_chunk`
// (work stealing keeps uneven per-item costs balanced); which worker claims
// which chunk does not affect results, because each index is processed
// exactly once and outputs are per-index.
struct TaskPool::Job {
  /// Serializes whole parallel_for invocations: the pool runs one batch at
  /// a time, so several clients may safely share TaskPool::shared().
  std::mutex submit_mutex;
  std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_done;

  // Current job description (guarded by mutex; read by workers after wake).
  std::uint64_t generation = 0;
  bool shutdown = false;
  std::size_t n = 0;
  std::size_t chunk_size = 1;
  std::size_t chunk_count = 0;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next_chunk{0};
  std::size_t workers_running = 0;
  std::exception_ptr first_error;

  void run_chunks(std::size_t worker_id) {
    for (;;) {
      const std::size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunk_count) return;
      const std::size_t begin = chunk * chunk_size;
      const std::size_t end = std::min(n, begin + chunk_size);
      try {
        (*body)(worker_id, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  }
};

TaskPool::TaskPool(TaskPoolConfig config) : config_(config), job_(std::make_shared<Job>()) {
  std::size_t threads = config_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(job_->mutex);
    job_->shutdown = true;
  }
  job_->cv_work.notify_all();
  for (auto& worker : workers_) worker.join();
}

void TaskPool::worker_loop(std::size_t worker_id) {
  Job& job = *job_;
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(job.mutex);
      job.cv_work.wait(lock, [&] { return job.shutdown || job.generation != seen_generation; });
      if (job.shutdown) return;
      seen_generation = job.generation;
    }
    job.run_chunks(worker_id);
    {
      std::lock_guard<std::mutex> lock(job.mutex);
      if (--job.workers_running == 0) job.cv_done.notify_one();
    }
  }
}

void TaskPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t, std::size_t)>& body) const {
  if (n == 0) return;
  ScopedPoolObservation observation(n);
  if (workers_.empty() || n < config_.min_parallel_batch) {
    body(0, 0, n);
    return;
  }

  Job& job = *job_;
  std::lock_guard<std::mutex> submit_lock(job.submit_mutex);
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    job.n = n;
    // ~4 chunks per thread balances load without excessive claim traffic.
    job.chunk_size = std::max<std::size_t>(1, n / (4 * thread_count()));
    job.chunk_count = (n + job.chunk_size - 1) / job.chunk_size;
    job.body = &body;
    job.next_chunk.store(0, std::memory_order_relaxed);
    job.workers_running = workers_.size();
    job.first_error = nullptr;
    ++job.generation;
  }
  job.cv_work.notify_all();

  job.run_chunks(0);  // the caller is worker 0

  std::unique_lock<std::mutex> lock(job.mutex);
  job.cv_done.wait(lock, [&] { return job.workers_running == 0; });
  job.body = nullptr;
  if (job.first_error) std::rethrow_exception(job.first_error);
}

TaskPool::MetricsHook TaskPool::set_metrics_hook(MetricsHook hook) {
  return g_metrics_hook.exchange(hook, std::memory_order_acq_rel);
}

std::shared_ptr<const TaskPool> TaskPool::shared() {
  static const std::shared_ptr<const TaskPool> instance = [] {
    TaskPoolConfig config;
    if (const char* env = std::getenv("VERI_HVAC_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) config.threads = static_cast<std::size_t>(parsed);
    }
    return std::make_shared<const TaskPool>(config);
  }();
  return instance;
}

}  // namespace verihvac::common
