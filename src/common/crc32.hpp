// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// the durable telemetry segments use to detect torn or bit-flipped
// frames. Slicing-by-8: eight lookup tables let each step consume eight
// input bytes, which matters because the segment writer checksums every
// record body on the decision path's drain side. Bit-identical to the
// canonical one-table byte-at-a-time form. Header-only so leaf code can
// use it without a link dependency.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace verihvac::common {

namespace detail {

inline const std::array<std::array<std::uint32_t, 256>, 8>& crc32_tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (std::size_t j = 1; j < 8; ++j) {
        t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFFu];
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace detail

namespace detail {

/// The slicing fast path folds whole words and is only equivalent to the
/// canonical byte-at-a-time form when those words are loaded
/// little-endian; unknown byte orders take the portable loop.
inline constexpr bool crc32_host_is_little_endian =
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;
#elif defined(_WIN32)
    true;
#else
    false;
#endif

}  // namespace detail

/// Incremental form: feed `crc32_update(seed, ...)` chunk by chunk with
/// the previous return value as the seed; `crc32()` is the one-shot.
inline std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& t = detail::crc32_tables();
  crc = ~crc;
  if constexpr (detail::crc32_host_is_little_endian) {
    while (size >= 8) {
      std::uint32_t lo = 0;
      std::uint32_t hi = 0;
      std::memcpy(&lo, bytes, 4);
      std::memcpy(&hi, bytes + 4, 4);
      lo ^= crc;
      crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
            t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
            t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
      bytes += 8;
      size -= 8;
    }
  }
  for (std::size_t i = 0; i < size; ++i) {
    crc = t[0][(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_update(0, data, size);
}

}  // namespace verihvac::common
