#include "common/matrix.hpp"

#include <algorithm>

namespace verihvac {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_ && "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

std::vector<double> Matrix::row(std::size_t r) const {
  assert(r < rows_);
  return std::vector<double>(row_data(r), row_data(r) + cols_);
}

void Matrix::set_row(std::size_t r, const std::vector<double>& values) {
  assert(r < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(), row_data(r));
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  assert(r < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(), row_data(r));
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);  // vector::assign reuses capacity
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);  // no refill when the size is unchanged
}

void Matrix::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::multiply(const Matrix& a, const Matrix& b) {
  Matrix c;
  multiply_into(a, b, c);
  return c;
}

void Matrix::multiply_into(const Matrix& a, const Matrix& b, Matrix& c) {
  assert(a.cols() == b.rows() && "multiply_into: inner dimensions disagree");
  assert(&c != &a && &c != &b && "multiply_into: output aliases an input");
  c.resize(a.rows(), b.cols());
  // Blocked i-k-j: the inner loop is contiguous in both b and c; the i/k
  // tiles keep at most kTile rows of b hot while a's tile is streamed.
  // Walking k-tiles (and k within a tile) in ascending order preserves the
  // unblocked kernel's accumulation order exactly, so delegating
  // multiply() here changes no bits.
  constexpr std::size_t kTile = 64;
  for (std::size_t i0 = 0; i0 < a.rows(); i0 += kTile) {
    const std::size_t i1 = std::min(i0 + kTile, a.rows());
    for (std::size_t k0 = 0; k0 < a.cols(); k0 += kTile) {
      const std::size_t k1 = std::min(k0 + kTile, a.cols());
      for (std::size_t i = i0; i < i1; ++i) {
        double* crow = c.row_data(i);
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = a(i, k);
          if (aik == 0.0) continue;
          const double* brow = b.row_data(k);
          for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

Matrix Matrix::multiply_at_b(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row_data(k);
    const double* brow = b.row_data(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.row_data(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix Matrix::multiply_a_bt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_data(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row_data(j);
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += arow[k] * brow[k];
      c(i, j) = sum;
    }
  }
  return c;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double scalar) { return a *= scalar; }

}  // namespace verihvac
