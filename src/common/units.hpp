// Physical constants and unit helpers shared by the thermal simulator.
//
// Everything internal is SI (seconds, watts, joules, kelvin-sized Celsius
// deltas); the only conversions are at reporting boundaries (kWh) and for
// the 15-minute control step the paper uses.
#pragma once

namespace verihvac {

/// Seconds in one control step (the paper actuates setpoints every 15 min).
inline constexpr double kControlStepSeconds = 15.0 * 60.0;

/// Control steps per simulated day.
inline constexpr int kStepsPerDay = 96;

/// Control steps per hour.
inline constexpr int kStepsPerHour = 4;

/// Joules per kilowatt-hour.
inline constexpr double kJoulesPerKwh = 3.6e6;

/// Specific heat capacity of air [J/(kg*K)].
inline constexpr double kAirSpecificHeat = 1005.0;

/// Density of air at room conditions [kg/m^3].
inline constexpr double kAirDensity = 1.2;

/// Converts joules to kilowatt-hours.
inline constexpr double joules_to_kwh(double joules) { return joules / kJoulesPerKwh; }

/// Converts a power (W) sustained for `seconds` into kWh.
inline constexpr double watts_to_kwh(double watts, double seconds) {
  return joules_to_kwh(watts * seconds);
}

}  // namespace verihvac
