#include "common/interval.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace verihvac {

Interval Interval::all() { return Interval{}; }

Interval Interval::at_most(double t) {
  Interval iv;
  iv.hi = t;
  return iv;
}

Interval Interval::greater(double t) {
  Interval iv;
  iv.lo = t;
  return iv;
}

Interval Interval::bounded(double lo, double hi) { return Interval{lo, hi}; }

double Interval::width() const {
  if (empty()) return 0.0;
  return hi - lo;
}

Interval Interval::intersect(const Interval& other) const {
  return Interval{std::max(lo, other.lo), std::min(hi, other.hi)};
}

std::string Interval::to_string() const {
  std::ostringstream os;
  os << "[" << lo << ", " << hi << "]";
  return os.str();
}

bool Box::empty() const {
  for (const auto& iv : dims_) {
    if (iv.empty()) return true;
  }
  return false;
}

bool Box::contains(const std::vector<double>& x) const {
  assert(x.size() == dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (!dims_[i].contains(x[i])) return false;
  }
  return true;
}

void Box::clip(std::size_t dim, const Interval& iv) {
  assert(dim < dims_.size());
  dims_[dim] = dims_[dim].intersect(iv);
}

Box Box::intersect(const Box& other) const {
  assert(size() == other.size());
  Box out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = dims_[i].intersect(other[i]);
  return out;
}

std::string Box::to_string() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << " x ";
    os << dims_[i].to_string();
  }
  os << "}";
  return os.str();
}

}  // namespace verihvac
