// Reusable persistent thread pool (index-range fan-out).
//
// Generalized from control::RolloutEngine (which is now a thin client):
// the same pool that batches RS/CEM/MPPI rollouts also fans out the
// verification workloads — Monte-Carlo probabilistic checks, per-(leaf ×
// cell) interval certification, per-initial-state reachability tubes —
// through core::VerificationEngine. Determinism is preserved by
// construction for every client: each index of [0, n) is processed exactly
// once into its own output slot, so results are independent of which
// worker claims which chunk, and any serial reduction over the slots is
// bit-identical across thread counts.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace verihvac::common {

struct TaskPoolConfig {
  /// Worker threads including the calling thread; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Batches smaller than this run inline on the caller — forking the pool
  /// for a handful of items costs more than it saves.
  std::size_t min_parallel_batch = 16;
};

class TaskPool {
 public:
  explicit TaskPool(TaskPoolConfig config = {});
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total concurrency: pool workers + the calling thread.
  std::size_t thread_count() const { return workers_.size() + 1; }

  const TaskPoolConfig& config() const { return config_; }

  /// Splits [0, n) into contiguous chunks and runs body(worker_id, begin,
  /// end) across the pool (the caller participates as worker 0; worker_id
  /// < thread_count()). Blocks until every chunk completed. Each index is
  /// processed exactly once, so writes to per-index output slots are
  /// race-free. The first exception thrown by any chunk is rethrown here.
  ///
  /// Concurrent calls from distinct caller threads serialize internally,
  /// but `body` must NOT call back into parallel_for on the same pool
  /// (directly or via a nested batch): re-entry from the caller or a pool
  /// worker deadlocks. Nested parallelism needs a second pool.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) const;

  /// Process-wide shared pool sized from VERI_HVAC_THREADS (default:
  /// hardware concurrency). VERI_HVAC_THREADS=1 forces serial execution.
  static std::shared_ptr<const TaskPool> shared();

  /// Observability hook called after every parallel_for with the item
  /// count, the fan-out's wall time, and how many parallel_for invocations
  /// were in flight (across all pools) when this one started. One hook
  /// process-wide (obs installs it); nullptr uninstalls. Returns the
  /// previously installed hook. The hook must not call parallel_for.
  using MetricsHook = void (*)(std::size_t items, double seconds, std::size_t active);
  static MetricsHook set_metrics_hook(MetricsHook hook);

 private:
  struct Job;

  void worker_loop(std::size_t worker_id);

  TaskPoolConfig config_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;  ///< pool synchronization state
};

}  // namespace verihvac::common
