// Tiny CSV reader/writer for experiment artifacts.
//
// The benches dump their series (and the pipeline can persist decision
// datasets / historical data) as plain CSV so results can be plotted with
// any external tool. Only the subset of CSV needed here is implemented:
// comma separation, optional header row, no quoting of commas.
#pragma once

#include <string>
#include <vector>

namespace verihvac {

/// In-memory CSV table: a header plus rows of string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  std::size_t column_index(const std::string& name) const;  // npos if absent
  /// Column by name converted to double (throws on bad cell).
  std::vector<double> numeric_column(const std::string& name) const;
};

/// Writer that streams rows to a file.
class CsvWriter {
 public:
  explicit CsvWriter(std::string path);
  void write_header(const std::vector<std::string>& names);
  void write_row(const std::vector<double>& values);
  void write_row(const std::vector<std::string>& values);
  /// Flushes buffered content to disk. Also called by the destructor.
  void flush();
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  std::string path_;
  std::string buffer_;
  bool flushed_ = false;
};

/// Parses a CSV file; `has_header` controls whether the first row is the header.
CsvTable read_csv(const std::string& path, bool has_header = true);

/// Serializes a numeric matrix (rows of equal width) with header names.
void write_csv(const std::string& path, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows);

}  // namespace verihvac
