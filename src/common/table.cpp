#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace verihvac {

AsciiTable::AsciiTable(std::string title) : title_(std::move(title)) {}

void AsciiTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void AsciiTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void AsciiTable::add_row(const std::string& label, const std::vector<double>& values,
                         int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  rows_.push_back(std::move(row));
}

std::string AsciiTable::render() const {
  // Column widths over header + all rows.
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) absorb(header_);
  for (const auto& row : rows_) absorb(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto rule = [&]() {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

void AsciiTable::print() const { std::fputs(render().c_str(), stdout); }

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

}  // namespace verihvac
