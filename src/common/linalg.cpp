#include "common/linalg.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace verihvac {

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::runtime_error("solve_linear: dimension mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude entry in this column.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-14) throw std::runtime_error("solve_linear: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv_pivot = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv_pivot;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a(i, c) * x[c];
    x[i] = sum / a(i, i);
  }
  return x;
}

Matrix identity(std::size_t n) {
  Matrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

double norm2(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace verihvac
