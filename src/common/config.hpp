// Runtime configuration knobs.
//
// Benches and examples scale their workloads through environment variables
// (e.g. VERI_HVAC_FULL=1 restores the paper-scale optimizer settings on a
// beefier machine). This header centralizes the lookup logic so every
// binary honours the same switches.
#pragma once

#include <cstdint>
#include <string>

namespace verihvac {

/// Returns the environment variable `name`, or `fallback` if unset/empty.
std::string env_or(const std::string& name, const std::string& fallback);

/// Integer / double / bool variants (non-numeric values fall back).
long env_or_long(const std::string& name, long fallback);
double env_or_double(const std::string& name, double fallback);
bool env_flag(const std::string& name);  // true for "1", "true", "on", "yes"

/// True when VERI_HVAC_FULL is set: benches use the exact hyperparameters
/// from the paper (RS samples=1000, horizon=20, full Monte-Carlo repeats)
/// instead of the single-core-friendly defaults.
bool full_scale();

/// Output directory for experiment CSV artifacts (VERI_HVAC_OUT, default
/// "bench_out/"). Created on demand by callers via std::filesystem.
std::string output_dir();

}  // namespace verihvac
