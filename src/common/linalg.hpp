// Small dense linear solves used by the thermal-network integrator.
//
// The backward-Euler step of the RC network requires solving
// (I - dt * C^-1 * K) x = b for a ~10x10 system every substep; partial-pivot
// Gaussian elimination is exact, allocation-light and fast at that size.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace verihvac {

/// Solves A x = b with partial pivoting. A must be square, b.size()==A.rows().
/// Throws std::runtime_error on a (numerically) singular matrix.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// Returns the identity matrix of size n.
Matrix identity(std::size_t n);

/// Euclidean norm of a vector.
double norm2(const std::vector<double>& v);

/// Dot product (asserts equal sizes).
double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace verihvac
