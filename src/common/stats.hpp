// Descriptive statistics, histograms, information entropy and
// Jensen-Shannon distance.
//
// These back two parts of the paper:
//  * the Fig. 3 noise-level calibration (entropy + JSD between historical
//    input distributions), and
//  * the Fig. 1 / Fig. 5 setpoint-distribution analyses.
#pragma once

#include <cstddef>
#include <vector>

namespace verihvac {

/// Running summary of a scalar sample (Welford's algorithm; numerically
/// stable for long simulations).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(const std::vector<double>& xs);
/// Population standard deviation (divides by n); 0 for n < 1.
double stddev(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);
/// Linear-interpolated quantile, q in [0,1].
double quantile(std::vector<double> xs, double q);

/// Fixed-width histogram over [lo, hi] with `bins` bins. Values outside the
/// range are clamped into the boundary bins (the distributions compared in
/// Fig. 3 share a common support, so clamping only affects extreme noise).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  /// Center of bin `i`.
  double bin_center(std::size_t i) const;
  /// Normalized probability mass per bin (sums to 1; empty -> uniform).
  std::vector<double> pmf() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Shannon entropy of a probability mass function, in bits.
/// Zero-probability bins contribute nothing.
double entropy_bits(const std::vector<double>& pmf);

/// Kullback-Leibler divergence KL(p || q) in bits. Bins where p>0 and q==0
/// are smoothed with a tiny epsilon so the result stays finite (matching
/// the common practice for empirical histograms).
double kl_divergence_bits(const std::vector<double>& p, const std::vector<double>& q);

/// Jensen-Shannon *distance* (the square root of the JS divergence, base-2),
/// bounded in [0, 1]. This is the metric reported in Fig. 3 of the paper.
double jensen_shannon_distance(const std::vector<double>& p, const std::vector<double>& q);

/// Mean of per-dimension JSDs between two multivariate samples, where each
/// dimension is histogrammed over the union of both supports. This is the
/// tractable product-marginal approximation used for the 6-D input
/// distributions (binning the joint space is exactly the O(n^5) blow-up the
/// paper avoids).
double mean_marginal_jsd(const std::vector<std::vector<double>>& a,
                         const std::vector<std::vector<double>>& b,
                         std::size_t bins);

/// Sum of per-dimension entropies (bits) of a multivariate sample under the
/// same product-marginal approximation.
double sum_marginal_entropy(const std::vector<std::vector<double>>& a, std::size_t bins);

}  // namespace verihvac
