// Wall-clock helpers shared by the serving/adaptation layers and the
// bench harness (one home for the steady-clock idiom instead of a private
// copy per translation unit).
#pragma once

#include <chrono>

namespace verihvac {

/// Seconds elapsed since `t0` on the steady clock.
inline double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace verihvac
