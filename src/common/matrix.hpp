// Minimal dense row-major matrix used by the neural-network module.
//
// The library deliberately avoids external linear-algebra dependencies:
// the dynamics models in the paper are small MLPs (a few thousand
// parameters), so a straightforward cache-friendly implementation is both
// sufficient and easy to audit.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace verihvac {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  /// Constructs from a nested initializer list; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* row_data(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_data(std::size_t r) const { return data_.data() + r * cols_; }
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Non-owning view of row `r` (batch pipelines iterate rows without
  /// materializing per-row vectors).
  std::span<double> row_view(std::size_t r) {
    assert(r < rows_);
    return {row_data(r), cols_};
  }
  std::span<const double> row_view(std::size_t r) const {
    assert(r < rows_);
    return {row_data(r), cols_};
  }

  /// Extracts row `r` as a vector.
  std::vector<double> row(std::size_t r) const;
  /// Overwrites row `r` from a vector of length cols().
  void set_row(std::size_t r, const std::vector<double>& values);
  /// Overwrites row `r` from a span of length cols().
  void set_row(std::size_t r, std::span<const double> values);

  /// Reshapes to rows x cols and zero-fills. Reuses the existing capacity,
  /// so repeated resize/compute cycles (the batch inference scratch
  /// pattern) allocate only when the batch outgrows every earlier one.
  void resize(std::size_t rows, std::size_t cols);

  /// Reshapes to rows x cols WITHOUT clearing: contents are unspecified.
  /// For kernels that overwrite every element anyway (the batched Linear
  /// forward bias-initializes each row), skipping the zero pass halves the
  /// write traffic. Reuses capacity like resize().
  void reshape(std::size_t rows, std::size_t cols);

  void fill(double value);
  Matrix transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// C = A * B (asserts inner dimensions agree).
  static Matrix multiply(const Matrix& a, const Matrix& b);
  /// Allocation-free C = A * B into caller-owned `c` (resized in place,
  /// reusing capacity). Cache-blocked i-k-j kernel: the inner loop is
  /// contiguous in both B and C, and i/k tiling bounds the working set of
  /// B so large products stay in cache. k-tiles are walked in ascending
  /// order, so every C element accumulates in exactly the same order as
  /// the unblocked kernel — results are bit-identical to multiply().
  /// `c` must not alias `a` or `b`.
  static void multiply_into(const Matrix& a, const Matrix& b, Matrix& c);
  /// C = A^T * B without materializing the transpose.
  static Matrix multiply_at_b(const Matrix& a, const Matrix& b);
  /// C = A * B^T without materializing the transpose.
  static Matrix multiply_a_bt(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double scalar);

}  // namespace verihvac
