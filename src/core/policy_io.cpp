#include "core/policy_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/certificate_cache.hpp"
#include "tree/tree_io.hpp"

namespace verihvac::core {
namespace {

/// Interval endpoints are written as "inf"/"-inf" tokens or with enough
/// digits to round-trip exactly (write→read→write is byte-identical).
void write_bound(std::ostream& out, double v) {
  if (std::isinf(v)) {
    out << (v > 0.0 ? "inf" : "-inf");
    return;
  }
  std::ostringstream tmp;
  tmp << std::setprecision(17) << v;
  out << tmp.str();
}

double read_bound(std::istream& in, const std::string& context) {
  std::string token;
  in >> token;
  if (!in) throw std::runtime_error("read_policy: truncated schema bound in " + context);
  if (token == "inf") return std::numeric_limits<double>::infinity();
  if (token == "-inf") return -std::numeric_limits<double>::infinity();
  try {
    return std::stod(token);
  } catch (const std::exception&) {
    throw std::runtime_error("read_policy: bad schema bound '" + token + "' in " + context);
  }
}

void write_schema(const env::FeatureSchema& schema, std::ostream& out) {
  out << "schema " << schema.name() << ' ' << schema.dims() << '\n';
  for (const env::FeatureSpec& f : schema.features()) {
    out << "feature " << f.name << ' ' << f.unit << ' ' << env::feature_kind_name(f.kind)
        << ' ' << env::feature_role_name(f.role) << ' ';
    write_bound(out, f.bounds.lo);
    out << ' ';
    write_bound(out, f.bounds.hi);
    out << '\n';
  }
}

env::FeatureSchema read_schema(std::istream& in, const std::string& context) {
  std::string tag;
  std::string name;
  std::size_t dims = 0;
  in >> tag >> name >> dims;
  if (!in || tag != "schema" || dims == 0) {
    throw std::runtime_error("read_policy: bad schema header in " + context);
  }
  std::vector<env::FeatureSpec> features;
  features.reserve(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    std::string kind;
    std::string role;
    env::FeatureSpec spec;
    in >> tag >> spec.name >> spec.unit >> kind >> role;
    if (!in || tag != "feature") {
      throw std::runtime_error("read_policy: truncated schema feature in " + context);
    }
    try {
      spec.kind = env::feature_kind_from_name(kind);
      spec.role = env::feature_role_from_name(role);
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error("read_policy: " + std::string(e.what()) + " in " + context);
    }
    spec.bounds.lo = read_bound(in, context);
    spec.bounds.hi = read_bound(in, context);
    features.push_back(std::move(spec));
  }
  try {
    return env::FeatureSchema(std::move(name), std::move(features));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("read_policy: invalid schema (" + std::string(e.what()) +
                             ") in " + context);
  }
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  std::ostringstream hex;
  hex << std::hex << std::setw(16) << std::setfill('0') << fingerprint;
  return hex.str();
}

}  // namespace

void write_policy(const DtPolicy& policy, std::ostream& out) {
  const control::ActionSpaceConfig& grid = policy.actions().config();
  out << "verihvac-policy v3\n";
  out << "fingerprint " << fingerprint_hex(policy_fingerprint(policy)) << '\n';
  write_schema(policy.schema(), out);
  out << grid.heat_min << ' ' << grid.heat_max << ' ' << grid.cool_min << ' ' << grid.cool_max
      << ' ' << (grid.enforce_heat_le_cool ? 1 : 0) << '\n';
  tree::write_tree(policy.tree(), out);
}

DtPolicy read_policy(std::istream& in, const std::string& context) {
  std::string magic;
  std::string version;
  in >> magic >> version;
  if (magic != "verihvac-policy" ||
      (version != "v1" && version != "v2" && version != "v3")) {
    throw std::runtime_error("read_policy: bad header in " + context);
  }
  std::string stated_fingerprint;
  if (version == "v3") {
    std::string tag;
    in >> tag >> stated_fingerprint;
    if (!in || tag != "fingerprint" || stated_fingerprint.size() != 16) {
      throw std::runtime_error("read_policy: bad fingerprint line in " + context);
    }
  }
  // v1 bundles predate persisted schemas: they are implicitly the baseline
  // 6-dim layout.
  env::FeatureSchema schema =
      version == "v1" ? env::baseline_schema() : read_schema(in, context);

  control::ActionSpaceConfig grid;
  int enforce = 1;
  in >> grid.heat_min >> grid.heat_max >> grid.cool_min >> grid.cool_max >> enforce;
  if (!in) throw std::runtime_error("read_policy: truncated action space in " + context);
  grid.enforce_heat_le_cool = enforce != 0;

  control::ActionSpace actions(grid);  // validates the grid itself
  tree::DecisionTreeClassifier tree = tree::read_tree(in, context);
  if (tree.num_classes() != actions.size()) {
    throw std::runtime_error("read_policy: tree classes (" +
                             std::to_string(tree.num_classes()) +
                             ") do not match the embedded action space (" +
                             std::to_string(actions.size()) + ") in " + context);
  }
  if (tree.num_features() != schema.dims()) {
    throw std::runtime_error("read_policy: tree features (" +
                             std::to_string(tree.num_features()) +
                             ") do not match the embedded schema '" + schema.name() + "' (" +
                             std::to_string(schema.dims()) + " dims) in " + context);
  }
  DtPolicy policy(std::move(tree), std::move(actions), std::move(schema));
  if (!stated_fingerprint.empty()) {
    // Recompute over what was actually decoded: a bundle whose content no
    // longer matches the fingerprint it was sealed with is corrupt or
    // tampered — never served.
    const std::string actual = fingerprint_hex(policy_fingerprint(policy));
    if (actual != stated_fingerprint) {
      throw std::runtime_error("read_policy: fingerprint mismatch in " + context +
                               " (stated " + stated_fingerprint + ", content " + actual +
                               ") — bundle corrupted or tampered");
    }
  }
  return policy;
}

void save_policy(const DtPolicy& policy, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_policy: cannot open " + path);
  write_policy(policy, out);
  if (!out.flush()) throw std::runtime_error("save_policy: write failed for " + path);
}

DtPolicy load_policy(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_policy: cannot open " + path);
  return read_policy(in, path);
}

}  // namespace verihvac::core
