#include "core/policy_io.hpp"

#include <fstream>
#include <stdexcept>

#include "tree/tree_io.hpp"

namespace verihvac::core {

void write_policy(const DtPolicy& policy, std::ostream& out) {
  const control::ActionSpaceConfig& grid = policy.actions().config();
  out << "verihvac-policy v1\n"
      << grid.heat_min << ' ' << grid.heat_max << ' ' << grid.cool_min << ' ' << grid.cool_max
      << ' ' << (grid.enforce_heat_le_cool ? 1 : 0) << '\n';
  tree::write_tree(policy.tree(), out);
}

DtPolicy read_policy(std::istream& in, const std::string& context) {
  std::string magic;
  std::string version;
  in >> magic >> version;
  if (magic != "verihvac-policy" || version != "v1") {
    throw std::runtime_error("read_policy: bad header in " + context);
  }
  control::ActionSpaceConfig grid;
  int enforce = 1;
  in >> grid.heat_min >> grid.heat_max >> grid.cool_min >> grid.cool_max >> enforce;
  if (!in) throw std::runtime_error("read_policy: truncated action space in " + context);
  grid.enforce_heat_le_cool = enforce != 0;

  control::ActionSpace actions(grid);  // validates the grid itself
  tree::DecisionTreeClassifier tree = tree::read_tree(in, context);
  if (tree.num_classes() != actions.size()) {
    throw std::runtime_error("read_policy: tree classes (" +
                             std::to_string(tree.num_classes()) +
                             ") do not match the embedded action space (" +
                             std::to_string(actions.size()) + ") in " + context);
  }
  return DtPolicy(std::move(tree), std::move(actions));
}

void save_policy(const DtPolicy& policy, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_policy: cannot open " + path);
  write_policy(policy, out);
  if (!out.flush()) throw std::runtime_error("save_policy: write failed for " + path);
}

DtPolicy load_policy(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_policy: cannot open " + path);
  return read_policy(in, path);
}

}  // namespace verihvac::core
