// VIPER-style iterative policy distillation (extension baseline).
//
// The paper's extraction (§3.2) is *one-shot*: sample inputs from the
// augmented historical distribution, label each with the teacher's modal
// action, fit CART once. Its cited foundation, VIPER (Bastani et al.,
// NeurIPS 2018 [5]), instead distills *iteratively*, DAgger-style:
//
//   D <- {};  pi_0 <- teacher
//   for m = 1..M:
//     roll out pi_{m-1} in the environment, collecting the states the
//       *student* actually visits (fixing the distribution-shift problem
//       of one-shot behavioural cloning);
//     label those states with the teacher; aggregate into D;
//     resample D with probability proportional to the criticality weight
//       l(s) = max_a Q(s,a) - min_a Q(s,a)  (states where a wrong action
//       is costly get more training mass);
//     fit tree pi_m on the resample.
//   return the pi_m with the best evaluation.
//
// Here the teacher is the RS MBRL agent, Q(s,a) is estimated by scoring
// the constant-hold sequence (a, a, ..., a) through the learned dynamics
// model (the same rollout primitive RS itself uses), and evaluation is the
// teacher-match rate on the freshest batch. bench/ablation_viper compares
// this against the paper's one-shot extraction at matched label budgets —
// the design question being whether on-policy aggregation is worth H
// environment steps per label when Eq. 5 importance sampling already
// covers the operating distribution.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "control/mbrl_agent.hpp"
#include "core/decision_data.hpp"
#include "core/dt_policy.hpp"
#include "envlib/env.hpp"

namespace verihvac::core {

struct ViperConfig {
  /// DAgger iterations M.
  std::size_t iterations = 5;
  /// Environment steps rolled out (and labelled) per iteration.
  std::size_t steps_per_iteration = 96;  // one simulated day
  /// Teacher Monte-Carlo repeats per label (modal aggregation, §3.2.1).
  std::size_t mc_repeats = 3;
  /// Criticality-weighted resampling (VIPER) vs uniform aggregation (DAgger).
  bool q_weighted = true;
  /// Resample size per fit; 0 = |D| (sample D with replacement once).
  std::size_t resample_size = 0;
  std::uint64_t seed = 23;
  tree::TreeConfig tree;
};

/// Per-iteration diagnostics.
struct ViperIteration {
  std::size_t aggregated_size = 0;   ///< |D| after this iteration's batch
  double teacher_match_rate = 0.0;   ///< fitted tree vs teacher, fresh batch
  double mean_criticality = 0.0;     ///< mean l(s) over the fresh batch
  std::size_t tree_nodes = 0;
};

struct ViperResult {
  std::shared_ptr<DtPolicy> policy;  ///< best iterate by teacher-match rate
  std::size_t best_iteration = 0;
  std::vector<ViperIteration> iterations;
  DecisionDataset aggregated;        ///< final D (for refits/inspection)
};

/// Estimates the criticality weight l(s) = spread of constant-hold action
/// values at `obs` (exposed for tests; forecast must cover the horizon).
double action_value_spread(const control::MbrlAgent& teacher, const env::Observation& obs,
                           const std::vector<env::Disturbance>& forecast);

/// Runs VIPER against `teacher` in `env`. The environment is reset at the
/// start of every rollout; the teacher is only *queried* (never advanced).
ViperResult viper_extract(control::MbrlAgent& teacher, env::BuildingEnv& env,
                          const ViperConfig& config);

}  // namespace verihvac::core
