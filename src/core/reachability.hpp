// Forward reachability tube — Eq. 3 of the paper.
//
// R+(s0)|H_pi = the states reachable within H steps when the policy pi is
// rolled through the learned dynamics model f_hat. Disturbances follow a
// provided sequence (typically a historical continuation). Used by the
// probabilistic verifier, the equivalence property tests, and as a
// standalone analysis tool (e.g. "where can the zone be in 5 hours?").
#pragma once

#include <vector>

#include "core/dt_policy.hpp"
#include "dynamics/dynamics_model.hpp"

namespace verihvac::core {

struct ReachabilityResult {
  std::vector<double> zone_temps;  ///< s_0 .. s_H (H+1 entries)
  double min_temp = 0.0;
  double max_temp = 0.0;
  /// True if every state along the tube stayed within [lo, hi] — filled by
  /// check_within.
  bool within = false;
};

/// Rolls the tube from `x0` (6-dim input) for `horizon` steps. `disturbances`
/// supplies the exogenous inputs at steps 1..horizon (shorter sequences are
/// extended by repeating the last entry; empty = persistence of x0).
ReachabilityResult reach_tube(const DtPolicy& policy, const dyn::DynamicsModel& model,
                              const std::vector<double>& x0,
                              const std::vector<env::Disturbance>& disturbances,
                              std::size_t horizon);

/// Marks result.within for a given comfort band.
void check_within(ReachabilityResult& result, double lo, double hi);

}  // namespace verihvac::core
