// Forward reachability tube — Eq. 3 of the paper.
//
// R+(s0)|H_pi = the states reachable within H steps when the policy pi is
// rolled through the learned dynamics model f_hat. Disturbances follow a
// provided sequence (typically a historical continuation). Used by the
// probabilistic verifier, the equivalence property tests, and as a
// standalone analysis tool (e.g. "where can the zone be in 5 hours?").
#pragma once

#include <vector>

#include "core/dt_policy.hpp"
#include "dynamics/dynamics_model.hpp"

namespace verihvac::core {

struct ReachabilityResult {
  std::vector<double> zone_temps;  ///< s_0 .. s_H (H+1 entries)
  /// Envelope of the tube. NaN-propagating: if any state along the tube is
  /// NaN (diverging model), both bounds are NaN and check_within reports
  /// the tube unsafe — a NaN excursion must never certify.
  double min_temp = 0.0;
  double max_temp = 0.0;
  /// True if every state along the tube stayed within [lo, hi] — filled by
  /// check_within.
  bool within = false;
};

/// Rolls the tube from `x0` (6-dim input) for `horizon` steps.
/// `disturbances[k]` supplies the exogenous inputs at step k+1, i.e. the
/// entries cover steps 1..horizon and entry k drives the k-th transition:
/// the prediction of s_{k+1} sees disturbances[k], so the first transition
/// already uses disturbances[0] (not x0's persisted values) and the final
/// entry disturbances[horizon-1] drives the last transition rather than
/// being dropped. Shorter sequences are extended by repeating the last
/// entry; empty = persistence of x0.
ReachabilityResult reach_tube(const DtPolicy& policy, const dyn::DynamicsModel& model,
                              const std::vector<double>& x0,
                              const std::vector<env::Disturbance>& disturbances,
                              std::size_t horizon);

/// Thread-safe variant: identical arithmetic, but the dynamics-model
/// scratch is caller-owned (one per worker thread when tubes are fanned
/// out in parallel by core::VerificationEngine).
ReachabilityResult reach_tube(const DtPolicy& policy, const dyn::DynamicsModel& model,
                              const std::vector<double>& x0,
                              const std::vector<env::Disturbance>& disturbances,
                              std::size_t horizon, dyn::PredictScratch& scratch);

/// Marks result.within for a given comfort band. A tube containing any NaN
/// state (or NaN envelope bounds) is reported unsafe.
void check_within(ReachabilityResult& result, double lo, double hi);

}  // namespace verihvac::core
