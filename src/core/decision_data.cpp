#include "core/decision_data.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace verihvac::core {

std::vector<std::vector<double>> DecisionDataset::inputs() const {
  std::vector<std::vector<double>> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.input);
  return out;
}

std::vector<int> DecisionDataset::labels() const {
  std::vector<int> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(static_cast<int>(r.action_index));
  return out;
}

DecisionDataset DecisionDataset::prefix(std::size_t n) const {
  DecisionDataset out;
  const std::size_t count = std::min(n, records.size());
  out.records.assign(records.begin(), records.begin() + static_cast<long>(count));
  return out;
}

AugmentedSampler::AugmentedSampler(Matrix historical, double noise_level,
                                   env::FeatureSchema schema)
    : historical_(std::move(historical)),
      noise_level_(noise_level),
      schema_(std::move(schema)) {
  if (historical_.rows() == 0) {
    throw std::invalid_argument("AugmentedSampler: empty historical data");
  }
  if (historical_.cols() != schema_.dims()) {
    throw std::invalid_argument("AugmentedSampler: historical rows have " +
                                std::to_string(historical_.cols()) +
                                " dims, schema '" + schema_.name() + "' expects " +
                                std::to_string(schema_.dims()));
  }
  if (noise_level < 0.0) {
    throw std::invalid_argument("AugmentedSampler: negative noise level");
  }
  // Per-dimension population std (Eq. 5's sqrt(sum (x_i - mean)^2 / |X|)).
  const std::size_t dims = historical_.cols();
  stds_.assign(dims, 0.0);
  std::vector<double> means(dims, 0.0);
  for (std::size_t r = 0; r < historical_.rows(); ++r) {
    for (std::size_t c = 0; c < dims; ++c) means[c] += historical_(r, c);
  }
  for (double& m : means) m /= static_cast<double>(historical_.rows());
  for (std::size_t r = 0; r < historical_.rows(); ++r) {
    for (std::size_t c = 0; c < dims; ++c) {
      const double d = historical_(r, c) - means[c];
      stds_[c] += d * d;
    }
  }
  for (double& s : stds_) s = std::sqrt(s / static_cast<double>(historical_.rows()));
}

std::pair<std::vector<double>, std::size_t> AugmentedSampler::sample(Rng& rng) const {
  const std::size_t row = rng.index(historical_.rows());
  std::vector<double> x = historical_.row(row);
  for (std::size_t c = 0; c < x.size(); ++c) {
    x[c] += rng.normal(0.0, noise_level_ * stds_[c]);
  }
  // Physical clamps, by feature role (clamping consumes no randomness, so
  // this cannot perturb the draw stream).
  for (std::size_t c = 0; c < x.size(); ++c) {
    switch (schema_.at(c).role) {
      case env::FeatureRole::kHumidity:
        x[c] = std::clamp(x[c], 0.0, 100.0);
        break;
      case env::FeatureRole::kWind:
      case env::FeatureRole::kSolar:
      case env::FeatureRole::kOccupancy:
      case env::FeatureRole::kOccupancyForecast:
        x[c] = std::max(0.0, x[c]);
        break;
      case env::FeatureRole::kHourSin:
      case env::FeatureRole::kHourCos:
        x[c] = std::clamp(x[c], -1.0, 1.0);
        break;
      default:
        break;
    }
  }
  return {std::move(x), row};
}

std::vector<std::vector<double>> AugmentedSampler::sample_many(std::size_t n, Rng& rng) const {
  std::vector<std::vector<double>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample(rng).first);
  return out;
}

DecisionDataGenerator::DecisionDataGenerator(const dyn::TransitionDataset& historical,
                                             DecisionDataConfig config)
    : historical_(&historical),
      historical_inputs_(historical.policy_inputs()),
      config_(config),
      sampler_(historical_inputs_, config.noise_level, config.schema) {
  if (config_.mc_repeats == 0) {
    throw std::invalid_argument("DecisionDataGenerator: mc_repeats must be positive");
  }
}

std::vector<env::Disturbance> DecisionDataGenerator::forecast_from(std::size_t row,
                                                                   std::size_t h) const {
  std::vector<env::Disturbance> forecast;
  forecast.reserve(h);
  for (std::size_t k = 1; k <= h; ++k) {
    const std::size_t idx = std::min(row + k, historical_->size() - 1);
    // Copies every non-state column — including temporal features, which
    // advance through a rollout exactly like the weather does — from the
    // recorded history, so the forecast is the future the building saw.
    forecast.push_back(config_.schema.to_disturbance(historical_->at(idx).input.data()));
  }
  return forecast;
}

DecisionDataset DecisionDataGenerator::generate(control::MbrlAgent& agent,
                                                std::size_t n_points) {
  DecisionDataset dataset;
  dataset.records.reserve(n_points);
  Rng rng(config_.seed);

  const std::size_t horizon = agent.forecast_horizon();
  for (std::size_t i = 0; i < n_points; ++i) {
    auto [x, row] = sampler_.sample(rng);
    const env::Observation obs = config_.schema.to_observation(x);
    const std::vector<env::Disturbance> forecast = forecast_from(row, horizon);

    const std::vector<std::size_t> counts =
        agent.action_distribution(obs, forecast, config_.mc_repeats);
    dataset.records.push_back(DecisionRecord{std::move(x), modal_index(counts)});
  }
  return dataset;
}

std::size_t modal_index(const std::vector<std::size_t>& counts) {
  if (counts.empty()) throw std::invalid_argument("modal_index: empty counts");
  return static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace verihvac::core
