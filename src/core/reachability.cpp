#include "core/reachability.hpp"

#include <algorithm>
#include <stdexcept>

#include "envlib/observation.hpp"

namespace verihvac::core {

ReachabilityResult reach_tube(const DtPolicy& policy, const dyn::DynamicsModel& model,
                              const std::vector<double>& x0,
                              const std::vector<env::Disturbance>& disturbances,
                              std::size_t horizon) {
  if (x0.size() != env::kInputDims) {
    throw std::invalid_argument("reach_tube: x0 must be the 6-dim policy input");
  }
  ReachabilityResult result;
  result.zone_temps.reserve(horizon + 1);
  std::vector<double> x = x0;
  result.zone_temps.push_back(x[env::kZoneTemp]);

  for (std::size_t k = 0; k < horizon; ++k) {
    const sim::SetpointPair action = policy.decide(x);
    const double next_temp = model.predict(x, action);
    x[env::kZoneTemp] = next_temp;
    if (!disturbances.empty()) {
      const env::Disturbance& d =
          disturbances[std::min(k, disturbances.size() - 1)];
      x[env::kOutdoorTemp] = d.weather.outdoor_temp_c;
      x[env::kHumidity] = d.weather.humidity_pct;
      x[env::kWind] = d.weather.wind_mps;
      x[env::kSolar] = d.weather.solar_wm2;
      x[env::kOccupancy] = d.occupants;
    }
    result.zone_temps.push_back(next_temp);
  }
  result.min_temp = *std::min_element(result.zone_temps.begin(), result.zone_temps.end());
  result.max_temp = *std::max_element(result.zone_temps.begin(), result.zone_temps.end());
  return result;
}

void check_within(ReachabilityResult& result, double lo, double hi) {
  result.within = result.min_temp >= lo && result.max_temp <= hi;
}

}  // namespace verihvac::core
