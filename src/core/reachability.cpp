#include "core/reachability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "envlib/observation.hpp"

namespace verihvac::core {

ReachabilityResult reach_tube(const DtPolicy& policy, const dyn::DynamicsModel& model,
                              const std::vector<double>& x0,
                              const std::vector<env::Disturbance>& disturbances,
                              std::size_t horizon) {
  dyn::PredictScratch scratch;
  return reach_tube(policy, model, x0, disturbances, horizon, scratch);
}

ReachabilityResult reach_tube(const DtPolicy& policy, const dyn::DynamicsModel& model,
                              const std::vector<double>& x0,
                              const std::vector<env::Disturbance>& disturbances,
                              std::size_t horizon, dyn::PredictScratch& scratch) {
  const env::FeatureSchema& schema = policy.schema();
  if (x0.size() != schema.dims()) {
    throw std::invalid_argument("reach_tube: x0 has " + std::to_string(x0.size()) +
                                " dims, policy schema '" + schema.name() +
                                "' expects " + std::to_string(schema.dims()));
  }
  const std::size_t zone_dim = schema.zone_temp_index();
  ReachabilityResult result;
  result.zone_temps.reserve(horizon + 1);
  std::vector<double> x = x0;
  result.zone_temps.push_back(x[zone_dim]);

  for (std::size_t k = 0; k < horizon; ++k) {
    // disturbances[k] are the exogenous inputs at step k+1: they drive the
    // k-th transition, so they are applied *before* predicting s_{k+1}.
    if (!disturbances.empty()) {
      const env::Disturbance& d = disturbances[std::min(k, disturbances.size() - 1)];
      schema.apply_disturbance(d, x.data());
    }
    const sim::SetpointPair action = policy.decide(x);
    const double next_temp = model.predict(x, action, scratch);
    x[zone_dim] = next_temp;
    result.zone_temps.push_back(next_temp);
  }

  // NaN-propagating envelope: std::min_element/max_element order NaN
  // unpredictably (every comparison is false), which previously let a
  // diverged tube report finite bounds — and check_within then certified
  // it. Any NaN state poisons both bounds instead.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double t : result.zone_temps) {
    if (std::isnan(t)) {
      lo = hi = std::numeric_limits<double>::quiet_NaN();
      break;
    }
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  result.min_temp = lo;
  result.max_temp = hi;
  return result;
}

void check_within(ReachabilityResult& result, double lo, double hi) {
  bool has_nan = std::isnan(result.min_temp) || std::isnan(result.max_temp);
  for (double t : result.zone_temps) has_nan = has_nan || std::isnan(t);
  result.within = !has_nan && result.min_temp >= lo && result.max_temp <= hi;
}

}  // namespace verihvac::core
