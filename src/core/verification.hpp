// Offline verification of decision-tree policies — §3.1 and §3.3.
//
// Criteria (Eq. 4), over comfort range [z_lo, z_hi]:
//   #1 (probabilistic): from safe occupied states, the probability that the
//      policy keeps the zone inside the comfort range exceeds threshold l.
//   #2 (formal): if s > z_hi, the policy's setpoint must be < s.
//   #3 (formal): if s < z_lo, the policy's setpoint must be > s.
//
// Formal verification (Algorithm 1): every leaf has a unique root path;
// intersecting the path's split half-spaces yields the axis-aligned box of
// inputs the leaf handles. If the box's zone-temperature interval reaches
// above z_hi (resp. below z_lo), the leaf is subject to criterion #2
// (resp. #3) and its setpoint decision is checked against the *worst case*
// temperature in that region:
//   #2 requires  cool_sp <= inf{ s in box, s > z_hi }   (so cool_sp < s for
//      every such s; heat_sp <= cool_sp makes the whole pair "below s"),
//   #3 requires  heat_sp >= sup{ s in box, s < z_lo }.
// Failing leaves are *corrected*: their decision is replaced by the action
// nearest to (median, median) of the comfort zone, which satisfies both
// criteria simultaneously (§3.3.1).
//
// Probabilistic verification (criterion #1) uses the augmented historical
// sampler: draw safe occupied inputs, apply the policy, advance one step
// through the learned dynamics model, and measure the fraction that stays
// safe. §3.3.2 proves the one-step estimator equals the H-step bootstrap
// estimator; verify_probabilistic_h_step implements the bootstrap variant
// so the equivalence is empirically checkable.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/decision_data.hpp"
#include "core/dt_policy.hpp"
#include "dynamics/dynamics_model.hpp"
#include "envlib/reward.hpp"

namespace verihvac::core {

struct VerificationCriteria {
  env::ComfortRange comfort = env::winter_comfort();
  /// Probability threshold l for criterion #1 (building-manager choice).
  double safe_probability_threshold = 0.9;
  /// Reachability-tube depth H for the bootstrap estimator.
  std::size_t horizon = 20;
  /// Before checking #2/#3, split any leaf whose zone-temperature box
  /// straddles a comfort boundary at that boundary (function-preserving),
  /// so the correction edits only the out-of-comfort side of the leaf.
  /// Without this, a single CART leaf covering both in-comfort and
  /// out-of-comfort inputs is corrected *wholesale*, overwriting behaviour
  /// the criteria never objected to (see DESIGN.md §5.6).
  bool refine_straddling_leaves = true;
};

/// Outcome of Algorithm 1 on one leaf.
struct LeafFinding {
  int leaf = -1;
  bool subject_crit2 = false;
  bool subject_crit3 = false;
  bool violates_crit2 = false;
  bool violates_crit3 = false;
  bool corrected = false;
};

struct FormalReport {
  std::size_t leaves_total = 0;
  std::size_t leaves_subject_crit2 = 0;
  std::size_t leaves_subject_crit3 = 0;
  std::size_t violations_crit2 = 0;
  std::size_t violations_crit3 = 0;
  std::size_t corrected_crit2 = 0;
  std::size_t corrected_crit3 = 0;
  std::vector<LeafFinding> findings;  ///< only leaves subject to #2/#3

  bool all_pass() const { return violations_crit2 == 0 && violations_crit3 == 0; }
};

/// Algorithm 1: decision-path verification of criteria #2/#3. When
/// `correct` is set, failing leaves are relabeled in place with the
/// comfort-median action.
FormalReport verify_formal(DtPolicy& policy, const VerificationCriteria& criteria,
                           bool correct);

/// The correction action: nearest valid action to (median, median) of the
/// comfort zone (satisfies both #2 and #3 for any box).
std::size_t correction_action(const control::ActionSpace& actions,
                              const env::ComfortRange& comfort);

struct ProbabilisticReport {
  double safe_probability = 0.0;
  std::size_t samples = 0;
  std::size_t failures = 0;

  bool passes(const VerificationCriteria& criteria) const {
    return safe_probability > criteria.safe_probability_threshold;
  }
};

/// Draws an input that is safe (in-comfort) and occupied — the subject
/// region of criterion #1 — by rejection sampling over the augmented
/// historical distribution; throws after 10000 rejections (degenerate
/// historical data). Returns the noised input and its anchor row. Exposed
/// for the parallel verifier (core::VerificationEngine), which gives every
/// sample its own counter-based RNG stream.
std::pair<std::vector<double>, std::size_t> sample_safe_occupied(
    const AugmentedSampler& sampler, const env::ComfortRange& comfort, Rng& rng);

/// Occupancy of the historical continuation at `row + offset` (clamped to
/// the end of the series). Criterion #1 guards occupied-hours comfort
/// (§3.1): a successor state after everyone has left the zone is not
/// subject to the comfort range, so its excursion is not a failure.
/// `occupancy_dim` is the schema's occupancy column (by role lookup).
bool continuation_occupied(const Matrix& historical, std::size_t row, std::size_t offset,
                           std::size_t occupancy_dim);

/// Criterion #1 via the efficient one-step estimator (§3.3.2).
ProbabilisticReport verify_probabilistic_one_step(const DtPolicy& policy,
                                                  const dyn::DynamicsModel& model,
                                                  const AugmentedSampler& sampler,
                                                  const VerificationCriteria& criteria,
                                                  std::size_t n_samples, Rng& rng);

/// Criterion #1 via H-step bootstrap rollouts (the expensive method the
/// proof replaces): every visited safe state along each H-step trajectory
/// is classified by the safety of its immediate successor.
ProbabilisticReport verify_probabilistic_h_step(const DtPolicy& policy,
                                                const dyn::DynamicsModel& model,
                                                const AugmentedSampler& sampler,
                                                const VerificationCriteria& criteria,
                                                std::size_t n_samples, Rng& rng);

}  // namespace verihvac::core
