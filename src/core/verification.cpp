#include "core/verification.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "envlib/observation.hpp"

namespace verihvac::core {
namespace {

/// Does this leaf's box intersect the occupied half-space? Criteria #2/#3
/// guard *occupied-hours* temperature control (§3.1); unoccupied-only
/// leaves (deep setback at night) are exempt by design — correcting them
/// would force night-time heating the comfort criterion never asks for.
bool reaches_occupied(const Box& box, std::size_t occ_dim) {
  return box[occ_dim].hi > 0.5;
}

/// Function-preserving refinement pass: every occupied-reaching leaf whose
/// zone-temperature interval straddles a comfort boundary is split at that
/// boundary (children inherit the label, so the policy is unchanged).
/// Newly created out-of-comfort leaves are re-examined, so a leaf spanning
/// both boundaries ends up split into three aligned segments.
void refine_straddling(DtPolicy& policy, const env::ComfortRange& comfort) {
  const std::size_t zone_dim = policy.schema().zone_temp_index();
  const std::size_t occ_dim = policy.schema().occupancy_index();
  auto& tree = policy.mutable_tree();
  std::vector<int> pending = tree.leaves();
  while (!pending.empty()) {
    const int leaf = pending.back();
    pending.pop_back();
    const Box box = tree.leaf_box(leaf);
    if (box.empty() || !reaches_occupied(box, occ_dim)) continue;
    const Interval temp = box[zone_dim];
    const bool subject = temp.lo < comfort.lo || temp.hi > comfort.hi;
    if (!subject) continue;
    // A leaf that handles both unoccupied and occupied inputs is split on
    // occupancy first: only its occupied side is subject to #2/#3, and
    // correcting the whole leaf would overwrite the (exempt) night-setback
    // behaviour. CART rarely learns this split on its own, because the
    // historical data contains almost no occupied out-of-comfort states to
    // create a label conflict.
    // Strict: the closed-box representation stores the occupied child of a
    // previous occupancy split as [0.5, hi], and re-splitting that child at
    // 0.5 would recurse forever (its "occupied side" is again [0.5, hi]).
    if (box[occ_dim].lo < 0.5) {
      const auto [left, right] = tree.split_leaf(leaf, occ_dim, 0.5);
      (void)left;
      pending.push_back(right);
      continue;
    }
    // Split at the low boundary first; the right child may still straddle
    // the high boundary and is pushed back for re-examination.
    if (temp.lo < comfort.lo && temp.hi > comfort.lo) {
      const auto [left, right] = tree.split_leaf(leaf, zone_dim, comfort.lo);
      (void)left;
      pending.push_back(right);
    } else if (temp.lo < comfort.hi && temp.hi > comfort.hi) {
      const auto [left, right] = tree.split_leaf(leaf, zone_dim, comfort.hi);
      (void)left;
      (void)right;
    }
  }
}

}  // namespace

std::size_t correction_action(const control::ActionSpace& actions,
                              const env::ComfortRange& comfort) {
  const double median = comfort.median();
  return actions.nearest_index(sim::SetpointPair{median, median});
}

FormalReport verify_formal(DtPolicy& policy, const VerificationCriteria& criteria,
                           bool correct) {
  const auto& tree = policy.tree();
  const auto& actions = policy.actions();
  // Algorithm 1 reasons about the zone-temperature dimension *by role* —
  // wherever the schema put it.
  const std::size_t zone_dim = policy.schema().zone_temp_index();
  const std::size_t occ_dim = policy.schema().occupancy_index();
  const double z_lo = criteria.comfort.lo;
  const double z_hi = criteria.comfort.hi;
  const std::size_t fix_action = correction_action(actions, criteria.comfort);

  if (criteria.refine_straddling_leaves) {
    refine_straddling(policy, criteria.comfort);
  }

  FormalReport report;
  for (int leaf : tree.leaves()) {
    ++report.leaves_total;
    const Box box = tree.leaf_box(leaf);
    if (box.empty() || !reaches_occupied(box, occ_dim)) continue;

    const Interval temp = box[zone_dim];
    LeafFinding finding;
    finding.leaf = leaf;

    const auto label = static_cast<std::size_t>(
        tree.node(static_cast<std::size_t>(leaf)).label);
    const sim::SetpointPair action = actions.action(label);

    // Criterion #2: the leaf can be reached with s > z_hi.
    if (temp.hi > z_hi) {
      finding.subject_crit2 = true;
      ++report.leaves_subject_crit2;
      // Worst case (smallest) temperature inside the too-warm region.
      const double inf_warm = std::max(temp.lo, z_hi);
      if (action.cooling_c > inf_warm) {
        finding.violates_crit2 = true;
        ++report.violations_crit2;
      }
    }
    // Criterion #3: the leaf can be reached with s < z_lo.
    if (temp.lo < z_lo) {
      finding.subject_crit3 = true;
      ++report.leaves_subject_crit3;
      // Worst case (largest) temperature inside the too-cold region.
      const double sup_cold = std::min(temp.hi, z_lo);
      if (action.heating_c < sup_cold) {
        finding.violates_crit3 = true;
        ++report.violations_crit3;
      }
    }

    if (finding.violates_crit2 || finding.violates_crit3) {
      if (correct) {
        policy.mutable_tree().set_leaf_label(leaf, static_cast<int>(fix_action));
        finding.corrected = true;
        if (finding.violates_crit2) ++report.corrected_crit2;
        if (finding.violates_crit3) ++report.corrected_crit3;
      }
    }
    if (finding.subject_crit2 || finding.subject_crit3) {
      report.findings.push_back(finding);
    }
  }
  return report;
}

namespace {

/// Applies a historical row's non-state columns onto a policy-input
/// vector, keeping the zone temperature (the schema's single state dim).
void load_disturbances(std::vector<double>& x, const Matrix& historical, std::size_t row,
                       std::size_t zone_dim) {
  const std::size_t idx = std::min(row, historical.rows() - 1);
  for (std::size_t c = 0; c < x.size(); ++c) {
    if (c == zone_dim) continue;
    x[c] = historical(idx, c);
  }
}

}  // namespace

std::pair<std::vector<double>, std::size_t> sample_safe_occupied(
    const AugmentedSampler& sampler, const env::ComfortRange& comfort, Rng& rng) {
  const std::size_t zone_dim = sampler.schema().zone_temp_index();
  const std::size_t occ_dim = sampler.schema().occupancy_index();
  for (int attempt = 0; attempt < 10000; ++attempt) {
    auto [x, row] = sampler.sample(rng);
    if (x[occ_dim] > 0.5 && comfort.contains(x[zone_dim])) {
      return {std::move(x), row};
    }
  }
  throw std::runtime_error(
      "probabilistic verification: could not sample a safe occupied state");
}

bool continuation_occupied(const Matrix& historical, std::size_t row, std::size_t offset,
                           std::size_t occupancy_dim) {
  const std::size_t idx = std::min(row + offset, historical.rows() - 1);
  return historical(idx, occupancy_dim) > 0.5;
}

ProbabilisticReport verify_probabilistic_one_step(const DtPolicy& policy,
                                                  const dyn::DynamicsModel& model,
                                                  const AugmentedSampler& sampler,
                                                  const VerificationCriteria& criteria,
                                                  std::size_t n_samples, Rng& rng) {
  ProbabilisticReport report;
  const Matrix& historical = sampler.historical();
  const std::size_t occ_dim = sampler.schema().occupancy_index();
  while (report.samples < n_samples) {
    auto [x, row] = sample_safe_occupied(sampler, criteria.comfort, rng);
    if (!continuation_occupied(historical, row, 1, occ_dim)) continue;
    const sim::SetpointPair action = policy.decide(x);
    const double next_temp = model.predict(x, action);
    ++report.samples;
    if (!criteria.comfort.contains(next_temp)) ++report.failures;
  }
  report.safe_probability =
      1.0 - static_cast<double>(report.failures) / static_cast<double>(report.samples);
  return report;
}

ProbabilisticReport verify_probabilistic_h_step(const DtPolicy& policy,
                                                const dyn::DynamicsModel& model,
                                                const AugmentedSampler& sampler,
                                                const VerificationCriteria& criteria,
                                                std::size_t n_samples, Rng& rng) {
  ProbabilisticReport report;
  const Matrix& historical = sampler.historical();
  const std::size_t zone_dim = sampler.schema().zone_temp_index();
  const std::size_t occ_dim = sampler.schema().occupancy_index();

  std::size_t trajectories = 0;
  while (report.samples < n_samples) {
    auto [x, row] = sample_safe_occupied(sampler, criteria.comfort, rng);
    ++trajectories;
    // Roll the reachability tube (Eq. 3) under the policy, classifying each
    // visited safe occupied state by the safety of its immediate successor
    // (the counting argument of the §3.3.2 proof).
    for (std::size_t k = 0; k < criteria.horizon && report.samples < n_samples; ++k) {
      const bool occupied = x[occ_dim] > 0.5;
      const bool safe_now = criteria.comfort.contains(x[zone_dim]);
      const sim::SetpointPair action = policy.decide(x);
      const double next_temp = model.predict(x, action);
      if (occupied && safe_now && continuation_occupied(historical, row, k + 1, occ_dim)) {
        ++report.samples;
        if (!criteria.comfort.contains(next_temp)) ++report.failures;
      }
      x[zone_dim] = next_temp;
      load_disturbances(x, historical, row + k + 1, zone_dim);
    }
  }
  report.safe_probability =
      1.0 - static_cast<double>(report.failures) / static_cast<double>(report.samples);
  return report;
}

}  // namespace verihvac::core
