#include "core/interpret.hpp"

#include <algorithm>
#include <sstream>

#include "envlib/feature_schema.hpp"

namespace verihvac::core {
namespace {

std::string dim_name(const env::FeatureSchema& schema, std::size_t dim) {
  if (dim < schema.dims()) return schema.at(dim).name;
  return "x[" + std::to_string(dim) + "]";
}

}  // namespace

std::string Explanation::to_string() const {
  std::ostringstream out;
  out << "decision: heating " << action.heating_c << " degC / cooling "
      << action.cooling_c << " degC" << (corrected ? " (verifier-corrected leaf)" : "")
      << "\nbecause:\n";
  if (steps.empty()) {
    out << "  (single-leaf policy: every input maps to this decision)\n";
  }
  for (const auto& step : steps) {
    out << "  " << step.variable << " = " << step.value
        << (step.went_left ? " <= " : " > ") << step.threshold << "\n";
  }
  return out.str();
}

Explanation explain(const DtPolicy& policy, const std::vector<double>& x,
                    const std::vector<int>& corrected_leaves) {
  const auto& tree = policy.tree();
  const int leaf = tree.decision_leaf(x);

  Explanation result;
  for (const tree::PathStep& step : tree.path_to(leaf)) {
    const tree::TreeNode& node = tree.node(static_cast<std::size_t>(step.node));
    ExplanationStep rendered;
    rendered.variable = dim_name(policy.schema(), static_cast<std::size_t>(node.feature));
    rendered.threshold = node.threshold;
    rendered.went_left = step.went_left;
    rendered.value = x.at(static_cast<std::size_t>(node.feature));
    result.steps.push_back(std::move(rendered));
  }
  result.action_index =
      static_cast<std::size_t>(tree.node(static_cast<std::size_t>(leaf)).label);
  result.action = policy.actions().action(result.action_index);
  result.corrected = std::find(corrected_leaves.begin(), corrected_leaves.end(), leaf) !=
                     corrected_leaves.end();
  return result;
}

std::vector<double> feature_importance(const DtPolicy& policy) {
  const auto& tree = policy.tree();
  std::vector<double> importance(tree.num_features(), 0.0);
  double total = 0.0;
  for (const tree::TreeNode& node : tree.nodes()) {
    if (node.is_leaf()) continue;
    const double weight = static_cast<double>(std::max<std::size_t>(node.samples, 1));
    importance[static_cast<std::size_t>(node.feature)] += weight;
    total += weight;
  }
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

std::string feature_importance_report(const DtPolicy& policy) {
  const std::vector<double> importance = feature_importance(policy);
  std::vector<std::size_t> order(importance.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return importance[a] > importance[b]; });

  std::ostringstream out;
  out << "feature importance (split-sample weighted):\n";
  for (std::size_t dim : order) {
    out << "  " << dim_name(policy.schema(), dim) << ": " << importance[dim] << "\n";
  }
  return out.str();
}

std::vector<ActionCoverage> policy_summary(const DtPolicy& policy) {
  const auto& tree = policy.tree();
  std::vector<ActionCoverage> coverage(policy.actions().size());
  for (std::size_t i = 0; i < coverage.size(); ++i) {
    coverage[i].action_index = i;
    coverage[i].action = policy.actions().action(i);
  }
  for (int leaf : tree.leaves()) {
    const tree::TreeNode& node = tree.node(static_cast<std::size_t>(leaf));
    const auto label = static_cast<std::size_t>(node.label);
    if (label >= coverage.size()) continue;
    ++coverage[label].leaves;
    coverage[label].samples += node.samples;
  }
  return coverage;
}

std::string policy_summary_report(const DtPolicy& policy) {
  std::vector<ActionCoverage> coverage = policy_summary(policy);
  std::sort(coverage.begin(), coverage.end(),
            [](const ActionCoverage& a, const ActionCoverage& b) {
              return a.samples > b.samples;
            });
  std::ostringstream out;
  out << "policy summary (decisions by training-sample coverage):\n";
  for (const auto& entry : coverage) {
    if (entry.leaves == 0) continue;
    out << "  heat " << entry.action.heating_c << " / cool " << entry.action.cooling_c
        << ": " << entry.leaves << " leaves, " << entry.samples << " samples\n";
  }
  return out.str();
}

}  // namespace verihvac::core
