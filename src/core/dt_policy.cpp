#include "core/dt_policy.hpp"

#include <stdexcept>

#include "envlib/observation.hpp"
#include "tree/tree_io.hpp"

namespace verihvac::core {

DtPolicy::DtPolicy(tree::DecisionTreeClassifier tree, control::ActionSpace actions,
                   env::FeatureSchema schema)
    : tree_(std::move(tree)), actions_(std::move(actions)), schema_(std::move(schema)) {
  if (!tree_.fitted()) throw std::invalid_argument("DtPolicy: tree not fitted");
  if (tree_.num_features() != schema_.dims()) {
    throw std::invalid_argument("DtPolicy: tree takes " +
                                std::to_string(tree_.num_features()) +
                                " features but schema '" + schema_.name() + "' has " +
                                std::to_string(schema_.dims()));
  }
  if (tree_.num_classes() > actions_.size()) {
    throw std::invalid_argument("DtPolicy: tree classes exceed action space");
  }
}

DtPolicy DtPolicy::fit(const DecisionDataset& data, const control::ActionSpace& actions,
                       tree::TreeConfig config, env::FeatureSchema schema) {
  if (data.empty()) throw std::invalid_argument("DtPolicy::fit: empty decision dataset");
  tree::DecisionTreeClassifier tree(config);
  tree.fit(data.inputs(), data.labels(), actions.size());
  return DtPolicy(std::move(tree), actions, std::move(schema));
}

sim::SetpointPair DtPolicy::act(const env::Observation& obs,
                                const std::vector<env::Disturbance>& forecast) {
  (void)forecast;
  return decide(schema_.to_vector(obs));
}

sim::SetpointPair DtPolicy::decide(const std::vector<double>& x) const {
  return actions_.action(decide_index(x));
}

std::size_t DtPolicy::decide_index(const std::vector<double>& x) const {
  return static_cast<std::size_t>(tree_.predict(x));
}

std::string DtPolicy::to_text() const {
  std::vector<std::string> feature_names = schema_.feature_names();
  std::vector<std::string> class_names;
  class_names.reserve(actions_.size());
  for (std::size_t i = 0; i < actions_.size(); ++i) class_names.push_back(actions_.label(i));
  return tree::to_text(tree_, feature_names, class_names);
}

}  // namespace verihvac::core
