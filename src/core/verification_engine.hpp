// Parallel multi-workload verification engine — the certification
// counterpart of control::RolloutEngine.
//
// The three verification workloads of the paper are embarrassingly
// parallel, each at a different granularity:
//   * criterion #1 Monte-Carlo (§3.3.2): independent per sample,
//   * interval certification (branch-and-bound input splitting):
//     independent per (leaf × cell),
//   * Eq. 3 reachability tubes: independent per initial state.
// VerificationEngine batches all three over the shared common::TaskPool.
//
// Determinism contract (mirrors the rollout engine's): every work unit
// writes to its own output slot and the reductions are serial scans in a
// fixed order, so reports are BIT-IDENTICAL for every thread count
// (VERI_HVAC_THREADS=1/4/8, locked in by
// tests/core/verification_engine_test.cpp). For the Monte-Carlo verifier
// this additionally requires decoupling the RNG from the schedule: sample
// i draws from its own counter-based stream Rng::stream(seed, i) instead
// of a single shared sequence, so the estimate depends only on (seed, i)
// — never on which worker ran the sample. The per-stream estimator is
// statistically equivalent to verify_probabilistic_one_step but consumes
// a different random sequence, so its numbers differ from the serial
// single-stream entry point while remaining reproducible from the seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/task_pool.hpp"
#include "core/certificate_cache.hpp"
#include "core/interval_verify.hpp"
#include "core/reachability.hpp"
#include "core/verification.hpp"
#include "obs/instruments.hpp"

namespace verihvac::core {

class VerificationEngine {
 public:
  /// Wraps the given pool (defaults to the process-wide shared pool, so
  /// control and verification share one set of worker threads).
  explicit VerificationEngine(std::shared_ptr<const common::TaskPool> pool = nullptr);

  const common::TaskPool& pool() const { return *pool_; }
  std::size_t thread_count() const { return pool_->thread_count(); }

  /// Criterion #1 Monte-Carlo over per-sample RNG streams: sample i runs
  /// its rejection loop (safe occupied input with an occupied
  /// continuation) entirely inside Rng::stream(seed, i) and contributes
  /// one accept to the estimate. Bit-identical across thread counts.
  /// Since PR 3 each worker stages its slice's accepted inputs as one
  /// batch matrix and advances them with a single batched forward
  /// (dyn::DynamicsModel::predict_batch_into); the draws and the report
  /// are unchanged to the last bit.
  ProbabilisticReport verify_probabilistic(const DtPolicy& policy,
                                           const dyn::DynamicsModel& model,
                                           const AugmentedSampler& sampler,
                                           const VerificationCriteria& criteria,
                                           std::size_t n_samples, std::uint64_t seed) const;

  /// Interval certification fanned out per (leaf × input-splitting cell).
  /// Produces a report bit-identical to verify_interval_one_step.
  IntervalReport verify_interval(const DtPolicy& policy, const dyn::DynamicsModel& model,
                                 const VerificationCriteria& criteria,
                                 const DisturbanceBounds& bounds = {},
                                 const IntervalVerifyConfig& config = {}) const;

  /// Incremental re-certification through a CertificateCache: a serial
  /// lookup pass splices every cell whose (dynamics hash, box) key is
  /// cached, only the missing cells fan out over the pool, and the
  /// unchanged serial fold assembles the report — bit-identical to
  /// verify_interval on the same inputs, at every thread count, whatever
  /// the cache holds (every cached image was produced by the same pure
  /// function on the same bits; mismatched keys never splice — see
  /// core/certificate_cache.hpp). When the missing fraction exceeds
  /// recert.fallback_fraction, every cell is recomputed in one parallel
  /// sweep instead (broad drift: a futile lookup pass must not precede
  /// full price). Freshly computed images are inserted and the policy is
  /// recorded as the cache's incumbent. The cache is not thread-safe; one
  /// incremental run may touch it at a time. `run_stats`, when non-null,
  /// receives this run's splice/compute/diff accounting.
  IntervalReport verify_interval_incremental(const DtPolicy& policy,
                                             const dyn::DynamicsModel& model,
                                             const VerificationCriteria& criteria,
                                             CertificateCache& cache,
                                             const DisturbanceBounds& bounds = {},
                                             const IntervalVerifyConfig& config = {},
                                             const RecertConfig& recert = {},
                                             RecertStats* run_stats = nullptr) const;

  /// Cumulative certification observability (atomic; snapshot is not a
  /// consistent cross-counter transaction). Surfaced in the adaptation
  /// promotion log lines and the recert bench JSON. Dual-published: this
  /// per-engine snapshot stays exact, and every increment also lands in
  /// the process-wide obs registry (`verify_*` instruments); each entry
  /// point additionally opens a "verify" trace span.
  struct Stats {
    std::uint64_t interval_runs = 0;       ///< full verify_interval calls
    std::uint64_t incremental_runs = 0;    ///< verify_interval_incremental calls
    std::uint64_t recert_cells_total = 0;  ///< cells seen by incremental runs
    std::uint64_t recert_cells_cached = 0;
    std::uint64_t recert_cells_computed = 0;
    std::uint64_t recert_fallbacks = 0;  ///< broad invalidation -> full recompute
  };
  Stats stats() const;

  /// Eq. 3 reachability tubes fanned out per initial state; tube i of the
  /// result corresponds to initial_states[i]. All tubes share the one
  /// disturbance sequence (see reach_tube for its step contract).
  std::vector<ReachabilityResult> reach_tubes(
      const DtPolicy& policy, const dyn::DynamicsModel& model,
      const std::vector<std::vector<double>>& initial_states,
      const std::vector<env::Disturbance>& disturbances, std::size_t horizon) const;

 private:
  std::shared_ptr<const common::TaskPool> pool_;
  // Counters are mutable atomics: the verification entry points stay
  // const (shared engines are used concurrently), and observability must
  // not serialize them behind a lock.
  mutable std::atomic<std::uint64_t> interval_runs_{0};
  mutable std::atomic<std::uint64_t> incremental_runs_{0};
  mutable std::atomic<std::uint64_t> recert_cells_total_{0};
  mutable std::atomic<std::uint64_t> recert_cells_cached_{0};
  mutable std::atomic<std::uint64_t> recert_cells_computed_{0};
  mutable std::atomic<std::uint64_t> recert_fallbacks_{0};

  /// Process-wide obs instruments (resolved once at construction).
  struct ObsHandles {
    obs::Counter* probabilistic_runs;
    obs::Counter* interval_runs;
    obs::Counter* incremental_runs;
    obs::Counter* reach_runs;
    obs::Counter* recert_cells_total;
    obs::Counter* recert_cells_cached;
    obs::Counter* recert_cells_computed;
    obs::Counter* recert_fallbacks;
  };
  ObsHandles obs_;
};

}  // namespace verihvac::core
