// Certificate cache — incremental re-certification with drift-scoped
// invalidation.
//
// Interval certification (interval_verify) is a pure function at the
// (leaf × input-splitting cell) granularity: a cell's sound one-step image
// interval_next_state(model, cell) depends on exactly two things — the
// dynamics model's content (schema, normalizer, delta statistics, every
// network weight) and the cell's box bits. Nothing else. This module
// exploits that purity: cache each cell's image under the key
// (dynamics content hash, exact cell box) and, on re-certification after a
// retrain, recompute only the cells whose key is absent. Everything the
// paper's Algorithm 1 layers on top of the images — comfort-band
// containment, leaf folds, report aggregation — is recomputed from scratch
// on every run (it is orders of magnitude cheaper than the IBP forwards),
// so a spliced report is bit-identical to a from-scratch run by
// construction, not by trust.
//
// Invalidation rules that fall out of the key:
//  * policy-side drift: a relabeled leaf changes its action (the degenerate
//    action dims of its cells), a re-split leaf changes its cells' zone
//    ranges — either way the boxes differ and every affected cell misses;
//    unchanged subtrees reproduce bit-identical boxes and hit.
//  * dynamics-side drift: the content hash covers every weight. An MLP is
//    dense, so there is no sound way to scope a weight delta to an input
//    region — any changed weight can move any cell's image. A fine-tune
//    therefore invalidates every cached image (the hash changes), which is
//    exactly when the caller should fall back to a full run
//    (RecertConfig::fallback_fraction); the cache's win is the common case
//    where the *policy* changed locally and the dynamics did not.
//  * schema/config drift: the schema is hashed into the dynamics hash and
//    shapes the boxes; verify-config changes reshape the cells. Both miss.
//
// Lookups verify the stored key bit-for-bit (boxes compared on endpoint
// bit patterns), so a 64-bit hash collision — or a poisoned entry — counts
// as a miss and can never splice a stale verdict into a certificate.
//
// The cache is NOT thread-safe: the engine's incremental path does its
// lookup/insert passes serially and fans out only the IBP forwards
// (mirroring the serial-fold determinism contract); callers keep one cache
// per certification stream (per adaptation cluster, per campaign).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/dt_policy.hpp"
#include "dynamics/dynamics_model.hpp"
#include "obs/instruments.hpp"

namespace verihvac::core {

// --- content hashing (FNV-1a 64-bit over bit patterns) ---

/// Hash of a box's endpoint bit patterns (dimension count included).
std::uint64_t hash_box(const Box& box);

/// Hash of a feature schema: name, dims, and every feature's name, unit,
/// kind, role and bounds.
std::uint64_t hash_schema(const env::FeatureSchema& schema);

/// Content hash of everything interval_next_state reads from a trained
/// model: schema, input-normalizer mean/std, delta_mean/delta_std, and
/// every layer's shape, weights and biases. Two models hash equal iff the
/// IBP image of every box is bit-identical between them.
std::uint64_t hash_dynamics(const dyn::DynamicsModel& model);

/// Structural hash of a fitted tree: per node (feature, threshold bits,
/// children, label). Diagnostics (sample counts, impurity) are excluded —
/// they do not affect the decision function.
std::uint64_t hash_tree(const tree::DecisionTreeClassifier& tree);

/// Semantic fingerprint of a deployable policy bundle: schema + action
/// grid + tree. Persisted by policy_io (bundle format v3) and validated on
/// load, so a tampered or corrupted bundle is rejected instead of served.
std::uint64_t policy_fingerprint(const DtPolicy& policy);

/// Bit-pattern equality of two boxes (the key-verification comparison:
/// consistent with hash_box, so equal keys always hash equal).
bool box_bits_equal(const Box& a, const Box& b);

// --- structural tree diff ---

/// Leaf-level summary of candidate-vs-incumbent drift. Counted over the
/// *candidate's* leaves: a leaf under any structurally mismatched subtree
/// (different split feature/threshold, different shape) or with a changed
/// label counts as changed; leaves of bit-identical subtrees keep their
/// certificates.
struct TreeDiff {
  std::size_t leaves_total = 0;
  std::size_t leaves_changed = 0;

  bool identical() const { return leaves_changed == 0; }
  double changed_fraction() const {
    return leaves_total == 0
               ? 0.0
               : static_cast<double>(leaves_changed) / static_cast<double>(leaves_total);
  }
};

/// Recursive structural diff (internal nodes match on bit-exact
/// feature/threshold, leaves on label). Both trees must be fitted.
TreeDiff diff_trees(const tree::DecisionTreeClassifier& incumbent,
                    const tree::DecisionTreeClassifier& candidate);

// --- the cache proper ---

/// Everything one cached image depends on. The box carries the leaf's
/// predicate path (clipped to comfort ∩ envelope ∩ schema bounds), the
/// input-splitting cell AND the leaf's action (degenerate trailing dims),
/// so no separate leaf/action fingerprint is needed.
struct CertificateKey {
  std::uint64_t dynamics_hash = 0;
  Box cell;
};

std::uint64_t hash_certificate_key(const CertificateKey& key);
bool certificate_keys_equal(const CertificateKey& a, const CertificateKey& b);

/// Incremental re-certification policy knobs.
struct RecertConfig {
  /// When the invalidated (cache-missing) fraction of cells exceeds this,
  /// the incremental path abandons splicing and recomputes every cell —
  /// broad drift (a fine-tuned model, a reshaped schema) pays full price
  /// once instead of a futile lookup pass plus full price.
  double fallback_fraction = 0.5;
};

/// What one incremental certification run did (per-run; the cache and the
/// engine additionally keep cumulative counters).
struct RecertStats {
  std::size_t cells_total = 0;     ///< (leaf × cell) units in this run
  std::size_t cells_cached = 0;    ///< spliced from the cache
  std::size_t cells_computed = 0;  ///< IBP forwards actually run
  bool fallback_full = false;      ///< invalidation breadth tripped the fallback
  bool dynamics_changed = false;   ///< content hash moved vs the incumbent run
  /// Candidate-vs-incumbent tree diff (zeros when no incumbent is known).
  std::size_t diff_leaves_total = 0;
  std::size_t diff_leaves_changed = 0;

  double invalidated_fraction() const {
    return cells_total == 0
               ? 0.0
               : 1.0 - static_cast<double>(cells_cached) / static_cast<double>(cells_total);
  }
};

class CertificateCache {
 public:
  /// `max_entries` bounds memory; 0 means unbounded. Eviction is
  /// least-recently-used (full-scan victim selection — eviction is the
  /// rare path; size the cache to hold a whole policy's cells).
  explicit CertificateCache(std::size_t max_entries = kDefaultMaxEntries);

  static constexpr std::size_t kDefaultMaxEntries = 1u << 20;

  /// Returns the cached image iff the slot holds a bit-identical key;
  /// a hash collision or content mismatch counts as a miss (and bumps the
  /// collision counter) — a stale verdict is never reused.
  std::optional<Interval> lookup(const CertificateKey& key);
  void insert(const CertificateKey& key, const Interval& image);

  /// Explicit-slot variants, exposed for the cache-poisoning tests: they
  /// let a test force two different keys into one slot and assert the
  /// verification layer refuses the mismatched entry.
  std::optional<Interval> lookup_in_slot(std::uint64_t slot, const CertificateKey& key);
  void insert_in_slot(std::uint64_t slot, const CertificateKey& key, const Interval& image);

  /// Records the tree and dynamics hash a completed certification ran
  /// against, making them the incumbent for the next run's diff.
  void note_certified(const DtPolicy& policy, std::uint64_t dynamics_hash);
  bool has_incumbent() const { return has_incumbent_; }
  std::uint64_t incumbent_dynamics_hash() const { return incumbent_dynamics_hash_; }
  /// Diff of `candidate` against the incumbent tree (throws std::logic_error
  /// when no incumbent was recorded).
  TreeDiff diff_against_incumbent(const DtPolicy& candidate) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t max_entries() const { return max_entries_; }
  void clear();

  /// Cumulative counters since construction (never reset by clear()).
  /// Dual-published: this per-instance snapshot stays exact for tests and
  /// per-cluster accounting, while every increment also lands in the
  /// process-wide obs registry (`certcache_*` instruments).
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t collisions = 0;  ///< slot held a different key (subset of misses)
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    CertificateKey key;
    Interval image;
    std::uint64_t tick = 0;  ///< last touch (LRU victim selection)
  };

  void evict_one();

  std::size_t max_entries_;
  std::uint64_t tick_ = 0;
  std::unordered_map<std::uint64_t, Entry> entries_;
  Stats stats_;

  /// Process-wide obs instruments (resolved once at construction).
  struct ObsHandles {
    obs::Counter* lookups;
    obs::Counter* hits;
    obs::Counter* misses;
    obs::Counter* collisions;
    obs::Counter* insertions;
    obs::Counter* evictions;
  };
  ObsHandles obs_;

  bool has_incumbent_ = false;
  std::uint64_t incumbent_dynamics_hash_ = 0;
  tree::DecisionTreeClassifier incumbent_tree_;
};

}  // namespace verihvac::core
