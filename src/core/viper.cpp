#include "core/viper.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace verihvac::core {

double action_value_spread(const control::MbrlAgent& teacher, const env::Observation& obs,
                           const std::vector<env::Disturbance>& forecast) {
  const control::RandomShooting& rs = teacher.optimizer();
  const std::size_t horizon = rs.config().horizon;
  if (forecast.size() < horizon) {
    throw std::invalid_argument("action_value_spread: forecast shorter than horizon");
  }
  double best = -std::numeric_limits<double>::infinity();
  double worst = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> sequence(horizon);
  for (std::size_t a = 0; a < teacher.actions().size(); ++a) {
    std::fill(sequence.begin(), sequence.end(), a);
    const double value = rs.rollout_return(teacher.model(), obs, forecast, sequence);
    best = std::max(best, value);
    worst = std::min(worst, value);
  }
  return best - worst;
}

ViperResult viper_extract(control::MbrlAgent& teacher, env::BuildingEnv& env,
                          const ViperConfig& config) {
  if (config.iterations == 0) throw std::invalid_argument("viper: iterations must be > 0");
  if (config.steps_per_iteration == 0) {
    throw std::invalid_argument("viper: steps_per_iteration must be > 0");
  }
  if (config.mc_repeats == 0) throw std::invalid_argument("viper: mc_repeats must be > 0");

  Rng rng(config.seed);
  const env::FeatureSchema& schema = teacher.model().schema();
  ViperResult result;
  std::vector<double> weights;  // parallel to result.aggregated.records
  std::shared_ptr<DtPolicy> student;  // null => iteration 0 rolls out the teacher
  double best_match = -1.0;

  for (std::size_t m = 0; m < config.iterations; ++m) {
    // --- Roll out the current student (teacher on the first iteration),
    // labelling every visited state with the teacher's modal action. ---
    DecisionDataset batch;
    std::vector<double> batch_weights;
    double criticality_sum = 0.0;
    env::Observation obs = env.reset();
    for (std::size_t step = 0; step < config.steps_per_iteration; ++step) {
      const auto forecast = env.forecast(teacher.forecast_horizon());
      const auto counts = teacher.action_distribution(obs, forecast, config.mc_repeats);
      DecisionRecord record;
      record.input = schema.to_vector(obs);
      record.action_index = modal_index(counts);
      const double weight =
          config.q_weighted ? action_value_spread(teacher, obs, forecast) : 1.0;
      criticality_sum += weight;
      batch.records.push_back(std::move(record));
      batch_weights.push_back(weight);

      const sim::SetpointPair action =
          student ? student->decide(schema.to_vector(obs))
                  : teacher.actions().action(batch.records.back().action_index);
      const env::StepOutcome outcome = env.step(action);
      obs = outcome.done ? env.reset() : outcome.observation;
    }

    // --- Aggregate. ---
    for (auto& record : batch.records) result.aggregated.records.push_back(record);
    weights.insert(weights.end(), batch_weights.begin(), batch_weights.end());

    // --- Resample D (criticality-weighted with replacement, per VIPER). ---
    const std::size_t n =
        config.resample_size > 0 ? config.resample_size : result.aggregated.size();
    DecisionDataset resampled;
    resampled.records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pick =
          config.q_weighted ? rng.categorical(weights) : rng.index(weights.size());
      resampled.records.push_back(result.aggregated.records[pick]);
    }

    // --- Fit and evaluate against the teacher on the fresh batch. ---
    auto fitted = std::make_shared<DtPolicy>(
        DtPolicy::fit(resampled, teacher.actions(), config.tree, schema));
    std::size_t matches = 0;
    for (const auto& record : batch.records) {
      if (fitted->decide_index(record.input) == record.action_index) ++matches;
    }
    const double match_rate =
        static_cast<double>(matches) / static_cast<double>(batch.records.size());

    ViperIteration diag;
    diag.aggregated_size = result.aggregated.size();
    diag.teacher_match_rate = match_rate;
    diag.mean_criticality = criticality_sum / static_cast<double>(batch.records.size());
    diag.tree_nodes = fitted->tree().node_count();
    result.iterations.push_back(diag);

    if (match_rate > best_match) {
      best_match = match_rate;
      result.best_iteration = m;
      result.policy = fitted;
    }
    student = std::move(fitted);  // DAgger rolls out the *latest* iterate
  }
  return result;
}

}  // namespace verihvac::core
