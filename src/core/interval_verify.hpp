// Formal (interval) one-step safety certification — extension of §3.3.2.
//
// The paper estimates criterion #1 probabilistically by Monte-Carlo
// sampling. This module adds the sound counterpart: for every leaf of the
// verified tree that handles occupied in-comfort states, build the leaf's
// exact input box (Algorithm 1's path intersection), attach the leaf's
// setpoint action, push the resulting model-input box through the learned MLP
// dynamics with interval bound propagation (nn/interval_bounds), and check
// whether the *guaranteed* next-state interval stays inside the comfort
// range. A certified leaf is safe for EVERY input it handles and EVERY
// disturbance inside the stated physical bounds — a 100% guarantee of the
// kind criteria #2/#3 already enjoy, now extended to criterion #1's
// in-comfort regime.
//
// IBP bounds are loose on wide boxes, so certification is expected to be
// partial (the certified fraction is the headline number; the Monte-Carlo
// estimate remains the paper's metric). bench/ablation_interval sweeps the
// disturbance-box width to show the certify/abstain frontier. The
// per-(leaf × cell) units exposed below are embarrassingly parallel;
// core::VerificationEngine fans them out over common::TaskPool.
#pragma once

#include <cstddef>
#include <vector>

#include "core/dt_policy.hpp"
#include "core/verification.hpp"
#include "dynamics/dynamics_model.hpp"
#include "nn/interval_bounds.hpp"

namespace verihvac::core {

/// Physical envelope for the disturbance dimensions. Leaf boxes are
/// unbounded wherever the tree never split, and an MLP's IBP bounds over an
/// unbounded box are vacuous; these bounds state the climate envelope the
/// certificate is issued for (they should cover the deployment city's
/// January extremes with margin).
struct DisturbanceBounds {
  Interval outdoor = Interval::bounded(-25.0, 45.0);   ///< degC
  Interval humidity = Interval::bounded(0.0, 100.0);   ///< %
  Interval wind = Interval::bounded(0.0, 25.0);        ///< m/s
  Interval solar = Interval::bounded(0.0, 1100.0);     ///< W/m^2
  Interval occupancy = Interval::bounded(0.0, 40.0);   ///< people
};

/// Input-splitting configuration. IBP looseness grows with box width, so a
/// leaf spanning the whole comfort range rarely certifies in one shot; the
/// verifier therefore subdivides the two most influential dimensions (zone
/// and outdoor temperature) into slices, certifies each cell independently,
/// and certifies the leaf iff every cell certifies — the branch-and-bound
/// step every practical NN verifier performs.
struct IntervalVerifyConfig {
  double zone_slice_c = 0.5;     ///< max width of a zone-temperature slice
  double outdoor_slice_c = 5.0;  ///< max width of an outdoor-temperature slice
  /// Anchor slice boundaries to the global grid k*slice_width instead of
  /// each box's own lower endpoint. Off by default (the box-anchored
  /// slicing is the historical certificate layout); the certificate-cache
  /// paths turn it on so overlapping boxes — adjacent campaign scenarios,
  /// re-split leaves — tile through bit-identical interior cells and share
  /// cache entries (see core/certificate_cache.hpp).
  bool grid_aligned = false;
};

/// Outcome for one subject leaf.
struct IntervalLeafResult {
  int leaf = -1;
  Interval zone_temp;    ///< in-comfort part of the leaf's s-interval
  Interval next_state;   ///< union of per-cell sound one-step images
  std::size_t cells = 0;           ///< input-splitting cells examined
  std::size_t cells_certified = 0; ///< cells whose image stays in comfort
  bool certified = false;          ///< all cells certified
};

struct IntervalReport {
  std::size_t leaves_total = 0;      ///< all leaves of the tree
  std::size_t leaves_subject = 0;    ///< reachable occupied + in-comfort
  std::size_t leaves_certified = 0;  ///< sound next-state inside comfort
  std::vector<IntervalLeafResult> results;

  double certified_fraction() const {
    return leaves_subject == 0
               ? 1.0
               : static_cast<double>(leaves_certified) / static_cast<double>(leaves_subject);
  }
};

/// Caller-owned scratch for the allocation-free certification path — one
/// per worker thread when cells are fanned out in parallel.
struct IntervalScratch {
  std::vector<Interval> normalized;  ///< z-scored input box
  nn::IbpScratch ibp;                ///< MLP bound-propagation buffers
};

/// Splits [iv.lo, iv.hi] into contiguous slices of width <= max_width that
/// exactly tile the interval: the first cell starts at iv.lo, the last cell
/// ends at exactly iv.hi (a naive lo + width*k/n boundary can land an ulp
/// short of hi and silently drop the top sliver from the certificate), and
/// cells collapsed to zero width by floating-point granularity are merged
/// into their neighbour instead of being emitted. A degenerate input
/// (width 0) yields the single point cell.
std::vector<Interval> split_interval(const Interval& iv, double max_width);

/// Grid-aligned variant: slice boundaries sit on the global lattice
/// k*max_width (each computed as the direct product k*max_width, never by
/// accumulation), with the two end cells clipped to iv.lo / iv.hi exactly.
/// Two overlapping intervals therefore share bit-identical interior cells
/// — the property the certificate cache needs for cross-scenario reuse.
/// Same tiling guarantees as split_interval: first cell starts at iv.lo,
/// last ends at iv.hi, no empty cells, degenerate input yields the point.
std::vector<Interval> split_interval_aligned(const Interval& iv, double max_width);

/// Sound one-step next-state interval for an arbitrary model-input box
/// (schema dims + 2 action dims; exposed for tests and the ablation bench).
Interval interval_next_state(const dyn::DynamicsModel& model, const Box& model_input_box);

/// Thread-safe variant: identical arithmetic, all mutable state in the
/// caller-provided scratch (one per worker thread).
Interval interval_next_state(const dyn::DynamicsModel& model, const Box& model_input_box,
                             IntervalScratch& scratch);

/// One subject leaf prepared for certification: the clipped model-input box
/// (leaf box ∩ comfort ∩ envelope, with the leaf's action appended as
/// degenerate dims) and its input-splitting cells in deterministic
/// zone-major order. The flattened (leaf × cell) list is the unit of
/// parallelism for core::VerificationEngine.
struct IntervalWorkItem {
  int leaf = -1;
  Interval zone_temp;      ///< in-comfort part of the leaf's s-interval
  std::vector<Box> cells;  ///< zone-major × outdoor input-splitting cells
};

/// Enumerates the subject leaves of the policy in tree order, writing the
/// total leaf count to `leaves_total`.
std::vector<IntervalWorkItem> interval_work_items(const DtPolicy& policy,
                                                  const VerificationCriteria& criteria,
                                                  const DisturbanceBounds& bounds,
                                                  const IntervalVerifyConfig& config,
                                                  std::size_t& leaves_total);

/// Folds one leaf's per-cell images (in cell order) into its result. The
/// fold is serial and order-fixed, so parallel image computation yields a
/// bit-identical report to the serial loop.
IntervalLeafResult fold_interval_leaf(const IntervalWorkItem& item,
                                      const std::vector<Interval>& images,
                                      const env::ComfortRange& comfort);

/// Certifies every subject leaf of the policy. The model must be trained.
IntervalReport verify_interval_one_step(const DtPolicy& policy,
                                        const dyn::DynamicsModel& model,
                                        const VerificationCriteria& criteria,
                                        const DisturbanceBounds& bounds = {},
                                        const IntervalVerifyConfig& config = {});

}  // namespace verihvac::core
