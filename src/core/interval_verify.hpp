// Formal (interval) one-step safety certification — extension of §3.3.2.
//
// The paper estimates criterion #1 probabilistically by Monte-Carlo
// sampling. This module adds the sound counterpart: for every leaf of the
// verified tree that handles occupied in-comfort states, build the leaf's
// exact input box (Algorithm 1's path intersection), attach the leaf's
// setpoint action, push the resulting 8-dim box through the learned MLP
// dynamics with interval bound propagation (nn/interval_bounds), and check
// whether the *guaranteed* next-state interval stays inside the comfort
// range. A certified leaf is safe for EVERY input it handles and EVERY
// disturbance inside the stated physical bounds — a 100% guarantee of the
// kind criteria #2/#3 already enjoy, now extended to criterion #1's
// in-comfort regime.
//
// IBP bounds are loose on wide boxes, so certification is expected to be
// partial (the certified fraction is the headline number; the Monte-Carlo
// estimate remains the paper's metric). bench/ablation_interval sweeps the
// disturbance-box width to show the certify/abstain frontier.
#pragma once

#include <cstddef>
#include <vector>

#include "core/dt_policy.hpp"
#include "core/verification.hpp"
#include "dynamics/dynamics_model.hpp"

namespace verihvac::core {

/// Physical envelope for the disturbance dimensions. Leaf boxes are
/// unbounded wherever the tree never split, and an MLP's IBP bounds over an
/// unbounded box are vacuous; these bounds state the climate envelope the
/// certificate is issued for (they should cover the deployment city's
/// January extremes with margin).
struct DisturbanceBounds {
  Interval outdoor = Interval::bounded(-25.0, 45.0);   ///< degC
  Interval humidity = Interval::bounded(0.0, 100.0);   ///< %
  Interval wind = Interval::bounded(0.0, 25.0);        ///< m/s
  Interval solar = Interval::bounded(0.0, 1100.0);     ///< W/m^2
  Interval occupancy = Interval::bounded(0.0, 40.0);   ///< people
};

/// Input-splitting configuration. IBP looseness grows with box width, so a
/// leaf spanning the whole comfort range rarely certifies in one shot; the
/// verifier therefore subdivides the two most influential dimensions (zone
/// and outdoor temperature) into slices, certifies each cell independently,
/// and certifies the leaf iff every cell certifies — the branch-and-bound
/// step every practical NN verifier performs.
struct IntervalVerifyConfig {
  double zone_slice_c = 0.5;     ///< max width of a zone-temperature slice
  double outdoor_slice_c = 5.0;  ///< max width of an outdoor-temperature slice
};

/// Outcome for one subject leaf.
struct IntervalLeafResult {
  int leaf = -1;
  Interval zone_temp;    ///< in-comfort part of the leaf's s-interval
  Interval next_state;   ///< union of per-cell sound one-step images
  std::size_t cells = 0;           ///< input-splitting cells examined
  std::size_t cells_certified = 0; ///< cells whose image stays in comfort
  bool certified = false;          ///< all cells certified
};

struct IntervalReport {
  std::size_t leaves_total = 0;      ///< all leaves of the tree
  std::size_t leaves_subject = 0;    ///< reachable occupied + in-comfort
  std::size_t leaves_certified = 0;  ///< sound next-state inside comfort
  std::vector<IntervalLeafResult> results;

  double certified_fraction() const {
    return leaves_subject == 0
               ? 1.0
               : static_cast<double>(leaves_certified) / static_cast<double>(leaves_subject);
  }
};

/// Sound one-step next-state interval for an arbitrary 8-dim model-input
/// box (exposed for tests and the ablation bench).
Interval interval_next_state(const dyn::DynamicsModel& model, const Box& model_input_box);

/// Certifies every subject leaf of the policy. The model must be trained.
IntervalReport verify_interval_one_step(const DtPolicy& policy,
                                        const dyn::DynamicsModel& model,
                                        const VerificationCriteria& criteria,
                                        const DisturbanceBounds& bounds = {},
                                        const IntervalVerifyConfig& config = {});

}  // namespace verihvac::core
