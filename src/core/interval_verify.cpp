#include "core/interval_verify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "dynamics/dataset.hpp"
#include "envlib/observation.hpp"
#include "nn/interval_bounds.hpp"

namespace verihvac::core {
namespace {

/// z-score is a monotone affine map per dimension, so an interval's image
/// is the interval of the endpoint images.
std::vector<Interval> normalize_box(const nn::Normalizer& norm, const Box& box) {
  std::vector<Interval> out(box.size());
  for (std::size_t d = 0; d < box.size(); ++d) {
    const double mean = norm.mean()[d];
    const double std = norm.std()[d];
    out[d] = Interval{(box[d].lo - mean) / std, (box[d].hi - mean) / std};
  }
  return out;
}

}  // namespace

Interval interval_next_state(const dyn::DynamicsModel& model, const Box& model_input_box) {
  if (!model.trained()) throw std::logic_error("interval_next_state: model not trained");
  if (model_input_box.size() != dyn::kModelInputDims) {
    throw std::invalid_argument("interval_next_state: box must have 8 dims");
  }
  for (std::size_t d = 0; d < model_input_box.size(); ++d) {
    if (model_input_box[d].empty()) {
      throw std::invalid_argument("interval_next_state: empty box dimension");
    }
    if (!std::isfinite(model_input_box[d].lo) || !std::isfinite(model_input_box[d].hi)) {
      throw std::invalid_argument(
          "interval_next_state: unbounded box (clip to DisturbanceBounds first)");
    }
  }
  const auto normalized = normalize_box(model.input_normalizer(), model_input_box);
  const auto net_out = nn::propagate_bounds(model.network(), normalized);
  // predict(x) = x[s] + delta_mean + delta_std * net(norm(x)); delta_std > 0.
  const Interval delta{model.delta_mean() + model.delta_std() * net_out[0].lo,
                       model.delta_mean() + model.delta_std() * net_out[0].hi};
  const Interval& s = model_input_box[env::kZoneTemp];
  return Interval{s.lo + delta.lo, s.hi + delta.hi};
}

namespace {

/// Splits [iv.lo, iv.hi] into contiguous slices of width <= max_width.
std::vector<Interval> slice(const Interval& iv, double max_width) {
  const double width = iv.hi - iv.lo;
  const auto n = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(width / std::max(max_width, 1e-9))));
  std::vector<Interval> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double lo = iv.lo + width * static_cast<double>(k) / static_cast<double>(n);
    const double hi = iv.lo + width * static_cast<double>(k + 1) / static_cast<double>(n);
    out.push_back(Interval{lo, hi});
  }
  return out;
}

}  // namespace

IntervalReport verify_interval_one_step(const DtPolicy& policy,
                                        const dyn::DynamicsModel& model,
                                        const VerificationCriteria& criteria,
                                        const DisturbanceBounds& bounds,
                                        const IntervalVerifyConfig& config) {
  const auto& tree = policy.tree();
  IntervalReport report;
  for (int leaf : tree.leaves()) {
    ++report.leaves_total;
    Box box = tree.leaf_box(leaf);
    // Subject region of criterion #1: occupied AND inside the comfort
    // range AND inside the certificate's climate envelope. A leaf whose
    // region lies entirely outside any of these (e.g. it requires more
    // solar than the envelope admits) is out of the certificate's scope.
    box.clip(env::kZoneTemp, Interval::bounded(criteria.comfort.lo, criteria.comfort.hi));
    box.clip(env::kOccupancy, Interval::greater(0.5));
    box.clip(env::kOccupancy, bounds.occupancy);
    box.clip(env::kOutdoorTemp, bounds.outdoor);
    box.clip(env::kHumidity, bounds.humidity);
    box.clip(env::kWind, bounds.wind);
    box.clip(env::kSolar, bounds.solar);
    if (box.empty()) continue;
    ++report.leaves_subject;

    // Append the leaf's action as degenerate interval dimensions.
    const auto label =
        static_cast<std::size_t>(tree.node(static_cast<std::size_t>(leaf)).label);
    const sim::SetpointPair action = policy.actions().action(label);
    Box model_box(dyn::kModelInputDims);
    for (std::size_t d = 0; d < env::kInputDims; ++d) model_box.clip(d, box[d]);
    model_box.clip(dyn::kHeatSpIndex, Interval::bounded(action.heating_c, action.heating_c));
    model_box.clip(dyn::kCoolSpIndex, Interval::bounded(action.cooling_c, action.cooling_c));

    IntervalLeafResult result;
    result.leaf = leaf;
    result.zone_temp = box[env::kZoneTemp];
    result.certified = true;
    result.next_state = Interval{std::numeric_limits<double>::infinity(),
                                 -std::numeric_limits<double>::infinity()};
    for (const Interval& s_cell : slice(model_box[env::kZoneTemp], config.zone_slice_c)) {
      for (const Interval& o_cell :
           slice(model_box[env::kOutdoorTemp], config.outdoor_slice_c)) {
        Box cell = model_box;
        cell.clip(env::kZoneTemp, s_cell);
        cell.clip(env::kOutdoorTemp, o_cell);
        const Interval image = interval_next_state(model, cell);
        ++result.cells;
        const bool cell_ok =
            image.lo >= criteria.comfort.lo && image.hi <= criteria.comfort.hi;
        if (cell_ok) ++result.cells_certified;
        result.certified = result.certified && cell_ok;
        result.next_state.lo = std::min(result.next_state.lo, image.lo);
        result.next_state.hi = std::max(result.next_state.hi, image.hi);
      }
    }
    if (result.certified) ++report.leaves_certified;
    report.results.push_back(result);
  }
  return report;
}

}  // namespace verihvac::core
