#include "core/interval_verify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "dynamics/dataset.hpp"
#include "envlib/observation.hpp"

namespace verihvac::core {
namespace {

/// z-score is a monotone affine map per dimension, so an interval's image
/// is the interval of the endpoint images.
void normalize_box(const nn::Normalizer& norm, const Box& box, std::vector<Interval>& out) {
  out.resize(box.size());
  for (std::size_t d = 0; d < box.size(); ++d) {
    const double mean = norm.mean()[d];
    const double std = norm.std()[d];
    out[d] = Interval{(box[d].lo - mean) / std, (box[d].hi - mean) / std};
  }
}

}  // namespace

Interval interval_next_state(const dyn::DynamicsModel& model, const Box& model_input_box,
                             IntervalScratch& scratch) {
  if (!model.trained()) throw std::logic_error("interval_next_state: model not trained");
  if (model_input_box.size() != model.input_dims()) {
    throw std::invalid_argument("interval_next_state: box has " +
                                std::to_string(model_input_box.size()) +
                                " dims, model expects " +
                                std::to_string(model.input_dims()));
  }
  for (std::size_t d = 0; d < model_input_box.size(); ++d) {
    if (model_input_box[d].empty()) {
      throw std::invalid_argument("interval_next_state: empty box dimension");
    }
    if (!std::isfinite(model_input_box[d].lo) || !std::isfinite(model_input_box[d].hi)) {
      throw std::invalid_argument(
          "interval_next_state: unbounded box (clip to DisturbanceBounds first)");
    }
  }
  normalize_box(model.input_normalizer(), model_input_box, scratch.normalized);
  const auto& net_out = nn::propagate_bounds(model.network(), scratch.normalized, scratch.ibp);
  // predict(x) = x[s] + delta_mean + delta_std * net(norm(x)); delta_std > 0.
  const Interval delta{model.delta_mean() + model.delta_std() * net_out[0].lo,
                       model.delta_mean() + model.delta_std() * net_out[0].hi};
  const Interval& s = model_input_box[model.zone_temp_index()];
  return Interval{s.lo + delta.lo, s.hi + delta.hi};
}

Interval interval_next_state(const dyn::DynamicsModel& model, const Box& model_input_box) {
  IntervalScratch scratch;
  return interval_next_state(model, model_input_box, scratch);
}

std::vector<Interval> split_interval(const Interval& iv, double max_width) {
  const double width = iv.hi - iv.lo;
  if (!(width > 0.0)) return {Interval{iv.lo, iv.hi}};  // point (or empty) box
  const auto n = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(width / std::max(max_width, 1e-9))));
  std::vector<Interval> out;
  out.reserve(n);
  double lo = iv.lo;
  for (std::size_t k = 0; k < n; ++k) {
    // The last boundary is pinned to iv.hi exactly: lo + width*(k+1)/n can
    // round an ulp short of (or past) iv.hi, and an undershoot would drop
    // the top sliver of the leaf box from the certificate — an unsound gap.
    const double hi =
        k + 1 == n ? iv.hi : iv.lo + width * static_cast<double>(k + 1) / static_cast<double>(n);
    if (hi <= lo && k + 1 < n) continue;  // fp-collapsed boundary: widen the next cell
    out.push_back(Interval{lo, std::max(hi, lo)});
    lo = hi;
  }
  return out;
}

std::vector<Interval> split_interval_aligned(const Interval& iv, double max_width) {
  const double width = iv.hi - iv.lo;
  if (!(width > 0.0)) return {Interval{iv.lo, iv.hi}};  // point (or empty) box
  const double w = std::max(max_width, 1e-9);
  std::vector<Interval> out;
  // Interior boundaries are the direct products (k+1)*w — pure functions
  // of the global lattice, so any two boxes overlapping the same region
  // tile it through bit-identical cells. Only the first and last cells
  // (clipped to iv.lo / iv.hi) are box-specific.
  double k = std::floor(iv.lo / w);
  double lo = iv.lo;
  while (lo < iv.hi) {
    double hi = (k + 1.0) * w;
    k += 1.0;
    if (hi <= lo) continue;  // lo sits on/past this lattice point
    if (hi >= iv.hi) hi = iv.hi;
    out.push_back(Interval{lo, hi});
    lo = hi;
  }
  return out;
}

namespace {

std::vector<Interval> split_dim(const Interval& iv, double max_width, bool grid_aligned) {
  return grid_aligned ? split_interval_aligned(iv, max_width) : split_interval(iv, max_width);
}

}  // namespace

std::vector<IntervalWorkItem> interval_work_items(const DtPolicy& policy,
                                                  const VerificationCriteria& criteria,
                                                  const DisturbanceBounds& bounds,
                                                  const IntervalVerifyConfig& config,
                                                  std::size_t& leaves_total) {
  const auto& tree = policy.tree();
  const env::FeatureSchema& schema = policy.schema();
  const std::size_t zone_dim = schema.zone_temp_index();
  const std::size_t occ_dim = schema.occupancy_index();
  const std::size_t outdoor_dim = schema.index_of(env::FeatureRole::kOutdoorTemp);
  const std::size_t heat_col = schema.dims();
  const std::size_t cool_col = schema.dims() + 1;
  std::vector<IntervalWorkItem> items;
  leaves_total = 0;
  for (int leaf : tree.leaves()) {
    ++leaves_total;
    Box box = tree.leaf_box(leaf);
    // Subject region of criterion #1: occupied AND inside the comfort
    // range AND inside the certificate's climate envelope. A leaf whose
    // region lies entirely outside any of these (e.g. it requires more
    // solar than the envelope admits) is out of the certificate's scope.
    // Roles are located through the policy's schema, not by fixed index.
    box.clip(zone_dim, Interval::bounded(criteria.comfort.lo, criteria.comfort.hi));
    box.clip(occ_dim, Interval::greater(0.5));
    box.clip(occ_dim, bounds.occupancy);
    box.clip(outdoor_dim, bounds.outdoor);
    if (schema.has_role(env::FeatureRole::kHumidity)) {
      box.clip(schema.index_of(env::FeatureRole::kHumidity), bounds.humidity);
    }
    if (schema.has_role(env::FeatureRole::kWind)) {
      box.clip(schema.index_of(env::FeatureRole::kWind), bounds.wind);
    }
    if (schema.has_role(env::FeatureRole::kSolar)) {
      box.clip(schema.index_of(env::FeatureRole::kSolar), bounds.solar);
    }
    // Any remaining dimensions (temporal encodings, occupancy forecasts)
    // take the envelope the schema itself declares for them — IBP over an
    // unbounded box would be vacuous (see DisturbanceBounds).
    for (std::size_t d = 0; d < schema.dims(); ++d) {
      switch (schema.at(d).role) {
        case env::FeatureRole::kZoneTemp:
        case env::FeatureRole::kOutdoorTemp:
        case env::FeatureRole::kHumidity:
        case env::FeatureRole::kWind:
        case env::FeatureRole::kSolar:
        case env::FeatureRole::kOccupancy:
          break;  // clipped above
        default:
          box.clip(d, schema.at(d).bounds);
          break;
      }
    }
    if (box.empty()) continue;

    // Append the leaf's action as degenerate interval dimensions.
    const auto label =
        static_cast<std::size_t>(tree.node(static_cast<std::size_t>(leaf)).label);
    const sim::SetpointPair action = policy.actions().action(label);
    Box model_box(schema.dims() + 2);
    for (std::size_t d = 0; d < schema.dims(); ++d) model_box.clip(d, box[d]);
    model_box.clip(heat_col, Interval::bounded(action.heating_c, action.heating_c));
    model_box.clip(cool_col, Interval::bounded(action.cooling_c, action.cooling_c));

    IntervalWorkItem item;
    item.leaf = leaf;
    item.zone_temp = box[zone_dim];
    for (const Interval& s_cell :
         split_dim(model_box[zone_dim], config.zone_slice_c, config.grid_aligned)) {
      for (const Interval& o_cell :
           split_dim(model_box[outdoor_dim], config.outdoor_slice_c, config.grid_aligned)) {
        Box cell = model_box;
        cell.clip(zone_dim, s_cell);
        cell.clip(outdoor_dim, o_cell);
        item.cells.push_back(std::move(cell));
      }
    }
    items.push_back(std::move(item));
  }
  return items;
}

IntervalLeafResult fold_interval_leaf(const IntervalWorkItem& item,
                                      const std::vector<Interval>& images,
                                      const env::ComfortRange& comfort) {
  IntervalLeafResult result;
  result.leaf = item.leaf;
  result.zone_temp = item.zone_temp;
  result.certified = true;
  result.next_state = Interval{std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity()};
  for (const Interval& image : images) {
    ++result.cells;
    const bool cell_ok = image.lo >= comfort.lo && image.hi <= comfort.hi;
    if (cell_ok) ++result.cells_certified;
    result.certified = result.certified && cell_ok;
    result.next_state.lo = std::min(result.next_state.lo, image.lo);
    result.next_state.hi = std::max(result.next_state.hi, image.hi);
  }
  return result;
}

IntervalReport verify_interval_one_step(const DtPolicy& policy,
                                        const dyn::DynamicsModel& model,
                                        const VerificationCriteria& criteria,
                                        const DisturbanceBounds& bounds,
                                        const IntervalVerifyConfig& config) {
  IntervalReport report;
  const std::vector<IntervalWorkItem> items =
      interval_work_items(policy, criteria, bounds, config, report.leaves_total);
  IntervalScratch scratch;
  std::vector<Interval> images;
  for (const IntervalWorkItem& item : items) {
    images.clear();
    images.reserve(item.cells.size());
    for (const Box& cell : item.cells) {
      images.push_back(interval_next_state(model, cell, scratch));
    }
    ++report.leaves_subject;
    IntervalLeafResult result = fold_interval_leaf(item, images, criteria.comfort);
    if (result.certified) ++report.leaves_certified;
    report.results.push_back(std::move(result));
  }
  return report;
}

}  // namespace verihvac::core
