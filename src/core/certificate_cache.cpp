#include "core/certificate_cache.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

namespace verihvac::core {
namespace {

/// FNV-1a 64-bit, fed typed words. Doubles hash as raw bit patterns: the
/// cache's contract is *bit*-identity (the same convention the
/// determinism tests lock), so -0.0 and 0.0 are distinct on purpose.
class Fnv1a {
 public:
  Fnv1a& u64(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      state_ = (state_ ^ ((v >> (8 * b)) & 0xFFu)) * kPrime;
    }
    return *this;
  }
  Fnv1a& f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }
  Fnv1a& str(const std::string& s) {
    u64(s.size());
    for (const char c : s) state_ = (state_ ^ static_cast<unsigned char>(c)) * kPrime;
    return *this;
  }
  std::uint64_t digest() const { return state_; }

 private:
  static constexpr std::uint64_t kOffset = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t state_ = kOffset;
};

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void hash_box_into(Fnv1a& h, const Box& box) {
  h.u64(box.size());
  for (std::size_t d = 0; d < box.size(); ++d) {
    h.f64(box[d].lo).f64(box[d].hi);
  }
}

void hash_schema_into(Fnv1a& h, const env::FeatureSchema& schema) {
  h.str(schema.name()).u64(schema.dims());
  for (const env::FeatureSpec& f : schema.features()) {
    h.str(f.name)
        .str(f.unit)
        .u64(static_cast<std::uint64_t>(f.kind))
        .u64(static_cast<std::uint64_t>(f.role))
        .f64(f.bounds.lo)
        .f64(f.bounds.hi);
  }
}

void hash_tree_into(Fnv1a& h, const tree::DecisionTreeClassifier& tree) {
  h.u64(tree.num_features()).u64(tree.num_classes()).u64(tree.node_count());
  for (const tree::TreeNode& node : tree.nodes()) {
    h.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(node.feature)))
        .f64(node.threshold)
        .u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(node.left)))
        .u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(node.right)))
        .u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(node.label)));
  }
}

std::size_t count_leaves_under(const tree::DecisionTreeClassifier& tree, int node) {
  const tree::TreeNode& n = tree.node(static_cast<std::size_t>(node));
  if (n.is_leaf()) return 1;
  return count_leaves_under(tree, n.left) + count_leaves_under(tree, n.right);
}

void diff_nodes(const tree::DecisionTreeClassifier& incumbent, int a,
                const tree::DecisionTreeClassifier& candidate, int b, TreeDiff& diff) {
  const tree::TreeNode& na = incumbent.node(static_cast<std::size_t>(a));
  const tree::TreeNode& nb = candidate.node(static_cast<std::size_t>(b));
  if (na.is_leaf() && nb.is_leaf()) {
    ++diff.leaves_total;
    if (na.label != nb.label) ++diff.leaves_changed;
    return;
  }
  if (na.is_leaf() != nb.is_leaf() || na.feature != nb.feature ||
      double_bits(na.threshold) != double_bits(nb.threshold)) {
    // Structural mismatch: every candidate leaf below is handled by a
    // different predicate path than any incumbent leaf — all changed.
    const std::size_t below = count_leaves_under(candidate, b);
    diff.leaves_total += below;
    diff.leaves_changed += below;
    return;
  }
  diff_nodes(incumbent, na.left, candidate, nb.left, diff);
  diff_nodes(incumbent, na.right, candidate, nb.right, diff);
}

}  // namespace

std::uint64_t hash_box(const Box& box) {
  Fnv1a h;
  hash_box_into(h, box);
  return h.digest();
}

std::uint64_t hash_schema(const env::FeatureSchema& schema) {
  Fnv1a h;
  hash_schema_into(h, schema);
  return h.digest();
}

std::uint64_t hash_dynamics(const dyn::DynamicsModel& model) {
  if (!model.trained()) throw std::logic_error("hash_dynamics: model not trained");
  Fnv1a h;
  hash_schema_into(h, model.schema());
  const nn::Normalizer& norm = model.input_normalizer();
  h.u64(norm.dims());
  for (const double m : norm.mean()) h.f64(m);
  for (const double s : norm.std()) h.f64(s);
  h.f64(model.delta_mean()).f64(model.delta_std());
  const nn::Mlp& net = model.network();
  h.u64(net.layers().size());
  for (const nn::Linear& layer : net.layers()) {
    h.u64(layer.in_features()).u64(layer.out_features());
    for (const double w : layer.weight().data()) h.f64(w);
    for (const double b : layer.bias().data()) h.f64(b);
  }
  return h.digest();
}

std::uint64_t hash_tree(const tree::DecisionTreeClassifier& tree) {
  if (!tree.fitted()) throw std::logic_error("hash_tree: tree not fitted");
  Fnv1a h;
  hash_tree_into(h, tree);
  return h.digest();
}

std::uint64_t policy_fingerprint(const DtPolicy& policy) {
  Fnv1a h;
  hash_schema_into(h, policy.schema());
  const control::ActionSpaceConfig& grid = policy.actions().config();
  h.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(grid.heat_min)))
      .u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(grid.heat_max)))
      .u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(grid.cool_min)))
      .u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(grid.cool_max)))
      .u64(grid.enforce_heat_le_cool ? 1 : 0);
  hash_tree_into(h, policy.tree());
  return h.digest();
}

bool box_bits_equal(const Box& a, const Box& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t d = 0; d < a.size(); ++d) {
    if (double_bits(a[d].lo) != double_bits(b[d].lo) ||
        double_bits(a[d].hi) != double_bits(b[d].hi)) {
      return false;
    }
  }
  return true;
}

TreeDiff diff_trees(const tree::DecisionTreeClassifier& incumbent,
                    const tree::DecisionTreeClassifier& candidate) {
  if (!incumbent.fitted() || !candidate.fitted()) {
    throw std::logic_error("diff_trees: both trees must be fitted");
  }
  TreeDiff diff;
  if (incumbent.num_features() != candidate.num_features()) {
    // Different input spaces: nothing carries over.
    diff.leaves_total = diff.leaves_changed = candidate.leaf_count();
    return diff;
  }
  diff_nodes(incumbent, 0, candidate, 0, diff);
  return diff;
}

std::uint64_t hash_certificate_key(const CertificateKey& key) {
  Fnv1a h;
  h.u64(key.dynamics_hash);
  hash_box_into(h, key.cell);
  return h.digest();
}

bool certificate_keys_equal(const CertificateKey& a, const CertificateKey& b) {
  return a.dynamics_hash == b.dynamics_hash && box_bits_equal(a.cell, b.cell);
}

CertificateCache::CertificateCache(std::size_t max_entries)
    : max_entries_(max_entries),
      obs_{&obs::counter("certcache_lookups_total"), &obs::counter("certcache_hits_total"),
           &obs::counter("certcache_misses_total"), &obs::counter("certcache_collisions_total"),
           &obs::counter("certcache_insertions_total"),
           &obs::counter("certcache_evictions_total")} {}

std::optional<Interval> CertificateCache::lookup(const CertificateKey& key) {
  return lookup_in_slot(hash_certificate_key(key), key);
}

void CertificateCache::insert(const CertificateKey& key, const Interval& image) {
  insert_in_slot(hash_certificate_key(key), key, image);
}

std::optional<Interval> CertificateCache::lookup_in_slot(std::uint64_t slot,
                                                         const CertificateKey& key) {
  ++stats_.lookups;
  obs_.lookups->add(1);
  const auto it = entries_.find(slot);
  if (it == entries_.end()) {
    ++stats_.misses;
    obs_.misses->add(1);
    return std::nullopt;
  }
  if (!certificate_keys_equal(it->second.key, key)) {
    // Hash collision or poisoned entry: the stored verdict belongs to a
    // different (model, cell) and must never be spliced into a report.
    ++stats_.misses;
    ++stats_.collisions;
    obs_.misses->add(1);
    obs_.collisions->add(1);
    return std::nullopt;
  }
  it->second.tick = ++tick_;
  ++stats_.hits;
  obs_.hits->add(1);
  return it->second.image;
}

void CertificateCache::insert_in_slot(std::uint64_t slot, const CertificateKey& key,
                                      const Interval& image) {
  const auto it = entries_.find(slot);
  if (it == entries_.end() && max_entries_ > 0 && entries_.size() >= max_entries_) {
    evict_one();
  }
  Entry entry;
  entry.key = key;
  entry.image = image;
  entry.tick = ++tick_;
  entries_[slot] = std::move(entry);
  ++stats_.insertions;
  obs_.insertions->add(1);
}

void CertificateCache::evict_one() {
  auto victim = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.tick < victim->second.tick) victim = it;
  }
  entries_.erase(victim);
  ++stats_.evictions;
  obs_.evictions->add(1);
}

void CertificateCache::note_certified(const DtPolicy& policy, std::uint64_t dynamics_hash) {
  incumbent_tree_ = policy.tree();
  incumbent_dynamics_hash_ = dynamics_hash;
  has_incumbent_ = true;
}

TreeDiff CertificateCache::diff_against_incumbent(const DtPolicy& candidate) const {
  if (!has_incumbent_) {
    throw std::logic_error("CertificateCache: no incumbent recorded (note_certified first)");
  }
  return diff_trees(incumbent_tree_, candidate.tree());
}

void CertificateCache::clear() {
  entries_.clear();
  has_incumbent_ = false;
  incumbent_dynamics_hash_ = 0;
}

}  // namespace verihvac::core
