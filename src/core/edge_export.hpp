// Verified-policy export for building edge devices.
//
// The deployment step of the paper's pipeline (Fig. 2: "Deploy") ships the
// verified tree to the building's edge controller. This module renders a
// DtPolicy as a complete, dependency-free C99 module: the tree predictor
// (tree/codegen) plus the action-space decode tables, wrapped in a single
// `void <prefix>_decide(const double x[N], double* heat, double* cool)`
// entry point a BMS firmware can call once per control step, where N is the
// policy's observation-schema dimension (6 for the baseline schema).
//
// The emitted module is what the verifier certified: the C tree is emitted
// from the *corrected* node array, so criteria #2/#3 guarantees survive
// deployment verbatim (property-tested in tests/tree/codegen_test.cpp by
// compiling and replaying).
#pragma once

#include <string>

#include "core/dt_policy.hpp"
#include "tree/codegen.hpp"

namespace verihvac::core {

struct EdgeExportOptions {
  /// Symbol prefix; the entry point is `<prefix>_decide`.
  std::string prefix = "veri_hvac";
  /// Table style keeps code size constant in tree depth (MCU-friendly).
  tree::CodegenStyle style = tree::CodegenStyle::kFlatTable;
};

/// The matching header (extern prototype + input-layout documentation).
std::string policy_to_c_header(const DtPolicy& policy, const EdgeExportOptions& options = {});

/// A self-contained C99 translation unit implementing the policy.
std::string policy_to_c(const DtPolicy& policy, const EdgeExportOptions& options = {});

/// Writes `<dir>/<prefix>.c` and `<dir>/<prefix>.h`; throws on I/O failure.
void export_policy_c(const DtPolicy& policy, const std::string& dir,
                     const EdgeExportOptions& options = {});

}  // namespace verihvac::core
