// Interpretability reports for decision-tree policies.
//
// The paper's central selling point is that the extracted policy is
// "fully interpretable and knowledgeable to human experts" (§3.2.2).
// This module turns that claim into concrete artifacts:
//
//  * explain(x)          — the root-to-leaf decision path for one input,
//                          rendered as the chain of physical-variable
//                          comparisons that produced the setpoint ("why
//                          did the controller pick 15 °C at 3 am?"),
//  * feature_importance  — which input variables the policy actually
//                          consults, weighted by training-sample counts
//                          (the CART analogue of sklearn's
//                          feature_importances_),
//  * policy_summary      — compact per-action statistics: how much of
//                          the input space (in box volume over the
//                          historical ranges) each setpoint decision
//                          covers.
#pragma once

#include <string>
#include <vector>

#include "core/dt_policy.hpp"

namespace verihvac::core {

/// One comparison along a decision path.
struct ExplanationStep {
  std::string variable;   ///< physical name, e.g. "Zone Air Temperature"
  double threshold = 0.0;
  bool went_left = true;  ///< true: value <= threshold, false: value > threshold
  double value = 0.0;     ///< the input's actual value
};

/// The full explanation of one decision.
struct Explanation {
  std::vector<ExplanationStep> steps;
  std::size_t action_index = 0;
  sim::SetpointPair action;
  bool corrected = false;  ///< leaf was edited by the formal verifier

  /// Multi-line human-readable rendering.
  std::string to_string() const;
};

/// Explains the policy's decision on input `x`. `corrected_leaves` (from
/// FormalReport::findings) marks decisions that came from verifier edits.
Explanation explain(const DtPolicy& policy, const std::vector<double>& x,
                    const std::vector<int>& corrected_leaves = {});

/// Normalized split-frequency importance per input dimension, weighted by
/// the number of training samples that passed through each split. Sums to
/// 1 unless the tree is a single leaf (then all zeros).
std::vector<double> feature_importance(const DtPolicy& policy);

/// Importances rendered with variable names, sorted descending.
std::string feature_importance_report(const DtPolicy& policy);

/// Per-action coverage: fraction of leaves (and of training samples)
/// that decide each action. Indexed by action, entries with zero leaves
/// are omitted from the report.
struct ActionCoverage {
  std::size_t action_index = 0;
  sim::SetpointPair action;
  std::size_t leaves = 0;
  std::size_t samples = 0;
};

std::vector<ActionCoverage> policy_summary(const DtPolicy& policy);
std::string policy_summary_report(const DtPolicy& policy);

}  // namespace verihvac::core
