// Policy-bundle serialization: the deployable artifact.
//
// A decision tree alone is not a policy — decoding its class labels needs
// the action-space enumeration it was fitted against (heat/cool grids and
// the heat <= cool constraint). tree_io's save_tree persists only the
// tree, which is fine inside one process but deployment-unsafe: loading a
// tree against a *different* action grid silently re-maps every decision.
// The bundle format stores tree, action space AND observation schema,
// versioned:
//
//   verihvac-policy v3
//   fingerprint <16 hex digits>
//   schema <name> <n_features>
//   feature <name> <unit> <kind> <role> <lo> <hi>     (n_features lines)
//   <heat_min> <heat_max> <cool_min> <cool_max> <enforce_heat_le_cool>
//   verihvac-tree v1
//   ...
//
// Interval endpoints serialize as "inf"/"-inf" or with round-trip-exact
// precision, so write -> read -> write is byte-identical. v1 bundles (no
// schema block) and v2 bundles (no fingerprint) still load; v1 gets the
// implicit baseline 6-dim schema. The v3 fingerprint is
// core::policy_fingerprint (schema + action grid + tree, the certificate
// cache's content hash): read_policy recomputes it over the decoded
// bundle and throws on mismatch, so a tampered or bit-rotted bundle is
// rejected at load instead of serving re-mapped decisions — and the
// adaptation loop can tell which certified artifact a bundle is without
// re-hashing. load_policy additionally validates that the embedded tree's
// class count matches the embedded action space, and its feature count
// the schema, throwing otherwise.
#pragma once

#include <iosfwd>
#include <string>

#include "core/dt_policy.hpp"

namespace verihvac::core {

void write_policy(const DtPolicy& policy, std::ostream& out);
DtPolicy read_policy(std::istream& in, const std::string& context = "<stream>");

void save_policy(const DtPolicy& policy, const std::string& path);
DtPolicy load_policy(const std::string& path);

}  // namespace verihvac::core
