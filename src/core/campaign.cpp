#include "core/campaign.hpp"

#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "envlib/observation.hpp"
#include "weather/climate.hpp"
#include "weather/weather_generator.hpp"

namespace verihvac::core {
namespace {

/// Scenario-local seed: a pure function of (root seed, grid index), so a
/// scenario's draws never depend on how many scenarios precede it being
/// re-run or skipped by a caching provider.
std::uint64_t scenario_seed(std::uint64_t root, std::size_t index) {
  Rng rng = Rng::stream(root, static_cast<std::uint64_t>(index));
  return rng();
}

/// Disturbance forecast for the scenario's tubes: the climate's synthesized
/// weather from 8am of day 0 (occupied hours — the tubes start from safe
/// occupied states, so the continuation should stay in the workday).
std::vector<env::Disturbance> scenario_disturbances(const std::string& climate,
                                                    std::uint64_t seed, std::size_t horizon) {
  weather::WeatherGenerator generator(weather::profile_by_name(climate), seed);
  const std::size_t start = 8 * 4;  // 8:00 in 15-minute steps
  const weather::WeatherSeries series = generator.generate(0, start + horizon);
  std::vector<env::Disturbance> out;
  out.reserve(horizon);
  for (std::size_t k = 0; k < horizon; ++k) {
    env::Disturbance d;
    d.weather = series.at(start + k);
    d.occupants = 11.0;  // paper's occupied-zone headcount
    std::tie(d.hour_sin, d.hour_cos) = env::time_of_day_encoding(start + k);
    d.occupants_ahead = 11.0;  // the workday continues past the tube horizon
    out.push_back(d);
  }
  return out;
}

}  // namespace

DisturbanceBounds mild_envelope() {
  DisturbanceBounds b;
  b.outdoor = Interval::bounded(-5.0, 12.0);
  b.humidity = Interval::bounded(30.0, 85.0);
  b.wind = Interval::bounded(0.0, 8.0);
  b.solar = Interval::bounded(0.0, 400.0);
  b.occupancy = Interval::bounded(0.0, 15.0);
  return b;
}

std::string CampaignScenario::key() const {
  return climate + "/" + building.name + "/" + comfort.name + "/" + envelope.name;
}

std::vector<CampaignScenario> enumerate_scenarios(const CampaignConfig& config) {
  if (config.climates.empty() || config.buildings.empty() || config.comfort_bands.empty() ||
      config.envelopes.empty()) {
    throw std::invalid_argument("campaign: every grid axis needs at least one entry");
  }
  std::vector<CampaignScenario> scenarios;
  std::size_t index = 0;
  for (const std::string& climate : config.climates) {
    for (const CampaignBuilding& building : config.buildings) {
      for (const CampaignComfortBand& comfort : config.comfort_bands) {
        for (const CampaignEnvelope& envelope : config.envelopes) {
          CampaignScenario s;
          s.index = index++;
          s.climate = climate;
          s.building = building;
          s.comfort = comfort;
          s.envelope = envelope;
          scenarios.push_back(std::move(s));
        }
      }
    }
  }
  return scenarios;
}

CampaignResult run_campaign(const CampaignConfig& config, const VerificationEngine& engine,
                            const AssetProvider& assets) {
  CampaignResult result;
  // One cache across the grid: scenarios sharing a plant re-splice most
  // cells (comfort band / envelope only re-clip the boxes, and aligned
  // slicing keeps the shared interior cells bit-identical). Different
  // plants coexist keyed by their dynamics hashes.
  std::unique_ptr<CertificateCache> cache;
  IntervalVerifyConfig interval = config.interval;
  if (config.incremental_recert) {
    cache = std::make_unique<CertificateCache>(config.recert_cache_entries);
    interval.grid_aligned = true;
  }
  for (const CampaignScenario& scenario : enumerate_scenarios(config)) {
    const ScenarioAssets asset = assets(scenario);
    if (!asset.policy || !asset.model || !asset.sampler) {
      throw std::invalid_argument("campaign: asset provider returned incomplete assets for " +
                                  scenario.key());
    }
    VerificationCriteria criteria;
    criteria.comfort = scenario.comfort.range;

    CampaignRow row;
    row.scenario = scenario;
    const std::uint64_t seed = scenario_seed(config.seed, scenario.index);

    row.probabilistic =
        engine.verify_probabilistic(*asset.policy, *asset.model, *asset.sampler, criteria,
                                    config.probabilistic_samples, seed);
    if (cache != nullptr) {
      row.interval = engine.verify_interval_incremental(*asset.policy, *asset.model, criteria,
                                                        *cache, scenario.envelope.bounds,
                                                        interval, config.recert, &row.recert);
    } else {
      row.interval = engine.verify_interval(*asset.policy, *asset.model, criteria,
                                            scenario.envelope.bounds, interval);
    }

    // Tube fan-out: starts drawn serially (one RNG, fixed order), rolled in
    // parallel, classified serially.
    if (config.reach_states > 0 && config.reach_horizon > 0) {
      // Distinct root from the Monte-Carlo streams (which use (seed, i) for
      // i < probabilistic_samples) so the two draws never alias.
      Rng start_rng = Rng::stream(seed ^ 0x7EAC4B1F5EEDull, 0);
      std::vector<std::vector<double>> starts;
      starts.reserve(config.reach_states);
      for (std::size_t i = 0; i < config.reach_states; ++i) {
        starts.push_back(
            sample_safe_occupied(*asset.sampler, criteria.comfort, start_rng).first);
      }
      const auto disturbances =
          scenario_disturbances(scenario.climate, seed, config.reach_horizon);
      auto tubes = engine.reach_tubes(*asset.policy, *asset.model, starts, disturbances,
                                      config.reach_horizon);
      row.tubes = tubes.size();
      for (ReachabilityResult& tube : tubes) {
        check_within(tube, criteria.comfort.lo, criteria.comfort.hi);
        if (tube.within) ++row.tubes_within;
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

std::string CampaignResult::to_table() const {
  AsciiTable table("Certification campaign (" + std::to_string(rows.size()) + " scenarios)");
  table.set_header({"scenario", "leaves", "certified", "cert_frac", "safe_prob", "viol_rate",
                    "tubes_ok"});
  for (const CampaignRow& row : rows) {
    table.add_row(row.scenario.key(),
                  {static_cast<double>(row.interval.leaves_subject),
                   static_cast<double>(row.interval.leaves_certified),
                   row.interval.certified_fraction(), row.probabilistic.safe_probability,
                   row.violation_rate(), row.tube_within_fraction()},
                  3);
  }
  return table.render();
}

std::string CampaignResult::to_csv() const {
  std::ostringstream out;
  out << "scenario,leaves_subject,leaves_certified,certified_fraction,safe_probability,"
         "violation_rate,tube_within_fraction\n";
  for (const CampaignRow& row : rows) {
    out << row.scenario.key() << "," << row.interval.leaves_subject << ","
        << row.interval.leaves_certified << ","
        << format_double(row.interval.certified_fraction(), 4) << ","
        << format_double(row.probabilistic.safe_probability, 4) << ","
        << format_double(row.violation_rate(), 4) << ","
        << format_double(row.tube_within_fraction(), 4) << "\n";
  }
  return out.str();
}

AssetProvider pipeline_asset_provider(const CampaignConfig& config) {
  // The cache is keyed per (climate × building): comfort bands and
  // disturbance envelopes change only the verification query, so the
  // expensive extraction runs once per plant.
  auto cache = std::make_shared<std::map<std::string, ScenarioAssets>>();
  const std::size_t decision_points = config.decision_points;
  const env::FeatureSchema schema = config.schema;
  return [cache, decision_points, schema](const CampaignScenario& scenario) -> ScenarioAssets {
    // The HVAC scale is part of the key: two presets sharing a name but
    // sized differently are different plants and must not share artifacts.
    const std::string key = scenario.climate + "/" + scenario.building.name + ":" +
                            std::to_string(scenario.building.hvac_scale);
    const auto it = cache->find(key);
    if (it != cache->end()) return it->second;

    PipelineConfig cfg = PipelineConfig::for_city(scenario.climate);
    cfg.set_schema(schema);
    cfg.env.hvac_capacity_scale = scenario.building.hvac_scale;
    if (decision_points > 0) cfg.decision_points = decision_points;
    const PipelineArtifacts artifacts = run_pipeline(cfg);

    ScenarioAssets assets;
    assets.policy = artifacts.policy;
    assets.model = artifacts.model;
    assets.sampler = std::make_shared<AugmentedSampler>(
        artifacts.historical.policy_inputs(), cfg.decision.noise_level, cfg.decision.schema);
    (*cache)[key] = assets;
    return assets;
  };
}

}  // namespace verihvac::core
