// End-to-end extraction pipeline — the left side of Fig. 2.
//
//   historical data -> dynamics model -> RS controller -> decision data
//   -> CART tree -> formal verification (+correction) -> probabilistic
//   verification -> deployable DtPolicy.
//
// The pipeline is the single entry point the benches and examples use, so
// every experiment shares identical artifacts for a given (city, seed).
// Workload scaling: for_city() reads the paper-scale hyperparameters when
// VERI_HVAC_FULL=1 and single-core-friendly reductions otherwise; both can
// be overridden per field.
#pragma once

#include <memory>
#include <string>

#include "control/clue_agent.hpp"
#include "control/mbrl_agent.hpp"
#include "control/rule_based.hpp"
#include "core/decision_data.hpp"
#include "core/dt_policy.hpp"
#include "core/verification.hpp"
#include "dynamics/ensemble.hpp"

namespace verihvac::core {

struct PipelineConfig {
  std::string city = "Pittsburgh";
  env::EnvConfig env;
  dyn::CollectionConfig collection;
  dyn::DynamicsModelConfig model;
  control::RandomShootingConfig rs;
  /// Optimizer settings for decision-data generation (§3.2.1). Same family
  /// as `rs` but with first-action refinement on: supervision labels must
  /// reflect the best action, not a Monte-Carlo draw of argmax-over-sums.
  control::RandomShootingConfig rs_distill;
  control::ActionSpaceConfig action_space;
  DecisionDataConfig decision;
  std::size_t decision_points = 600;
  VerificationCriteria criteria;
  std::size_t probabilistic_samples = 2000;
  std::uint64_t verification_seed = 404;
  std::uint64_t agent_seed = 101;
  /// Train the bootstrap ensemble (needed only for the CLUE baseline).
  bool train_ensemble = false;
  dyn::EnsembleConfig ensemble;

  /// Observation layout shared by every stage (collection, model training,
  /// ensemble, decision generation, CART fit). The stages each carry their
  /// own schema field; this setter threads one schema through all of them so
  /// they cannot drift apart. Defaults to the 6-dim baseline.
  void set_schema(const env::FeatureSchema& schema);
  const env::FeatureSchema& schema() const { return decision.schema; }

  /// Standard configuration for a named city ("Pittsburgh", "Tucson",
  /// "NewYork"), honouring VERI_HVAC_FULL / VERI_HVAC_* overrides.
  static PipelineConfig for_city(const std::string& city);
};

/// Everything the pipeline produces. Artifacts own their heavyweight
/// members so they can outlive the pipeline and be shared across benches.
struct PipelineArtifacts {
  PipelineConfig config;
  dyn::TransitionDataset historical;
  std::shared_ptr<dyn::DynamicsModel> model;
  std::shared_ptr<dyn::EnsembleDynamics> ensemble;  ///< null unless requested
  nn::TrainingReport training;
  DecisionDataset decisions;
  std::shared_ptr<DtPolicy> policy;        ///< verified (corrected) policy
  FormalReport formal;                     ///< Algorithm 1 outcome
  ProbabilisticReport probabilistic;       ///< criterion #1 outcome
  double decision_data_seconds = 0.0;      ///< wall time of §3.2.1 generation

  /// Fresh agents bound to these artifacts (reusable across episodes).
  std::unique_ptr<control::MbrlAgent> make_mbrl_agent() const;
  std::unique_ptr<control::ClueAgent> make_clue_agent() const;
  std::unique_ptr<control::RuleBasedController> make_default_controller() const;
  /// A fresh copy of the verified DT policy.
  std::unique_ptr<DtPolicy> make_dt_policy() const;
};

/// Runs the full pipeline.
PipelineArtifacts run_pipeline(const PipelineConfig& config);

/// Pipeline variant that reuses existing heavyweight artifacts (historical
/// data + trained model) and only redoes decision-data generation, tree
/// fitting and verification — the inner loop of the Fig. 6/7 sweeps.
PipelineArtifacts refit_policy(const PipelineArtifacts& base, std::size_t decision_points);

}  // namespace verihvac::core
