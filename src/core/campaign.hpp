// Certification campaign — multi-scenario verification at service scale.
//
// The paper verifies one policy for one building in one city. The campaign
// layer turns that into a throughput workload: sweep climates (weather/
// profiles) × building presets (thermosim HVAC sizing) × comfort bands ×
// disturbance envelopes, run every verification workload of
// core::VerificationEngine per scenario — criterion #1 Monte-Carlo,
// per-(leaf × cell) interval certification, reachability tubes from
// sampled occupied starts under that climate's synthesized weather — and
// aggregate one certified-fraction / violation-rate row per scenario.
// This is the DALC-style decomposition of the related work: a monolithic
// verification pass split into independently checkable blocks.
//
// Scenarios run serially (each one's inner workloads already saturate the
// pool, and nested parallel_for on one pool deadlocks); everything inside
// a scenario fans out through the engine. The whole campaign is
// deterministic: per-scenario RNG streams derive from (config.seed,
// scenario index), so the rendered table is byte-identical for any
// VERI_HVAC_THREADS.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/certificate_cache.hpp"
#include "core/interval_verify.hpp"
#include "core/verification_engine.hpp"

namespace verihvac::core {

/// A thermosim building preset: the paper's five-zone office with an HVAC
/// capacity multiplier (the reduced-order analogue of EnergyPlus
/// autosizing — see env::EnvConfig::hvac_capacity_scale).
struct CampaignBuilding {
  std::string name = "baseline";
  double hvac_scale = 1.0;
};

struct CampaignComfortBand {
  std::string name = "winter";
  env::ComfortRange range;  ///< default-constructed = winter band
};

struct CampaignEnvelope {
  std::string name = "design";
  DisturbanceBounds bounds;  ///< default = full design envelope
};

/// A mild envelope (typical January operating conditions rather than the
/// design extremes) — certification is expected to be much higher here.
DisturbanceBounds mild_envelope();

struct CampaignConfig {
  std::vector<std::string> climates{"Pittsburgh", "Tucson"};
  std::vector<CampaignBuilding> buildings{{"baseline", 1.0}, {"oversized", 2.0}};
  std::vector<CampaignComfortBand> comfort_bands{{"winter", {}}};
  std::vector<CampaignEnvelope> envelopes{{"mild", mild_envelope()}};
  /// Monte-Carlo samples per scenario (criterion #1).
  std::size_t probabilistic_samples = 400;
  /// Interval-certification input-splitting budget.
  IntervalVerifyConfig interval;
  /// Route interval certification through one CertificateCache shared
  /// across the whole grid: adjacent scenarios (same plant, different
  /// comfort band / envelope) overlap in most (leaf × cell) boxes, and
  /// grid-aligned slicing (forced on for this path) makes the shared
  /// interior cells bit-identical, so later scenarios splice them instead
  /// of recomputing. Off by default: aligned slicing re-tiles the boxes,
  /// so certificate numbers can differ from the historical box-anchored
  /// layout (still sound — just a different branch-and-bound partition).
  bool incremental_recert = false;
  RecertConfig recert;
  /// Cache bound for the incremental path (entries ≈ grid-distinct cells).
  std::size_t recert_cache_entries = CertificateCache::kDefaultMaxEntries;
  /// Reachability fan-out per scenario: tubes from `reach_states` sampled
  /// safe occupied starts, `reach_horizon` steps under the scenario
  /// climate's synthesized weather.
  std::size_t reach_states = 24;
  std::size_t reach_horizon = 12;
  /// Root seed; scenario i uses streams derived from (seed, i).
  std::uint64_t seed = 404;
  /// Decision points for the default pipeline asset provider (0 = keep the
  /// pipeline's own default).
  std::size_t decision_points = 0;
  /// Observation schema used by the default pipeline asset provider (and
  /// by the scenario disturbance synthesizer for temporal features).
  env::FeatureSchema schema = env::baseline_schema();
};

/// One cell of the scenario grid.
struct CampaignScenario {
  std::size_t index = 0;  ///< position in enumerate_scenarios order
  std::string climate;
  CampaignBuilding building;
  CampaignComfortBand comfort;
  CampaignEnvelope envelope;

  /// "climate/building/comfort/envelope" — the row label.
  std::string key() const;
};

/// The verified artifacts a scenario is certified against. The default
/// provider extracts them with the full pipeline; tests inject toy assets.
struct ScenarioAssets {
  std::shared_ptr<const DtPolicy> policy;
  std::shared_ptr<const dyn::DynamicsModel> model;
  std::shared_ptr<const AugmentedSampler> sampler;
};

/// Maps a scenario to its assets. Called serially, once per scenario, in
/// grid order; providers may cache internally (the default one caches per
/// climate × building, since comfort band and envelope only change the
/// verification query, not the extracted policy).
using AssetProvider = std::function<ScenarioAssets(const CampaignScenario&)>;

struct CampaignRow {
  CampaignScenario scenario;
  ProbabilisticReport probabilistic;
  IntervalReport interval;
  /// Per-scenario splice/compute accounting (all-zero when the campaign
  /// ran with incremental_recert off).
  RecertStats recert;
  std::size_t tubes = 0;
  std::size_t tubes_within = 0;

  /// NaN when Monte-Carlo was skipped (same convention as the tubes).
  double violation_rate() const {
    return probabilistic.samples == 0 ? std::numeric_limits<double>::quiet_NaN()
                                      : static_cast<double>(probabilistic.failures) /
                                            static_cast<double>(probabilistic.samples);
  }
  /// NaN when no tubes were run: "reachability skipped" must not render
  /// as "every tube verified within the comfort band".
  double tube_within_fraction() const {
    return tubes == 0 ? std::numeric_limits<double>::quiet_NaN()
                      : static_cast<double>(tubes_within) / static_cast<double>(tubes);
  }
};

struct CampaignResult {
  std::vector<CampaignRow> rows;

  /// Aggregated per-scenario table (AsciiTable rendering). Deterministic:
  /// byte-identical across thread counts for a fixed config.
  std::string to_table() const;
  /// CSV with one line per scenario (same columns as the table).
  std::string to_csv() const;
};

/// The scenario grid in deterministic order (climate-major, then building,
/// comfort band, envelope).
std::vector<CampaignScenario> enumerate_scenarios(const CampaignConfig& config);

/// Runs every scenario through the engine. `assets` is consulted once per
/// scenario (serially, in grid order).
CampaignResult run_campaign(const CampaignConfig& config, const VerificationEngine& engine,
                            const AssetProvider& assets);

/// Default asset provider: runs the extraction pipeline per (climate ×
/// building) — PipelineConfig::for_city with the preset's HVAC scale —
/// and caches the artifacts across comfort-band/envelope variations.
AssetProvider pipeline_asset_provider(const CampaignConfig& config);

}  // namespace verihvac::core
