// Decision-dataset generation — §3.2.1 of the paper.
//
// Two pieces:
//
// 1. AugmentedSampler implements Eq. 5: instead of gridding the 6-dim input
//    space (the O(n^5) blow-up the paper computes at 444 hours), draw a row
//    of the *historical* data and add element-wise Gaussian noise with
//    std = noise_level * per-dimension std of the data. This concentrates
//    optimizer queries on the input scenarios that actually occur in the
//    city's climate.
//
// 2. DecisionDataGenerator distills the stochastic RS optimizer into
//    deterministic supervision: for each sampled input it runs the
//    optimizer `mc_repeats` times (Monte-Carlo) and records the *modal*
//    (most frequent) action a* — the key stochasticity fix motivated by
//    Fig. 1. The disturbance forecast handed to the optimizer is the
//    historical continuation of the sampled row (the future the building
//    actually saw), falling back to persistence at the episode tail.
//    Every optimizer invocation scores its candidates through the
//    lock-step batch rollout pipeline of the agent's attached
//    control::RolloutEngine (the pipeline wires in the shared engine), so
//    generation throughput tracks the batched hot path while the recorded
//    modal actions stay bit-identical to the scalar path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "control/mbrl_agent.hpp"
#include "dynamics/dataset.hpp"

namespace verihvac::core {

/// One supervised decision example (x = (s, d), a* = modal action index).
struct DecisionRecord {
  std::vector<double> input;
  std::size_t action_index = 0;
};

/// The decision dataset Pi of §3.2.1.
struct DecisionDataset {
  std::vector<DecisionRecord> records;

  std::size_t size() const { return records.size(); }
  bool empty() const { return records.empty(); }
  /// CART-ready views.
  std::vector<std::vector<double>> inputs() const;
  std::vector<int> labels() const;
  /// First `n` records (prefix reuse for the Fig. 6/7 sweeps).
  DecisionDataset prefix(std::size_t n) const;
};

/// Eq. 5 sampler over the historical policy-input distribution.
class AugmentedSampler {
 public:
  /// `historical` rows are policy inputs in `schema`'s layout; noise_level
  /// scales the per-dimension std of the data (paper default 0.01). The
  /// sampler keeps its own copy, so temporaries are fine.
  AugmentedSampler(Matrix historical, double noise_level,
                   env::FeatureSchema schema = env::baseline_schema());

  std::size_t dims() const { return stds_.size(); }
  double noise_level() const { return noise_level_; }
  const std::vector<double>& dimension_stds() const { return stds_; }
  const env::FeatureSchema& schema() const { return schema_; }
  /// The underlying historical rows (used by the H-step bootstrap verifier
  /// to continue disturbance trajectories from a sampled anchor row).
  const Matrix& historical() const { return historical_; }

  /// Draws a historical row index and the noised input vector. Physical
  /// clamps (by feature role) keep humidity in [0,100], hour sin/cos in
  /// [-1,1], and wind/solar/occupancy counts non-negative.
  std::pair<std::vector<double>, std::size_t> sample(Rng& rng) const;

  /// Draws `n` noised inputs (discarding indices) — for the Fig. 3
  /// distribution studies.
  std::vector<std::vector<double>> sample_many(std::size_t n, Rng& rng) const;

 private:
  Matrix historical_;
  double noise_level_;
  env::FeatureSchema schema_;
  std::vector<double> stds_;
};

struct DecisionDataConfig {
  double noise_level = 0.01;  ///< paper §4.1
  std::size_t mc_repeats = 10;
  std::uint64_t seed = 77;
  /// Observation layout of the historical rows (and hence of every
  /// generated decision record).
  env::FeatureSchema schema = env::baseline_schema();
};

class DecisionDataGenerator {
 public:
  /// Borrows the ordered historical dataset (used both as the sampling
  /// distribution and as the source of disturbance continuations).
  DecisionDataGenerator(const dyn::TransitionDataset& historical,
                        DecisionDataConfig config);

  /// Generates `n_points` decision records by modal distillation of `agent`.
  DecisionDataset generate(control::MbrlAgent& agent, std::size_t n_points);

  /// The forecast used for a sample anchored at historical row `row`
  /// (exposed for tests): rows row+1 .. row+h continue the history.
  std::vector<env::Disturbance> forecast_from(std::size_t row, std::size_t h) const;

  const AugmentedSampler& sampler() const { return sampler_; }

 private:
  const dyn::TransitionDataset* historical_;
  Matrix historical_inputs_;
  DecisionDataConfig config_;
  AugmentedSampler sampler_;
};

/// Modal index of a count histogram (lowest index wins ties).
std::size_t modal_index(const std::vector<std::size_t>& counts);

}  // namespace verihvac::core
