#include "core/pipeline.hpp"

#include <chrono>
#include <stdexcept>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "weather/climate.hpp"

namespace verihvac::core {

void PipelineConfig::set_schema(const env::FeatureSchema& schema) {
  collection.schema = schema;
  model.schema = schema;
  ensemble.member_config.schema = schema;
  decision.schema = schema;
}

PipelineConfig PipelineConfig::for_city(const std::string& city) {
  PipelineConfig cfg;
  cfg.city = city;
  cfg.env.climate = weather::profile_by_name(city);

  const bool full = full_scale();
  // Paper-scale: RS samples=1000, horizon=20 (§4.1); MC repeats 10;
  // decision data up to a few thousand points. Quick scale keeps the same
  // shapes on a single CPU core.
  cfg.rs.samples = static_cast<std::size_t>(
      env_or_long("VERI_HVAC_RS_SAMPLES", full ? 1000 : 128));
  cfg.rs.horizon = static_cast<std::size_t>(
      env_or_long("VERI_HVAC_RS_HORIZON", full ? 20 : 10));
  cfg.decision.mc_repeats = static_cast<std::size_t>(
      env_or_long("VERI_HVAC_MC_REPEATS", full ? 10 : 5));
  cfg.decision_points = static_cast<std::size_t>(
      env_or_long("VERI_HVAC_DECISION_POINTS", full ? 3000 : 900));
  cfg.collection.episodes = static_cast<std::size_t>(
      env_or_long("VERI_HVAC_COLLECT_EPISODES", full ? 3 : 2));
  cfg.model.trainer.epochs = static_cast<std::size_t>(
      env_or_long("VERI_HVAC_EPOCHS", full ? 150 : 60));
  cfg.probabilistic_samples = static_cast<std::size_t>(
      env_or_long("VERI_HVAC_VERIFY_SAMPLES", full ? 10000 : 2000));
  cfg.ensemble.member_config = cfg.model;
  cfg.rs_distill = cfg.rs;
  cfg.rs_distill.refine_first_action = true;
  return cfg;
}

std::unique_ptr<control::MbrlAgent> PipelineArtifacts::make_mbrl_agent() const {
  if (!model) throw std::logic_error("artifacts have no model");
  auto agent = std::make_unique<control::MbrlAgent>(
      *model, config.rs, control::ActionSpace(config.action_space), config.env.reward,
      config.agent_seed);
  agent->set_engine(control::RolloutEngine::shared());
  return agent;
}

std::unique_ptr<control::ClueAgent> PipelineArtifacts::make_clue_agent() const {
  if (!ensemble) throw std::logic_error("artifacts have no ensemble (set train_ensemble)");
  control::ClueConfig clue;
  clue.rs = config.rs;
  auto agent = std::make_unique<control::ClueAgent>(
      *ensemble, clue, control::ActionSpace(config.action_space), config.env.reward,
      config.env.default_occupied, config.env.default_unoccupied, config.agent_seed + 1);
  agent->set_engine(control::RolloutEngine::shared());
  return agent;
}

std::unique_ptr<control::RuleBasedController> PipelineArtifacts::make_default_controller()
    const {
  return std::make_unique<control::RuleBasedController>(config.env.default_occupied,
                                                        config.env.default_unoccupied);
}

std::unique_ptr<DtPolicy> PipelineArtifacts::make_dt_policy() const {
  if (!policy) throw std::logic_error("artifacts have no policy");
  return std::make_unique<DtPolicy>(*policy);
}

PipelineArtifacts run_pipeline(const PipelineConfig& config) {
  PipelineArtifacts artifacts;
  artifacts.config = config;

  // 1. Historical data from the BMS (here: exploratory episodes).
  log_info("pipeline[", config.city, "]: collecting historical data");
  artifacts.historical = dyn::collect_historical_data(config.env, config.collection);
  log_info("pipeline[", config.city, "]: ", artifacts.historical.size(), " transitions");

  // 2. Thermal dynamics model.
  artifacts.model = std::make_shared<dyn::DynamicsModel>(config.model);
  artifacts.training = artifacts.model->train(artifacts.historical);
  log_info("pipeline[", config.city, "]: model val loss ", artifacts.training.final_val_loss);

  // 2b. Bootstrap ensemble for the CLUE baseline, if requested.
  if (config.train_ensemble) {
    artifacts.ensemble = std::make_shared<dyn::EnsembleDynamics>(config.ensemble);
    artifacts.ensemble->train(artifacts.historical);
  }

  // 3. Decision-data generation (§3.2.1), with a sharpened (first-action
  // refined) optimizer so labels reflect the best action rather than a
  // Monte-Carlo draw.
  auto agent = std::make_unique<control::MbrlAgent>(
      *artifacts.model, config.rs_distill, control::ActionSpace(config.action_space),
      config.env.reward, config.agent_seed);
  agent->set_engine(control::RolloutEngine::shared());
  DecisionDataGenerator generator(artifacts.historical, config.decision);
  const auto t0 = std::chrono::steady_clock::now();
  artifacts.decisions = generator.generate(*agent, config.decision_points);
  const auto t1 = std::chrono::steady_clock::now();
  artifacts.decision_data_seconds = std::chrono::duration<double>(t1 - t0).count();
  log_info("pipeline[", config.city, "]: ", artifacts.decisions.size(),
           " decision points in ", artifacts.decision_data_seconds, " s");

  // 4. CART fit (§3.2.2).
  artifacts.policy = std::make_shared<DtPolicy>(
      DtPolicy::fit(artifacts.decisions, control::ActionSpace(config.action_space), {},
                    config.decision.schema));

  // 5. Formal verification + correction (§3.3.1), then criterion #1 (§3.3.2).
  artifacts.formal = verify_formal(*artifacts.policy, config.criteria, /*correct=*/true);
  DecisionDataGenerator verifier_sampler(artifacts.historical, config.decision);
  Rng rng(config.verification_seed);
  artifacts.probabilistic = verify_probabilistic_one_step(
      *artifacts.policy, *artifacts.model, verifier_sampler.sampler(), config.criteria,
      config.probabilistic_samples, rng);
  log_info("pipeline[", config.city, "]: tree nodes=", artifacts.policy->tree().node_count(),
           " leaves=", artifacts.policy->tree().leaf_count(),
           " safe_prob=", artifacts.probabilistic.safe_probability);
  return artifacts;
}

PipelineArtifacts refit_policy(const PipelineArtifacts& base, std::size_t decision_points) {
  if (!base.model) throw std::invalid_argument("refit_policy: base has no model");
  PipelineArtifacts artifacts;
  artifacts.config = base.config;
  artifacts.config.decision_points = decision_points;
  artifacts.historical = base.historical;
  artifacts.model = base.model;
  artifacts.ensemble = base.ensemble;
  artifacts.training = base.training;

  // Prefix reuse: if the base already generated enough decision data, fit
  // on its prefix; otherwise generate the difference.
  if (base.decisions.size() >= decision_points) {
    artifacts.decisions = base.decisions.prefix(decision_points);
  } else {
    auto agent = std::make_unique<control::MbrlAgent>(
        *artifacts.model, artifacts.config.rs_distill,
        control::ActionSpace(artifacts.config.action_space), artifacts.config.env.reward,
        artifacts.config.agent_seed);
    agent->set_engine(control::RolloutEngine::shared());
    DecisionDataGenerator generator(artifacts.historical, artifacts.config.decision);
    artifacts.decisions = generator.generate(*agent, decision_points);
  }

  artifacts.policy = std::make_shared<DtPolicy>(DtPolicy::fit(
      artifacts.decisions, control::ActionSpace(artifacts.config.action_space), {},
      artifacts.config.decision.schema));
  artifacts.formal =
      verify_formal(*artifacts.policy, artifacts.config.criteria, /*correct=*/true);
  DecisionDataGenerator verifier_sampler(artifacts.historical, artifacts.config.decision);
  Rng rng(artifacts.config.verification_seed);
  artifacts.probabilistic = verify_probabilistic_one_step(
      *artifacts.policy, *artifacts.model, verifier_sampler.sampler(),
      artifacts.config.criteria, artifacts.config.probabilistic_samples, rng);
  return artifacts;
}

}  // namespace verihvac::core
