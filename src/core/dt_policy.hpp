// Decision-tree policy — §3.2.2.
//
// A CART classifier over the schema's (s, d) input whose classes are joint
// setpoint actions. Deterministic (every input maps to exactly one leaf),
// interpretable (each split tests one named physical variable against a
// threshold), and fast (one root-to-leaf walk per decision — the 1127x
// speedup of Table 3). Implements the Controller interface so it drops
// into the same evaluation harness as every baseline. The policy carries
// its observation schema: verification finds the zone-temperature
// dimension by role, serving flattens observations with the policy's own
// layout, and bundles persist it (policy_io v2).
#pragma once

#include <memory>
#include <string>

#include "control/action_space.hpp"
#include "control/controller.hpp"
#include "core/decision_data.hpp"
#include "envlib/feature_schema.hpp"
#include "tree/cart.hpp"

namespace verihvac::core {

class DtPolicy final : public control::Controller {
 public:
  DtPolicy(tree::DecisionTreeClassifier tree, control::ActionSpace actions,
           env::FeatureSchema schema = env::baseline_schema());

  /// Fits a policy from a decision dataset (CART, unbounded depth — §4.1).
  static DtPolicy fit(const DecisionDataset& data, const control::ActionSpace& actions,
                      tree::TreeConfig config = {},
                      env::FeatureSchema schema = env::baseline_schema());

  sim::SetpointPair act(const env::Observation& obs,
                        const std::vector<env::Disturbance>& forecast) override;
  std::string name() const override { return "DT"; }

  /// Deterministic decision on a raw input vector in the schema's layout.
  sim::SetpointPair decide(const std::vector<double>& x) const;
  std::size_t decide_index(const std::vector<double>& x) const;

  const tree::DecisionTreeClassifier& tree() const { return tree_; }
  /// Mutable access for the verification correction step.
  tree::DecisionTreeClassifier& mutable_tree() { return tree_; }
  const control::ActionSpace& actions() const { return actions_; }
  /// Observation layout this policy decides over.
  const env::FeatureSchema& schema() const { return schema_; }

  /// Interpretable export with physical variable names and action labels.
  std::string to_text() const;

 private:
  tree::DecisionTreeClassifier tree_;
  control::ActionSpace actions_;
  env::FeatureSchema schema_;
};

}  // namespace verihvac::core
