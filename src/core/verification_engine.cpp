#include "core/verification_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "envlib/observation.hpp"
#include "obs/trace.hpp"

namespace verihvac::core {

VerificationEngine::VerificationEngine(std::shared_ptr<const common::TaskPool> pool)
    : pool_(pool ? std::move(pool) : common::TaskPool::shared()),
      obs_{&obs::counter("verify_probabilistic_runs_total"),
           &obs::counter("verify_interval_runs_total"),
           &obs::counter("verify_incremental_runs_total"),
           &obs::counter("verify_reach_runs_total"), &obs::counter("verify_recert_cells_total"),
           &obs::counter("verify_recert_cells_cached_total"),
           &obs::counter("verify_recert_cells_computed_total"),
           &obs::counter("verify_recert_fallbacks_total")} {}

ProbabilisticReport VerificationEngine::verify_probabilistic(
    const DtPolicy& policy, const dyn::DynamicsModel& model, const AugmentedSampler& sampler,
    const VerificationCriteria& criteria, std::size_t n_samples, std::uint64_t seed) const {
  const obs::TraceSpan span("verify.probabilistic", "verify");
  obs_.probabilistic_runs->add(1);
  ProbabilisticReport report;
  if (n_samples == 0) {
    // "Not measured" must not render as 0% safe (same convention as
    // CampaignRow::tube_within_fraction).
    report.safe_probability = std::numeric_limits<double>::quiet_NaN();
    return report;
  }
  const Matrix& historical = sampler.historical();
  const std::size_t occ_dim = sampler.schema().occupancy_index();
  const std::size_t model_dims = model.input_dims();
  const std::size_t heat_col = model.heat_index();
  const std::size_t cool_col = model.cool_index();

  // One byte per sample: failure flags are per-index slots, reduced by a
  // serial scan — order-independent of the worker schedule.
  //
  // Each worker runs in two phases over its slice: (1) draw every sample's
  // input from its own counter-based stream and stage it, with the
  // policy's action, as one row of a model-input batch matrix; (2) advance the
  // whole slice with a single batched forward. The RNG streams are
  // untouched by the batching — the accepted input stays a pure function
  // of (seed, i) — and the batched forward is bit-identical per row to the
  // scalar predict it replaces, so reports match the scalar path exactly.
  std::vector<std::uint8_t> failed(n_samples, 0);
  struct McScratch {
    dyn::BatchScratch batch;
    Matrix inputs;
    std::vector<double> next_temps;
  };
  std::vector<McScratch> scratches(pool_->thread_count());
  pool_->parallel_for(n_samples, [&](std::size_t worker, std::size_t begin, std::size_t end) {
    McScratch& scratch = scratches[worker];
    const std::size_t n = end - begin;
    Matrix& inputs = scratch.inputs;
    inputs.reshape(n, model_dims);  // every element is overwritten
    for (std::size_t i = begin; i < end; ++i) {
      // The whole rejection loop lives inside sample i's own stream: the
      // accepted input is a pure function of (seed, i).
      Rng rng = Rng::stream(seed, i);
      std::vector<double> x;
      for (int attempt = 0;; ++attempt) {
        auto drawn = sample_safe_occupied(sampler, criteria.comfort, rng);
        if (continuation_occupied(historical, drawn.second, 1, occ_dim)) {
          x = std::move(drawn.first);
          break;
        }
        if (attempt >= 10000) {
          throw std::runtime_error(
              "verify_probabilistic: no safe occupied state with occupied continuation");
        }
      }
      const sim::SetpointPair action = policy.decide(x);
      double* row = inputs.row_data(i - begin);
      std::copy(x.begin(), x.end(), row);
      row[heat_col] = action.heating_c;
      row[cool_col] = action.cooling_c;
    }
    model.predict_batch_into(inputs, scratch.next_temps, scratch.batch);
    for (std::size_t r = 0; r < n; ++r) {
      failed[begin + r] = criteria.comfort.contains(scratch.next_temps[r]) ? 0 : 1;
    }
  });

  report.samples = n_samples;
  for (std::uint8_t f : failed) report.failures += f;
  report.safe_probability =
      1.0 - static_cast<double>(report.failures) / static_cast<double>(report.samples);
  return report;
}

IntervalReport VerificationEngine::verify_interval(const DtPolicy& policy,
                                                   const dyn::DynamicsModel& model,
                                                   const VerificationCriteria& criteria,
                                                   const DisturbanceBounds& bounds,
                                                   const IntervalVerifyConfig& config) const {
  const obs::TraceSpan span("verify.interval", "verify");
  IntervalReport report;
  const std::vector<IntervalWorkItem> items =
      interval_work_items(policy, criteria, bounds, config, report.leaves_total);

  // Flatten the (leaf × cell) grid: cell c of leaf l lands in the global
  // slot offsets[l] + c, so images are computed in any schedule but folded
  // in the serial path's exact order.
  std::vector<std::size_t> offsets(items.size() + 1, 0);
  for (std::size_t l = 0; l < items.size(); ++l) {
    offsets[l + 1] = offsets[l] + items[l].cells.size();
  }
  const std::size_t total_cells = offsets.back();
  std::vector<Interval> images(total_cells);
  std::vector<IntervalScratch> scratches(pool_->thread_count());
  pool_->parallel_for(total_cells, [&](std::size_t worker, std::size_t begin, std::size_t end) {
    IntervalScratch& scratch = scratches[worker];
    // Locate the leaf containing `begin` once, then walk forward.
    std::size_t leaf_idx = 0;
    while (offsets[leaf_idx + 1] <= begin) ++leaf_idx;
    for (std::size_t g = begin; g < end; ++g) {
      while (offsets[leaf_idx + 1] <= g) ++leaf_idx;
      const Box& cell = items[leaf_idx].cells[g - offsets[leaf_idx]];
      images[g] = interval_next_state(model, cell, scratch);
    }
  });

  std::vector<Interval> leaf_images;
  for (std::size_t l = 0; l < items.size(); ++l) {
    leaf_images.assign(images.begin() + static_cast<std::ptrdiff_t>(offsets[l]),
                       images.begin() + static_cast<std::ptrdiff_t>(offsets[l + 1]));
    ++report.leaves_subject;
    IntervalLeafResult result = fold_interval_leaf(items[l], leaf_images, criteria.comfort);
    if (result.certified) ++report.leaves_certified;
    report.results.push_back(std::move(result));
  }
  interval_runs_.fetch_add(1, std::memory_order_relaxed);
  obs_.interval_runs->add(1);
  return report;
}

IntervalReport VerificationEngine::verify_interval_incremental(
    const DtPolicy& policy, const dyn::DynamicsModel& model,
    const VerificationCriteria& criteria, CertificateCache& cache,
    const DisturbanceBounds& bounds, const IntervalVerifyConfig& config,
    const RecertConfig& recert, RecertStats* run_stats) const {
  const obs::TraceSpan span("verify.interval_incremental", "verify");
  IntervalReport report;
  const std::vector<IntervalWorkItem> items =
      interval_work_items(policy, criteria, bounds, config, report.leaves_total);

  std::vector<std::size_t> offsets(items.size() + 1, 0);
  for (std::size_t l = 0; l < items.size(); ++l) {
    offsets[l + 1] = offsets[l] + items[l].cells.size();
  }
  const std::size_t total_cells = offsets.back();

  RecertStats stats;
  stats.cells_total = total_cells;
  const std::uint64_t dyn_hash = hash_dynamics(model);
  if (cache.has_incumbent()) {
    stats.dynamics_changed = dyn_hash != cache.incumbent_dynamics_hash();
    const TreeDiff diff = cache.diff_against_incumbent(policy);
    stats.diff_leaves_total = diff.leaves_total;
    stats.diff_leaves_changed = diff.leaves_changed;
  }

  // Serial splice pass: cached images land in their slots, the rest queue
  // for the parallel sweep. Serial on purpose — the cache is single-writer
  // and a lookup is three orders of magnitude cheaper than an IBP forward.
  std::vector<Interval> images(total_cells);
  std::vector<std::size_t> missing;
  for (std::size_t l = 0; l < items.size(); ++l) {
    for (std::size_t c = 0; c < items[l].cells.size(); ++c) {
      CertificateKey key{dyn_hash, items[l].cells[c]};
      if (auto cached = cache.lookup(key)) {
        images[offsets[l] + c] = *cached;
      } else {
        missing.push_back(offsets[l] + c);
      }
    }
  }

  // Broad invalidation (fine-tuned dynamics, reshaped schema/config):
  // splicing a sliver is not worth the bookkeeping — recompute everything
  // in one sweep, exactly the full path's fan-out.
  stats.fallback_full =
      total_cells > 0 && static_cast<double>(missing.size()) >
                             recert.fallback_fraction * static_cast<double>(total_cells);
  if (stats.fallback_full) {
    missing.resize(total_cells);
    for (std::size_t g = 0; g < total_cells; ++g) missing[g] = g;
  }
  stats.cells_computed = missing.size();
  stats.cells_cached = total_cells - missing.size();

  std::vector<IntervalScratch> scratches(pool_->thread_count());
  pool_->parallel_for(missing.size(), [&](std::size_t worker, std::size_t begin,
                                          std::size_t end) {
    IntervalScratch& scratch = scratches[worker];
    // `missing` ascends, so the containing leaf only moves forward.
    std::size_t leaf_idx = 0;
    while (offsets[leaf_idx + 1] <= missing[begin]) ++leaf_idx;
    for (std::size_t m = begin; m < end; ++m) {
      const std::size_t g = missing[m];
      while (offsets[leaf_idx + 1] <= g) ++leaf_idx;
      const Box& cell = items[leaf_idx].cells[g - offsets[leaf_idx]];
      images[g] = interval_next_state(model, cell, scratch);
    }
  });

  // Serial insert pass (single-writer cache), then the unchanged fold.
  {
    std::size_t leaf_idx = 0;
    for (const std::size_t g : missing) {
      while (offsets[leaf_idx + 1] <= g) ++leaf_idx;
      cache.insert(CertificateKey{dyn_hash, items[leaf_idx].cells[g - offsets[leaf_idx]]},
                   images[g]);
    }
  }

  std::vector<Interval> leaf_images;
  for (std::size_t l = 0; l < items.size(); ++l) {
    leaf_images.assign(images.begin() + static_cast<std::ptrdiff_t>(offsets[l]),
                       images.begin() + static_cast<std::ptrdiff_t>(offsets[l + 1]));
    ++report.leaves_subject;
    IntervalLeafResult result = fold_interval_leaf(items[l], leaf_images, criteria.comfort);
    if (result.certified) ++report.leaves_certified;
    report.results.push_back(std::move(result));
  }
  cache.note_certified(policy, dyn_hash);

  incremental_runs_.fetch_add(1, std::memory_order_relaxed);
  recert_cells_total_.fetch_add(stats.cells_total, std::memory_order_relaxed);
  recert_cells_cached_.fetch_add(stats.cells_cached, std::memory_order_relaxed);
  recert_cells_computed_.fetch_add(stats.cells_computed, std::memory_order_relaxed);
  if (stats.fallback_full) recert_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  obs_.incremental_runs->add(1);
  obs_.recert_cells_total->add(stats.cells_total);
  obs_.recert_cells_cached->add(stats.cells_cached);
  obs_.recert_cells_computed->add(stats.cells_computed);
  if (stats.fallback_full) obs_.recert_fallbacks->add(1);
  if (run_stats != nullptr) *run_stats = stats;
  return report;
}

VerificationEngine::Stats VerificationEngine::stats() const {
  Stats s;
  s.interval_runs = interval_runs_.load(std::memory_order_relaxed);
  s.incremental_runs = incremental_runs_.load(std::memory_order_relaxed);
  s.recert_cells_total = recert_cells_total_.load(std::memory_order_relaxed);
  s.recert_cells_cached = recert_cells_cached_.load(std::memory_order_relaxed);
  s.recert_cells_computed = recert_cells_computed_.load(std::memory_order_relaxed);
  s.recert_fallbacks = recert_fallbacks_.load(std::memory_order_relaxed);
  return s;
}

std::vector<ReachabilityResult> VerificationEngine::reach_tubes(
    const DtPolicy& policy, const dyn::DynamicsModel& model,
    const std::vector<std::vector<double>>& initial_states,
    const std::vector<env::Disturbance>& disturbances, std::size_t horizon) const {
  const obs::TraceSpan span("verify.reach_tubes", "verify");
  obs_.reach_runs->add(1);
  std::vector<ReachabilityResult> tubes(initial_states.size());
  std::vector<dyn::PredictScratch> scratches(pool_->thread_count());
  pool_->parallel_for(initial_states.size(),
                      [&](std::size_t worker, std::size_t begin, std::size_t end) {
                        dyn::PredictScratch& scratch = scratches[worker];
                        for (std::size_t i = begin; i < end; ++i) {
                          tubes[i] = reach_tube(policy, model, initial_states[i], disturbances,
                                                horizon, scratch);
                        }
                      });
  return tubes;
}

}  // namespace verihvac::core
