// CART classification tree (scikit-learn substitute).
//
// Exact greedy CART with Gini impurity, unbounded depth by default and the
// sklearn default stopping rules (min_samples_split = 2, pure-node stop) —
// matching the paper's §4.1 settings. Beyond fit/predict, the class exposes
// everything Algorithm 1 of the paper needs and sklearn hides:
//  * enumeration of leaves,
//  * the unique root-to-leaf decision path of every leaf,
//  * the axis-aligned input "box" implied by that path,
//  * in-place leaf relabeling (the verification *correction* step).
//
// Split semantics: left branch takes x[feature] <= threshold, right branch
// takes x[feature] > threshold; thresholds are midpoints between adjacent
// distinct feature values, as in sklearn.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/interval.hpp"

namespace verihvac::tree {

struct TreeConfig {
  /// 0 = unbounded (paper setting).
  std::size_t max_depth = 0;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Minimum Gini decrease for a split to be accepted.
  double min_impurity_decrease = 0.0;
};

struct TreeNode {
  // Internal-node fields.
  int feature = -1;        ///< split feature index (-1 for leaves)
  double threshold = 0.0;  ///< split threshold (x <= t goes left)
  int left = -1;
  int right = -1;
  // Leaf fields.
  int label = -1;          ///< class decision (leaves only)
  // Diagnostics.
  std::size_t samples = 0;
  double impurity = 0.0;
  int parent = -1;

  bool is_leaf() const { return feature < 0; }
};

/// One edge of a decision path: node `node` tested feature/threshold and the
/// path followed the left (<=) or right (>) branch.
struct PathStep {
  int node = -1;
  bool went_left = true;
};

class DecisionTreeClassifier {
 public:
  explicit DecisionTreeClassifier(TreeConfig config = {});

  /// Fits on rows `x` with integer labels `y` in [0, num_classes).
  void fit(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
           std::size_t num_classes);

  bool fitted() const { return !nodes_.empty(); }
  std::size_t num_features() const { return num_features_; }
  std::size_t num_classes() const { return num_classes_; }

  int predict(const std::vector<double>& x) const;
  /// Index of the leaf node that handles `x`.
  int decision_leaf(const std::vector<double>& x) const;

  // --- structure introspection (Algorithm 1 surface) ---
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  std::size_t depth() const;
  const TreeNode& node(std::size_t i) const { return nodes_.at(i); }
  const std::vector<TreeNode>& nodes() const { return nodes_; }
  /// Indices of all leaf nodes.
  std::vector<int> leaves() const;
  /// The unique path from the root to `leaf` (excluding the leaf itself).
  std::vector<PathStep> path_to(int leaf) const;
  /// The input box (intersection of split half-spaces) handled by `leaf`.
  Box leaf_box(int leaf) const;

  /// Verification correction: overwrite the class decision of a leaf.
  void set_leaf_label(int leaf, int label);

  /// Function-preserving refinement: turns `leaf` into a decision node
  /// testing x[feature] <= threshold whose two fresh children are leaves
  /// carrying the original label. Returns {left, right} child indices.
  /// Used by the verifier to split leaves whose box straddles a comfort
  /// boundary, so correction can edit only the out-of-comfort side.
  std::pair<int, int> split_leaf(int leaf, int feature, double threshold);

  /// Training accuracy helper (sanity checks / tests).
  double accuracy(const std::vector<std::vector<double>>& x, const std::vector<int>& y) const;

  /// Reconstructs a tree from explicit nodes (deserialization). Performs a
  /// structural validation pass (indices in range, every non-leaf has two
  /// children, parent links consistent) and throws on corruption.
  static DecisionTreeClassifier from_nodes(std::vector<TreeNode> nodes,
                                           std::size_t num_features,
                                           std::size_t num_classes);

 private:
  struct BuildContext;
  int build_node(BuildContext& ctx, std::vector<std::size_t>& indices, std::size_t depth,
                 int parent);

  TreeConfig config_;
  std::vector<TreeNode> nodes_;
  std::size_t num_features_ = 0;
  std::size_t num_classes_ = 0;
};

}  // namespace verihvac::tree
