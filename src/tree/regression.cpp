#include "tree/regression.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace verihvac::tree {

DecisionTreeRegressor::DecisionTreeRegressor(RegressionConfig config) : config_(config) {}

struct DecisionTreeRegressor::BuildContext {
  const std::vector<std::vector<double>>* x;
  const std::vector<double>* y;
};

namespace {

/// Sum of squared errors around the mean, from first/second moments.
/// SSE = sum(y^2) - sum(y)^2 / n; clamped at zero against rounding.
double sse(double sum, double sum_sq, double n) {
  if (n <= 0.0) return 0.0;
  return std::max(0.0, sum_sq - sum * sum / n);
}

}  // namespace

void DecisionTreeRegressor::fit(const std::vector<std::vector<double>>& x,
                                const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("DecisionTreeRegressor::fit: bad inputs");
  }
  for (double target : y) {
    if (!std::isfinite(target)) {
      throw std::invalid_argument("DecisionTreeRegressor::fit: non-finite target");
    }
  }
  nodes_.clear();
  num_features_ = x.front().size();

  BuildContext ctx;
  ctx.x = &x;
  ctx.y = &y;
  std::vector<std::size_t> indices(x.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  build_node(ctx, indices, 0, -1);
}

int DecisionTreeRegressor::build_node(BuildContext& ctx, std::vector<std::size_t>& indices,
                                      std::size_t depth, int parent) {
  const auto& x = *ctx.x;
  const auto& y = *ctx.y;

  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t idx : indices) {
    sum += y[idx];
    sum_sq += y[idx] * y[idx];
  }
  const double total = static_cast<double>(indices.size());
  const double node_sse = sse(sum, sum_sq, total);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].samples = indices.size();
  nodes_[node_index].value = sum / total;
  nodes_[node_index].impurity = node_sse / total;  // MSE
  nodes_[node_index].parent = parent;

  // Stopping rules: (numerically) pure node, too few samples, depth cap.
  if (node_sse <= 1e-12 * total || indices.size() < config_.min_samples_split ||
      (config_.max_depth > 0 && depth >= config_.max_depth)) {
    return node_index;
  }

  // Exact greedy split search: for each feature, sweep sorted samples and
  // track left/right first and second moments incrementally, so each
  // candidate threshold is O(1). Objective: SSE reduction.
  double best_gain = 0.0;  // strictly positive gain required for regression
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::size_t> sorted = indices;
  for (std::size_t feature = 0; feature < num_features_; ++feature) {
    std::sort(sorted.begin(), sorted.end(), [&x, feature](std::size_t a, std::size_t b) {
      return x[a][feature] < x[b][feature];
    });
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double target = y[sorted[i]];
      left_sum += target;
      left_sq += target * target;

      const double left_value = x[sorted[i]][feature];
      const double right_value = x[sorted[i + 1]][feature];
      if (left_value >= right_value) continue;  // no boundary between equals

      const double n_left = static_cast<double>(i + 1);
      const double n_right = total - n_left;
      if (n_left < static_cast<double>(config_.min_samples_leaf) ||
          n_right < static_cast<double>(config_.min_samples_leaf)) {
        continue;
      }
      const double child_sse =
          sse(left_sum, left_sq, n_left) + sse(sum - left_sum, sum_sq - left_sq, n_right);
      const double gain = node_sse - child_sse;
      if (gain >= config_.min_impurity_decrease - 1e-12 && gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5 * (left_value + right_value);
      }
    }
  }

  if (best_feature < 0) return node_index;

  std::vector<std::size_t> left_idx;
  std::vector<std::size_t> right_idx;
  left_idx.reserve(indices.size());
  right_idx.reserve(indices.size());
  for (std::size_t idx : indices) {
    if (x[idx][static_cast<std::size_t>(best_feature)] <= best_threshold) {
      left_idx.push_back(idx);
    } else {
      right_idx.push_back(idx);
    }
  }
  assert(!left_idx.empty() && !right_idx.empty());

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  indices.clear();
  indices.shrink_to_fit();

  const int left_child = build_node(ctx, left_idx, depth + 1, node_index);
  nodes_[node_index].left = left_child;
  const int right_child = build_node(ctx, right_idx, depth + 1, node_index);
  nodes_[node_index].right = right_child;
  return node_index;
}

int DecisionTreeRegressor::decision_leaf(const std::vector<double>& x) const {
  if (!fitted()) throw std::logic_error("regressor used before fit");
  if (x.size() != num_features_) {
    throw std::invalid_argument("DecisionTreeRegressor::predict: wrong input dims");
  }
  int current = 0;
  while (!nodes_[static_cast<std::size_t>(current)].is_leaf()) {
    const RegressionNode& n = nodes_[static_cast<std::size_t>(current)];
    current = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return current;
}

double DecisionTreeRegressor::predict(const std::vector<double>& x) const {
  return nodes_[static_cast<std::size_t>(decision_leaf(x))].value;
}

std::size_t DecisionTreeRegressor::leaf_count() const {
  std::size_t count = 0;
  for (const auto& n : nodes_) {
    if (n.is_leaf()) ++count;
  }
  return count;
}

std::size_t DecisionTreeRegressor::depth() const {
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::size_t d = 0;
    for (int p = nodes_[i].parent; p >= 0; p = nodes_[static_cast<std::size_t>(p)].parent) ++d;
    max_depth = std::max(max_depth, d);
  }
  return max_depth;
}

std::vector<int> DecisionTreeRegressor::leaves() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_leaf()) out.push_back(static_cast<int>(i));
  }
  return out;
}

Box DecisionTreeRegressor::leaf_box(int leaf) const {
  if (leaf < 0 || static_cast<std::size_t>(leaf) >= nodes_.size()) {
    throw std::out_of_range("leaf_box: bad leaf index");
  }
  Box box(num_features_);
  int child = leaf;
  for (int p = nodes_[static_cast<std::size_t>(child)].parent; p >= 0;
       p = nodes_[static_cast<std::size_t>(child)].parent) {
    const RegressionNode& parent = nodes_[static_cast<std::size_t>(p)];
    const auto dim = static_cast<std::size_t>(parent.feature);
    if (parent.left == child) {
      box.clip(dim, Interval::at_most(parent.threshold));
    } else {
      box.clip(dim, Interval::greater(parent.threshold));
    }
    child = p;
  }
  return box;
}

double DecisionTreeRegressor::mse(const std::vector<std::vector<double>>& x,
                                  const std::vector<double>& y) const {
  if (x.empty() || x.size() != y.size()) throw std::invalid_argument("mse: bad inputs");
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double err = predict(x[i]) - y[i];
    total += err * err;
  }
  return total / static_cast<double>(x.size());
}

Interval DecisionTreeRegressor::value_range(const Box& box) const {
  if (!fitted()) throw std::logic_error("regressor used before fit");
  if (box.size() != num_features_) throw std::invalid_argument("value_range: wrong box dims");
  Interval range;
  range.lo = std::numeric_limits<double>::infinity();
  range.hi = -std::numeric_limits<double>::infinity();
  // DFS over subtrees whose split interval overlaps the box. A leaf reached
  // this way handles at least part of the box, so its value is attainable.
  std::vector<std::pair<int, Box>> stack;
  stack.emplace_back(0, box);
  while (!stack.empty()) {
    auto [node_id, region] = std::move(stack.back());
    stack.pop_back();
    const RegressionNode& node = nodes_[static_cast<std::size_t>(node_id)];
    if (node.is_leaf()) {
      range.lo = std::min(range.lo, node.value);
      range.hi = std::max(range.hi, node.value);
      continue;
    }
    const auto dim = static_cast<std::size_t>(node.feature);
    Box left = region;
    left.clip(dim, Interval::at_most(node.threshold));
    if (!left.empty()) stack.emplace_back(node.left, std::move(left));
    Box right = std::move(region);
    right.clip(dim, Interval::greater(node.threshold));
    if (!right.empty()) stack.emplace_back(node.right, std::move(right));
  }
  return range;
}

}  // namespace verihvac::tree
