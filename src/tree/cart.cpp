#include "tree/cart.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace verihvac::tree {

DecisionTreeClassifier::DecisionTreeClassifier(TreeConfig config) : config_(config) {}

struct DecisionTreeClassifier::BuildContext {
  const std::vector<std::vector<double>>* x;
  const std::vector<int>* y;
  std::size_t num_classes;
  // Scratch class-count buffers reused across nodes.
  std::vector<double> left_counts;
  std::vector<double> right_counts;
  std::vector<double> total_counts;
};

namespace {

/// Gini impurity from class counts (total = sum of counts).
double gini(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}

int majority_label(const std::vector<double>& counts) {
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace

void DecisionTreeClassifier::fit(const std::vector<std::vector<double>>& x,
                                 const std::vector<int>& y, std::size_t num_classes) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("DecisionTreeClassifier::fit: bad inputs");
  }
  for (int label : y) {
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes) {
      throw std::invalid_argument("DecisionTreeClassifier::fit: label out of range");
    }
  }
  nodes_.clear();
  num_features_ = x.front().size();
  num_classes_ = num_classes;

  BuildContext ctx;
  ctx.x = &x;
  ctx.y = &y;
  ctx.num_classes = num_classes;
  ctx.left_counts.resize(num_classes);
  ctx.right_counts.resize(num_classes);
  ctx.total_counts.resize(num_classes);

  std::vector<std::size_t> indices(x.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  build_node(ctx, indices, 0, -1);
}

int DecisionTreeClassifier::build_node(BuildContext& ctx, std::vector<std::size_t>& indices,
                                       std::size_t depth, int parent) {
  const auto& x = *ctx.x;
  const auto& y = *ctx.y;

  std::fill(ctx.total_counts.begin(), ctx.total_counts.end(), 0.0);
  for (std::size_t idx : indices) ctx.total_counts[static_cast<std::size_t>(y[idx])] += 1.0;
  const double total = static_cast<double>(indices.size());
  const double node_impurity = gini(ctx.total_counts, total);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].samples = indices.size();
  nodes_[node_index].impurity = node_impurity;
  nodes_[node_index].parent = parent;

  auto make_leaf = [&]() {
    nodes_[node_index].label = majority_label(ctx.total_counts);
    return node_index;
  };

  // Stopping rules: pure node, too few samples, or depth cap.
  if (node_impurity <= 0.0 || indices.size() < config_.min_samples_split ||
      (config_.max_depth > 0 && depth >= config_.max_depth)) {
    return make_leaf();
  }

  // Exact greedy split search over every feature. Like sklearn, a split is
  // acceptable when its impurity decrease is >= min_impurity_decrease —
  // including exactly-zero-gain splits (XOR-style data has no single split
  // with positive Gini gain, yet recursing through a zero-gain split still
  // separates the classes two levels down).
  double best_gain = -1.0;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::size_t> sorted = indices;
  for (std::size_t feature = 0; feature < num_features_; ++feature) {
    std::sort(sorted.begin(), sorted.end(), [&x, feature](std::size_t a, std::size_t b) {
      return x[a][feature] < x[b][feature];
    });
    std::fill(ctx.left_counts.begin(), ctx.left_counts.end(), 0.0);
    ctx.right_counts = ctx.total_counts;

    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const auto label = static_cast<std::size_t>(y[sorted[i]]);
      ctx.left_counts[label] += 1.0;
      ctx.right_counts[label] -= 1.0;

      const double left_value = x[sorted[i]][feature];
      const double right_value = x[sorted[i + 1]][feature];
      if (left_value >= right_value) continue;  // no boundary between equals

      const double n_left = static_cast<double>(i + 1);
      const double n_right = total - n_left;
      if (n_left < static_cast<double>(config_.min_samples_leaf) ||
          n_right < static_cast<double>(config_.min_samples_leaf)) {
        continue;
      }
      const double weighted =
          (n_left * gini(ctx.left_counts, n_left) + n_right * gini(ctx.right_counts, n_right)) /
          total;
      const double gain = node_impurity - weighted;
      if (gain >= config_.min_impurity_decrease - 1e-12 && gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5 * (left_value + right_value);
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition and recurse.
  std::vector<std::size_t> left_idx;
  std::vector<std::size_t> right_idx;
  left_idx.reserve(indices.size());
  right_idx.reserve(indices.size());
  for (std::size_t idx : indices) {
    if (x[idx][static_cast<std::size_t>(best_feature)] <= best_threshold) {
      left_idx.push_back(idx);
    } else {
      right_idx.push_back(idx);
    }
  }
  assert(!left_idx.empty() && !right_idx.empty());

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  // Free the parent's index list before recursing to bound peak memory.
  indices.clear();
  indices.shrink_to_fit();

  const int left_child = build_node(ctx, left_idx, depth + 1, node_index);
  nodes_[node_index].left = left_child;
  const int right_child = build_node(ctx, right_idx, depth + 1, node_index);
  nodes_[node_index].right = right_child;
  return node_index;
}

int DecisionTreeClassifier::decision_leaf(const std::vector<double>& x) const {
  if (!fitted()) throw std::logic_error("tree used before fit");
  if (x.size() != num_features_) throw std::invalid_argument("predict: wrong input dims");
  int current = 0;
  while (!nodes_[static_cast<std::size_t>(current)].is_leaf()) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(current)];
    current = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return current;
}

int DecisionTreeClassifier::predict(const std::vector<double>& x) const {
  return nodes_[static_cast<std::size_t>(decision_leaf(x))].label;
}

std::size_t DecisionTreeClassifier::leaf_count() const {
  std::size_t count = 0;
  for (const auto& n : nodes_) {
    if (n.is_leaf()) ++count;
  }
  return count;
}

std::size_t DecisionTreeClassifier::depth() const {
  // Depth of a node = #edges from the root; compute by walking parents.
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_leaf()) continue;
    std::size_t d = 0;
    int cursor = nodes_[i].parent;
    while (cursor >= 0) {
      ++d;
      cursor = nodes_[static_cast<std::size_t>(cursor)].parent;
    }
    max_depth = std::max(max_depth, d);
  }
  return max_depth;
}

std::vector<int> DecisionTreeClassifier::leaves() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_leaf()) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<PathStep> DecisionTreeClassifier::path_to(int leaf) const {
  if (leaf < 0 || static_cast<std::size_t>(leaf) >= nodes_.size() ||
      !nodes_[static_cast<std::size_t>(leaf)].is_leaf()) {
    throw std::invalid_argument("path_to: not a leaf");
  }
  std::vector<PathStep> reversed;
  int child = leaf;
  int parent = nodes_[static_cast<std::size_t>(leaf)].parent;
  while (parent >= 0) {
    const TreeNode& p = nodes_[static_cast<std::size_t>(parent)];
    reversed.push_back(PathStep{parent, p.left == child});
    child = parent;
    parent = p.parent;
  }
  return {reversed.rbegin(), reversed.rend()};
}

Box DecisionTreeClassifier::leaf_box(int leaf) const {
  Box box(num_features_);
  for (const PathStep& step : path_to(leaf)) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(step.node)];
    const auto dim = static_cast<std::size_t>(n.feature);
    if (step.went_left) {
      box.clip(dim, Interval::at_most(n.threshold));
    } else {
      box.clip(dim, Interval::greater(n.threshold));
    }
  }
  return box;
}

void DecisionTreeClassifier::set_leaf_label(int leaf, int label) {
  if (leaf < 0 || static_cast<std::size_t>(leaf) >= nodes_.size() ||
      !nodes_[static_cast<std::size_t>(leaf)].is_leaf()) {
    throw std::invalid_argument("set_leaf_label: not a leaf");
  }
  if (label < 0 || static_cast<std::size_t>(label) >= num_classes_) {
    throw std::invalid_argument("set_leaf_label: label out of range");
  }
  nodes_[static_cast<std::size_t>(leaf)].label = label;
}

std::pair<int, int> DecisionTreeClassifier::split_leaf(int leaf, int feature,
                                                       double threshold) {
  if (leaf < 0 || static_cast<std::size_t>(leaf) >= nodes_.size() ||
      !nodes_[static_cast<std::size_t>(leaf)].is_leaf()) {
    throw std::invalid_argument("split_leaf: not a leaf");
  }
  if (feature < 0 || static_cast<std::size_t>(feature) >= num_features_) {
    throw std::invalid_argument("split_leaf: feature out of range");
  }
  const TreeNode original = nodes_[static_cast<std::size_t>(leaf)];

  TreeNode child;
  child.label = original.label;
  child.samples = original.samples;
  child.impurity = original.impurity;
  child.parent = leaf;

  const int left = static_cast<int>(nodes_.size());
  nodes_.push_back(child);
  const int right = static_cast<int>(nodes_.size());
  nodes_.push_back(child);

  TreeNode& promoted = nodes_[static_cast<std::size_t>(leaf)];
  promoted.feature = feature;
  promoted.threshold = threshold;
  promoted.left = left;
  promoted.right = right;
  promoted.label = -1;
  return {left, right};
}

DecisionTreeClassifier DecisionTreeClassifier::from_nodes(std::vector<TreeNode> nodes,
                                                          std::size_t num_features,
                                                          std::size_t num_classes) {
  if (nodes.empty() || num_features == 0 || num_classes == 0) {
    throw std::invalid_argument("from_nodes: empty tree or zero dims");
  }
  const auto size = static_cast<int>(nodes.size());
  for (int i = 0; i < size; ++i) {
    const TreeNode& n = nodes[static_cast<std::size_t>(i)];
    if (n.is_leaf()) {
      if (n.label < 0 || static_cast<std::size_t>(n.label) >= num_classes) {
        throw std::invalid_argument("from_nodes: leaf label out of range");
      }
    } else {
      if (n.feature >= static_cast<int>(num_features)) {
        throw std::invalid_argument("from_nodes: feature index out of range");
      }
      if (n.left < 0 || n.left >= size || n.right < 0 || n.right >= size) {
        throw std::invalid_argument("from_nodes: child index out of range");
      }
      if (nodes[static_cast<std::size_t>(n.left)].parent != i ||
          nodes[static_cast<std::size_t>(n.right)].parent != i) {
        throw std::invalid_argument("from_nodes: inconsistent parent links");
      }
    }
  }
  DecisionTreeClassifier tree;
  tree.nodes_ = std::move(nodes);
  tree.num_features_ = num_features;
  tree.num_classes_ = num_classes;
  return tree;
}

double DecisionTreeClassifier::accuracy(const std::vector<std::vector<double>>& x,
                                        const std::vector<int>& y) const {
  assert(x.size() == y.size() && !x.empty());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (predict(x[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.size());
}

}  // namespace verihvac::tree
