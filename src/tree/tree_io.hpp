// Decision-tree serialization and human-readable export.
//
// Three formats:
//  * to_text      — indented if/else pseudo-code, the "interpretable to
//                   human experts" artifact the paper emphasizes;
//  * to_dot       — Graphviz, for figures like Fig. 2's illustration;
//  * save/load    — a line-based exact round-trip format so verified
//                   policies can be deployed to edge devices as plain files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tree/cart.hpp"

namespace verihvac::tree {

/// Indented pseudo-code. `feature_names` may be empty (uses x[i]);
/// `class_names` may be empty (uses raw label numbers).
std::string to_text(const DecisionTreeClassifier& tree,
                    const std::vector<std::string>& feature_names = {},
                    const std::vector<std::string>& class_names = {});

/// Graphviz DOT digraph.
std::string to_dot(const DecisionTreeClassifier& tree,
                   const std::vector<std::string>& feature_names = {},
                   const std::vector<std::string>& class_names = {});

/// Exact round-trip serialization.
void save_tree(const DecisionTreeClassifier& tree, const std::string& path);
DecisionTreeClassifier load_tree(const std::string& path);

/// Stream variants (used by the policy-bundle format, which embeds a tree
/// section inside a larger file). `context` names the source in errors.
void write_tree(const DecisionTreeClassifier& tree, std::ostream& out);
DecisionTreeClassifier read_tree(std::istream& in, const std::string& context = "<stream>");

}  // namespace verihvac::tree
