// CART regression tree (variance-reduction splits, mean-value leaves).
//
// The paper fits a *classification* tree over the discrete action space
// (§3.2.2). The regression variant here supports two extensions the
// classifier cannot:
//  * an interpretable surrogate of the thermal dynamics model
//    (dyn::TreeDynamicsModel) — making the *whole* control stack, not just
//    the policy, auditable by an engineer;
//  * distilling continuous-valued targets (e.g. predicted reward-to-go)
//    when ablating label designs.
//
// Split semantics match the classifier (left takes x[feature] <= threshold,
// thresholds are midpoints between adjacent distinct values); the split
// objective is weighted child variance (equivalently, SSE reduction), the
// exact greedy criterion of CART for squared loss.
#pragma once

#include <cstddef>
#include <vector>

#include "tree/cart.hpp"

namespace verihvac::tree {

struct RegressionConfig {
  /// 0 = unbounded.
  std::size_t max_depth = 0;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Minimum SSE decrease for a split to be accepted.
  double min_impurity_decrease = 0.0;
};

struct RegressionNode {
  int feature = -1;        ///< split feature (-1 for leaves)
  double threshold = 0.0;  ///< x <= t goes left
  int left = -1;
  int right = -1;
  double value = 0.0;      ///< mean target (leaves; kept for internals too)
  std::size_t samples = 0;
  double impurity = 0.0;   ///< node MSE around `value`
  int parent = -1;

  bool is_leaf() const { return feature < 0; }
};

class DecisionTreeRegressor {
 public:
  explicit DecisionTreeRegressor(RegressionConfig config = {});

  /// Fits on rows `x` with continuous targets `y`.
  void fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y);

  bool fitted() const { return !nodes_.empty(); }
  std::size_t num_features() const { return num_features_; }

  double predict(const std::vector<double>& x) const;
  /// Index of the leaf that handles `x`.
  int decision_leaf(const std::vector<double>& x) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  std::size_t depth() const;
  const RegressionNode& node(std::size_t i) const { return nodes_.at(i); }
  const std::vector<RegressionNode>& nodes() const { return nodes_; }
  std::vector<int> leaves() const;
  /// The axis-aligned input box handled by `leaf` (Algorithm 1 surface,
  /// shared with the classifier so interval reachability can use either).
  Box leaf_box(int leaf) const;

  /// Mean squared error on a labelled set (sanity checks / tests).
  double mse(const std::vector<std::vector<double>>& x, const std::vector<double>& y) const;

  /// Interval image: the set of leaf values reachable from inputs in `box`
  /// — the exact output range of the piecewise-constant function on the
  /// box, used for sound one-step reachability through tree dynamics.
  Interval value_range(const Box& box) const;

 private:
  struct BuildContext;
  int build_node(BuildContext& ctx, std::vector<std::size_t>& indices, std::size_t depth,
                 int parent);

  RegressionConfig config_;
  std::vector<RegressionNode> nodes_;
  std::size_t num_features_ = 0;
};

}  // namespace verihvac::tree
