#include "tree/prune.hpp"

#include <functional>
#include <vector>

namespace verihvac::tree {

PruneReport merge_redundant_leaves(DecisionTreeClassifier& tree) {
  PruneReport report;
  report.nodes_before = tree.node_count();
  if (!tree.fitted()) {
    report.nodes_after = report.nodes_before;
    return report;
  }

  std::vector<TreeNode> nodes = tree.nodes();

  // Bottom-up fixed point: collapse any internal node whose children are
  // leaves with the same label. Collapsing can expose the parent as the
  // next candidate, hence the loop.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& node : nodes) {
      if (node.is_leaf()) continue;
      const TreeNode& left = nodes[static_cast<std::size_t>(node.left)];
      const TreeNode& right = nodes[static_cast<std::size_t>(node.right)];
      if (left.is_leaf() && right.is_leaf() && left.label == right.label) {
        node.feature = -1;
        node.label = left.label;
        node.samples = left.samples + right.samples;
        node.impurity = 0.0;
        node.left = -1;
        node.right = -1;
        ++report.merges;
        changed = true;
      }
    }
  }

  if (report.merges == 0) {
    report.nodes_after = report.nodes_before;
    return report;
  }

  // Compact: DFS from the root, dropping orphaned nodes and remapping
  // child/parent indices.
  std::vector<TreeNode> compact;
  compact.reserve(nodes.size());
  const std::function<int(int, int)> copy_subtree = [&](int index, int parent) -> int {
    TreeNode node = nodes[static_cast<std::size_t>(index)];
    node.parent = parent;
    const int new_index = static_cast<int>(compact.size());
    compact.push_back(node);
    if (!node.is_leaf()) {
      const int left = copy_subtree(node.left, new_index);
      const int right = copy_subtree(node.right, new_index);
      compact[static_cast<std::size_t>(new_index)].left = left;
      compact[static_cast<std::size_t>(new_index)].right = right;
    }
    return new_index;
  };
  copy_subtree(0, -1);

  tree = DecisionTreeClassifier::from_nodes(std::move(compact), tree.num_features(),
                                            tree.num_classes());
  report.nodes_after = tree.node_count();
  return report;
}

}  // namespace verihvac::tree
