#include "tree/tree_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace verihvac::tree {
namespace {

std::string feature_name(const std::vector<std::string>& names, int feature) {
  if (feature >= 0 && static_cast<std::size_t>(feature) < names.size()) {
    return names[static_cast<std::size_t>(feature)];
  }
  return "x[" + std::to_string(feature) + "]";
}

std::string class_name(const std::vector<std::string>& names, int label) {
  if (label >= 0 && static_cast<std::size_t>(label) < names.size()) {
    return names[static_cast<std::size_t>(label)];
  }
  return "class " + std::to_string(label);
}

void text_walk(const DecisionTreeClassifier& tree, int node_idx, std::size_t indent,
               const std::vector<std::string>& feature_names,
               const std::vector<std::string>& class_names, std::ostringstream& os) {
  const TreeNode& n = tree.node(static_cast<std::size_t>(node_idx));
  const std::string pad(indent * 2, ' ');
  if (n.is_leaf()) {
    os << pad << "-> " << class_name(class_names, n.label) << "  (n=" << n.samples << ")\n";
    return;
  }
  os << pad << "if " << feature_name(feature_names, n.feature) << " <= " << n.threshold
     << ":\n";
  text_walk(tree, n.left, indent + 1, feature_names, class_names, os);
  os << pad << "else:  # " << feature_name(feature_names, n.feature) << " > " << n.threshold
     << "\n";
  text_walk(tree, n.right, indent + 1, feature_names, class_names, os);
}

}  // namespace

std::string to_text(const DecisionTreeClassifier& tree,
                    const std::vector<std::string>& feature_names,
                    const std::vector<std::string>& class_names) {
  if (!tree.fitted()) throw std::logic_error("to_text: tree not fitted");
  std::ostringstream os;
  text_walk(tree, 0, 0, feature_names, class_names, os);
  return os.str();
}

std::string to_dot(const DecisionTreeClassifier& tree,
                   const std::vector<std::string>& feature_names,
                   const std::vector<std::string>& class_names) {
  if (!tree.fitted()) throw std::logic_error("to_dot: tree not fitted");
  std::ostringstream os;
  os << "digraph DecisionTree {\n  node [shape=box];\n";
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const TreeNode& n = tree.node(i);
    if (n.is_leaf()) {
      os << "  n" << i << " [label=\"" << class_name(class_names, n.label)
         << "\\nn=" << n.samples << "\", style=filled, fillcolor=lightgray];\n";
    } else {
      os << "  n" << i << " [label=\"" << feature_name(feature_names, n.feature)
         << " <= " << n.threshold << "\"];\n";
      os << "  n" << i << " -> n" << n.left << " [label=\"yes\"];\n";
      os << "  n" << i << " -> n" << n.right << " [label=\"no\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

void write_tree(const DecisionTreeClassifier& tree, std::ostream& out) {
  if (!tree.fitted()) throw std::logic_error("write_tree: tree not fitted");
  const auto saved_precision = out.precision(17);
  out << "verihvac-tree v1\n";
  out << tree.num_features() << ' ' << tree.num_classes() << ' ' << tree.node_count() << '\n';
  for (std::size_t i = 0; i < tree.node_count(); ++i) {
    const TreeNode& n = tree.node(i);
    out << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right << ' '
        << n.label << ' ' << n.samples << ' ' << n.impurity << ' ' << n.parent << '\n';
  }
  out.precision(saved_precision);
}

DecisionTreeClassifier read_tree(std::istream& in, const std::string& context) {
  std::string magic;
  std::string version;
  in >> magic >> version;
  if (magic != "verihvac-tree" || version != "v1") {
    throw std::runtime_error("read_tree: bad header in " + context);
  }
  std::size_t num_features = 0;
  std::size_t num_classes = 0;
  std::size_t count = 0;
  in >> num_features >> num_classes >> count;
  std::vector<TreeNode> nodes(count);
  for (auto& n : nodes) {
    in >> n.feature >> n.threshold >> n.left >> n.right >> n.label >> n.samples >>
        n.impurity >> n.parent;
  }
  if (!in) throw std::runtime_error("read_tree: truncated input in " + context);
  return DecisionTreeClassifier::from_nodes(std::move(nodes), num_features, num_classes);
}

void save_tree(const DecisionTreeClassifier& tree, const std::string& path) {
  if (!tree.fitted()) throw std::logic_error("save_tree: tree not fitted");
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_tree: cannot open " + path);
  write_tree(tree, out);
}

DecisionTreeClassifier load_tree(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_tree: cannot open " + path);
  return read_tree(in, path);
}

}  // namespace verihvac::tree
