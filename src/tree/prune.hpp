// Post-hoc tree simplification.
//
// Two sources inflate a verified tree without changing its function:
//  * CART itself can produce sibling leaves with identical labels (the
//    split reduced Gini against the *distribution*, but the argmax label
//    came out equal on both sides), and
//  * the verifier's boundary refinement + correction can relabel leaves
//    so that siblings end up identical again.
// merge_redundant_leaves() collapses such pairs bottom-up until a fixed
// point. The result decides exactly the same action for every input but
// walks fewer nodes — relevant for the Table 3 edge-latency story and
// for human inspection of the rule dump.
#pragma once

#include "tree/cart.hpp"

namespace verihvac::tree {

struct PruneReport {
  std::size_t nodes_before = 0;
  std::size_t nodes_after = 0;
  std::size_t merges = 0;
};

/// Collapses identical-label sibling leaves until no such pair remains.
/// Function-preserving: predict() is unchanged for every input.
PruneReport merge_redundant_leaves(DecisionTreeClassifier& tree);

}  // namespace verihvac::tree
