// Decision-tree → C source generation for edge deployment.
//
// The paper's pipeline ends with "deploy it to the building edge device"
// (§3, Fig. 2). Edge BMS controllers are typically bare-metal C targets, so
// the natural deployment artifact is a dependency-free C99 translation unit
// that evaluates the verified tree. Two emission styles are provided:
//
//  * kNestedIf   — the tree as literal nested if/else; mirrors the
//                  interpretable pseudo-code of to_text() and lets the
//                  target compiler optimize branch layout;
//  * kFlatTable  — the node array as `static const` data walked by a small
//                  loop; constant code size regardless of tree depth, which
//                  suits MCU flash budgets and avoids deep nesting limits.
//
// Both styles compile standalone (no includes beyond the emitted file) and
// produce bit-identical decisions to DecisionTreeClassifier::predict for
// every input, which tests/tree/codegen_test.cpp checks by compiling the
// emitted source with the host C compiler and replaying random inputs.
#pragma once

#include <string>
#include <vector>

#include "tree/cart.hpp"

namespace verihvac::tree {

enum class CodegenStyle { kNestedIf, kFlatTable };

struct CodegenOptions {
  /// Name of the emitted `int <name>(const double* x)` function.
  std::string function_name = "dt_predict";
  /// Optional per-feature names, emitted as comments on each comparison.
  std::vector<std::string> feature_names;
  CodegenStyle style = CodegenStyle::kNestedIf;
  /// Emit a provenance banner (node/leaf/depth counts) at the top.
  bool banner = true;
  /// Declare the function `static` (for single-file embedding).
  bool static_linkage = false;
};

/// Renders the fitted tree as a self-contained C99 source string whose
/// single function maps a feature vector to the integer class label.
/// Throws std::invalid_argument if the tree is not fitted.
std::string to_c_source(const DecisionTreeClassifier& tree, const CodegenOptions& options = {});

}  // namespace verihvac::tree
