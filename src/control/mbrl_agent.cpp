#include "control/mbrl_agent.hpp"

namespace verihvac::control {

MbrlAgent::MbrlAgent(const dyn::DynamicsModel& model, RandomShootingConfig rs_config,
                     ActionSpace actions, env::RewardConfig reward, std::uint64_t seed)
    : model_(&model),
      actions_(std::move(actions)),
      rs_(rs_config, actions_, reward),
      rng_(seed),
      seed_(seed) {}

void MbrlAgent::reset() { rng_ = Rng(seed_); }

sim::SetpointPair MbrlAgent::act(const env::Observation& obs,
                                 const std::vector<env::Disturbance>& forecast) {
  return actions_.action(decide_once(obs, forecast));
}

std::size_t MbrlAgent::decide_once(const env::Observation& obs,
                                   const std::vector<env::Disturbance>& forecast) {
  return rs_.optimize(*model_, obs, forecast, rng_);
}

std::vector<std::size_t> MbrlAgent::action_distribution(
    const env::Observation& obs, const std::vector<env::Disturbance>& forecast,
    std::size_t repeats) {
  std::vector<std::size_t> counts(actions_.size(), 0);
  for (std::size_t r = 0; r < repeats; ++r) {
    ++counts[decide_once(obs, forecast)];
  }
  return counts;
}

}  // namespace verihvac::control
