#include "control/mppi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace verihvac::control {

Mppi::Mppi(MppiConfig config, const ActionSpace& actions, env::RewardConfig reward)
    : config_(config),
      actions_(actions),
      reward_(reward),
      scorer_(RandomShootingConfig{1, config.horizon, config.gamma}, actions, reward) {
  if (config_.samples == 0 || config_.horizon == 0 || config_.iterations == 0) {
    throw std::invalid_argument("Mppi: samples/horizon/iterations must be positive");
  }
}

std::size_t Mppi::optimize(const dyn::DynamicsModel& model, const env::Observation& obs,
                           const std::vector<env::Disturbance>& forecast, Rng& rng) const {
  if (forecast.size() < config_.horizon) {
    throw std::invalid_argument("Mppi: forecast shorter than horizon");
  }
  const auto& grid = actions_.config();

  // Nominal sequence in continuous setpoint space, initialized mid-range.
  std::vector<sim::SetpointPair> nominal(
      config_.horizon,
      sim::SetpointPair{0.5 * (grid.heat_min + grid.heat_max),
                        0.5 * (grid.cool_min + grid.cool_max)});

  std::vector<std::vector<std::size_t>> samples(config_.samples,
                                                std::vector<std::size_t>(config_.horizon));
  std::vector<double> returns(config_.samples);

  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    for (std::size_t s = 0; s < config_.samples; ++s) {
      for (std::size_t t = 0; t < config_.horizon; ++t) {
        sim::SetpointPair perturbed;
        perturbed.heating_c = nominal[t].heating_c + config_.noise_sigma * rng.normal();
        perturbed.cooling_c = nominal[t].cooling_c + config_.noise_sigma * rng.normal();
        samples[s][t] = actions_.nearest_index(perturbed);
      }
    }
    scorer_.rollout_returns(model, obs, forecast, samples, returns);
    // Importance weights: exp((R - max) / lambda).
    const double max_return = *std::max_element(returns.begin(), returns.end());
    double weight_sum = 0.0;
    std::vector<double> weights(config_.samples);
    for (std::size_t s = 0; s < config_.samples; ++s) {
      weights[s] = std::exp((returns[s] - max_return) / config_.lambda);
      weight_sum += weights[s];
    }
    // Weighted mean over the sampled (discrete) sequences becomes the new
    // continuous nominal.
    for (std::size_t t = 0; t < config_.horizon; ++t) {
      double heat = 0.0;
      double cool = 0.0;
      for (std::size_t s = 0; s < config_.samples; ++s) {
        const sim::SetpointPair a = actions_.action(samples[s][t]);
        heat += weights[s] * a.heating_c;
        cool += weights[s] * a.cooling_c;
      }
      nominal[t].heating_c = heat / weight_sum;
      nominal[t].cooling_c = cool / weight_sum;
    }
  }
  return actions_.nearest_index(nominal.front());
}

}  // namespace verihvac::control
