// Discrete setpoint action space.
//
// Per the paper: the heating setpoint is an integer in [15, 23] degC and
// the cooling setpoint an integer in [21, 30] degC, so the action is a
// 2-dim integer pair. We additionally enforce heating <= cooling (a crossed
// pair is physically contradictory and every real BMS rejects it), giving
// 87 valid joint actions. The decision tree classifies over the indices of
// this enumeration.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "thermosim/hvac.hpp"

namespace verihvac::control {

struct ActionSpaceConfig {
  int heat_min = 15;
  int heat_max = 23;
  int cool_min = 21;
  int cool_max = 30;
  bool enforce_heat_le_cool = true;
};

class ActionSpace {
 public:
  explicit ActionSpace(ActionSpaceConfig config = {});

  std::size_t size() const { return actions_.size(); }
  const sim::SetpointPair& action(std::size_t index) const { return actions_.at(index); }
  const std::vector<sim::SetpointPair>& actions() const { return actions_; }

  /// Index of the valid action closest (L1) to an arbitrary pair; exact
  /// lookups hit their own index.
  std::size_t nearest_index(const sim::SetpointPair& pair) const;

  /// True if the pair lies exactly on the valid grid.
  bool contains(const sim::SetpointPair& pair) const;

  /// "h=21/c=24"-style label for reports.
  std::string label(std::size_t index) const;

  const ActionSpaceConfig& config() const { return config_; }

 private:
  ActionSpaceConfig config_;
  std::vector<sim::SetpointPair> actions_;
};

}  // namespace verihvac::control
