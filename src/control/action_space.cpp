#include "control/action_space.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace verihvac::control {

ActionSpace::ActionSpace(ActionSpaceConfig config) : config_(config) {
  if (config_.heat_min > config_.heat_max || config_.cool_min > config_.cool_max) {
    throw std::invalid_argument("ActionSpace: inverted bounds");
  }
  for (int h = config_.heat_min; h <= config_.heat_max; ++h) {
    for (int c = config_.cool_min; c <= config_.cool_max; ++c) {
      if (config_.enforce_heat_le_cool && h > c) continue;
      actions_.push_back(sim::SetpointPair{static_cast<double>(h), static_cast<double>(c)});
    }
  }
  if (actions_.empty()) throw std::invalid_argument("ActionSpace: empty");
}

std::size_t ActionSpace::nearest_index(const sim::SetpointPair& pair) const {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const double dist = std::abs(actions_[i].heating_c - pair.heating_c) +
                        std::abs(actions_[i].cooling_c - pair.cooling_c);
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

bool ActionSpace::contains(const sim::SetpointPair& pair) const {
  const std::size_t idx = nearest_index(pair);
  return actions_[idx].heating_c == pair.heating_c &&
         actions_[idx].cooling_c == pair.cooling_c;
}

std::string ActionSpace::label(std::size_t index) const {
  const auto& a = actions_.at(index);
  std::ostringstream os;
  os << "h=" << a.heating_c << "/c=" << a.cooling_c;
  return os.str();
}

}  // namespace verihvac::control
