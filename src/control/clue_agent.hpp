// CLUE baseline [An et al., BuildSys'23] — "CLUE" in Fig. 4.
//
// CLUE gates MBRL decisions on *epistemic uncertainty*: it plans with an
// ensemble of dynamics models; when the ensemble members disagree beyond a
// threshold about the consequence of the chosen action (the state is
// outside the data distribution), it falls back to the safe default
// schedule instead of trusting the model. This reproduces that mechanism
// on our bootstrap ensemble.
#pragma once

#include <cstdint>

#include "control/controller.hpp"
#include "control/random_shooting.hpp"
#include "dynamics/ensemble.hpp"

namespace verihvac::control {

struct ClueConfig {
  RandomShootingConfig rs;
  /// Ensemble stddev (degC on the one-step prediction of the chosen action)
  /// above which the agent falls back to the default schedule.
  double uncertainty_threshold_c = 0.35;
};

class ClueAgent final : public Controller {
 public:
  ClueAgent(const dyn::EnsembleDynamics& ensemble, ClueConfig config, ActionSpace actions,
            env::RewardConfig reward, sim::SetpointPair fallback_occupied,
            sim::SetpointPair fallback_unoccupied, std::uint64_t seed = 211);

  sim::SetpointPair act(const env::Observation& obs,
                        const std::vector<env::Disturbance>& forecast) override;
  std::size_t forecast_horizon() const override { return config_.rs.horizon; }
  std::string name() const override { return "CLUE"; }
  void reset() override;

  /// Fraction of decisions (since reset) that hit the uncertainty fallback.
  double fallback_rate() const;

  /// Parallelizes the optimizer's rollout scoring across the engine.
  void set_engine(std::shared_ptr<const RolloutEngine> engine) {
    rs_.set_engine(std::move(engine));
  }

 private:
  const dyn::EnsembleDynamics* ensemble_;
  ClueConfig config_;
  ActionSpace actions_;
  RandomShooting rs_;
  env::RewardConfig reward_;
  sim::SetpointPair fallback_occupied_;
  sim::SetpointPair fallback_unoccupied_;
  Rng rng_;
  std::uint64_t seed_;
  std::size_t decisions_ = 0;
  std::size_t fallbacks_ = 0;
};

}  // namespace verihvac::control
