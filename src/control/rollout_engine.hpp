// Parallel rollout engine for the shooting-family optimizers.
//
// RS, MPPI and CEM all spend their time in the same place: scoring N
// candidate action sequences with H dynamics-model evaluations each. The
// engine spreads that work across a persistent pool of worker threads —
// since PR 2 the generic common::TaskPool, which the verification
// subsystem (core::VerificationEngine) shares; RolloutEngine is a thin
// control-facing client that keeps the optimizer API stable.
//
// Since PR 3 the unit of work is a *sub-batch*, not a sample: parallel_for
// hands each worker a contiguous slice of the candidate set, and the
// worker advances its whole slice in lock-step, fusing every horizon
// step's predictions into one batched forward
// (dyn::DynamicsModel::predict_batch_into) with persistent thread-local
// scratch. Determinism is preserved by construction: RNG draws happen
// only during (serial) sequence generation, per-candidate arithmetic is
// independent of how the batch is sliced, every return is written to its
// own output slot, and the winner selection stays a serial scan — so any
// thread count produces decisions bit-identical to the scalar
// single-threaded loop.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "common/task_pool.hpp"

namespace verihvac::control {

/// Same knobs as the pool itself (threads: 0 = hardware concurrency;
/// min_parallel_batch: smaller batches run inline on the caller).
using RolloutEngineConfig = common::TaskPoolConfig;

class RolloutEngine {
 public:
  explicit RolloutEngine(RolloutEngineConfig config = {});
  /// Adopts an existing pool instead of spawning a private one (the shared
  /// engine wraps common::TaskPool::shared() so control and verification
  /// workloads share one set of worker threads).
  explicit RolloutEngine(std::shared_ptr<const common::TaskPool> pool);

  RolloutEngine(const RolloutEngine&) = delete;
  RolloutEngine& operator=(const RolloutEngine&) = delete;

  /// Total concurrency: pool workers + the calling thread.
  std::size_t thread_count() const { return pool_->thread_count(); }

  const RolloutEngineConfig& config() const { return pool_->config(); }

  /// The underlying pool (shareable with non-control clients).
  const std::shared_ptr<const common::TaskPool>& pool() const { return pool_; }

  /// Forwards to common::TaskPool::parallel_for — see its contract (per-index
  /// slots, exception rethrow, no nested parallel_for on the same pool).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) const {
    pool_->parallel_for(n, body);
  }

  /// Process-wide shared engine over common::TaskPool::shared(), sized from
  /// VERI_HVAC_THREADS (default: hardware concurrency; =1 forces serial).
  static std::shared_ptr<const RolloutEngine> shared();

 private:
  std::shared_ptr<const common::TaskPool> pool_;
};

}  // namespace verihvac::control
