// Parallel rollout engine for the shooting-family optimizers.
//
// RS, MPPI and CEM all spend their time in the same place: scoring N
// candidate action sequences with H dynamics-model evaluations each. The
// sequences are independent, so the engine batches them across a
// persistent pool of worker threads. Determinism is preserved by
// construction: RNG draws happen only during (serial) sequence
// generation, every sequence's return is written to its own output slot,
// and the winner selection stays a serial scan — so any thread count
// produces bit-identical decisions to the single-threaded loop.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace verihvac::control {

struct RolloutEngineConfig {
  /// Worker threads including the calling thread; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Batches smaller than this run inline on the caller — forking the pool
  /// for a handful of rollouts costs more than it saves.
  std::size_t min_parallel_batch = 16;
};

class RolloutEngine {
 public:
  explicit RolloutEngine(RolloutEngineConfig config = {});
  ~RolloutEngine();

  RolloutEngine(const RolloutEngine&) = delete;
  RolloutEngine& operator=(const RolloutEngine&) = delete;

  /// Total concurrency: pool workers + the calling thread.
  std::size_t thread_count() const { return workers_.size() + 1; }

  const RolloutEngineConfig& config() const { return config_; }

  /// Splits [0, n) into contiguous chunks and runs body(worker_id, begin,
  /// end) across the pool (the caller participates as worker 0; worker_id
  /// < thread_count()). Blocks until every chunk completed. Each index is
  /// processed exactly once, so writes to per-index output slots are
  /// race-free. The first exception thrown by any chunk is rethrown here.
  ///
  /// Concurrent calls from distinct caller threads serialize internally,
  /// but `body` must NOT call back into parallel_for on the same engine
  /// (directly or via a nested rollout): re-entry from the caller or a
  /// pool worker deadlocks. Nested parallelism needs a second engine.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) const;

  /// Process-wide shared engine sized from VERI_HVAC_THREADS (default:
  /// hardware concurrency). VERI_HVAC_THREADS=1 forces serial execution.
  static std::shared_ptr<const RolloutEngine> shared();

 private:
  struct Job;

  void worker_loop(std::size_t worker_id);

  RolloutEngineConfig config_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;  ///< pool synchronization state
};

}  // namespace verihvac::control
