// Model Predictive Path Integral (MPPI) optimizer.
//
// The second stochastic optimizer the paper cites (via CLUE [1]): an
// iterative importance-weighted refinement. Each iteration perturbs the
// nominal sequence with integer-rounded Gaussian noise, scores rollouts
// with the same discounted Eq. 2 return as RS, and re-weights with
// exp(return / lambda). Included for completeness and as an ablation of the
// optimizer choice; the headline experiments use RS, as the paper does.
#pragma once

#include "control/random_shooting.hpp"

namespace verihvac::control {

struct MppiConfig {
  std::size_t samples = 200;    ///< rollouts per iteration
  std::size_t horizon = 20;
  std::size_t iterations = 3;
  double gamma = 0.99;
  double lambda = 1.0;          ///< softmax temperature over returns
  double noise_sigma = 2.0;     ///< degC perturbation of setpoints
};

class Mppi {
 public:
  Mppi(MppiConfig config, const ActionSpace& actions, env::RewardConfig reward);

  /// Returns the chosen first-action index.
  std::size_t optimize(const dyn::DynamicsModel& model, const env::Observation& obs,
                       const std::vector<env::Disturbance>& forecast, Rng& rng) const;

  const MppiConfig& config() const { return config_; }

  /// Parallelizes candidate scoring across the engine's thread pool (each
  /// iteration's samples are scored in lock-step batches; decisions stay
  /// bit-identical for any thread count).
  void set_engine(std::shared_ptr<const RolloutEngine> engine) {
    scorer_.set_engine(std::move(engine));
  }

 private:
  MppiConfig config_;
  ActionSpace actions_;  ///< by value: a pointer would dangle on temporaries
  env::RewardConfig reward_;
  RandomShooting scorer_;  ///< reuses rollout_return
};

}  // namespace verihvac::control
