#include "control/cem.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace verihvac::control {

Cem::Cem(CemConfig config, const ActionSpace& actions, env::RewardConfig reward)
    : config_(config),
      actions_(actions),
      reward_(reward),
      scorer_(RandomShootingConfig{1, config.horizon, config.gamma}, actions, reward) {
  if (config_.samples == 0 || config_.horizon == 0 || config_.iterations == 0) {
    throw std::invalid_argument("Cem: samples/horizon/iterations must be positive");
  }
  if (config_.elite_fraction <= 0.0 || config_.elite_fraction > 1.0) {
    throw std::invalid_argument("Cem: elite_fraction must lie in (0, 1]");
  }
  if (config_.initial_sigma <= 0.0 || config_.min_sigma < 0.0) {
    throw std::invalid_argument("Cem: sigma settings must be positive");
  }
}

std::size_t Cem::optimize(const dyn::DynamicsModel& model, const env::Observation& obs,
                          const std::vector<env::Disturbance>& forecast, Rng& rng) const {
  if (forecast.size() < config_.horizon) {
    throw std::invalid_argument("Cem: forecast shorter than horizon");
  }
  const auto& grid = actions_.config();
  const std::size_t n_elite = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.elite_fraction * static_cast<double>(config_.samples)));

  // Per-step Gaussians over continuous (heat, cool) setpoints.
  std::vector<double> mean_heat(config_.horizon, 0.5 * (grid.heat_min + grid.heat_max));
  std::vector<double> mean_cool(config_.horizon, 0.5 * (grid.cool_min + grid.cool_max));
  std::vector<double> sigma_heat(config_.horizon, config_.initial_sigma);
  std::vector<double> sigma_cool(config_.horizon, config_.initial_sigma);

  std::vector<std::vector<std::size_t>> samples(config_.samples,
                                                std::vector<std::size_t>(config_.horizon));
  std::vector<double> returns(config_.samples);
  std::vector<std::size_t> order(config_.samples);

  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    for (std::size_t s = 0; s < config_.samples; ++s) {
      for (std::size_t t = 0; t < config_.horizon; ++t) {
        sim::SetpointPair draw;
        draw.heating_c = rng.normal(mean_heat[t], sigma_heat[t]);
        draw.cooling_c = rng.normal(mean_cool[t], sigma_cool[t]);
        samples[s][t] = actions_.nearest_index(draw);
      }
    }
    scorer_.rollout_returns(model, obs, forecast, samples, returns);

    std::iota(order.begin(), order.end(), std::size_t{0});
    std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n_elite),
                      order.end(),
                      [&](std::size_t a, std::size_t b) { return returns[a] > returns[b]; });

    // Refit mean/std to the elites (on the snapped discrete sequences, so
    // the distribution contracts onto realizable actions).
    for (std::size_t t = 0; t < config_.horizon; ++t) {
      double heat_sum = 0.0, cool_sum = 0.0;
      for (std::size_t e = 0; e < n_elite; ++e) {
        const sim::SetpointPair a = actions_.action(samples[order[e]][t]);
        heat_sum += a.heating_c;
        cool_sum += a.cooling_c;
      }
      const double n = static_cast<double>(n_elite);
      mean_heat[t] = heat_sum / n;
      mean_cool[t] = cool_sum / n;
      double heat_var = 0.0, cool_var = 0.0;
      for (std::size_t e = 0; e < n_elite; ++e) {
        const sim::SetpointPair a = actions_.action(samples[order[e]][t]);
        heat_var += (a.heating_c - mean_heat[t]) * (a.heating_c - mean_heat[t]);
        cool_var += (a.cooling_c - mean_cool[t]) * (a.cooling_c - mean_cool[t]);
      }
      sigma_heat[t] = std::max(config_.min_sigma, std::sqrt(heat_var / n));
      sigma_cool[t] = std::max(config_.min_sigma, std::sqrt(cool_var / n));
    }
  }
  return actions_.nearest_index(sim::SetpointPair{mean_heat.front(), mean_cool.front()});
}

}  // namespace verihvac::control
