// MBRL agent — the MB2C [9] baseline ("MBRL_agent" in Fig. 4).
//
// Learned dynamics model + random-shooting optimizer, re-planned every
// step. Exposes action_distribution(), the Monte-Carlo histogram of the
// optimizer's first-action choices used both for the Fig. 1 stochasticity
// analysis and for the modal-action distillation of §3.2.1.
#pragma once

#include <cstdint>
#include <memory>

#include "control/controller.hpp"
#include "control/random_shooting.hpp"

namespace verihvac::control {

class MbrlAgent final : public Controller {
 public:
  /// The agent borrows (does not own) the trained model.
  MbrlAgent(const dyn::DynamicsModel& model, RandomShootingConfig rs_config,
            ActionSpace actions, env::RewardConfig reward, std::uint64_t seed = 101);

  sim::SetpointPair act(const env::Observation& obs,
                        const std::vector<env::Disturbance>& forecast) override;
  std::size_t forecast_horizon() const override { return rs_.config().horizon; }
  std::string name() const override { return "MBRL"; }
  void reset() override;

  /// Runs the stochastic optimizer `repeats` times on the same input and
  /// returns the empirical count per action index (size = action space).
  std::vector<std::size_t> action_distribution(const env::Observation& obs,
                                               const std::vector<env::Disturbance>& forecast,
                                               std::size_t repeats);

  /// Single optimizer invocation (one stochastic decision).
  std::size_t decide_once(const env::Observation& obs,
                          const std::vector<env::Disturbance>& forecast);

  const ActionSpace& actions() const { return actions_; }
  const dyn::DynamicsModel& model() const { return *model_; }
  /// The underlying optimizer (rollout_return is reused by the VIPER
  /// extension to estimate per-action values for criticality weights).
  const RandomShooting& optimizer() const { return rs_; }

  /// Parallelizes the optimizer's rollout scoring across the engine.
  void set_engine(std::shared_ptr<const RolloutEngine> engine) {
    rs_.set_engine(std::move(engine));
  }

 private:
  const dyn::DynamicsModel* model_;
  ActionSpace actions_;
  RandomShooting rs_;
  Rng rng_;
  std::uint64_t seed_;
};

}  // namespace verihvac::control
