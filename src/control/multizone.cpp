#include "control/multizone.hpp"

#include <algorithm>
#include <stdexcept>

namespace verihvac::control {

MultiZoneCoordinator::MultiZoneCoordinator(
    std::vector<std::shared_ptr<Controller>> zone_controllers)
    : controllers_(std::move(zone_controllers)) {
  if (controllers_.empty()) {
    throw std::invalid_argument("MultiZoneCoordinator: at least one zone required");
  }
  for (const auto& controller : controllers_) {
    if (!controller) throw std::invalid_argument("MultiZoneCoordinator: null controller");
  }
}

std::size_t MultiZoneCoordinator::forecast_horizon() const {
  std::size_t horizon = 0;
  for (const auto& controller : controllers_) {
    horizon = std::max(horizon, controller->forecast_horizon());
  }
  return horizon;
}

std::vector<sim::SetpointPair> MultiZoneCoordinator::act(
    const std::vector<env::Observation>& observations,
    const std::vector<env::Disturbance>& forecast) {
  if (observations.size() != controllers_.size()) {
    throw std::invalid_argument("MultiZoneCoordinator::act: one observation per zone");
  }
  std::vector<sim::SetpointPair> actions;
  actions.reserve(controllers_.size());
  for (std::size_t z = 0; z < controllers_.size(); ++z) {
    actions.push_back(controllers_[z]->act(observations[z], forecast));
  }
  return actions;
}

void MultiZoneCoordinator::reset() {
  for (const auto& controller : controllers_) controller->reset();
}

}  // namespace verihvac::control
