// Random Shooting (RS) stochastic optimizer — Eq. 1 of the paper.
//
// Samples N candidate action sequences of length H uniformly from the
// discrete action space, rolls each out through the learned dynamics model
// against the known disturbance forecast, scores them with the discounted
// Eq. 2 reward, and returns the first action of the best sequence. This is
// the optimizer MB2C [9] validated with sample_number=1000, horizon=20 —
// the paper-scale defaults here, scaled down by benches via config.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "control/action_space.hpp"
#include "control/rollout_engine.hpp"
#include "dynamics/dynamics_model.hpp"
#include "envlib/observation.hpp"
#include "envlib/reward.hpp"

namespace verihvac::control {

/// Per-worker persistent scratch for the lock-step batch scoring path
/// (same caller-owned convention as dyn::PredictScratch / BatchScratch).
/// One instance lives in each pool worker's thread-local storage, so the
/// candidate-state matrix and all activation buffers are allocated once
/// per thread and reused across every decision of the process lifetime.
struct RolloutScratch {
  /// Live candidate inputs, one 8-dim model-input row per candidate.
  Matrix states;
  /// Batched one-step predictions for the current horizon step.
  std::vector<double> next_temps;
  /// Per-candidate running discount factor.
  std::vector<double> discounts;
  /// Per-candidate action applied at the current step.
  std::vector<sim::SetpointPair> actions;
  /// Fused normalize -> network -> denormalize predict scratch.
  dyn::BatchScratch batch;
};

/// The calling thread's persistent RolloutScratch (static thread_local):
/// pool workers live for the process, so each worker's candidate matrix
/// and activation buffers warm up once and serve every subsequent batch.
/// Shared with the serving scheduler so a worker that runs both the
/// optimizer path and cross-session serving keeps ONE scratch, not two.
RolloutScratch& worker_rollout_scratch();

struct RandomShootingConfig {
  std::size_t samples = 1000;  ///< candidate sequences per decision
  std::size_t horizon = 20;    ///< planning steps (20 x 15 min = 5 h)
  double gamma = 0.99;         ///< discount factor
  /// Fraction of candidates drawn as *constant* (persistence) sequences —
  /// a standard shooting variance-reduction. Argmax over the summed return
  /// of fully random sequences exerts almost no selection pressure on the
  /// one action actually executed (the first), which is exactly the Fig. 1
  /// stochasticity; constant candidates restore that pressure wherever a
  /// held setpoint is near-optimal (e.g. unoccupied setback) while leaving
  /// the comfort-dominated occupied hours as stochastic as before.
  double persistent_fraction = 0.25;
  /// After the shooting pass, re-optimize the *executed* action: hold the
  /// best sequence's tail fixed and enumerate every first action, taking
  /// the argmax. Costs one extra |A|-rollout sweep but removes the label
  /// noise of argmax-over-sums entirely (many near-equivalent first
  /// actions split the Monte-Carlo mass, so the paper's modal aggregation
  /// can land on a minority behaviour). Off by default — the plain RS
  /// baseline of Fig. 1 must keep its stochasticity; the decision-data
  /// generator (§3.2.1) turns it on for sharp supervision.
  bool refine_first_action = false;
};

class RandomShooting {
 public:
  RandomShooting(RandomShootingConfig config, const ActionSpace& actions,
                 env::RewardConfig reward);

  /// One optimization: returns the index (into the action space) of the
  /// chosen first action. `forecast` must provide >= horizon entries
  /// (entry k = disturbances at step t+k).
  std::size_t optimize(const dyn::DynamicsModel& model, const env::Observation& obs,
                       const std::vector<env::Disturbance>& forecast, Rng& rng) const;

  /// Draws the candidate sequences of one optimize() call (samples x
  /// horizon; the configured persistent fraction held constant). Scoring
  /// consumes no randomness, so this is the *entire* stochastic footprint
  /// of a decision. Exposed for the serving scheduler, which replays a
  /// decision's exact candidate set from its per-request RNG stream and
  /// then scores cross-session micro-batches — optimize() itself draws
  /// through this same code path, keeping the two bit-identical.
  std::vector<std::vector<std::size_t>> draw_sequences(Rng& rng) const;

  /// Scores a fixed action sequence (exposed for tests and MPPI reuse).
  double rollout_return(const dyn::DynamicsModel& model, const env::Observation& obs,
                        const std::vector<env::Disturbance>& forecast,
                        const std::vector<std::size_t>& action_sequence) const;

  /// Thread-safe variant used by the parallel batch path: all prediction
  /// scratch lives in the caller-provided buffer.
  double rollout_return(const dyn::DynamicsModel& model, const env::Observation& obs,
                        const std::vector<env::Disturbance>& forecast,
                        const std::vector<std::size_t>& action_sequence,
                        dyn::PredictScratch& scratch) const;

  /// Scores every candidate sequence, writing returns[i] for sequences[i].
  ///
  /// Lock-step batch pipeline: candidates advance together one horizon
  /// step at a time, with each step's N one-step predictions fused into a
  /// single batched forward (dyn::DynamicsModel::predict_batch_into)
  /// instead of N scalar predicts. With an engine attached, the batch is
  /// sharded into per-worker sub-batches over its thread pool, each worker
  /// running the lock-step pipeline on its contiguous slice with
  /// persistent thread-local RolloutScratch. Per-candidate arithmetic is
  /// independent of batch composition, so results are bit-identical to the
  /// scalar rollout_return path for any thread count and any sharding
  /// (locked in by tests/control/rollout_engine_test.cpp).
  void rollout_returns(const dyn::DynamicsModel& model, const env::Observation& obs,
                       const std::vector<env::Disturbance>& forecast,
                       const std::vector<std::vector<std::size_t>>& sequences,
                       std::vector<double>& returns) const;

  /// Lock-step batch scoring of the contiguous slice [begin, end) of
  /// `sequences` (the per-worker unit of rollout_returns, exposed for the
  /// throughput bench). Writes returns[s] for s in [begin, end); `returns`
  /// must already have sequences.size() entries.
  void rollout_returns_slice(const dyn::DynamicsModel& model, const env::Observation& obs,
                             const std::vector<env::Disturbance>& forecast,
                             const std::vector<std::vector<std::size_t>>& sequences,
                             std::size_t begin, std::size_t end, std::vector<double>& returns,
                             RolloutScratch& scratch) const;

  /// Attaches (or detaches, with nullptr) the parallel rollout engine.
  void set_engine(std::shared_ptr<const RolloutEngine> engine) { engine_ = std::move(engine); }
  const RolloutEngine* engine() const { return engine_.get(); }

  const RandomShootingConfig& config() const { return config_; }

 private:
  RandomShootingConfig config_;
  ActionSpace actions_;  ///< by value: a pointer would dangle on temporaries
  env::RewardConfig reward_;
  std::shared_ptr<const RolloutEngine> engine_;  ///< null = serial scoring
};

}  // namespace verihvac::control
