// Controller interface shared by every agent in the evaluation.
//
// act() receives the current observation and a perfect disturbance forecast
// over the controller's planning horizon (rule-based and DT controllers
// simply ignore the forecast). The contract mirrors how Sinergym drives
// agents: one setpoint-pair decision per 15-minute step.
#pragma once

#include <string>
#include <vector>

#include "envlib/observation.hpp"
#include "thermosim/hvac.hpp"

namespace verihvac::control {

class Controller {
 public:
  virtual ~Controller() = default;

  /// Chooses the setpoint pair to actuate for the next step.
  virtual sim::SetpointPair act(const env::Observation& obs,
                                const std::vector<env::Disturbance>& forecast) = 0;

  /// Number of forecast steps this controller wants (0 = none).
  virtual std::size_t forecast_horizon() const { return 0; }

  /// Display name for result tables.
  virtual std::string name() const = 0;

  /// Resets internal state between episodes (default: nothing).
  virtual void reset() {}
};

}  // namespace verihvac::control
