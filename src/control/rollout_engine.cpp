#include "control/rollout_engine.hpp"

#include <stdexcept>

namespace verihvac::control {

RolloutEngine::RolloutEngine(RolloutEngineConfig config)
    : pool_(std::make_shared<const common::TaskPool>(config)) {}

RolloutEngine::RolloutEngine(std::shared_ptr<const common::TaskPool> pool)
    : pool_(std::move(pool)) {
  if (!pool_) throw std::invalid_argument("RolloutEngine: null task pool");
}

std::shared_ptr<const RolloutEngine> RolloutEngine::shared() {
  static const std::shared_ptr<const RolloutEngine> instance =
      std::make_shared<const RolloutEngine>(common::TaskPool::shared());
  return instance;
}

}  // namespace verihvac::control
