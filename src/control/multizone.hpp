// Whole-building coordination of per-zone controllers.
//
// Dispatches one Controller per zone against the MultiZoneEnv: each zone's
// controller sees its own observation (its zone temperature + the shared
// disturbances) and returns that zone's setpoint pair. Because the policy
// input (s, d) carries no zone identity, a single verified DT policy can
// be cloned across all zones, or zone-specific policies can be mixed with
// the default schedule (e.g. DT in perimeter zones, schedule in the core).
#pragma once

#include <memory>
#include <vector>

#include "control/controller.hpp"

namespace verihvac::control {

class MultiZoneCoordinator {
 public:
  /// One controller per zone, in zone-index order. Throws on empty input
  /// or null entries.
  explicit MultiZoneCoordinator(std::vector<std::shared_ptr<Controller>> zone_controllers);

  std::size_t zone_count() const { return controllers_.size(); }
  Controller& zone_controller(std::size_t z) { return *controllers_.at(z); }

  /// Largest forecast horizon requested by any zone controller.
  std::size_t forecast_horizon() const;

  /// One decision per zone. `observations` must have zone_count() entries;
  /// the forecast is shared (disturbances are building-wide).
  std::vector<sim::SetpointPair> act(const std::vector<env::Observation>& observations,
                                     const std::vector<env::Disturbance>& forecast);

  void reset();

 private:
  std::vector<std::shared_ptr<Controller>> controllers_;
};

}  // namespace verihvac::control
