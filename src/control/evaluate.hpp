// Episode evaluation driver: runs a controller through a full environment
// episode and accumulates the paper's metrics (energy, violation rate).
#pragma once

#include <optional>
#include <vector>

#include "control/controller.hpp"
#include "envlib/env.hpp"
#include "envlib/metrics.hpp"

namespace verihvac::control {

struct EpisodeTrace {
  std::vector<double> zone_temps;
  std::vector<sim::SetpointPair> actions;
  std::vector<double> rewards;
  std::vector<bool> occupied;
};

/// Resets env + controller and runs to episode end. If `trace` is non-null,
/// per-step series are recorded into it.
env::EpisodeMetrics run_episode(env::BuildingEnv& env, Controller& controller,
                                EpisodeTrace* trace = nullptr);

}  // namespace verihvac::control
