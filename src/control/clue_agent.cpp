#include "control/clue_agent.hpp"

namespace verihvac::control {

ClueAgent::ClueAgent(const dyn::EnsembleDynamics& ensemble, ClueConfig config,
                     ActionSpace actions, env::RewardConfig reward,
                     sim::SetpointPair fallback_occupied, sim::SetpointPair fallback_unoccupied,
                     std::uint64_t seed)
    : ensemble_(&ensemble),
      config_(config),
      actions_(std::move(actions)),
      rs_(config.rs, actions_, reward),
      reward_(reward),
      fallback_occupied_(fallback_occupied),
      fallback_unoccupied_(fallback_unoccupied),
      rng_(seed),
      seed_(seed) {}

void ClueAgent::reset() {
  rng_ = Rng(seed_);
  decisions_ = 0;
  fallbacks_ = 0;
}

sim::SetpointPair ClueAgent::act(const env::Observation& obs,
                                 const std::vector<env::Disturbance>& forecast) {
  ++decisions_;
  // Plan with the first ensemble member (CLUE plans on the ensemble mean;
  // for a 3-member bootstrap the member-0 plan is statistically equivalent
  // and 3x cheaper — the uncertainty *gate* below is what defines CLUE).
  const std::size_t planned = rs_.optimize(ensemble_->member(0), obs, forecast, rng_);
  const sim::SetpointPair action = actions_.action(planned);

  // Epistemic check: ensemble disagreement on the consequence of the action.
  const dyn::EnsemblePrediction prediction =
      ensemble_->predict(ensemble_->schema().to_vector(obs), action);
  if (prediction.stddev > config_.uncertainty_threshold_c) {
    ++fallbacks_;
    return obs.occupants > 0.5 ? fallback_occupied_ : fallback_unoccupied_;
  }
  return action;
}

double ClueAgent::fallback_rate() const {
  if (decisions_ == 0) return 0.0;
  return static_cast<double>(fallbacks_) / static_cast<double>(decisions_);
}

}  // namespace verihvac::control
