#include "control/random_shooting.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace verihvac::control {

RandomShooting::RandomShooting(RandomShootingConfig config, const ActionSpace& actions,
                               env::RewardConfig reward)
    : config_(config), actions_(actions), reward_(reward) {
  if (config_.samples == 0 || config_.horizon == 0) {
    throw std::invalid_argument("RandomShooting: samples and horizon must be positive");
  }
}

double RandomShooting::rollout_return(const dyn::DynamicsModel& model,
                                      const env::Observation& obs,
                                      const std::vector<env::Disturbance>& forecast,
                                      const std::vector<std::size_t>& action_sequence) const {
  // Warm per-thread scratch keeps the single-sequence path allocation-free
  // (VIPER's per-candidate value estimation loops over this entry point).
  static thread_local dyn::PredictScratch scratch;
  return rollout_return(model, obs, forecast, action_sequence, scratch);
}

double RandomShooting::rollout_return(const dyn::DynamicsModel& model,
                                      const env::Observation& obs,
                                      const std::vector<env::Disturbance>& forecast,
                                      const std::vector<std::size_t>& action_sequence,
                                      dyn::PredictScratch& scratch) const {
  assert(forecast.size() >= action_sequence.size());
  const env::FeatureSchema& schema = model.schema();
  const std::size_t zone_dim = schema.zone_temp_index();
  const std::size_t occ_dim = schema.occupancy_index();
  std::vector<double> x = schema.to_vector(obs);
  double discount = 1.0;
  double total = 0.0;
  for (std::size_t t = 0; t < action_sequence.size(); ++t) {
    const sim::SetpointPair action = actions_.action(action_sequence[t]);
    const double next_temp = model.predict(x, action, scratch);
    // r(f_hat(s_t, d_t, a_t), a_t): comfort of the predicted state plus the
    // energy proxy of the action taken, weighted by occupancy at step t.
    const bool occupied = x[occ_dim] > 0.5;
    total += discount * env::reward(reward_, next_temp, action, occupied);
    discount *= config_.gamma;

    // Advance the input to step t+1: predicted state + forecast disturbances.
    x[zone_dim] = next_temp;
    schema.apply_disturbance(forecast[t], x.data());
  }
  return total;
}

RolloutScratch& worker_rollout_scratch() {
  static thread_local RolloutScratch scratch;
  return scratch;
}

void RandomShooting::rollout_returns_slice(const dyn::DynamicsModel& model,
                                           const env::Observation& obs,
                                           const std::vector<env::Disturbance>& forecast,
                                           const std::vector<std::vector<std::size_t>>& sequences,
                                           std::size_t begin, std::size_t end,
                                           std::vector<double>& returns,
                                           RolloutScratch& scratch) const {
  assert(end <= sequences.size() && returns.size() >= sequences.size());
  const std::size_t n = end - begin;
  if (n == 0) return;
  std::size_t max_len = 0;
  for (std::size_t s = begin; s < end; ++s) max_len = std::max(max_len, sequences[s].size());
  assert(forecast.size() >= max_len);

  // Structure-of-arrays candidate state: row r holds candidate begin+r's
  // current model input (schema observation dims + the 2 setpoints of the
  // action about to be applied).
  const env::FeatureSchema& schema = model.schema();
  const std::size_t zone_dim = schema.zone_temp_index();
  const std::size_t occ_dim = schema.occupancy_index();
  const std::size_t heat_col = model.heat_index();
  const std::size_t cool_col = model.cool_index();
  const std::vector<double> x0 = schema.to_vector(obs);
  scratch.states.resize(n, model.input_dims());
  for (std::size_t r = 0; r < n; ++r) {
    std::copy(x0.begin(), x0.end(), scratch.states.row_data(r));
  }
  scratch.discounts.assign(n, 1.0);
  scratch.actions.resize(n);
  for (std::size_t s = begin; s < end; ++s) returns[s] = 0.0;

  for (std::size_t t = 0; t < max_len; ++t) {
    // Stage the step-t action of every still-live candidate into the two
    // setpoint columns. Finished candidates (shorter sequences) keep their
    // last state/action: they still ride through the batched forward — the
    // prediction is discarded, so they cannot affect any other row.
    for (std::size_t r = 0; r < n; ++r) {
      const std::vector<std::size_t>& seq = sequences[begin + r];
      if (t >= seq.size()) continue;
      const sim::SetpointPair action = actions_.action(seq[t]);
      scratch.actions[r] = action;
      scratch.states(r, heat_col) = action.heating_c;
      scratch.states(r, cool_col) = action.cooling_c;
    }
    // One batched forward advances every candidate in lock-step.
    model.predict_batch_into(scratch.states, scratch.next_temps, scratch.batch);

    const env::Disturbance& d = forecast[t];
    for (std::size_t r = 0; r < n; ++r) {
      if (t >= sequences[begin + r].size()) continue;
      const double next_temp = scratch.next_temps[r];
      const bool occupied = scratch.states(r, occ_dim) > 0.5;
      returns[begin + r] +=
          scratch.discounts[r] * env::reward(reward_, next_temp, scratch.actions[r], occupied);
      scratch.discounts[r] *= config_.gamma;

      double* row = scratch.states.row_data(r);
      row[zone_dim] = next_temp;
      schema.apply_disturbance(d, row);
    }
  }
}

void RandomShooting::rollout_returns(const dyn::DynamicsModel& model,
                                     const env::Observation& obs,
                                     const std::vector<env::Disturbance>& forecast,
                                     const std::vector<std::vector<std::size_t>>& sequences,
                                     std::vector<double>& returns) const {
  returns.resize(sequences.size());
  if (engine_ == nullptr || engine_->thread_count() <= 1) {
    rollout_returns_slice(model, obs, forecast, sequences, 0, sequences.size(), returns,
                          worker_rollout_scratch());
    return;
  }
  // The pool shards the batch into contiguous per-worker sub-batches; each
  // worker runs the lock-step pipeline on its slice with its own
  // persistent scratch. Slicing cannot change any candidate's arithmetic
  // (rows are independent through the batched forward), so decisions stay
  // bit-identical across thread counts.
  engine_->parallel_for(sequences.size(),
                        [&](std::size_t, std::size_t begin, std::size_t end) {
                          rollout_returns_slice(model, obs, forecast, sequences, begin, end,
                                                returns, worker_rollout_scratch());
                        });
}

std::vector<std::vector<std::size_t>> RandomShooting::draw_sequences(Rng& rng) const {
  std::vector<std::vector<std::size_t>> sequences(config_.samples);
  for (auto& sequence : sequences) {
    sequence.resize(config_.horizon);
    if (rng.bernoulli(config_.persistent_fraction)) {
      sequence.assign(config_.horizon, rng.index(actions_.size()));
    } else {
      for (auto& a : sequence) a = rng.index(actions_.size());
    }
  }
  return sequences;
}

std::size_t RandomShooting::optimize(const dyn::DynamicsModel& model,
                                     const env::Observation& obs,
                                     const std::vector<env::Disturbance>& forecast,
                                     Rng& rng) const {
  if (forecast.size() < config_.horizon) {
    throw std::invalid_argument("RandomShooting: forecast shorter than horizon");
  }
  // Draw every candidate first (the RNG stream is identical to the historical
  // draw-then-score loop, since scoring consumes no randomness), then score
  // the whole batch through the engine.
  const std::vector<std::vector<std::size_t>> sequences = draw_sequences(rng);
  std::vector<double> returns;
  rollout_returns(model, obs, forecast, sequences, returns);

  std::size_t best = 0;
  double best_return = -std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < config_.samples; ++s) {
    if (returns[s] > best_return) {
      best_return = returns[s];
      best = s;
    }
  }
  std::vector<std::size_t> best_sequence = sequences[best];

  if (config_.refine_first_action) {
    // Coordinate-descent pass on the executed action: tail fixed, first
    // action enumerated exhaustively (one batched |A|-rollout sweep).
    std::vector<std::vector<std::size_t>> candidates(actions_.size(), best_sequence);
    for (std::size_t a = 0; a < actions_.size(); ++a) candidates[a].front() = a;
    rollout_returns(model, obs, forecast, candidates, returns);
    for (std::size_t a = 0; a < actions_.size(); ++a) {
      if (returns[a] > best_return) {
        best_return = returns[a];
        best_sequence.front() = a;
      }
    }
  }
  return best_sequence.front();
}

}  // namespace verihvac::control
