#include "control/random_shooting.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace verihvac::control {

RandomShooting::RandomShooting(RandomShootingConfig config, const ActionSpace& actions,
                               env::RewardConfig reward)
    : config_(config), actions_(actions), reward_(reward) {
  if (config_.samples == 0 || config_.horizon == 0) {
    throw std::invalid_argument("RandomShooting: samples and horizon must be positive");
  }
}

double RandomShooting::rollout_return(const dyn::DynamicsModel& model,
                                      const env::Observation& obs,
                                      const std::vector<env::Disturbance>& forecast,
                                      const std::vector<std::size_t>& action_sequence) const {
  // Warm per-thread scratch keeps the single-sequence path allocation-free
  // (VIPER's per-candidate value estimation loops over this entry point).
  static thread_local dyn::PredictScratch scratch;
  return rollout_return(model, obs, forecast, action_sequence, scratch);
}

double RandomShooting::rollout_return(const dyn::DynamicsModel& model,
                                      const env::Observation& obs,
                                      const std::vector<env::Disturbance>& forecast,
                                      const std::vector<std::size_t>& action_sequence,
                                      dyn::PredictScratch& scratch) const {
  assert(forecast.size() >= action_sequence.size());
  std::vector<double> x = obs.to_vector();
  double discount = 1.0;
  double total = 0.0;
  for (std::size_t t = 0; t < action_sequence.size(); ++t) {
    const sim::SetpointPair action = actions_.action(action_sequence[t]);
    const double next_temp = model.predict(x, action, scratch);
    // r(f_hat(s_t, d_t, a_t), a_t): comfort of the predicted state plus the
    // energy proxy of the action taken, weighted by occupancy at step t.
    const bool occupied = x[env::kOccupancy] > 0.5;
    total += discount * env::reward(reward_, next_temp, action, occupied);
    discount *= config_.gamma;

    // Advance the input to step t+1: predicted state + forecast disturbances.
    const env::Disturbance& d = forecast[t];
    x[env::kZoneTemp] = next_temp;
    x[env::kOutdoorTemp] = d.weather.outdoor_temp_c;
    x[env::kHumidity] = d.weather.humidity_pct;
    x[env::kWind] = d.weather.wind_mps;
    x[env::kSolar] = d.weather.solar_wm2;
    x[env::kOccupancy] = d.occupants;
  }
  return total;
}

void RandomShooting::rollout_returns(const dyn::DynamicsModel& model,
                                     const env::Observation& obs,
                                     const std::vector<env::Disturbance>& forecast,
                                     const std::vector<std::vector<std::size_t>>& sequences,
                                     std::vector<double>& returns) const {
  returns.resize(sequences.size());
  if (engine_ == nullptr || engine_->thread_count() <= 1) {
    for (std::size_t s = 0; s < sequences.size(); ++s) {
      returns[s] = rollout_return(model, obs, forecast, sequences[s]);
    }
    return;
  }
  std::vector<dyn::PredictScratch> scratches(engine_->thread_count());
  engine_->parallel_for(sequences.size(),
                        [&](std::size_t worker, std::size_t begin, std::size_t end) {
                          dyn::PredictScratch& scratch = scratches[worker];
                          for (std::size_t s = begin; s < end; ++s) {
                            returns[s] = rollout_return(model, obs, forecast, sequences[s], scratch);
                          }
                        });
}

std::size_t RandomShooting::optimize(const dyn::DynamicsModel& model,
                                     const env::Observation& obs,
                                     const std::vector<env::Disturbance>& forecast,
                                     Rng& rng) const {
  if (forecast.size() < config_.horizon) {
    throw std::invalid_argument("RandomShooting: forecast shorter than horizon");
  }
  // Draw every candidate first (the RNG stream is identical to the historical
  // draw-then-score loop, since scoring consumes no randomness), then score
  // the whole batch through the engine.
  std::vector<std::vector<std::size_t>> sequences(config_.samples);
  for (auto& sequence : sequences) {
    sequence.resize(config_.horizon);
    if (rng.bernoulli(config_.persistent_fraction)) {
      sequence.assign(config_.horizon, rng.index(actions_.size()));
    } else {
      for (auto& a : sequence) a = rng.index(actions_.size());
    }
  }
  std::vector<double> returns;
  rollout_returns(model, obs, forecast, sequences, returns);

  std::size_t best = 0;
  double best_return = -std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < config_.samples; ++s) {
    if (returns[s] > best_return) {
      best_return = returns[s];
      best = s;
    }
  }
  std::vector<std::size_t> best_sequence = sequences[best];

  if (config_.refine_first_action) {
    // Coordinate-descent pass on the executed action: tail fixed, first
    // action enumerated exhaustively (one batched |A|-rollout sweep).
    std::vector<std::vector<std::size_t>> candidates(actions_.size(), best_sequence);
    for (std::size_t a = 0; a < actions_.size(); ++a) candidates[a].front() = a;
    rollout_returns(model, obs, forecast, candidates, returns);
    for (std::size_t a = 0; a < actions_.size(); ++a) {
      if (returns[a] > best_return) {
        best_return = returns[a];
        best_sequence.front() = a;
      }
    }
  }
  return best_sequence.front();
}

}  // namespace verihvac::control
