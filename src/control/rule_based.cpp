#include "control/rule_based.hpp"

namespace verihvac::control {

sim::SetpointPair RuleBasedController::act(const env::Observation& obs,
                                           const std::vector<env::Disturbance>& forecast) {
  (void)forecast;
  return obs.occupants > 0.5 ? occupied_ : unoccupied_;
}

}  // namespace verihvac::control
