// Cross-Entropy Method (CEM) optimizer.
//
// The third member of the shooting family, completing the optimizer
// ablation (RS = one-shot uniform, MPPI = softmax-reweighted refinement,
// CEM = elite-fraction refinement). Each iteration samples sequences from
// a per-step Gaussian over continuous setpoints, scores them with the
// shared discounted Eq. 2 return, and refits mean/std to the top
// elite_fraction of samples. Widely used as the planning optimizer in
// MBRL (PETS, PlaNet); included so bench/ablation_optimizer can ask
// whether the paper's choice of RS for distillation matters.
#pragma once

#include "control/random_shooting.hpp"

namespace verihvac::control {

struct CemConfig {
  std::size_t samples = 200;       ///< rollouts per iteration
  std::size_t horizon = 20;
  std::size_t iterations = 4;
  double gamma = 0.99;
  double elite_fraction = 0.1;     ///< top fraction refit per iteration
  double initial_sigma = 4.0;      ///< degC; covers the setpoint grids
  double min_sigma = 0.3;          ///< floor keeps late iterations exploring
};

class Cem {
 public:
  Cem(CemConfig config, const ActionSpace& actions, env::RewardConfig reward);

  /// Returns the chosen first-action index.
  std::size_t optimize(const dyn::DynamicsModel& model, const env::Observation& obs,
                       const std::vector<env::Disturbance>& forecast, Rng& rng) const;

  const CemConfig& config() const { return config_; }

  /// Parallelizes candidate scoring across the engine's thread pool (each
  /// iteration's samples are scored in lock-step batches; decisions stay
  /// bit-identical for any thread count).
  void set_engine(std::shared_ptr<const RolloutEngine> engine) {
    scorer_.set_engine(std::move(engine));
  }

 private:
  CemConfig config_;
  ActionSpace actions_;  ///< by value: a pointer would dangle on temporaries
  env::RewardConfig reward_;
  RandomShooting scorer_;  ///< reuses rollout_return
};

}  // namespace verihvac::control
