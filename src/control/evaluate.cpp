#include "control/evaluate.hpp"

namespace verihvac::control {

env::EpisodeMetrics run_episode(env::BuildingEnv& env, Controller& controller,
                                EpisodeTrace* trace) {
  env::EpisodeMetrics metrics;
  controller.reset();
  env::Observation obs = env.reset();

  const std::size_t horizon = controller.forecast_horizon();
  bool done = false;
  while (!done) {
    const std::vector<env::Disturbance> forecast = env.forecast(horizon);
    const sim::SetpointPair action = controller.act(obs, forecast);
    const env::StepOutcome outcome = env.step(action);
    metrics.add(outcome);
    if (trace != nullptr) {
      trace->zone_temps.push_back(outcome.observation.zone_temp_c);
      trace->actions.push_back(action);
      trace->rewards.push_back(outcome.reward);
      trace->occupied.push_back(outcome.occupied);
    }
    obs = outcome.observation;
    done = outcome.done;
  }
  return metrics;
}

}  // namespace verihvac::control
