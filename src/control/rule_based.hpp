// The building's default rule-based controller (baseline "default_agent").
//
// Mirrors the Sinergym 5Zone default schedule: comfort setpoints while the
// zone is occupied, deep setback while unoccupied. Zero computation at
// decision time — the reference point of the Table 3 overhead comparison.
#pragma once

#include "control/controller.hpp"

namespace verihvac::control {

class RuleBasedController final : public Controller {
 public:
  RuleBasedController(sim::SetpointPair occupied, sim::SetpointPair unoccupied)
      : occupied_(occupied), unoccupied_(unoccupied) {}

  sim::SetpointPair act(const env::Observation& obs,
                        const std::vector<env::Disturbance>& forecast) override;
  std::string name() const override { return "default"; }

 private:
  sim::SetpointPair occupied_;
  sim::SetpointPair unoccupied_;
};

}  // namespace verihvac::control
