// Thermal-zone parameters.
//
// Each zone is modelled as a 2R2C node pair: a fast "air" node (what the
// thermostat senses and the HVAC conditions) coupled to a slow "mass" node
// (structure/furniture) that stores heat across hours. This is the standard
// reduced-order abstraction of an EnergyPlus zone and captures the
// inertia/overshoot effects the paper's verification criteria reason about.
#pragma once

#include <string>

namespace verihvac::sim {

struct ZoneParams {
  std::string name;
  double floor_area_m2 = 70.0;

  /// Thermal capacitance of the air node [J/K] (air + light furnishings).
  double air_capacitance = 1.2e6;
  /// Thermal capacitance of the mass node [J/K] (structure).
  double mass_capacitance = 1.0e7;

  /// Envelope conductance air-node <-> outdoors [W/K] (0 for core zones).
  double ua_outdoor = 20.0;
  /// Coupling conductance air-node <-> mass-node [W/K].
  double ua_mass = 220.0;
  /// Infiltration conductance at zero wind [W/K]; grows with wind speed.
  double infiltration_ua = 3.0;
  /// Extra infiltration conductance per (m/s) of wind [W/K per m/s].
  double infiltration_wind_coeff = 0.6;

  /// Effective solar aperture [m^2] = glazing area x SHGC (0 for core).
  double solar_aperture_m2 = 6.0;
  /// Fraction of solar gain deposited in the mass node (rest heats the air).
  double solar_to_mass_fraction = 0.6;

  /// Sensible heat per occupant [W].
  double heat_per_occupant = 75.0;
  /// Equipment + lighting gain when the zone is occupied [W/m^2].
  double equipment_wm2 = 4.0;
};

/// Validates physical sanity (positive capacitances/conductances); throws
/// std::invalid_argument with a description on violation.
void validate(const ZoneParams& zone);

}  // namespace verihvac::sim
