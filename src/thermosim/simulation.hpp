// Control-step simulation driver.
//
// Wraps the thermal network behind the 15-minute control-step interface the
// rest of the library uses: one step = one setpoint command per zone + one
// weather record + occupancy, returning the new controlled-zone temperature
// and the interval's energy consumption. This is the surface the gym-style
// environment (envlib) builds on.
#pragma once

#include <vector>

#include "thermosim/building.hpp"
#include "thermosim/thermal_network.hpp"
#include "weather/occupancy.hpp"
#include "weather/weather_generator.hpp"

namespace verihvac::sim {

/// Result of one 15-minute control step.
struct StepResult {
  double controlled_zone_temp_c = 20.0;
  std::vector<double> zone_temps_c;
  double consumed_kwh = 0.0;               ///< whole-building HVAC site energy
  double controlled_zone_kwh = 0.0;        ///< controlled-zone HVAC share
};

class BuildingSimulator {
 public:
  BuildingSimulator(Building building, double substep_seconds = 60.0);

  const Building& building() const { return building_; }
  std::size_t controlled_zone() const { return building_.controlled_zone(); }

  /// Applies in-service drift (equipment wear / envelope leakage) to the
  /// running plant without disturbing its thermal state.
  void degrade(const Degradation& degradation);

  /// Resets all node temperatures to `temp_c`.
  void reset(double temp_c = 20.0);

  double controlled_zone_temp() const {
    return network_.air_temp(building_.controlled_zone());
  }
  std::vector<double> zone_temps() const;

  /// Advances one 15-minute control step. `setpoints` must contain one pair
  /// per zone (the environment applies agent setpoints to the controlled
  /// zone and the default schedule elsewhere).
  StepResult step(const std::vector<SetpointPair>& setpoints,
                  const weather::WeatherRecord& record, const std::vector<double>& occupants);

 private:
  Building building_;
  ThermalNetwork network_;
};

}  // namespace verihvac::sim
