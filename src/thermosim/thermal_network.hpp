// RC thermal-network integrator.
//
// State vector: [T_air_0 .. T_air_{n-1}, T_mass_0 .. T_mass_{n-1}].
// Conduction terms are integrated with backward Euler (unconditionally
// stable for the stiff air nodes); HVAC and internal/solar gains are held
// explicit across each substep, i.e. evaluated at the substep's starting
// temperatures, which mirrors how a real thermostat samples the zone.
#pragma once

#include <vector>

#include "thermosim/building.hpp"
#include "weather/weather_generator.hpp"

namespace verihvac::sim {

/// Boundary conditions of one substep.
struct BoundaryConditions {
  double outdoor_temp_c = 0.0;
  double wind_mps = 0.0;
  double solar_wm2 = 0.0;
  /// Occupant count per zone (heat gains + equipment trigger).
  std::vector<double> occupants;
};

/// Energy bookkeeping of an integration interval.
struct EnergyAccount {
  double consumed_joules = 0.0;   ///< total site energy drawn by all units
  double heating_joules = 0.0;    ///< heat delivered to zones (positive part)
  double cooling_joules = 0.0;    ///< heat removed from zones (positive number)
  double controlled_zone_consumed_joules = 0.0;

  EnergyAccount& operator+=(const EnergyAccount& other);
};

class ThermalNetwork {
 public:
  /// Takes its own copy of the building description, so callers may pass
  /// temporaries (e.g. `ThermalNetwork net(five_zone_building());`).
  explicit ThermalNetwork(Building building, double substep_seconds = 60.0);

  std::size_t zone_count() const { return building_.zone_count(); }

  /// Current air temperature of zone i [degC].
  double air_temp(std::size_t zone) const;
  double mass_temp(std::size_t zone) const;
  const std::vector<double>& state() const { return state_; }

  /// Applies in-service drift to the internal building copy; node
  /// temperatures are untouched, so this is safe mid-simulation (the
  /// fleet-harness degradation scenarios flip it between control steps).
  void degrade(const Degradation& degradation) { building_.degrade(degradation); }

  /// Resets all nodes to the given uniform temperature.
  void reset(double temp_c);
  /// Resets with distinct air/mass temperatures.
  void reset(const std::vector<double>& air, const std::vector<double>& mass);

  /// Advances the network by `duration_seconds` under fixed setpoints and
  /// boundary conditions, splitting into substeps internally. Returns the
  /// energy account of the interval.
  EnergyAccount advance(const std::vector<SetpointPair>& setpoints,
                        const BoundaryConditions& bc, double duration_seconds);

 private:
  EnergyAccount substep(const std::vector<SetpointPair>& setpoints,
                        const BoundaryConditions& bc, double dt);

  Building building_;
  double substep_seconds_;
  std::vector<double> state_;  // [air..., mass...]
};

}  // namespace verihvac::sim
