#include "thermosim/building_presets.hpp"

#include <stdexcept>

namespace verihvac::sim {
namespace {

ZoneParams perimeter_zone(const std::string& name, double area_m2, double aperture_m2) {
  ZoneParams z;
  z.name = name;
  z.floor_area_m2 = area_m2;
  // Effective air-node capacitance ~ 5x pure air (furnishings), mass node
  // ~150 kJ/K per m^2 of floor (light commercial construction).
  z.air_capacitance = area_m2 * 16.0e3;
  z.mass_capacitance = area_m2 * 110.0e3;
  z.ua_outdoor = 36.0;
  z.ua_mass = 3.2 * area_m2;
  z.infiltration_ua = 2.5;
  z.infiltration_wind_coeff = 0.55;
  z.solar_aperture_m2 = aperture_m2;
  return z;
}

HvacParams standard_unit() {
  HvacParams h;
  h.heating_capacity_w = 4200.0;
  h.cooling_capacity_w = 3600.0;
  h.throttling_range_k = 0.8;
  h.heating_efficiency = 0.85;
  h.cooling_cop = 3.0;
  h.fan_power_w = 110.0;
  return h;
}

}  // namespace

Building five_zone_building(double hvac_scale) {
  if (hvac_scale <= 0.0) {
    throw std::invalid_argument("five_zone_building: hvac_scale must be positive");
  }
  Building b;
  const auto scaled = [hvac_scale](HvacParams p) {
    p.heating_capacity_w *= hvac_scale;
    p.cooling_capacity_w *= hvac_scale;
    p.fan_power_w *= hvac_scale;  // constant specific fan power
    return p;
  };

  // Perimeter zones. South gets the largest solar aperture; east/west less;
  // north the least (January, northern hemisphere).
  const auto south =
      b.add_zone(perimeter_zone("SPACE1-1 (south)", 70.0, 9.0), scaled(standard_unit()));
  const auto east =
      b.add_zone(perimeter_zone("SPACE2-1 (east)", 70.0, 5.0), scaled(standard_unit()));
  const auto north =
      b.add_zone(perimeter_zone("SPACE3-1 (north)", 70.0, 2.0), scaled(standard_unit()));
  const auto west =
      b.add_zone(perimeter_zone("SPACE4-1 (west)", 70.0, 5.0), scaled(standard_unit()));

  // Core zone: no envelope contact, no glazing, bigger floor plate.
  ZoneParams core = perimeter_zone("SPACE5-1 (core)", 183.0, 0.0);
  core.ua_outdoor = 14.0;  // roof only
  core.infiltration_ua = 1.0;
  core.infiltration_wind_coeff = 0.1;
  HvacParams core_unit = standard_unit();
  core_unit.heating_capacity_w = 6000.0;
  core_unit.cooling_capacity_w = 5200.0;
  const auto core_idx = b.add_zone(core, scaled(core_unit));

  // Partition conductances: every perimeter zone shares a wall with the
  // core; adjacent perimeter zones share a corner partition.
  for (auto zone : {south, east, north, west}) b.connect(zone, core_idx, 55.0);
  b.connect(south, east, 14.0);
  b.connect(east, north, 14.0);
  b.connect(north, west, 14.0);
  b.connect(west, south, 14.0);

  b.set_controlled_zone(south);
  b.validate();
  return b;
}

Building single_zone_building() {
  Building b;
  b.add_zone(perimeter_zone("BOX", 50.0, 4.0), standard_unit());
  b.set_controlled_zone(0);
  b.validate();
  return b;
}

}  // namespace verihvac::sim
