// Multi-zone building description.
//
// A building is a set of zones plus a symmetric inter-zone conductance
// matrix (partition walls / shared plenum). One zone is designated the
// *controlled zone*: the RL agent actuates its setpoints, while the other
// zones follow the building's default schedule — matching the paper's
// single-controlled-zone formulation on a five-zone plant.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"
#include "thermosim/hvac.hpp"
#include "thermosim/zone.hpp"

namespace verihvac::sim {

class Building {
 public:
  Building() = default;

  /// Adds a zone (with its HVAC unit); returns its index.
  std::size_t add_zone(ZoneParams zone, HvacParams hvac);

  /// Sets the symmetric inter-zone conductance [W/K] between zones a and b.
  void connect(std::size_t a, std::size_t b, double ua);

  std::size_t zone_count() const { return zones_.size(); }
  const ZoneParams& zone(std::size_t i) const { return zones_.at(i); }
  const HvacParams& hvac(std::size_t i) const { return hvac_.at(i); }
  double interzone_ua(std::size_t a, std::size_t b) const;

  std::size_t controlled_zone() const { return controlled_zone_; }
  void set_controlled_zone(std::size_t i);

  double total_floor_area() const;

  /// Throws std::invalid_argument if the building is empty or inconsistent.
  void validate() const;

 private:
  std::vector<ZoneParams> zones_;
  std::vector<HvacParams> hvac_;
  Matrix interzone_;  // symmetric UA matrix, diagonal unused
  std::size_t controlled_zone_ = 0;
};

}  // namespace verihvac::sim
