// Multi-zone building description.
//
// A building is a set of zones plus a symmetric inter-zone conductance
// matrix (partition walls / shared plenum). One zone is designated the
// *controlled zone*: the RL agent actuates its setpoints, while the other
// zones follow the building's default schedule — matching the paper's
// single-controlled-zone formulation on a five-zone plant.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"
#include "thermosim/hvac.hpp"
#include "thermosim/zone.hpp"

namespace verihvac::sim {

/// In-service building drift, applied *in place* to an already-built plant
/// (the degradation/drift scenario axis of the fleet harness). Factors
/// multiply the as-built parameters, so 1.0 everywhere is a no-op:
///   * hvac_capacity_factor < 1 — equipment wear: every unit's heating and
///     cooling capacity shrinks (fan power is load-side and unchanged);
///   * heating_efficiency_factor < 1 — fouled furnace/coils: delivered heat
///     per unit fuel drops (clamped into the physical (0, 1] band);
///   * envelope_leak_factor > 1 — envelope leakage: outdoor-facing UA and
///     infiltration (base + wind term) grow, raising the load the same
///     setpoints must now meet.
struct Degradation {
  double hvac_capacity_factor = 1.0;
  double heating_efficiency_factor = 1.0;
  double envelope_leak_factor = 1.0;

  bool is_noop() const {
    return hvac_capacity_factor == 1.0 && heating_efficiency_factor == 1.0 &&
           envelope_leak_factor == 1.0;
  }
};

class Building {
 public:
  Building() = default;

  /// Adds a zone (with its HVAC unit); returns its index.
  std::size_t add_zone(ZoneParams zone, HvacParams hvac);

  /// Sets the symmetric inter-zone conductance [W/K] between zones a and b.
  void connect(std::size_t a, std::size_t b, double ua);

  std::size_t zone_count() const { return zones_.size(); }
  const ZoneParams& zone(std::size_t i) const { return zones_.at(i); }
  const HvacParams& hvac(std::size_t i) const { return hvac_.at(i); }
  double interzone_ua(std::size_t a, std::size_t b) const;

  std::size_t controlled_zone() const { return controlled_zone_; }
  void set_controlled_zone(std::size_t i);

  double total_floor_area() const;

  /// Applies in-service drift to every zone/unit (see Degradation). Throws
  /// std::invalid_argument on non-positive factors; the resulting
  /// parameters re-validate, so a degraded building is still physical.
  void degrade(const Degradation& degradation);

  /// Throws std::invalid_argument if the building is empty or inconsistent.
  void validate() const;

 private:
  std::vector<ZoneParams> zones_;
  std::vector<HvacParams> hvac_;
  Matrix interzone_;  // symmetric UA matrix, diagonal unused
  std::size_t controlled_zone_ = 0;
};

}  // namespace verihvac::sim
