#include "thermosim/hvac.hpp"

#include <algorithm>
#include <stdexcept>

namespace verihvac::sim {

HvacOutput hvac_output(const HvacParams& params, double air_temp_c,
                       const SetpointPair& setpoints) {
  HvacOutput out;
  // Defensive clamp: a crossed pair (heat > cool) would demand simultaneous
  // heating and cooling; resolve by honouring the heating setpoint.
  const double heat_sp = setpoints.heating_c;
  const double cool_sp = std::max(setpoints.cooling_c, heat_sp);

  if (air_temp_c < heat_sp) {
    const double demand = (heat_sp - air_temp_c) / params.throttling_range_k;
    const double fraction = std::clamp(demand, 0.0, 1.0);
    out.heat_to_zone_w = fraction * params.heating_capacity_w;
    out.consumed_power_w =
        out.heat_to_zone_w / params.heating_efficiency + params.fan_power_w * fraction;
  } else if (air_temp_c > cool_sp) {
    const double demand = (air_temp_c - cool_sp) / params.throttling_range_k;
    const double fraction = std::clamp(demand, 0.0, 1.0);
    const double cooling_w = fraction * params.cooling_capacity_w;
    out.heat_to_zone_w = -cooling_w;
    out.consumed_power_w = cooling_w / params.cooling_cop + params.fan_power_w * fraction;
  }
  return out;
}

HvacOutput ideal_load_output(const HvacParams& params, double air_temp_c,
                             const SetpointPair& setpoints, double net_load_w,
                             double air_capacitance_j_per_k, double dt_seconds) {
  HvacOutput out;
  const double heat_sp = setpoints.heating_c;
  const double cool_sp = std::max(setpoints.cooling_c, heat_sp);

  // Power that moves the air node from air_temp_c to `target` over dt,
  // holding the rest of the balance at its substep-start value.
  const auto required_w = [&](double target) {
    return air_capacitance_j_per_k * (target - air_temp_c) / dt_seconds - net_load_w;
  };

  if (air_temp_c < heat_sp) {
    const double needed = required_w(heat_sp);
    if (needed > 0.0) {
      out.heat_to_zone_w = std::min(needed, params.heating_capacity_w);
      const double fraction =
          params.heating_capacity_w > 0.0 ? out.heat_to_zone_w / params.heating_capacity_w
                                          : 0.0;
      out.consumed_power_w =
          out.heat_to_zone_w / params.heating_efficiency + params.fan_power_w * fraction;
    }
  } else if (air_temp_c > cool_sp) {
    const double needed = required_w(cool_sp);
    if (needed < 0.0) {
      const double cooling_w = std::min(-needed, params.cooling_capacity_w);
      const double fraction =
          params.cooling_capacity_w > 0.0 ? cooling_w / params.cooling_capacity_w : 0.0;
      out.heat_to_zone_w = -cooling_w;
      out.consumed_power_w = cooling_w / params.cooling_cop + params.fan_power_w * fraction;
    }
  }
  return out;
}

void validate(const HvacParams& params) {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("hvac: ") + what);
  };
  require(params.heating_capacity_w >= 0.0, "heating capacity must be non-negative");
  require(params.cooling_capacity_w >= 0.0, "cooling capacity must be non-negative");
  require(params.throttling_range_k > 0.0, "throttling range must be positive");
  require(params.heating_efficiency > 0.0 && params.heating_efficiency <= 1.0,
          "heating efficiency must lie in (0,1]");
  require(params.cooling_cop > 0.0, "cooling COP must be positive");
  require(params.fan_power_w >= 0.0, "fan power must be non-negative");
}

}  // namespace verihvac::sim
