#include "thermosim/zone.hpp"

#include <stdexcept>

namespace verihvac::sim {

void validate(const ZoneParams& zone) {
  auto require = [&zone](bool ok, const char* what) {
    if (!ok) {
      throw std::invalid_argument("zone '" + zone.name + "': " + what);
    }
  };
  require(zone.floor_area_m2 > 0.0, "floor area must be positive");
  require(zone.air_capacitance > 0.0, "air capacitance must be positive");
  require(zone.mass_capacitance > 0.0, "mass capacitance must be positive");
  require(zone.ua_outdoor >= 0.0, "UA to outdoors must be non-negative");
  require(zone.ua_mass > 0.0, "air-mass coupling must be positive");
  require(zone.infiltration_ua >= 0.0, "infiltration UA must be non-negative");
  require(zone.infiltration_wind_coeff >= 0.0, "wind coefficient must be non-negative");
  require(zone.solar_aperture_m2 >= 0.0, "solar aperture must be non-negative");
  require(zone.solar_to_mass_fraction >= 0.0 && zone.solar_to_mass_fraction <= 1.0,
          "solar mass fraction must lie in [0,1]");
}

}  // namespace verihvac::sim
