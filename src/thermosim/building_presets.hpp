// Preset buildings.
//
// five_zone_building() reproduces the paper's evaluation plant: a 463 m^2
// single-story office with four perimeter zones and one core zone (the
// EnergyPlus "5ZoneAutoDXVAV" layout Sinergym wraps). Zone SPACE1-1
// (south perimeter) is the controlled zone, as in Sinergym's 5Zone
// environments.
#pragma once

#include "thermosim/building.hpp"

namespace verihvac::sim {

/// The 463 m^2 five-zone office used in all experiments. `hvac_scale`
/// multiplies every unit's heating/cooling capacity (and fan power to
/// keep specific fan energy constant) — the reduced-order analogue of
/// EnergyPlus autosizing for a harsher design day (e.g. a desert July
/// needs more tonnage than the January default).
Building five_zone_building(double hvac_scale = 1.0);

/// A single-zone test box (for unit tests and the quickstart example).
Building single_zone_building();

}  // namespace verihvac::sim
