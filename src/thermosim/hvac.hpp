// Per-zone HVAC equipment model.
//
// The plant is an "ideal loads with capacity limits" unit, the same
// abstraction EnergyPlus offers as ZoneHVAC:IdealLoadsAirSystem. Two
// thermostat formulations are provided:
//   * ideal_load_output — computes the exact power that lands the air
//     node on the active setpoint over the next substep given the zone's
//     net load, capped by equipment capacity. This matches EnergyPlus
//     ideal-loads semantics (no steady-state droop: a zone under load
//     holds its setpoint as long as capacity suffices) and is what the
//     thermal network uses.
//   * hvac_output — a proportional-band (throttling-range) thermostat,
//     the classic droop model. Kept as a documented alternative; its
//     steady state sits load_fraction * throttling_range away from the
//     setpoint, which makes a default schedule pinned at the comfort
//     boundary violate chronically — the reason the network does not use
//     it.
// Consumed (site) energy accounts for gas-heating efficiency, cooling COP
// and fan power, which is what the kWh meter of Fig. 4 reports.
#pragma once

namespace verihvac::sim {

struct HvacParams {
  double heating_capacity_w = 4000.0;
  double cooling_capacity_w = 3500.0;
  /// Proportional thermostat band [K]: output ramps 0..capacity across it.
  double throttling_range_k = 0.8;
  /// Gas furnace efficiency (delivered heat / consumed fuel energy).
  double heating_efficiency = 0.85;
  /// Cooling coefficient of performance (heat removed / electric energy).
  double cooling_cop = 3.0;
  /// Supply-fan electric power while the unit runs [W].
  double fan_power_w = 120.0;
};

/// Commanded setpoint pair for one zone [degC]. Invariant: heat <= cool
/// (enforced by the action space; the equipment clamps defensively).
struct SetpointPair {
  double heating_c = 15.0;
  double cooling_c = 30.0;
};

/// Instantaneous equipment output at one substep.
struct HvacOutput {
  double heat_to_zone_w = 0.0;   ///< >0 heating, <0 cooling (delivered)
  double consumed_power_w = 0.0; ///< site power draw (fuel + electric + fan)
};

/// Proportional-band (droop) thermostat output for the current air
/// temperature and setpoints.
HvacOutput hvac_output(const HvacParams& params, double air_temp_c,
                       const SetpointPair& setpoints);

/// Ideal-loads thermostat: the equipment delivers exactly the power that
/// brings the air node to the active setpoint over `dt_seconds`, given
/// the zone's instantaneous `net_load_w` (all non-HVAC heat flows into
/// the air node, >0 warming) and air-node capacitance, capped by the
/// heating/cooling capacity. Inside the deadband the unit is off.
HvacOutput ideal_load_output(const HvacParams& params, double air_temp_c,
                             const SetpointPair& setpoints, double net_load_w,
                             double air_capacitance_j_per_k, double dt_seconds);

/// Throws std::invalid_argument on nonphysical parameters.
void validate(const HvacParams& params);

}  // namespace verihvac::sim
