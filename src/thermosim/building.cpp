#include "thermosim/building.hpp"

#include <algorithm>
#include <stdexcept>

namespace verihvac::sim {

std::size_t Building::add_zone(ZoneParams zone, HvacParams hvac) {
  verihvac::sim::validate(zone);
  verihvac::sim::validate(hvac);
  zones_.push_back(std::move(zone));
  hvac_.push_back(hvac);
  // Grow the symmetric UA matrix, preserving existing couplings.
  Matrix grown(zones_.size(), zones_.size());
  for (std::size_t r = 0; r + 1 < zones_.size(); ++r) {
    for (std::size_t c = 0; c + 1 < zones_.size(); ++c) grown(r, c) = interzone_(r, c);
  }
  interzone_ = std::move(grown);
  return zones_.size() - 1;
}

void Building::connect(std::size_t a, std::size_t b, double ua) {
  if (a >= zones_.size() || b >= zones_.size() || a == b) {
    throw std::invalid_argument("Building::connect: bad zone indices");
  }
  if (ua < 0.0) throw std::invalid_argument("Building::connect: negative UA");
  interzone_(a, b) = ua;
  interzone_(b, a) = ua;
}

double Building::interzone_ua(std::size_t a, std::size_t b) const {
  if (a >= zones_.size() || b >= zones_.size()) {
    throw std::invalid_argument("Building::interzone_ua: bad zone indices");
  }
  if (a == b) return 0.0;
  return interzone_(a, b);
}

void Building::set_controlled_zone(std::size_t i) {
  if (i >= zones_.size()) {
    throw std::invalid_argument("Building::set_controlled_zone: index out of range");
  }
  controlled_zone_ = i;
}

double Building::total_floor_area() const {
  double total = 0.0;
  for (const auto& z : zones_) total += z.floor_area_m2;
  return total;
}

void Building::degrade(const Degradation& degradation) {
  if (degradation.hvac_capacity_factor <= 0.0 || degradation.heating_efficiency_factor <= 0.0 ||
      degradation.envelope_leak_factor <= 0.0) {
    throw std::invalid_argument("Building::degrade: factors must be positive");
  }
  for (auto& unit : hvac_) {
    unit.heating_capacity_w *= degradation.hvac_capacity_factor;
    unit.cooling_capacity_w *= degradation.hvac_capacity_factor;
    unit.heating_efficiency =
        std::min(1.0, unit.heating_efficiency * degradation.heating_efficiency_factor);
  }
  for (auto& zone : zones_) {
    zone.ua_outdoor *= degradation.envelope_leak_factor;
    zone.infiltration_ua *= degradation.envelope_leak_factor;
    zone.infiltration_wind_coeff *= degradation.envelope_leak_factor;
  }
  validate();
}

void Building::validate() const {
  if (zones_.empty()) throw std::invalid_argument("building has no zones");
  if (controlled_zone_ >= zones_.size()) {
    throw std::invalid_argument("controlled zone out of range");
  }
  for (const auto& z : zones_) verihvac::sim::validate(z);
  for (const auto& h : hvac_) verihvac::sim::validate(h);
}

}  // namespace verihvac::sim
