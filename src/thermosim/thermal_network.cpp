#include "thermosim/thermal_network.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/linalg.hpp"

namespace verihvac::sim {

EnergyAccount& EnergyAccount::operator+=(const EnergyAccount& other) {
  consumed_joules += other.consumed_joules;
  heating_joules += other.heating_joules;
  cooling_joules += other.cooling_joules;
  controlled_zone_consumed_joules += other.controlled_zone_consumed_joules;
  return *this;
}

ThermalNetwork::ThermalNetwork(Building building, double substep_seconds)
    : building_(std::move(building)), substep_seconds_(substep_seconds) {
  building_.validate();
  if (substep_seconds <= 0.0) {
    throw std::invalid_argument("substep must be positive");
  }
  state_.assign(2 * building_.zone_count(), 20.0);
}

double ThermalNetwork::air_temp(std::size_t zone) const {
  assert(zone < zone_count());
  return state_[zone];
}

double ThermalNetwork::mass_temp(std::size_t zone) const {
  assert(zone < zone_count());
  return state_[zone_count() + zone];
}

void ThermalNetwork::reset(double temp_c) {
  state_.assign(2 * zone_count(), temp_c);
}

void ThermalNetwork::reset(const std::vector<double>& air, const std::vector<double>& mass) {
  if (air.size() != zone_count() || mass.size() != zone_count()) {
    throw std::invalid_argument("reset: wrong vector sizes");
  }
  for (std::size_t i = 0; i < zone_count(); ++i) {
    state_[i] = air[i];
    state_[zone_count() + i] = mass[i];
  }
}

EnergyAccount ThermalNetwork::advance(const std::vector<SetpointPair>& setpoints,
                                      const BoundaryConditions& bc,
                                      double duration_seconds) {
  if (setpoints.size() != zone_count()) {
    throw std::invalid_argument("advance: one setpoint pair per zone required");
  }
  if (bc.occupants.size() != zone_count()) {
    throw std::invalid_argument("advance: one occupant count per zone required");
  }
  EnergyAccount total;
  double remaining = duration_seconds;
  while (remaining > 1e-9) {
    const double dt = std::min(substep_seconds_, remaining);
    total += substep(setpoints, bc, dt);
    remaining -= dt;
  }
  return total;
}

EnergyAccount ThermalNetwork::substep(const std::vector<SetpointPair>& setpoints,
                                      const BoundaryConditions& bc, double dt) {
  const std::size_t n = zone_count();
  const std::size_t dim = 2 * n;

  // Explicit source terms at substep-start temperatures. First pass: all
  // non-HVAC gains, so the ideal-loads thermostat can see the zone's net
  // load before sizing its output.
  EnergyAccount account;
  std::vector<double> q(dim, 0.0);  // [W] into each node
  for (std::size_t i = 0; i < n; ++i) {
    const ZoneParams& zone = building_.zone(i);

    // Internal gains (people + equipment while occupied).
    const double occupants = bc.occupants[i];
    q[i] += occupants * zone.heat_per_occupant;
    if (occupants > 0.5) q[i] += zone.equipment_wm2 * zone.floor_area_m2;

    // Solar split between air and mass nodes.
    const double solar_gain = bc.solar_wm2 * zone.solar_aperture_m2;
    q[i] += solar_gain * (1.0 - zone.solar_to_mass_fraction);
    q[n + i] += solar_gain * zone.solar_to_mass_fraction;
  }

  // Second pass: ideal-loads HVAC per zone, sized against the air node's
  // instantaneous balance (gains + envelope + mass + inter-zone flows).
  for (std::size_t i = 0; i < n; ++i) {
    const ZoneParams& zone = building_.zone(i);
    const double ua_inf =
        zone.infiltration_ua + zone.infiltration_wind_coeff * bc.wind_mps;
    const double ua_env = zone.ua_outdoor + ua_inf;
    double net_load_w = q[i] + ua_env * (bc.outdoor_temp_c - state_[i]) +
                        zone.ua_mass * (state_[n + i] - state_[i]);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double ua = building_.interzone_ua(i, j);
      if (ua > 0.0) net_load_w += ua * (state_[j] - state_[i]);
    }

    const HvacOutput hvac = ideal_load_output(building_.hvac(i), state_[i], setpoints[i],
                                              net_load_w, zone.air_capacitance, dt);
    q[i] += hvac.heat_to_zone_w;
    account.consumed_joules += hvac.consumed_power_w * dt;
    if (i == building_.controlled_zone()) {
      account.controlled_zone_consumed_joules += hvac.consumed_power_w * dt;
    }
    if (hvac.heat_to_zone_w > 0.0) {
      account.heating_joules += hvac.heat_to_zone_w * dt;
    } else {
      account.cooling_joules += -hvac.heat_to_zone_w * dt;
    }
  }

  // Conductance matrix K and capacitance vector C for backward Euler:
  //   C * (T' - T)/dt = -K T' + q + K_out * T_out_terms
  // We assemble A = C/dt + K and b = C/dt * T + q + boundary couplings.
  Matrix a(dim, dim);
  std::vector<double> b(dim, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    const ZoneParams& zone = building_.zone(i);
    const double c_air = zone.air_capacitance;
    const double c_mass = zone.mass_capacitance;
    const double ua_inf =
        zone.infiltration_ua + zone.infiltration_wind_coeff * bc.wind_mps;
    const double ua_env = zone.ua_outdoor + ua_inf;

    // Air node i.
    a(i, i) += c_air / dt + ua_env + zone.ua_mass;
    a(i, n + i) -= zone.ua_mass;
    b[i] += (c_air / dt) * state_[i] + q[i] + ua_env * bc.outdoor_temp_c;

    // Mass node i.
    a(n + i, n + i) += c_mass / dt + zone.ua_mass;
    a(n + i, i) -= zone.ua_mass;
    b[n + i] += (c_mass / dt) * state_[n + i] + q[n + i];

    // Inter-zone air-air couplings.
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double ua = building_.interzone_ua(i, j);
      if (ua <= 0.0) continue;
      a(i, i) += ua;
      a(i, j) -= ua;
    }
  }

  state_ = solve_linear(std::move(a), std::move(b));
  return account;
}

}  // namespace verihvac::sim
