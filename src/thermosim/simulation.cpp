#include "thermosim/simulation.hpp"

#include "common/units.hpp"

namespace verihvac::sim {

BuildingSimulator::BuildingSimulator(Building building, double substep_seconds)
    : building_(std::move(building)), network_(building_, substep_seconds) {}

void BuildingSimulator::degrade(const Degradation& degradation) {
  building_.degrade(degradation);
  network_.degrade(degradation);
}

void BuildingSimulator::reset(double temp_c) { network_.reset(temp_c); }

std::vector<double> BuildingSimulator::zone_temps() const {
  std::vector<double> temps(building_.zone_count());
  for (std::size_t i = 0; i < temps.size(); ++i) temps[i] = network_.air_temp(i);
  return temps;
}

StepResult BuildingSimulator::step(const std::vector<SetpointPair>& setpoints,
                                   const weather::WeatherRecord& record,
                                   const std::vector<double>& occupants) {
  BoundaryConditions bc;
  bc.outdoor_temp_c = record.outdoor_temp_c;
  bc.wind_mps = record.wind_mps;
  bc.solar_wm2 = record.solar_wm2;
  bc.occupants = occupants;

  const EnergyAccount account = network_.advance(setpoints, bc, kControlStepSeconds);

  StepResult result;
  result.zone_temps_c = zone_temps();
  result.controlled_zone_temp_c = result.zone_temps_c[building_.controlled_zone()];
  result.consumed_kwh = joules_to_kwh(account.consumed_joules);
  result.controlled_zone_kwh = joules_to_kwh(account.controlled_zone_consumed_joules);
  return result;
}

}  // namespace verihvac::sim
