// Per-building session state for thousands of concurrent sessions.
//
// Every simulated building the service controls holds a session: which
// policy bundle serves it, a bounded observation history, per-kind decision
// counters, and — the determinism keystone — the session's root RNG seed.
// Decision d of session s draws from the counter-based stream
// Rng::stream(seed_s, d) (common/rng.hpp), so an MBRL decision depends only
// on (session, decision index, observation, forecast): never on which
// worker thread served it, what else shared its micro-batch, or the order
// batches drained. That is the whole bit-identity contract of the serving
// layer — the scalar per-session path and the cross-session micro-batched
// path replay the exact same streams (locked in by
// tests/serve/request_scheduler_test.cpp at VERI_HVAC_THREADS=1/4/8).
//
// The table is sharded: session ids hash to independent locks, so front-end
// threads serving different buildings do not contend.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/request.hpp"

namespace verihvac::serve {

struct SessionConfig {
  /// PolicyRegistry key of the bundle serving this building.
  std::string policy_key = "default";
  /// Root seed of the session's per-decision RNG streams.
  std::uint64_t seed = 0;
  /// Observations retained (most recent last); 0 disables history.
  std::size_t history_limit = 8;
};

/// Observable session state (snapshot() returns a copy).
struct SessionState {
  SessionId id = 0;
  SessionConfig config;
  std::uint64_t decisions = 0;  ///< total decisions = next stream id
  std::uint64_t dt_decisions = 0;
  std::uint64_t mbrl_decisions = 0;
  /// Manager-wide admission-clock reading at this session's last
  /// begin_decision (its open() reading before any decision) — the
  /// idleness measure evict_idle() sweeps on.
  std::uint64_t last_active = 0;
  std::vector<env::Observation> history;
};

/// Everything a decision needs from its session, captured atomically at
/// admission time so serving can proceed without the session lock.
struct DecisionTicket {
  SessionId session = 0;
  std::string policy_key;
  std::uint64_t seed = 0;
  /// Stream id of this decision: the session's decision counter at
  /// admission. Rng::stream(seed, stream) replays the decision's draws.
  std::uint64_t stream = 0;
};

class SessionManager {
 public:
  explicit SessionManager(std::size_t shards = 16);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session; ids are unique for the manager's lifetime.
  SessionId open(SessionConfig config);

  /// Closes a session; returns whether it existed.
  bool close(SessionId id);

  /// Evicts every session that has been idle for more than
  /// `max_idle_decisions` manager-wide admissions (i.e. admission_clock()
  /// - last_active > max_idle_decisions); returns how many were closed.
  /// Long fleet runs with building churn call this periodically (the
  /// adaptation controller's housekeeping does) so shards don't grow
  /// unboundedly. Eviction only erases map entries: surviving sessions
  /// keep their seeds and decision counters, so their RNG streams are
  /// untouched — a decision after a sweep is bit-identical to the same
  /// decision without it (test-locked). When `evicted_ids` is non-null the
  /// closed session ids are appended to it (the controller forwards them
  /// to the durable telemetry store, whose compaction drops their records).
  std::size_t evict_idle(std::uint64_t max_idle_decisions,
                         std::vector<SessionId>* evicted_ids = nullptr);

  /// Total begin_decision() admissions across all sessions — the logical
  /// clock idleness is measured against.
  std::uint64_t admission_clock() const { return admissions_.load(std::memory_order_relaxed); }

  bool contains(SessionId id) const;
  std::size_t size() const;
  /// Number of lock shards (session id % shard_count() selects a shard).
  /// The request scheduler aligns its MBRL queue sharding to this so a
  /// session's admissions and its batch queue live on the same shard
  /// index.
  std::size_t shard_count() const { return shards_.size(); }

  /// Admits one decision: records the observation into the bounded
  /// history, bumps the per-kind counters, and returns the ticket
  /// (policy key + RNG stream coordinates). One lock acquisition; throws
  /// std::out_of_range for an unknown session.
  DecisionTicket begin_decision(SessionId id, RequestKind kind, const env::Observation& obs);

  /// Copy of the session's current state (throws std::out_of_range).
  SessionState snapshot(SessionId id) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<SessionId, SessionState> sessions;
  };

  Shard& shard_for(SessionId id) { return shards_[id % shards_.size()]; }
  const Shard& shard_for(SessionId id) const { return shards_[id % shards_.size()]; }

  std::vector<Shard> shards_;
  std::atomic<SessionId> next_id_{1};
  std::atomic<std::uint64_t> admissions_{0};
};

}  // namespace verihvac::serve
