// Fleet harness — drives N buildings x climates x presets through the
// serving stack and aggregates comfort/energy/latency.
//
// Each (climate x preset) cell gets its own verified bundle + dynamics
// model (from an injectable asset provider, same pattern as the
// certification campaign); each building in the cell gets its own
// BuildingEnv (per-building weather seed), its own session, and a traffic
// class: the leading mbrl_fraction of every cell runs on the MBRL
// fallback, the rest on the DT fast path. Every control step the harness
// serves the whole fleet — DT decisions inline, MBRL decisions submitted
// together so the scheduler's micro-batching window coalesces them into
// cross-session batches — applies the returned setpoints to the plants,
// and meters energy, comfort violations and per-request serving latency.
//
// Decisions (hence plant trajectories, energy and violations) are
// deterministic for a fixed config: bit-identical across thread counts and
// across async-vs-inline serving, by the scheduler's determinism contract.
// Only the latency numbers vary run to run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/request_scheduler.hpp"

namespace verihvac::serve {

struct FleetPreset {
  std::string name = "baseline";
  double hvac_scale = 1.0;  ///< env::EnvConfig::hvac_capacity_scale
};

/// The per-cell serving assets: a verified bundle for the fast path and
/// the dynamics model backing the MBRL fallback.
struct FleetAssets {
  std::shared_ptr<const core::DtPolicy> policy;
  std::shared_ptr<const dyn::DynamicsModel> model;
};

/// Called once per (climate x preset) cell, serially, in grid order.
using FleetAssetProvider = std::function<FleetAssets(const std::string& climate,
                                                     const FleetPreset& preset)>;

struct FleetConfig {
  std::vector<std::string> climates{"Pittsburgh"};
  std::vector<FleetPreset> presets{{"baseline", 1.0}};
  std::size_t buildings_per_cell = 4;
  /// Leading fraction of each cell's buildings served by the MBRL
  /// fallback; the rest take the DT fast path.
  double mbrl_fraction = 0.25;
  /// Control steps per building (clamped to the episode length).
  std::size_t steps = 16;
  int days = 2;  ///< episode length backing the envs
  std::uint64_t seed = 2024;
  /// Fallback optimizer scale (serving-sized, not paper-sized).
  control::RandomShootingConfig rs{64, 5, 0.99};
  SchedulerConfig scheduler;
  /// true: MBRL requests go through the queue + scheduler thread (futures,
  /// micro-batching). false: each is solved inline at submit — the
  /// per-session reference; decisions are identical either way.
  bool async = true;
};

struct LatencyStats {
  std::size_t count = 0;
  /// Wall-clock spent serving this class. summarize_latencies() fills it
  /// with the latency sum (exact for sequential, non-overlapping calls);
  /// callers whose requests overlap — the async MBRL cohort — overwrite
  /// it with the measured serving window so overlapping time counts once
  /// and decisions_per_sec() stays honest.
  double serve_seconds = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;

  double decisions_per_sec() const {
    return serve_seconds > 0.0 ? static_cast<double>(count) / serve_seconds : 0.0;
  }
};

/// Sorts `seconds` in place and returns its percentile summary.
LatencyStats summarize_latencies(std::vector<double>& seconds);

struct FleetReport {
  std::size_t buildings = 0;
  std::size_t steps = 0;
  std::size_t dt_decisions = 0;
  std::size_t mbrl_decisions = 0;
  LatencyStats dt_latency;
  LatencyStats mbrl_latency;
  double energy_kwh = 0.0;
  std::size_t occupied_steps = 0;
  std::size_t occupied_violations = 0;
  double wall_seconds = 0.0;
  RequestScheduler::Stats scheduler_stats;

  double violation_rate() const {
    return occupied_steps == 0
               ? 0.0
               : static_cast<double>(occupied_violations) / static_cast<double>(occupied_steps);
  }

  /// Human-readable block for CLI/bench output.
  std::string summary() const;
  /// One JSON object (no trailing newline) for BENCH_serve.json rows.
  std::string to_json() const;
};

class FleetHarness {
 public:
  /// `pool` defaults to the shared VERI_HVAC_THREADS pool.
  FleetHarness(FleetConfig config, FleetAssetProvider assets,
               std::shared_ptr<const common::TaskPool> pool = nullptr);

  /// Builds the fleet (bundles installed, sessions opened) and drives it
  /// for config.steps. One fleet pass per harness instance: session
  /// decision counters advance, so call sites wanting a fresh replay
  /// construct a fresh harness.
  FleetReport run();

  const PolicyRegistry& registry() const { return *registry_; }
  const SessionManager& sessions() const { return *sessions_; }
  RequestScheduler& scheduler() { return *scheduler_; }

 private:
  FleetConfig config_;
  FleetAssetProvider assets_;
  std::shared_ptr<PolicyRegistry> registry_;
  std::shared_ptr<SessionManager> sessions_;
  std::unique_ptr<RequestScheduler> scheduler_;
};

}  // namespace verihvac::serve
