// Fleet harness — drives N buildings x climates x presets through the
// serving stack and aggregates comfort/energy/latency.
//
// Each (climate x preset) cell gets its own verified bundle + dynamics
// model (from an injectable asset provider, same pattern as the
// certification campaign); each building in the cell gets its own
// BuildingEnv (per-building weather seed), its own session, and a traffic
// class: the leading mbrl_fraction of every cell runs on the MBRL
// fallback, the rest on the DT fast path. Every control step the harness
// serves the whole fleet — DT decisions inline, MBRL decisions submitted
// together so the scheduler's micro-batching window coalesces them into
// cross-session batches — applies the returned setpoints to the plants,
// and meters energy, comfort violations and per-request serving latency.
//
// Decisions (hence plant trajectories, energy and violations) are
// deterministic for a fixed config: bit-identical across thread counts and
// across async-vs-inline serving, by the scheduler's determinism contract.
// Only the latency numbers vary run to run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/request_scheduler.hpp"
#include "thermosim/building.hpp"

namespace verihvac::serve {

class FleetHarness;

struct FleetPreset {
  std::string name = "baseline";
  double hvac_scale = 1.0;  ///< env::EnvConfig::hvac_capacity_scale
};

/// The per-cell serving assets: a verified bundle for the fast path and
/// the dynamics model backing the MBRL fallback.
struct FleetAssets {
  std::shared_ptr<const core::DtPolicy> policy;
  std::shared_ptr<const dyn::DynamicsModel> model;
};

/// Called once per (climate x preset) cell, serially, in grid order.
using FleetAssetProvider = std::function<FleetAssets(const std::string& climate,
                                                     const FleetPreset& preset)>;

/// One mid-run drift injection: before fleet step `at_step`, every
/// building's plant degrades in place (HVAC efficiency loss, envelope
/// leak — see sim::Degradation). The serving stack is not told: detecting
/// the change from telemetry is the adaptation loop's job.
struct FleetDriftEvent {
  std::size_t at_step = 0;
  sim::Degradation degradation;
};

struct FleetConfig {
  std::vector<std::string> climates{"Pittsburgh"};
  std::vector<FleetPreset> presets{{"baseline", 1.0}};
  std::size_t buildings_per_cell = 4;
  /// Leading fraction of each cell's buildings served by the MBRL
  /// fallback; the rest take the DT fast path.
  double mbrl_fraction = 0.25;
  /// Control steps per building (clamped to the episode length).
  std::size_t steps = 16;
  int days = 2;  ///< episode length backing the envs
  std::uint64_t seed = 2024;
  /// Fallback optimizer scale (serving-sized, not paper-sized).
  control::RandomShootingConfig rs{64, 5, 0.99};
  SchedulerConfig scheduler;
  /// SLO budget stamped onto every MBRL request
  /// (ControlRequest::latency_budget); 0 = no per-request budget, the
  /// scheduler's default_latency_budget / fixed batch_window governs.
  std::chrono::microseconds mbrl_latency_budget{0};
  /// true: MBRL requests go through the queue + scheduler thread (futures,
  /// micro-batching). false: each is solved inline at submit — the
  /// per-session reference; decisions are identical either way.
  bool async = true;
  /// Mid-run degradation scenario (empty = stationary buildings).
  std::vector<FleetDriftEvent> drift;
  /// Decision tap installed into the scheduler (telemetry capture).
  std::shared_ptr<DecisionTap> tap;
  /// Called once per opened session, after open() — the telemetry log
  /// registers (session, seed, policy key) here, off the serving path.
  std::function<void(SessionId, const SessionConfig&)> on_session_open;
  /// Called after every fleet step with the harness and the step index
  /// just completed — the closed-loop benches pump the adaptation
  /// controller here.
  std::function<void(FleetHarness&, std::size_t)> on_step;
};

struct LatencyStats {
  std::size_t count = 0;
  /// Wall-clock spent serving this class. summarize_latencies() fills it
  /// with the latency sum (exact for sequential, non-overlapping calls);
  /// callers whose requests overlap — the async MBRL cohort — overwrite
  /// it with the measured serving window so overlapping time counts once
  /// and decisions_per_sec() stays honest.
  double serve_seconds = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;

  double decisions_per_sec() const {
    return serve_seconds > 0.0 ? static_cast<double>(count) / serve_seconds : 0.0;
  }
};

/// Sorts `seconds` in place and returns its percentile summary.
LatencyStats summarize_latencies(std::vector<double>& seconds);

/// Fleet-wide plant metrics of one control step (the drift benches window
/// these into pre-drift / degraded / post-adaptation phases).
struct FleetStepMetrics {
  double energy_kwh = 0.0;
  std::size_t occupied_steps = 0;
  std::size_t occupied_violations = 0;
  /// Highest registry version that served a DT decision this step — a
  /// jump marks the hot-swap landing.
  std::uint64_t max_policy_version = 0;

  double violation_rate() const {
    return occupied_steps == 0
               ? 0.0
               : static_cast<double>(occupied_violations) / static_cast<double>(occupied_steps);
  }
};

struct FleetReport {
  std::size_t buildings = 0;
  std::size_t steps = 0;
  std::size_t dt_decisions = 0;
  std::size_t mbrl_decisions = 0;
  LatencyStats dt_latency;
  LatencyStats mbrl_latency;
  double energy_kwh = 0.0;
  std::size_t occupied_steps = 0;
  std::size_t occupied_violations = 0;
  double wall_seconds = 0.0;
  RequestScheduler::Stats scheduler_stats;
  /// Decisions whose future failed (scheduler shutdown/exception). The
  /// hot-swap contract is zero: a promotion must never drop an in-flight
  /// decision.
  std::size_t dropped_decisions = 0;
  std::vector<FleetStepMetrics> step_metrics;  ///< one entry per fleet step

  double violation_rate() const {
    return occupied_steps == 0
               ? 0.0
               : static_cast<double>(occupied_violations) / static_cast<double>(occupied_steps);
  }

  /// Human-readable block for CLI/bench output.
  std::string summary() const;
  /// One JSON object (no trailing newline) for BENCH_serve.json rows.
  std::string to_json() const;
};

class FleetHarness {
 public:
  /// `pool` defaults to the shared VERI_HVAC_THREADS pool.
  FleetHarness(FleetConfig config, FleetAssetProvider assets,
               std::shared_ptr<const common::TaskPool> pool = nullptr);

  /// Builds the fleet (bundles installed, sessions opened) and drives it
  /// for config.steps. One fleet pass per harness instance: session
  /// decision counters advance, so call sites wanting a fresh replay
  /// construct a fresh harness.
  FleetReport run();

  const PolicyRegistry& registry() const { return *registry_; }
  const SessionManager& sessions() const { return *sessions_; }
  RequestScheduler& scheduler() { return *scheduler_; }

  /// Shared handles for the adaptation loop: the controller that promotes
  /// a re-certified bundle installs into the same registry/scheduler the
  /// harness serves from.
  const std::shared_ptr<PolicyRegistry>& registry_ptr() const { return registry_; }
  const std::shared_ptr<SessionManager>& sessions_ptr() const { return sessions_; }

 private:
  FleetConfig config_;
  FleetAssetProvider assets_;
  std::shared_ptr<PolicyRegistry> registry_;
  std::shared_ptr<SessionManager> sessions_;
  std::unique_ptr<RequestScheduler> scheduler_;
};

}  // namespace verihvac::serve
