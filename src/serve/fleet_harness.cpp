#include "serve/fleet_harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/timing.hpp"
#include "envlib/env.hpp"
#include "weather/climate.hpp"

namespace verihvac::serve {

namespace {

double percentile(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double position = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t index = static_cast<std::size_t>(std::llround(position));
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

LatencyStats summarize_latencies(std::vector<double>& seconds) {
  LatencyStats stats;
  stats.count = seconds.size();
  if (seconds.empty()) return stats;
  std::sort(seconds.begin(), seconds.end());
  double total = 0.0;
  for (const double s : seconds) total += s;
  stats.serve_seconds = total;
  stats.mean_us = total / static_cast<double>(seconds.size()) * 1e6;
  stats.p50_us = percentile(seconds, 50.0) * 1e6;
  stats.p95_us = percentile(seconds, 95.0) * 1e6;
  stats.p99_us = percentile(seconds, 99.0) * 1e6;
  stats.max_us = seconds.back() * 1e6;
  return stats;
}

std::string FleetReport::summary() const {
  char line[256];
  std::ostringstream out;
  std::snprintf(line, sizeof(line), "fleet: %zu buildings x %zu steps, %.2fs wall\n", buildings,
                steps, wall_seconds);
  out << line;
  const auto row = [&](const char* label, std::size_t count, const LatencyStats& lat) {
    std::snprintf(line, sizeof(line),
                  "  %-6s %8zu decisions %12.0f/s  p50 %8.1fus  p95 %8.1fus  p99 %8.1fus\n",
                  label, count, lat.decisions_per_sec(), lat.p50_us, lat.p95_us, lat.p99_us);
    out << line;
  };
  row("DT", dt_decisions, dt_latency);
  row("MBRL", mbrl_decisions, mbrl_latency);
  std::snprintf(line, sizeof(line),
                "  batches: %llu (max %llu, %.1f req/batch)  energy %.1f kWh  violation %.3f\n",
                static_cast<unsigned long long>(scheduler_stats.batches),
                static_cast<unsigned long long>(scheduler_stats.max_batch),
                scheduler_stats.batches == 0
                    ? 0.0
                    : static_cast<double>(scheduler_stats.mbrl_served) /
                          static_cast<double>(scheduler_stats.batches),
                energy_kwh, violation_rate());
  out << line;
  return out.str();
}

std::string FleetReport::to_json() const {
  std::ostringstream out;
  const auto lat = [&](const char* name, const LatencyStats& stats) {
    out << "\"" << name << "\": {\"count\": " << stats.count
        << ", \"decisions_per_sec\": " << stats.decisions_per_sec()
        << ", \"mean_us\": " << stats.mean_us << ", \"p50_us\": " << stats.p50_us
        << ", \"p95_us\": " << stats.p95_us << ", \"p99_us\": " << stats.p99_us
        << ", \"max_us\": " << stats.max_us << "}";
  };
  out << "{\"buildings\": " << buildings << ", \"steps\": " << steps
      << ", \"dt_decisions\": " << dt_decisions << ", \"mbrl_decisions\": " << mbrl_decisions
      << ", ";
  lat("dt_latency", dt_latency);
  out << ", ";
  lat("mbrl_latency", mbrl_latency);
  out << ", \"energy_kwh\": " << energy_kwh << ", \"violation_rate\": " << violation_rate()
      << ", \"wall_seconds\": " << wall_seconds
      << ", \"batches\": " << scheduler_stats.batches
      << ", \"max_batch\": " << scheduler_stats.max_batch
      << ", \"deadline_closes\": " << scheduler_stats.deadline_closes
      << ", \"dropped_decisions\": " << dropped_decisions << "}";
  return out.str();
}

FleetHarness::FleetHarness(FleetConfig config, FleetAssetProvider assets,
                           std::shared_ptr<const common::TaskPool> pool)
    : config_(std::move(config)),
      assets_(std::move(assets)),
      registry_(std::make_shared<PolicyRegistry>()),
      sessions_(std::make_shared<SessionManager>()) {
  scheduler_ = std::make_unique<RequestScheduler>(config_.scheduler, registry_, sessions_,
                                                  config_.rs, control::ActionSpace{},
                                                  env::RewardConfig{}, std::move(pool));
  if (config_.tap != nullptr) scheduler_->set_tap(config_.tap);
}

FleetReport FleetHarness::run() {
  struct Building {
    SessionId session = 0;
    RequestKind kind = RequestKind::kDtPolicy;
    std::unique_ptr<env::BuildingEnv> env;
    env::Observation obs;
    bool done = false;
  };

  // Provision the grid: one bundle + model per (climate x preset) cell,
  // one environment + session per building.
  std::vector<Building> fleet;
  std::size_t building_index = 0;
  std::size_t episode_steps = config_.steps;
  for (const std::string& climate : config_.climates) {
    for (const FleetPreset& preset : config_.presets) {
      const std::string key = climate + "/" + preset.name;
      const FleetAssets assets = assets_(climate, preset);
      registry_->install(key, assets.policy);
      scheduler_->install_model(key, assets.model);

      const std::size_t fallback_count = static_cast<std::size_t>(
          std::ceil(config_.mbrl_fraction * static_cast<double>(config_.buildings_per_cell)));
      for (std::size_t b = 0; b < config_.buildings_per_cell; ++b, ++building_index) {
        env::EnvConfig env_config;
        env_config.climate = weather::profile_by_name(climate);
        env_config.days = config_.days;
        env_config.hvac_capacity_scale = preset.hvac_scale;
        env_config.weather_seed = config_.seed * 1000003ull + building_index;

        Building building;
        building.kind =
            b < fallback_count ? RequestKind::kMbrlFallback : RequestKind::kDtPolicy;
        building.env = std::make_unique<env::BuildingEnv>(env_config);
        building.obs = building.env->reset();
        SessionConfig session;
        session.policy_key = key;
        session.seed = config_.seed + 7919ull * building_index;
        building.session = sessions_->open(session);
        if (config_.on_session_open) config_.on_session_open(building.session, session);
        episode_steps = std::min(episode_steps, building.env->horizon_steps());
        fleet.push_back(std::move(building));
      }
    }
  }

  if (config_.async && !scheduler_->running()) scheduler_->start();

  FleetReport report;
  report.buildings = fleet.size();
  report.steps = episode_steps;
  std::vector<double> dt_latencies;
  std::vector<double> mbrl_latencies;
  double dt_serve_wall = 0.0;
  double mbrl_serve_wall = 0.0;  // submit -> last completion, overlap counted once

  report.step_metrics.resize(episode_steps);

  const auto t_run = std::chrono::steady_clock::now();
  for (std::size_t step = 0; step < episode_steps; ++step) {
    FleetStepMetrics& step_metrics = report.step_metrics[step];

    // Drift injection: the plants silently change; the serving stack only
    // ever finds out through telemetry residuals.
    for (const FleetDriftEvent& event : config_.drift) {
      if (event.at_step != step) continue;
      for (Building& building : fleet) {
        if (!building.done) building.env->apply_degradation(event.degradation);
      }
    }

    // DT fast path: inline, one serving call per building, timed per call.
    for (Building& building : fleet) {
      if (building.done || building.kind != RequestKind::kDtPolicy) continue;
      ControlRequest request;
      request.session = building.session;
      request.kind = RequestKind::kDtPolicy;
      request.observation = building.obs;
      const auto t0 = std::chrono::steady_clock::now();
      const ControlDecision decision = scheduler_->serve(request);
      dt_latencies.push_back(seconds_since(t0));
      dt_serve_wall += dt_latencies.back();  // inline calls never overlap
      ++report.dt_decisions;
      step_metrics.max_policy_version =
          std::max(step_metrics.max_policy_version, decision.policy_version);

      const env::StepOutcome outcome = building.env->step(decision.action);
      report.energy_kwh += outcome.energy_kwh;
      step_metrics.energy_kwh += outcome.energy_kwh;
      if (outcome.occupied) {
        ++report.occupied_steps;
        ++step_metrics.occupied_steps;
        if (outcome.comfort_violation) {
          ++report.occupied_violations;
          ++step_metrics.occupied_violations;
        }
      }
      building.obs = outcome.observation;
      building.done = outcome.done;
    }

    // MBRL fallback: the step's whole cohort is submitted together so the
    // micro-batching window coalesces it into cross-session batches.
    std::vector<Building*> cohort;
    for (Building& building : fleet) {
      if (!building.done && building.kind == RequestKind::kMbrlFallback) {
        cohort.push_back(&building);
      }
    }
    std::vector<std::future<ControlDecision>> futures;
    std::vector<std::chrono::steady_clock::time_point> submitted;
    futures.reserve(cohort.size());
    submitted.reserve(cohort.size());
    const auto t_cohort = std::chrono::steady_clock::now();
    for (Building* building : cohort) {
      ControlRequest request;
      request.session = building->session;
      request.kind = RequestKind::kMbrlFallback;
      request.observation = building->obs;
      request.forecast = building->env->forecast(config_.rs.horizon);
      request.latency_budget = config_.mbrl_latency_budget;
      submitted.push_back(std::chrono::steady_clock::now());
      futures.push_back(scheduler_->submit(std::move(request)));
    }
    // Collect every decision before touching the plants: the serving
    // window (first submit -> last completion) must not meter env time.
    std::vector<ControlDecision> cohort_decisions(cohort.size());
    std::vector<bool> cohort_served(cohort.size(), false);
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      try {
        cohort_decisions[i] = futures[i].get();
        cohort_served[i] = true;
        // Only decisions actually served enter the latency/throughput
        // metrics: an exception's time-to-failure is not a serving
        // latency.
        mbrl_latencies.push_back(seconds_since(submitted[i]));
        ++report.mbrl_decisions;
      } catch (...) {
        // A dropped in-flight decision. The hot-swap contract says this
        // never happens during a promotion; the drift benches assert 0.
        ++report.dropped_decisions;
      }
    }
    if (!cohort.empty()) mbrl_serve_wall += seconds_since(t_cohort);
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      if (!cohort_served[i]) continue;
      Building& building = *cohort[i];
      const env::StepOutcome outcome = building.env->step(cohort_decisions[i].action);
      report.energy_kwh += outcome.energy_kwh;
      step_metrics.energy_kwh += outcome.energy_kwh;
      if (outcome.occupied) {
        ++report.occupied_steps;
        ++step_metrics.occupied_steps;
        if (outcome.comfort_violation) {
          ++report.occupied_violations;
          ++step_metrics.occupied_violations;
        }
      }
      building.obs = outcome.observation;
      building.done = outcome.done;
    }

    if (config_.on_step) config_.on_step(*this, step);
  }
  report.wall_seconds = seconds_since(t_run);

  report.dt_latency = summarize_latencies(dt_latencies);
  report.mbrl_latency = summarize_latencies(mbrl_latencies);
  // Throughput denominators: measured serving windows, not latency sums —
  // async cohort latencies overlap, and summing them would understate
  // MBRL throughput by roughly the micro-batch size.
  report.dt_latency.serve_seconds = dt_serve_wall;
  report.mbrl_latency.serve_seconds = mbrl_serve_wall;
  report.scheduler_stats = scheduler_->stats();
  return report;
}

}  // namespace verihvac::serve
