#include "serve/session_manager.hpp"

#include <stdexcept>
#include <utility>

namespace verihvac::serve {

SessionManager::SessionManager(std::size_t shards) : shards_(shards == 0 ? 1 : shards) {}

SessionId SessionManager::open(SessionConfig config) {
  const SessionId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  SessionState state;
  state.id = id;
  state.config = std::move(config);
  state.last_active = admissions_.load(std::memory_order_relaxed);
  if (state.config.history_limit > 0) state.history.reserve(state.config.history_limit);
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.sessions.emplace(id, std::move(state));
  return id;
}

bool SessionManager::close(SessionId id) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.sessions.erase(id) > 0;
}

std::size_t SessionManager::evict_idle(std::uint64_t max_idle_decisions,
                                       std::vector<SessionId>* evicted_ids) {
  const std::uint64_t now = admissions_.load(std::memory_order_relaxed);
  std::size_t evicted = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.sessions.begin(); it != shard.sessions.end();) {
      // A session stamped *after* the clock snapshot (concurrent
      // begin_decision) reads as last_active > now; it is maximally
      // fresh, never idle — the unsigned subtraction must not wrap.
      const std::uint64_t last = it->second.last_active;
      if (last <= now && now - last > max_idle_decisions) {
        if (evicted_ids != nullptr) evicted_ids->push_back(it->first);
        it = shard.sessions.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

bool SessionManager::contains(SessionId id) const {
  const Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.sessions.count(id) > 0;
}

std::size_t SessionManager::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.sessions.size();
  }
  return total;
}

DecisionTicket SessionManager::begin_decision(SessionId id, RequestKind kind,
                                              const env::Observation& obs) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    throw std::out_of_range("SessionManager: unknown session " + std::to_string(id));
  }
  SessionState& state = it->second;
  state.last_active = admissions_.fetch_add(1, std::memory_order_relaxed) + 1;

  DecisionTicket ticket;
  ticket.session = id;
  ticket.policy_key = state.config.policy_key;
  ticket.seed = state.config.seed;
  ticket.stream = state.decisions;

  ++state.decisions;
  if (kind == RequestKind::kDtPolicy) {
    ++state.dt_decisions;
  } else {
    ++state.mbrl_decisions;
  }
  if (state.config.history_limit > 0) {
    if (state.history.size() == state.config.history_limit) {
      state.history.erase(state.history.begin());
    }
    state.history.push_back(obs);
  }
  return ticket;
}

SessionState SessionManager::snapshot(SessionId id) const {
  const Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    throw std::out_of_range("SessionManager: unknown session " + std::to_string(id));
  }
  return it->second;
}

}  // namespace verihvac::serve
