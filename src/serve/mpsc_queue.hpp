// Bounded blocking MPSC queue — the scheduler's admission-control stage.
//
// Many front-end threads push control requests; one scheduler thread pops
// and coalesces them into micro-batches. The bound is load shedding by
// back-pressure: when the consumer falls behind, producers block in push()
// instead of growing an unbounded backlog (tail latency surfaces at the
// edge, where callers can time out, rather than as silent queue bloat).
// close() releases everyone: pending pushes fail, pops drain what remains.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace verihvac::serve {

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Blocks while the queue is full. Returns false iff the queue was (or
  /// became) closed — the item is then dropped and the caller must not
  /// expect it to be served.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available. Returns false when the queue is
  /// closed and fully drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Waits until `deadline` for an item: the micro-batching window. Returns
  /// false on timeout or when closed-and-drained.
  bool pop_until(T& out, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_until(lock, deadline, [this] { return closed_ || !items_.empty(); })) {
      return false;
    }
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking pop (drains stragglers inside an open batch window).
  bool try_pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Reopens a closed queue so push/pop work again. Only valid once the
  /// consumer has exited and producers have observed the close — the
  /// scheduler uses it to support stop() -> start() cycles.
  void reopen() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace verihvac::serve
