#include "serve/policy_registry.hpp"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/policy_io.hpp"

namespace verihvac::serve {

std::uint64_t PolicyRegistry::install(const std::string& key,
                                      std::shared_ptr<const core::DtPolicy> policy) {
  if (policy == nullptr) {
    throw std::invalid_argument("PolicyRegistry::install: null policy for key '" + key + "'");
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // A hot-swap must not change the observation layout out from under the
  // sessions already serving this key: their feature vectors would be
  // silently misread by the new tree. Heterogeneous schemas coexist fine
  // under *different* keys; replacing a bundle requires the same schema.
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.policy->schema() != policy->schema()) {
    throw std::invalid_argument(
        "PolicyRegistry::install: schema mismatch for key '" + key + "': incumbent uses '" +
        it->second.policy->schema().name() + "' (" +
        std::to_string(it->second.policy->schema().dims()) + " dims), replacement uses '" +
        policy->schema().name() + "' (" + std::to_string(policy->schema().dims()) +
        " dims); erase the key first to change schemas");
  }
  const std::uint64_t version = next_version_++;
  entries_[key] = PolicySnapshot{std::move(policy), version};
  return version;
}

std::uint64_t PolicyRegistry::install_file(const std::string& key, const std::string& path) {
  // Parse outside the lock: a slow disk must not stall serving lookups.
  auto policy = std::make_shared<const core::DtPolicy>(core::load_policy(path));
  return install(key, std::move(policy));
}

PolicySnapshot PolicyRegistry::lookup(const std::string& key) const {
  PolicySnapshot snapshot = try_lookup(key);
  if (snapshot.policy == nullptr) {
    throw std::out_of_range("PolicyRegistry: no bundle installed for key '" + key + "'");
  }
  return snapshot;
}

PolicySnapshot PolicyRegistry::try_lookup(const std::string& key) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? PolicySnapshot{} : it->second;
}

bool PolicyRegistry::contains(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.count(key) > 0;
}

bool PolicyRegistry::erase(const std::string& key) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return entries_.erase(key) > 0;
}

std::size_t PolicyRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.size();
}

std::vector<std::string> PolicyRegistry::keys() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

}  // namespace verihvac::serve
