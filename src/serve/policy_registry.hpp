// Versioned, hot-swappable store of verified DT policy bundles.
//
// The deployable artifact of the paper is the policy bundle
// (core/policy_io): a CART tree plus the action-space enumeration it was
// fitted against. At fleet scale one process serves many bundles — one per
// building preset x comfort band (the campaign grid of PR 2) — and bundles
// get re-extracted and re-certified while traffic is live. The registry
// gives that lifecycle a thread-safe home:
//
//   * install() publishes a bundle under a string key ("Pittsburgh/
//     oversized/winter"-style, the campaign scenario convention) and bumps
//     a registry-global monotonic version;
//   * lookup() is the serving fast path: a shared-lock map find returning a
//     shared_ptr snapshot, so a hot-swap never invalidates a decision that
//     is already in flight — in-flight requests finish on the version they
//     looked up, new requests see the new one;
//   * no lock is held while deciding, only while copying the pointer.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/dt_policy.hpp"

namespace verihvac::serve {

/// What lookup() hands a serving thread: an owning snapshot of the bundle
/// plus the version it was published as.
struct PolicySnapshot {
  std::shared_ptr<const core::DtPolicy> policy;
  std::uint64_t version = 0;
};

class PolicyRegistry {
 public:
  /// Publishes (or hot-swaps) the bundle under `key`; returns the version
  /// assigned. Versions are monotonic across the whole registry, so any
  /// observed version order is a publication order.
  std::uint64_t install(const std::string& key, std::shared_ptr<const core::DtPolicy> policy);

  /// Loads a policy-bundle file (core::load_policy) and installs it.
  std::uint64_t install_file(const std::string& key, const std::string& path);

  /// Serving lookup. Throws std::out_of_range for an unknown key.
  PolicySnapshot lookup(const std::string& key) const;

  /// Non-throwing variant: empty snapshot (null policy, version 0) on miss.
  PolicySnapshot try_lookup(const std::string& key) const;

  bool contains(const std::string& key) const;
  /// Removes a bundle; returns whether the key existed. In-flight
  /// snapshots keep their shared_ptr alive.
  bool erase(const std::string& key);

  std::size_t size() const;
  std::vector<std::string> keys() const;

  /// Total lookup() / try_lookup() calls (hit or miss) — serving telemetry.
  std::uint64_t lookup_count() const { return lookups_.load(std::memory_order_relaxed); }

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, PolicySnapshot> entries_;
  std::uint64_t next_version_ = 1;
  mutable std::atomic<std::uint64_t> lookups_{0};
};

}  // namespace verihvac::serve
