#include "serve/request_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace verihvac::serve {

namespace {

void atomic_max(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t observed = target.load(std::memory_order_relaxed);
  while (observed < value &&
         !target.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

RequestScheduler::RequestScheduler(SchedulerConfig config,
                                   std::shared_ptr<const PolicyRegistry> registry,
                                   std::shared_ptr<SessionManager> sessions,
                                   control::RandomShootingConfig rs_config,
                                   control::ActionSpace actions, env::RewardConfig reward,
                                   std::shared_ptr<const common::TaskPool> pool)
    : config_(config),
      registry_(std::move(registry)),
      sessions_(std::move(sessions)),
      actions_(std::move(actions)),
      rs_(rs_config, actions_, reward),
      pool_(pool != nullptr ? std::move(pool) : common::TaskPool::shared()),
      obs_{&obs::counter("serve_dt_served_total"),
           &obs::counter("serve_mbrl_served_total"),
           &obs::counter("serve_batches_total"),
           &obs::counter("serve_batched_requests_total"),
           &obs::counter("serve_deadline_closes_total"),
           &obs::gauge("serve_queue_depth"),
           &obs::histogram("serve_shard_queue_depth"),
           &obs::histogram("serve_batch_size"),
           &obs::histogram("serve_deadline_slack_seconds"),
           &obs::histogram("serve_dt_latency_seconds"),
           &obs::histogram("serve_mbrl_solve_seconds")} {
  if (registry_ == nullptr || sessions_ == nullptr) {
    throw std::invalid_argument("RequestScheduler: registry and sessions must be non-null");
  }
  // Queue sharding defaults to the session manager's lock sharding so a
  // session's admissions and its batch queue share one shard index.
  const std::size_t shards =
      config_.queue_shards > 0 ? config_.queue_shards : sessions_->shard_count();
  queues_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    queues_.push_back(std::make_unique<BoundedMpscQueue<Pending>>(config_.queue_capacity));
  }
}

RequestScheduler::~RequestScheduler() { stop(); }

std::uint64_t RequestScheduler::install_model(const std::string& key,
                                              std::shared_ptr<const dyn::DynamicsModel> model) {
  std::unique_lock<std::shared_mutex> lock(models_mutex_);
  const std::uint64_t generation = next_model_generation_++;
  models_[key] = ModelEntry{std::move(model), generation};
  return generation;
}

std::uint64_t RequestScheduler::set_default_model(
    std::shared_ptr<const dyn::DynamicsModel> model) {
  std::unique_lock<std::shared_mutex> lock(models_mutex_);
  const std::uint64_t generation = next_model_generation_++;
  default_model_ = ModelEntry{std::move(model), generation};
  return generation;
}

void RequestScheduler::set_tap(std::shared_ptr<DecisionTap> tap) { tap_ = std::move(tap); }

RequestScheduler::ModelEntry RequestScheduler::model_for(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(models_mutex_);
  const auto it = models_.find(key);
  return it != models_.end() ? it->second : default_model_;
}

void RequestScheduler::start() {
  if (running()) return;
  workers_.reserve(queues_.size());
  for (std::size_t shard = 0; shard < queues_.size(); ++shard) {
    workers_.emplace_back([this, shard] { worker_loop(shard); });
  }
}

void RequestScheduler::stop() {
  if (workers_.empty()) return;  // never started: the queues were never used
  for (const auto& queue : queues_) queue->close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // The workers drain their queues before exiting; fail anything that
  // could still be stranded (its admission already consumed a stream
  // index, so a silent drop would hang the caller's future), then reopen
  // so a later start() serves again.
  for (const auto& queue : queues_) {
    Pending leftover;
    while (queue->try_pop(leftover)) {
      leftover.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("RequestScheduler: stopped before request was served")));
    }
    queue->reopen();
  }
}

std::size_t RequestScheduler::queue_depth() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue->size();
  return total;
}

std::chrono::steady_clock::time_point RequestScheduler::deadline_for(
    const ControlRequest& request) const {
  const std::chrono::microseconds budget =
      request.latency_budget.count() > 0 ? request.latency_budget
                                         : config_.default_latency_budget;
  if (budget.count() <= 0) return std::chrono::steady_clock::time_point::max();
  return std::chrono::steady_clock::now() + budget;
}

ControlDecision RequestScheduler::serve_dt(const ControlRequest& request) {
  DecisionTap* const tap = tap_.get();
  bool timed = tap != nullptr && config_.tap_time_dt;
  if (!timed && tap != nullptr && config_.dt_timing_sample_period > 0) {
    // Sampled timing: one in P decisions per serving thread pays the two
    // clock reads. A thread-local countdown (no shared counter to bounce
    // between front-end cores, no per-decision divide — a % by the
    // runtime period costs several percent of the whole DT path) keeps
    // the duty cycle exact; which wall instants get sampled is timing
    // telemetry, not decision state, so thread-affinity is fine.
    thread_local std::uint64_t dt_timing_countdown = 0;
    if (dt_timing_countdown == 0) dt_timing_countdown = config_.dt_timing_sample_period;
    timed = --dt_timing_countdown == 0;
  }
  const auto t0 =
      timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};

  const DecisionTicket ticket =
      sessions_->begin_decision(request.session, RequestKind::kDtPolicy, request.observation);
  const PolicySnapshot snapshot = registry_->lookup(ticket.policy_key);
  const std::size_t index =
      snapshot.policy->decide_index(snapshot.policy->schema().to_vector(request.observation));
  dt_served_.fetch_add(1, std::memory_order_relaxed);
  obs_.dt_served->add(1);

  ControlDecision decision;
  decision.action_index = index;
  decision.action = snapshot.policy->actions().action(index);
  decision.kind = RequestKind::kDtPolicy;
  decision.policy_version = snapshot.version;

  if (tap != nullptr) {
    DecisionEvent event;
    event.session = ticket.session;
    event.decision_index = ticket.stream;
    event.session_seed = ticket.seed;
    event.kind = RequestKind::kDtPolicy;
    event.policy_key = &ticket.policy_key;
    event.policy_version = snapshot.version;
    event.action_index = decision.action_index;
    event.action = decision.action;
    event.observation = &request.observation;
    event.schema = &snapshot.policy->schema();
    event.latency_seconds =
        timed ? std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count()
              : 0.0;
    event.timed = timed;
    if (timed) obs_.dt_latency->observe(event.latency_seconds);
    tap->on_decision(event);
  }
  return decision;
}

ControlDecision RequestScheduler::serve(const ControlRequest& request) {
  if (request.kind == RequestKind::kDtPolicy) return serve_dt(request);
  return submit(request).get();
}

std::future<ControlDecision> RequestScheduler::submit(ControlRequest request) {
  if (request.kind == RequestKind::kDtPolicy) {
    std::promise<ControlDecision> promise;
    std::future<ControlDecision> future = promise.get_future();
    try {
      promise.set_value(serve_dt(request));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
    return future;
  }

  Pending pending;
  // Admission order fixes the RNG stream: session counters advance in
  // submit order, so a decision's draws are pinned before any batching.
  pending.ticket =
      sessions_->begin_decision(request.session, request.kind, request.observation);
  pending.deadline = deadline_for(request);
  const SessionId session = request.session;
  pending.request = std::move(request);
  std::future<ControlDecision> future = pending.promise.get_future();

  if (!running()) {
    // No scheduler threads: solve inline as a batch of one (the
    // per-session reference path; bit-identical to the batched path by
    // construction).
    std::vector<Pending> batch;
    batch.push_back(std::move(pending));
    solve_batch(batch);
    return future;
  }
  if (!queue_for(session).push(std::move(pending))) {
    throw std::runtime_error("RequestScheduler: queue closed during shutdown");
  }
  return future;
}

std::vector<ControlDecision> RequestScheduler::serve_batch(
    const std::vector<ControlRequest>& requests) {
  std::vector<ControlDecision> decisions(requests.size());
  std::vector<Pending> batch;
  std::vector<std::future<ControlDecision>> futures(requests.size());
  std::vector<bool> pending_slot(requests.size(), false);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ControlRequest& request = requests[i];
    if (request.kind == RequestKind::kDtPolicy) {
      decisions[i] = serve_dt(request);
      continue;
    }
    Pending pending;
    pending.ticket =
        sessions_->begin_decision(request.session, request.kind, request.observation);
    pending.request = request;
    futures[i] = pending.promise.get_future();
    pending_slot[i] = true;
    batch.push_back(std::move(pending));
  }
  if (!batch.empty()) solve_batch(batch);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (pending_slot[i]) decisions[i] = futures[i].get();
  }
  return decisions;
}

void RequestScheduler::worker_loop(std::size_t shard) {
  BoundedMpscQueue<Pending>& queue = *queues_[shard];
  Pending first;
  while (queue.pop(first)) {
    std::vector<Pending> batch;
    batch.push_back(std::move(first));
    if (config_.micro_batching && config_.max_batch > 1) {
      // Hold the batch open for stragglers: everything that lands before
      // the close instant (up to max_batch) rides the same cross-session
      // solve. The close is deadline-driven: it starts at the fixed
      // batch_window upper bound and every member's latency budget pulls
      // it forward to (deadline - deadline_margin), reserving the margin
      // for the solve itself. An arrival with a nearly exhausted budget
      // therefore closes the batch immediately rather than idling out the
      // window against its SLO.
      const auto opened = std::chrono::steady_clock::now();
      auto close = opened + config_.batch_window;
      bool deadline_limited = false;
      const auto tighten = [&](const Pending& pending) {
        if (pending.deadline == std::chrono::steady_clock::time_point::max()) return;
        const auto latest = pending.deadline - config_.deadline_margin;
        if (latest < close) {
          close = latest;
          deadline_limited = true;
        }
      };
      tighten(batch.front());
      Pending next;
      while (batch.size() < config_.max_batch &&
             std::chrono::steady_clock::now() < close && queue.pop_until(next, close)) {
        tighten(next);
        batch.push_back(std::move(next));
      }
      if (deadline_limited && batch.size() < config_.max_batch) {
        deadline_closes_.fetch_add(1, std::memory_order_relaxed);
        obs_.deadline_closes->add(1);
        // Slack left to the tightest member's deadline when the batch
        // closed: (close + margin) reconstructs that deadline. Mass near
        // zero means the margin barely covers the solve.
        obs_.deadline_slack->observe(
            std::chrono::duration<double>(close + config_.deadline_margin -
                                          std::chrono::steady_clock::now())
                .count());
      }
    }
    // Queue depth at batch close — the backlog this shard's solve leaves
    // waiting — plus the all-shards gauge for the dashboard.
    obs_.shard_queue_depth->observe(static_cast<double>(queue.size()));
    obs_.queue_depth->set(static_cast<double>(queue_depth()));
    solve_batch(batch);
  }
}

void RequestScheduler::solve_batch(std::vector<Pending>& batch) {
  const obs::TraceSpan span("serve.batch_solve", "serve");
  const auto t_solve = std::chrono::steady_clock::now();
  struct Job {
    Pending* pending = nullptr;
    std::shared_ptr<const dyn::DynamicsModel> model;
    std::uint64_t model_generation = 0;
    std::vector<std::vector<std::size_t>> sequences;
    std::vector<double> returns;
    std::size_t offset = 0;  ///< start in the flattened candidate space
  };

  const std::size_t horizon = rs_.config().horizon;
  std::vector<Job> jobs;
  jobs.reserve(batch.size());
  for (Pending& pending : batch) {
    try {
      ModelEntry entry = model_for(pending.ticket.policy_key);
      if (entry.model == nullptr) {
        throw std::runtime_error("RequestScheduler: no dynamics model installed for key '" +
                                 pending.ticket.policy_key + "'");
      }
      if (pending.request.forecast.size() < horizon) {
        throw std::invalid_argument(
            "RequestScheduler: MBRL request forecast shorter than the optimizer horizon");
      }
      // The decision's entire stochastic footprint: candidate draws from
      // the per-request counter-based stream fixed at admission.
      Rng rng = Rng::stream(pending.ticket.seed, pending.ticket.stream);
      Job job;
      job.pending = &pending;
      job.model = std::move(entry.model);
      job.model_generation = entry.generation;
      job.sequences = rs_.draw_sequences(rng);
      job.returns.assign(job.sequences.size(), 0.0);
      jobs.push_back(std::move(job));
    } catch (...) {
      pending.promise.set_exception(std::current_exception());
    }
  }

  // Cross-session scoring: the union of every job's candidates forms one
  // flattened index space; a worker's contiguous slice may span request
  // boundaries, and each (job, sub-range) overlap advances in lock-step
  // through the batched predict kernels. Slicing cannot change any
  // candidate's arithmetic, so decisions are independent of batching.
  const auto score = [this](std::vector<Job>& scored) {
    std::size_t total = 0;
    for (Job& job : scored) {
      job.offset = total;
      total += job.sequences.size();
    }
    if (total == 0) return;
    pool_->parallel_for(total, [this, &scored](std::size_t, std::size_t begin, std::size_t end) {
      std::size_t j = 0;
      while (j < scored.size() && scored[j].offset + scored[j].sequences.size() <= begin) ++j;
      for (; j < scored.size() && scored[j].offset < end; ++j) {
        Job& job = scored[j];
        const std::size_t lo = std::max(begin, job.offset) - job.offset;
        const std::size_t hi = std::min(end, job.offset + job.sequences.size()) - job.offset;
        if (lo >= hi) continue;
        rs_.rollout_returns_slice(*job.model, job.pending->request.observation,
                                  job.pending->request.forecast, job.sequences, lo, hi,
                                  job.returns, control::worker_rollout_scratch());
      }
    });
  };
  score(jobs);

  // Winner selection per request — serial scans, exactly the argmax (and
  // optional first-action refinement sweep) of RandomShooting::optimize.
  std::vector<double> best_returns(jobs.size(), -std::numeric_limits<double>::infinity());
  std::vector<std::vector<std::size_t>> best_sequences(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    std::size_t best = 0;
    for (std::size_t s = 0; s < jobs[j].returns.size(); ++s) {
      if (jobs[j].returns[s] > best_returns[j]) {
        best_returns[j] = jobs[j].returns[s];
        best = s;
      }
    }
    best_sequences[j] = jobs[j].sequences[best];
  }

  if (rs_.config().refine_first_action && !jobs.empty()) {
    std::vector<Job> refine(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      refine[j].pending = jobs[j].pending;
      refine[j].model = jobs[j].model;
      refine[j].sequences.assign(actions_.size(), best_sequences[j]);
      for (std::size_t a = 0; a < actions_.size(); ++a) refine[j].sequences[a].front() = a;
      refine[j].returns.assign(actions_.size(), 0.0);
    }
    score(refine);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      for (std::size_t a = 0; a < actions_.size(); ++a) {
        if (refine[j].returns[a] > best_returns[j]) {
          best_returns[j] = refine[j].returns[a];
          best_sequences[j].front() = a;
        }
      }
    }
  }

  // Counters first, promises second: set_value releases the waiter, and a
  // caller reading stats() right after future.get() must already see this
  // batch counted (the promise's internal synchronization publishes the
  // relaxed stores sequenced before it).
  mbrl_served_.fetch_add(jobs.size(), std::memory_order_relaxed);
  obs_.mbrl_served->add(jobs.size());
  if (!jobs.empty()) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (jobs.size() > 1) batched_requests_.fetch_add(jobs.size(), std::memory_order_relaxed);
    atomic_max(max_batch_, jobs.size());
    obs_.batches->add(1);
    if (jobs.size() > 1) obs_.batched_requests->add(jobs.size());
    obs_.batch_size->observe(static_cast<double>(jobs.size()));
  }

  DecisionTap* const tap = tap_.get();
  // One clock read per batch (microseconds of solve behind it) buys the
  // solve-time histogram whether or not a tap is installed.
  const double solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_solve).count();
  if (!jobs.empty()) obs_.mbrl_solve->observe(solve_seconds);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    ControlDecision decision;
    decision.action_index = best_sequences[j].front();
    decision.action = actions_.action(decision.action_index);
    decision.kind = RequestKind::kMbrlFallback;
    decision.policy_version = 0;
    if (tap != nullptr) {
      // Tap before fulfilling: a caller that drains telemetry right after
      // future.get() must already see its own decision recorded.
      DecisionEvent event;
      event.session = jobs[j].pending->ticket.session;
      event.decision_index = jobs[j].pending->ticket.stream;
      event.session_seed = jobs[j].pending->ticket.seed;
      event.kind = RequestKind::kMbrlFallback;
      event.policy_key = &jobs[j].pending->ticket.policy_key;
      // MBRL events carry the serving model's generation where DT events
      // carry the bundle's registry version — replay needs to know which
      // hot-swapped model decided.
      event.policy_version = jobs[j].model_generation;
      event.action_index = decision.action_index;
      event.action = decision.action;
      event.observation = &jobs[j].pending->request.observation;
      event.schema = &jobs[j].model->schema();
      event.forecast = &jobs[j].pending->request.forecast;
      event.latency_seconds = solve_seconds;
      event.timed = true;
      tap->on_decision(event);
    }
    jobs[j].pending->promise.set_value(decision);
  }
}

RequestScheduler::Stats RequestScheduler::stats() const {
  Stats stats;
  stats.dt_served = dt_served_.load(std::memory_order_relaxed);
  stats.mbrl_served = mbrl_served_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  stats.max_batch = max_batch_.load(std::memory_order_relaxed);
  stats.deadline_closes = deadline_closes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace verihvac::serve
