// Fleet-serving request/decision types.
//
// A control request is what a building's front end sends the service every
// 15-minute step: its session id, the fresh observation, and (for planning
// controllers) the disturbance forecast. Two traffic classes exist, mirroring
// the paper's deployment story: the verified DT policy bundle answers on a
// sub-microsecond fast path (the Table-3 1127x artifact), and the MBRL
// optimizer serves as the stochastic fallback for buildings whose bundle is
// not yet certified — the expensive class the scheduler micro-batches.
#pragma once

#include <cstdint>
#include <vector>

#include "envlib/observation.hpp"
#include "thermosim/hvac.hpp"

namespace verihvac::serve {

using SessionId = std::uint64_t;

enum class RequestKind {
  kDtPolicy,      ///< verified decision-tree bundle, served inline
  kMbrlFallback,  ///< random-shooting MBRL, coalesced into micro-batches
};

struct ControlRequest {
  SessionId session = 0;
  RequestKind kind = RequestKind::kDtPolicy;
  env::Observation observation;
  /// Disturbance forecast; must cover the optimizer horizon for MBRL
  /// requests (unused by the DT fast path).
  std::vector<env::Disturbance> forecast;
};

struct ControlDecision {
  std::size_t action_index = 0;
  sim::SetpointPair action;
  RequestKind kind = RequestKind::kDtPolicy;
  /// Registry version of the bundle that decided (0 for MBRL fallback).
  std::uint64_t policy_version = 0;
};

}  // namespace verihvac::serve
