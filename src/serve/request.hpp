// Fleet-serving request/decision types.
//
// A control request is what a building's front end sends the service every
// 15-minute step: its session id, the fresh observation, and (for planning
// controllers) the disturbance forecast. Two traffic classes exist, mirroring
// the paper's deployment story: the verified DT policy bundle answers on a
// sub-microsecond fast path (the Table-3 1127x artifact), and the MBRL
// optimizer serves as the stochastic fallback for buildings whose bundle is
// not yet certified — the expensive class the scheduler micro-batches.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "envlib/observation.hpp"
#include "thermosim/hvac.hpp"

namespace verihvac::serve {

using SessionId = std::uint64_t;

enum class RequestKind {
  kDtPolicy,      ///< verified decision-tree bundle, served inline
  kMbrlFallback,  ///< random-shooting MBRL, coalesced into micro-batches
};

struct ControlRequest {
  SessionId session = 0;
  RequestKind kind = RequestKind::kDtPolicy;
  env::Observation observation;
  /// Disturbance forecast; must cover the optimizer horizon for MBRL
  /// requests (unused by the DT fast path).
  std::vector<env::Disturbance> forecast;
  /// SLO latency budget of an MBRL request: the scheduler closes a
  /// micro-batch before the *oldest* member's budget nears exhaustion, so
  /// batching is traded against each request's deadline rather than a
  /// fixed window. 0 = use SchedulerConfig::default_latency_budget; if
  /// that is also 0 the request carries no deadline and batches close on
  /// the fixed SchedulerConfig::batch_window alone. Budgets shape latency
  /// only — decisions are bit-identical for any budget (the draws are
  /// pinned at admission).
  std::chrono::microseconds latency_budget{0};
};

struct ControlDecision {
  std::size_t action_index = 0;
  sim::SetpointPair action;
  RequestKind kind = RequestKind::kDtPolicy;
  /// Registry version of the bundle that decided (0 for MBRL fallback).
  std::uint64_t policy_version = 0;
};

}  // namespace verihvac::serve
