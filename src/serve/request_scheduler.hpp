// Micro-batching control-request scheduler — the serving hot path.
//
// Two traffic classes, two paths:
//
//   * DT fast path. A verified bundle decision is one registry lookup
//     (shared-lock pointer copy) plus one root-to-leaf tree walk — the
//     1127x Table-3 artifact. serve()/submit() answer these inline on the
//     caller's thread, sub-microsecond, never touching the queue.
//
//   * MBRL fallback. A random-shooting decision costs samples x horizon
//     model evaluations. Requests enter per-shard bounded MPSC queues
//     aligned to the SessionManager sharding (session id % shard count),
//     so front ends serving different shards push without contending on
//     one queue lock; each shard has its own scheduler thread coalescing
//     arrivals into a micro-batch (up to max_batch) and scoring the union
//     as ONE cross-session batch: all candidates of all coalesced
//     requests form a single flattened index space fanned out over the
//     shared common::TaskPool, each worker advancing its contiguous slice
//     in lock-step through dyn::DynamicsModel::predict_batch_into (the
//     PR 3 kernels) with persistent thread-local scratch. A worker slice
//     can span request boundaries, so load balances across sessions.
//
//     The batching window is deadline-driven (SLO-aware), not a fixed
//     timer: every request carries a latency budget
//     (ControlRequest::latency_budget, defaulted by the config), and the
//     batch closes when the earliest enqueued deadline minus a solve
//     margin arrives — a fresh arrival with a nearly exhausted budget
//     pulls the close forward, possibly to "now". batch_window remains
//     the upper bound for budget-less traffic.
//
// Determinism contract: a decision depends only on (session seed, decision
// index, observation, forecast, bundle/model). Candidate draws happen
// serially at admission from the per-request stream Rng::stream(seed,
// decision_index); per-candidate scoring arithmetic is independent of
// batch composition and slicing (PR 3 invariant); the argmax is a serial
// scan. Hence micro-batched decisions are BIT-IDENTICAL to per-session
// scalar serving for any thread count and any batch coalescing — locked in
// by tests/serve/request_scheduler_test.cpp at VERI_HVAC_THREADS=1/4/8.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/task_pool.hpp"
#include "control/random_shooting.hpp"
#include "obs/instruments.hpp"
#include "serve/decision_tap.hpp"
#include "serve/mpsc_queue.hpp"
#include "serve/policy_registry.hpp"
#include "serve/request.hpp"
#include "serve/session_manager.hpp"

namespace verihvac::serve {

struct SchedulerConfig {
  /// Bound of each shard's MBRL admission queue (back-pressure, not
  /// backlog).
  std::size_t queue_capacity = 4096;
  /// MBRL queue shards, each with its own queue + scheduler thread.
  /// Requests route by session id % shard count — the SessionManager
  /// mapping — so 0 (the default) aligns to the session manager's shard
  /// count and a session's admissions and batches stay on one shard.
  std::size_t queue_shards = 0;
  /// Coalescing cap: requests per cross-session batch.
  std::size_t max_batch = 64;
  /// Upper bound on how long a shard's scheduler thread holds a batch
  /// open for stragglers after the first request arrives. Requests with
  /// latency budgets usually close the batch earlier (deadline-driven).
  std::chrono::microseconds batch_window{300};
  /// Budget assumed for MBRL requests that carry none
  /// (ControlRequest::latency_budget == 0). 0 = such requests have no
  /// deadline and ride the fixed batch_window.
  std::chrono::microseconds default_latency_budget{0};
  /// Solve-time reserve: a batch closes at (earliest deadline -
  /// deadline_margin) so the cross-session solve itself fits inside the
  /// tightest budget. Size it to a typical batch solve (~250-300us for
  /// serving-scale random shooting on the dev box).
  std::chrono::microseconds deadline_margin{150};
  /// false = serve each queued request alone (the per-session reference;
  /// decisions are bit-identical either way, only throughput changes).
  bool micro_batching = true;
  /// Time every DT decision for the tap. Off by default: two steady_clock
  /// reads cost more than the tree walk they would measure, and the
  /// telemetry overhead budget on the fast path is single-digit percent.
  /// MBRL decisions are always timed (batch solve time, negligible
  /// relative cost).
  bool tap_time_dt = false;
  /// Cheap sampled DT timing: when tap_time_dt is off and this is P > 0,
  /// one in P DT decisions (per serving thread, round-robin) is timed for
  /// the tap — p50/p99 latency telemetry at ~1/P of the full timing cost,
  /// which is what keeps capture inside the <5% fast-path overhead
  /// budget. Timed events set DecisionEvent::timed. 0 disables sampling.
  std::size_t dt_timing_sample_period = 0;
};

class RequestScheduler {
 public:
  /// `pool` defaults to the process-wide shared pool (VERI_HVAC_THREADS).
  RequestScheduler(SchedulerConfig config, std::shared_ptr<const PolicyRegistry> registry,
                   std::shared_ptr<SessionManager> sessions,
                   control::RandomShootingConfig rs_config, control::ActionSpace actions,
                   env::RewardConfig reward,
                   std::shared_ptr<const common::TaskPool> pool = nullptr);
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Registers the dynamics model backing MBRL fallback for sessions whose
  /// policy key is `key` (hot-swappable, same snapshot semantics as the
  /// policy registry). Returns the model's generation: a scheduler-wide
  /// monotonic counter stamped into MBRL telemetry events, so a trace
  /// spanning a hot-swap still knows which model served each decision.
  std::uint64_t install_model(const std::string& key,
                              std::shared_ptr<const dyn::DynamicsModel> model);
  /// Fallback model for keys without a dedicated entry (also generation-
  /// stamped).
  std::uint64_t set_default_model(std::shared_ptr<const dyn::DynamicsModel> model);

  /// Installs (or clears, with nullptr) the decision tap. Install before
  /// serving starts: the fast path reads the pointer unsynchronized, so
  /// swapping it while requests are in flight is a race.
  void set_tap(std::shared_ptr<DecisionTap> tap);
  DecisionTap* tap() const { return tap_.get(); }

  /// Starts / stops the per-shard scheduler threads that drain the MBRL
  /// queues. serve() and serve_batch() work without them (solving
  /// inline); MBRL submit() uses the queues only while they run. stop()
  /// is symmetric: the queues reopen, so start() -> stop() cycles can
  /// repeat.
  void start();
  void stop();
  bool running() const { return !workers_.empty(); }

  /// Synchronous serving. DT: answered inline (fast path). MBRL: enqueued
  /// and awaited when the scheduler thread runs, else solved inline as a
  /// batch of one (the scalar reference path).
  ControlDecision serve(const ControlRequest& request);

  /// Asynchronous serving. DT requests resolve immediately (the returned
  /// future is ready); MBRL requests resolve when their micro-batch is
  /// solved. Blocks while the queue is full (back-pressure).
  std::future<ControlDecision> submit(ControlRequest request);

  /// Synchronous cross-session micro-batch: admits every request (in
  /// vector order), answers DT entries inline and solves all MBRL entries
  /// as one batch. decisions[i] corresponds to requests[i].
  std::vector<ControlDecision> serve_batch(const std::vector<ControlRequest>& requests);

  std::size_t thread_count() const { return pool_->thread_count(); }
  const SchedulerConfig& config() const { return config_; }
  /// Total queued MBRL requests across all shards.
  std::size_t queue_depth() const;
  std::size_t queue_shard_count() const { return queues_.size(); }

  /// Serving telemetry (monotonic counters). Dual-published: this
  /// per-scheduler snapshot stays exact (and thread-invariant — the same
  /// workload yields the same counts at any VERI_HVAC_THREADS), while
  /// every increment also lands in the process-wide obs registry
  /// (`serve_*` instruments, including batch-size / deadline-slack /
  /// queue-depth histograms the struct cannot carry).
  struct Stats {
    std::uint64_t dt_served = 0;
    std::uint64_t mbrl_served = 0;
    std::uint64_t batches = 0;           ///< cross-session batches solved
    std::uint64_t batched_requests = 0;  ///< MBRL requests that rode a batch
    std::uint64_t max_batch = 0;         ///< largest batch observed
    /// Batches whose coalescing window was closed by a latency budget
    /// (earliest deadline - margin) instead of batch_window/max_batch —
    /// the SLO-aware scheduler earning its keep.
    std::uint64_t deadline_closes = 0;
  };
  Stats stats() const;

 private:
  struct Pending {
    ControlRequest request;
    DecisionTicket ticket;
    std::promise<ControlDecision> promise;
    /// Budget exhaustion instant (admission + budget); time_point::max()
    /// for budget-less requests.
    std::chrono::steady_clock::time_point deadline = std::chrono::steady_clock::time_point::max();
  };

  struct ModelEntry {
    std::shared_ptr<const dyn::DynamicsModel> model;
    std::uint64_t generation = 0;
  };

  ControlDecision serve_dt(const ControlRequest& request);
  ModelEntry model_for(const std::string& key) const;
  BoundedMpscQueue<Pending>& queue_for(SessionId session) {
    return *queues_[session % queues_.size()];
  }
  /// Stamps the request's deadline from its (or the default) budget.
  std::chrono::steady_clock::time_point deadline_for(const ControlRequest& request) const;
  void worker_loop(std::size_t shard);
  /// Draws, scores and answers one coalesced batch (fulfills promises).
  void solve_batch(std::vector<Pending>& batch);

  SchedulerConfig config_;
  std::shared_ptr<const PolicyRegistry> registry_;
  std::shared_ptr<SessionManager> sessions_;
  control::ActionSpace actions_;
  control::RandomShooting rs_;
  std::shared_ptr<const common::TaskPool> pool_;

  mutable std::shared_mutex models_mutex_;
  std::map<std::string, ModelEntry> models_;
  ModelEntry default_model_;
  std::uint64_t next_model_generation_ = 1;
  std::shared_ptr<DecisionTap> tap_;

  /// One queue per shard (session id % size routes); one worker each.
  std::vector<std::unique_ptr<BoundedMpscQueue<Pending>>> queues_;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> dt_served_{0};
  std::atomic<std::uint64_t> mbrl_served_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> deadline_closes_{0};

  /// Process-wide obs instruments (resolved once at construction).
  struct ObsHandles {
    obs::Counter* dt_served;
    obs::Counter* mbrl_served;
    obs::Counter* batches;
    obs::Counter* batched_requests;
    obs::Counter* deadline_closes;
    obs::Gauge* queue_depth;
    obs::Histogram* shard_queue_depth;
    obs::Histogram* batch_size;
    obs::Histogram* deadline_slack;
    obs::Histogram* dt_latency;
    obs::Histogram* mbrl_solve;
  };
  ObsHandles obs_;
};

}  // namespace verihvac::serve
