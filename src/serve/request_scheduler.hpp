// Micro-batching control-request scheduler — the serving hot path.
//
// Two traffic classes, two paths:
//
//   * DT fast path. A verified bundle decision is one registry lookup
//     (shared-lock pointer copy) plus one root-to-leaf tree walk — the
//     1127x Table-3 artifact. serve()/submit() answer these inline on the
//     caller's thread, sub-microsecond, never touching the queue.
//
//   * MBRL fallback. A random-shooting decision costs samples x horizon
//     model evaluations. Requests enter a bounded MPSC queue; the
//     scheduler thread coalesces everything that arrives within a
//     micro-batching window (up to max_batch) and scores the union as ONE
//     cross-session batch: all candidates of all coalesced requests form a
//     single flattened index space fanned out over the shared
//     common::TaskPool, each worker advancing its contiguous slice in
//     lock-step through dyn::DynamicsModel::predict_batch_into (the PR 3
//     kernels) with persistent thread-local scratch. A worker slice can
//     span request boundaries, so load balances across sessions.
//
// Determinism contract: a decision depends only on (session seed, decision
// index, observation, forecast, bundle/model). Candidate draws happen
// serially at admission from the per-request stream Rng::stream(seed,
// decision_index); per-candidate scoring arithmetic is independent of
// batch composition and slicing (PR 3 invariant); the argmax is a serial
// scan. Hence micro-batched decisions are BIT-IDENTICAL to per-session
// scalar serving for any thread count and any batch coalescing — locked in
// by tests/serve/request_scheduler_test.cpp at VERI_HVAC_THREADS=1/4/8.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/task_pool.hpp"
#include "control/random_shooting.hpp"
#include "serve/decision_tap.hpp"
#include "serve/mpsc_queue.hpp"
#include "serve/policy_registry.hpp"
#include "serve/request.hpp"
#include "serve/session_manager.hpp"

namespace verihvac::serve {

struct SchedulerConfig {
  /// Bound of the MBRL admission queue (back-pressure, not backlog).
  std::size_t queue_capacity = 4096;
  /// Coalescing cap: requests per cross-session batch.
  std::size_t max_batch = 64;
  /// How long the scheduler thread holds a batch open for stragglers after
  /// the first request arrives.
  std::chrono::microseconds batch_window{300};
  /// false = serve each queued request alone (the per-session reference;
  /// decisions are bit-identical either way, only throughput changes).
  bool micro_batching = true;
  /// Time DT decisions for the tap. Off by default: two steady_clock reads
  /// cost more than the tree walk they would measure, and the telemetry
  /// overhead budget on the fast path is single-digit percent. MBRL
  /// decisions are always timed (batch solve time, negligible relative
  /// cost).
  bool tap_time_dt = false;
};

class RequestScheduler {
 public:
  /// `pool` defaults to the process-wide shared pool (VERI_HVAC_THREADS).
  RequestScheduler(SchedulerConfig config, std::shared_ptr<const PolicyRegistry> registry,
                   std::shared_ptr<SessionManager> sessions,
                   control::RandomShootingConfig rs_config, control::ActionSpace actions,
                   env::RewardConfig reward,
                   std::shared_ptr<const common::TaskPool> pool = nullptr);
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Registers the dynamics model backing MBRL fallback for sessions whose
  /// policy key is `key` (hot-swappable, same snapshot semantics as the
  /// policy registry). Returns the model's generation: a scheduler-wide
  /// monotonic counter stamped into MBRL telemetry events, so a trace
  /// spanning a hot-swap still knows which model served each decision.
  std::uint64_t install_model(const std::string& key,
                              std::shared_ptr<const dyn::DynamicsModel> model);
  /// Fallback model for keys without a dedicated entry (also generation-
  /// stamped).
  std::uint64_t set_default_model(std::shared_ptr<const dyn::DynamicsModel> model);

  /// Installs (or clears, with nullptr) the decision tap. Install before
  /// serving starts: the fast path reads the pointer unsynchronized, so
  /// swapping it while requests are in flight is a race.
  void set_tap(std::shared_ptr<DecisionTap> tap);
  DecisionTap* tap() const { return tap_.get(); }

  /// Starts / stops the scheduler thread that drains the MBRL queue.
  /// serve() and serve_batch() work without it (solving inline); MBRL
  /// submit() uses the queue only while it runs. stop() is symmetric: the
  /// queue reopens, so start() -> stop() cycles can repeat.
  void start();
  void stop();
  bool running() const { return worker_.joinable(); }

  /// Synchronous serving. DT: answered inline (fast path). MBRL: enqueued
  /// and awaited when the scheduler thread runs, else solved inline as a
  /// batch of one (the scalar reference path).
  ControlDecision serve(const ControlRequest& request);

  /// Asynchronous serving. DT requests resolve immediately (the returned
  /// future is ready); MBRL requests resolve when their micro-batch is
  /// solved. Blocks while the queue is full (back-pressure).
  std::future<ControlDecision> submit(ControlRequest request);

  /// Synchronous cross-session micro-batch: admits every request (in
  /// vector order), answers DT entries inline and solves all MBRL entries
  /// as one batch. decisions[i] corresponds to requests[i].
  std::vector<ControlDecision> serve_batch(const std::vector<ControlRequest>& requests);

  std::size_t thread_count() const { return pool_->thread_count(); }
  const SchedulerConfig& config() const { return config_; }
  std::size_t queue_depth() const { return queue_.size(); }

  /// Serving telemetry (monotonic counters).
  struct Stats {
    std::uint64_t dt_served = 0;
    std::uint64_t mbrl_served = 0;
    std::uint64_t batches = 0;         ///< cross-session batches solved
    std::uint64_t batched_requests = 0;  ///< MBRL requests that rode a batch
    std::uint64_t max_batch = 0;       ///< largest batch observed
  };
  Stats stats() const;

 private:
  struct Pending {
    ControlRequest request;
    DecisionTicket ticket;
    std::promise<ControlDecision> promise;
  };

  struct ModelEntry {
    std::shared_ptr<const dyn::DynamicsModel> model;
    std::uint64_t generation = 0;
  };

  ControlDecision serve_dt(const ControlRequest& request);
  ModelEntry model_for(const std::string& key) const;
  void worker_loop();
  /// Draws, scores and answers one coalesced batch (fulfills promises).
  void solve_batch(std::vector<Pending>& batch);

  SchedulerConfig config_;
  std::shared_ptr<const PolicyRegistry> registry_;
  std::shared_ptr<SessionManager> sessions_;
  control::ActionSpace actions_;
  control::RandomShooting rs_;
  std::shared_ptr<const common::TaskPool> pool_;

  mutable std::shared_mutex models_mutex_;
  std::map<std::string, ModelEntry> models_;
  ModelEntry default_model_;
  std::uint64_t next_model_generation_ = 1;
  std::shared_ptr<DecisionTap> tap_;

  BoundedMpscQueue<Pending> queue_;
  std::thread worker_;

  std::atomic<std::uint64_t> dt_served_{0};
  std::atomic<std::uint64_t> mbrl_served_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> max_batch_{0};
};

}  // namespace verihvac::serve
