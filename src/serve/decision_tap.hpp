// Decision tap — the serving path's telemetry seam.
//
// A tap observes every decision the scheduler answers, *after* it is
// computed and immediately before it is returned/fulfilled. The serving
// layer stays ignorant of what listens (the adaptation subsystem's
// telemetry ring implements this interface one layer up), and an
// uninstalled tap costs one branch on the fast path.
//
// Contract for implementations:
//   * on_decision runs on the serving thread (front-end caller for DT,
//     scheduler worker for micro-batched MBRL). It must be cheap and
//     non-blocking — the DT fast path budget is nanoseconds.
//   * The event's pointer members borrow storage owned by the scheduler;
//     they are valid only for the duration of the callback. Copy what you
//     keep.
//   * noexcept: a tap must never fail a decision that already succeeded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "envlib/feature_schema.hpp"
#include "serve/request.hpp"

namespace verihvac::serve {

struct DecisionEvent {
  SessionId session = 0;
  /// The decision's RNG-stream coordinates, fixed at admission
  /// (DecisionTicket): Rng::stream(session_seed, decision_index) replays
  /// an MBRL decision's entire stochastic footprint.
  std::uint64_t decision_index = 0;
  std::uint64_t session_seed = 0;
  RequestKind kind = RequestKind::kDtPolicy;
  /// Borrowed; valid only inside the callback.
  const std::string* policy_key = nullptr;
  /// DT: the bundle's registry version. MBRL: the serving model's
  /// scheduler generation (install_model return value). Either way it
  /// pins which hot-swappable artifact decided, so traces replay across
  /// swaps.
  std::uint64_t policy_version = 0;
  std::size_t action_index = 0;
  sim::SetpointPair action;
  /// Borrowed; valid only inside the callback.
  const env::Observation* observation = nullptr;
  /// Observation schema of the deciding artifact (DT: the bundle's schema;
  /// MBRL: the serving model's). Borrowed from the artifact the event's
  /// policy_version pins, so it outlives the callback only as long as that
  /// artifact does — listeners that keep it should copy by value or record
  /// the flattened vector instead. Null only if a custom scheduler forgot
  /// to fill it; the stock paths always do.
  const env::FeatureSchema* schema = nullptr;
  /// Borrowed; null/empty for DT decisions (the fast path carries none).
  const std::vector<env::Disturbance>* forecast = nullptr;
  /// Serving latency; meaningful only when `timed` is set. MBRL decisions
  /// carry their batch's solve time.
  double latency_seconds = 0.0;
  /// Whether latency_seconds was actually measured. MBRL decisions are
  /// always timed (two clock reads are noise next to the batch solve). DT
  /// decisions are timed when SchedulerConfig::tap_time_dt is set, or on
  /// a cheap 1-in-P sample (SchedulerConfig::dt_timing_sample_period) so
  /// latency telemetry stays inside the fast path's single-digit-percent
  /// capture-overhead budget; untimed events carry latency_seconds == 0.
  bool timed = false;
};

class DecisionTap {
 public:
  virtual ~DecisionTap() = default;
  virtual void on_decision(const DecisionEvent& event) noexcept = 0;
};

}  // namespace verihvac::serve
