// Streaming drift detection over per-cluster prediction residuals.
//
// The serving stack's world model goes stale when the building changes
// underneath it — equipment wear, envelope leakage, occupancy pattern
// shifts. The observable symptom is the one-step prediction residual
// |f_hat(s, d, a) - s'| between the (ensemble) dynamics model and the
// telemetry transition actually observed. Per building cluster (policy
// key) the monitor keeps:
//
//   * Welford mean/variance of the residual stream (common::RunningStats:
//     numerically stable, O(1) per sample), and
//   * a one-sided Page-Hinkley cumulative test on residual increases:
//       m_t = m_{t-1} + (x_t - mean_t - delta),  M_t = min(M_t, m_t),
//       PH_t = m_t - M_t;   alarm when PH_t > lambda.
//     delta absorbs slow wander (magnitude the loop should ignore);
//     lambda trades detection delay against false alarms.
//
// A cluster fires once per excursion: the alarm latches until reset()
// (the adaptation controller resets after a successful promotion, which
// re-baselines detection on the fine-tuned model's residuals).
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/instruments.hpp"

namespace verihvac::adapt {

struct DriftMonitorConfig {
  /// Page-Hinkley drift allowance per sample (same unit as the residual:
  /// degrees C of one-step prediction error).
  double ph_delta = 0.01;
  /// Page-Hinkley alarm threshold. With residuals in degC, 2.0 means the
  /// cumulative excess error since the best point reached two degrees.
  double ph_lambda = 2.0;
  /// Samples before a cluster may alarm (the running mean must settle).
  std::size_t min_samples = 32;
};

/// Snapshot of one cluster's residual statistics.
struct DriftStats {
  std::size_t samples = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double max_residual = 0.0;
  double ph_statistic = 0.0;
  bool drifted = false;  ///< latched alarm
};

struct DriftEvent {
  std::string cluster;
  std::size_t samples = 0;
  double mean_residual = 0.0;
  double ph_statistic = 0.0;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftMonitorConfig config = {});

  const DriftMonitorConfig& config() const { return config_; }

  /// Feeds one residual observation; returns the drift event iff this
  /// sample fires the cluster's (previously quiet) alarm.
  std::optional<DriftEvent> observe(const std::string& cluster, double residual);

  /// Whether the cluster's alarm is currently latched.
  bool drifted(const std::string& cluster) const;

  /// Snapshot (zeroed stats for unknown clusters).
  DriftStats stats(const std::string& cluster) const;
  std::vector<std::string> clusters() const;

  /// Clears the cluster's statistics and alarm — a fresh baseline after
  /// the adaptation loop promoted a re-certified bundle.
  void reset(const std::string& cluster);

 private:
  struct Cluster {
    RunningStats residuals;
    double ph_m = 0.0;    ///< cumulative deviation
    double ph_min = 0.0;  ///< running minimum of ph_m
    bool fired = false;
  };

  DriftMonitorConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, Cluster> clusters_;

  /// Process-wide obs instruments: every scored residual feeds the
  /// `adapt_drift_residual` histogram (its quantiles are the earliest
  /// drift signal) and fired alarms count into `adapt_drift_alarms_total`.
  struct ObsHandles {
    obs::Histogram* residual;
    obs::Counter* alarms;
  };
  ObsHandles obs_;
};

}  // namespace verihvac::adapt
