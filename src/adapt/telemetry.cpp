#include "adapt/telemetry.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace verihvac::adapt {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// The seqlock protocol (see the header comment). Readers copy optimistically
// and validate with the slot's sequence; the payload copy itself is a plain
// memcpy of a trivially-copyable record, with fences pinning the compiler's
// ordering — the standard userspace-seqlock construction.

}  // namespace

std::vector<env::Disturbance> TelemetryRecord::forecast_vector() const {
  std::vector<env::Disturbance> out(forecast_len);
  for (std::size_t k = 0; k < forecast_len; ++k) {
    out[k].weather.outdoor_temp_c = forecast[k].outdoor_temp_c;
    out[k].weather.humidity_pct = forecast[k].humidity_pct;
    out[k].weather.wind_mps = forecast[k].wind_mps;
    out[k].weather.solar_wm2 = forecast[k].solar_wm2;
    out[k].occupants = forecast[k].occupants;
    out[k].hour_sin = forecast[k].hour_sin;
    out[k].hour_cos = forecast[k].hour_cos;
    out[k].occupants_ahead = forecast[k].occupants_ahead;
  }
  return out;
}

TelemetryLog::TelemetryLog(TelemetryConfig config)
    : config_(config),
      obs_{&obs::counter("telemetry_records_total"), &obs::counter("telemetry_lost_total"),
           &obs::counter("telemetry_overwritten_total"),
           &obs::counter("telemetry_sampling_skips_total")} {
  if (config_.shards == 0) config_.shards = 1;
  config_.shards = round_up_pow2(config_.shards);
  shard_mask_ = config_.shards - 1;
  const std::size_t capacity = round_up_pow2(std::max<std::size_t>(2, config_.capacity_per_shard));
  slot_mask_ = capacity - 1;
  const std::size_t forecast_capacity =
      round_up_pow2(std::max<std::size_t>(2, config_.forecast_capacity_per_shard));
  forecast_mask_ = forecast_capacity - 1;
  dt_sample_mask_ = config_.dt_sample_period > 1
                        ? round_up_pow2(config_.dt_sample_period) - 1
                        : 0;
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->slots = std::vector<Slot>(capacity);
    shard->forecast_slots = std::vector<ForecastSlot>(forecast_capacity);
    shards_.push_back(std::move(shard));
  }
}

std::size_t TelemetryLog::capacity_per_shard() const { return slot_mask_ + 1; }

void TelemetryLog::register_session(serve::SessionId id, std::uint64_t seed,
                                    const std::string& policy_key) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  sessions_[id] = TelemetrySession{id, seed, policy_key};
}

std::size_t TelemetryLog::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

std::vector<TelemetrySession> TelemetryLog::sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  std::vector<TelemetrySession> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    (void)id;
    out.push_back(session);
  }
  return out;
}

void TelemetryLog::on_decision(const serve::DecisionEvent& event) noexcept {
  // Deterministic DT sampling: record runs of two decision indices per
  // period so transition pairing survives; MBRL always records.
  if (dt_sample_mask_ != 0 && event.kind == serve::RequestKind::kDtPolicy &&
      (event.decision_index & dt_sample_mask_) > 1) {
    sampling_skips_.fetch_add(1, std::memory_order_relaxed);
    obs_.sampling_skips->add(1);
    return;
  }

  Shard& shard = *shards_[static_cast<std::size_t>(event.session) & shard_mask_];

  // Forecast first (MBRL only): its publication must be visible before
  // the compact record that references it.
  std::uint64_t forecast_ticket = 0;
  std::uint16_t forecast_len = 0;
  std::uint8_t forecast_truncated = 0;
  bool has_forecast = false;
  if (event.forecast != nullptr && !event.forecast->empty()) {
    const std::vector<env::Disturbance>& forecast = *event.forecast;
    const std::size_t n = std::min(forecast.size(), kTelemetryMaxForecast);
    forecast_len = static_cast<std::uint16_t>(n);
    forecast_truncated = forecast.size() > kTelemetryMaxForecast ? 1 : 0;
    has_forecast = true;
    forecast_ticket = shard.forecast_head.fetch_add(1, std::memory_order_relaxed);
    ForecastSlot& fslot = shard.forecast_slots[forecast_ticket & forecast_mask_];
    fslot.seq.store(2 * forecast_ticket + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t k = 0; k < n; ++k) {
      fslot.entries[k].outdoor_temp_c = forecast[k].weather.outdoor_temp_c;
      fslot.entries[k].humidity_pct = forecast[k].weather.humidity_pct;
      fslot.entries[k].wind_mps = forecast[k].weather.wind_mps;
      fslot.entries[k].solar_wm2 = forecast[k].weather.solar_wm2;
      fslot.entries[k].occupants = forecast[k].occupants;
      fslot.entries[k].hour_sin = forecast[k].hour_sin;
      fslot.entries[k].hour_cos = forecast[k].hour_cos;
      fslot.entries[k].occupants_ahead = forecast[k].occupants_ahead;
    }
    fslot.seq.store(2 * forecast_ticket + 2, std::memory_order_release);
  }

  const std::uint64_t ticket = shard.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = shard.slots[ticket & slot_mask_];

  // Mark writing (odd) before touching the payload so a lapped reader's
  // re-check can never validate a half-overwritten copy.
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);

  CompactRecord& r = slot.record;
  r.session = event.session;
  r.decision_index = event.decision_index;
  r.session_seed = event.session_seed;
  r.policy_version = event.policy_version;
  r.kind = static_cast<std::uint8_t>(event.kind);
  r.action_index = static_cast<std::uint32_t>(event.action_index);
  r.latency_seconds = event.latency_seconds;
  const env::Observation& obs = *event.observation;
  if (event.schema != nullptr) {
    // Records carry the deciding artifact's schema layout; trace pairing
    // and replay read zone temperature by the persisted role index, not
    // by trusting column 0.
    r.obs_len = static_cast<std::uint16_t>(event.schema->dims());
    r.zone_temp_dim = static_cast<std::uint16_t>(event.schema->zone_temp_index());
    event.schema->write_observation(obs, r.obs);
  } else {
    // A custom scheduler that predates the schema seam: assume the legacy
    // baseline layout, exactly as v1 telemetry did.
    r.obs_len = static_cast<std::uint16_t>(env::kInputDims);
    r.zone_temp_dim = 0;
    r.obs[env::kZoneTemp] = obs.zone_temp_c;
    r.obs[env::kOutdoorTemp] = obs.weather.outdoor_temp_c;
    r.obs[env::kHumidity] = obs.weather.humidity_pct;
    r.obs[env::kWind] = obs.weather.wind_mps;
    r.obs[env::kSolar] = obs.weather.solar_wm2;
    r.obs[env::kOccupancy] = obs.occupants;
  }
  r.heating_c = event.action.heating_c;
  r.cooling_c = event.action.cooling_c;
  r.forecast_len = forecast_len;
  r.forecast_truncated = forecast_truncated;
  r.forecast_ticket = has_forecast ? forecast_ticket + 1 : 0;  // 0 = none

  slot.seq.store(2 * ticket + 2, std::memory_order_release);
  obs_.records->add(1);
}

std::uint64_t TelemetryLog::drain(std::vector<TelemetryRecord>& out) {
  std::uint64_t lost = 0;
  std::uint64_t overwritten = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    const std::uint64_t head = shard.head.load(std::memory_order_acquire);
    std::uint64_t t = shard.tail;
    // Anything more than one lap behind the claim counter is gone already.
    const std::uint64_t capacity = slot_mask_ + 1;
    if (head > capacity && t < head - capacity) {
      overwritten += (head - capacity) - t;
      lost += (head - capacity) - t;
      t = head - capacity;
    }
    for (; t < head; ++t) {
      Slot& slot = shard.slots[t & slot_mask_];
      const std::uint64_t published = 2 * t + 2;
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 < published) {
        // The claiming producer has not published yet (claim/publish is a
        // two-step dance): stop here and pick the rest up next drain.
        break;
      }
      if (s1 == published) {
        const CompactRecord copy = slot.record;
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) == published &&
            copy.forecast_len <= kTelemetryMaxForecast && copy.kind <= 1 &&
            copy.obs_len >= 1 && copy.obs_len <= kTelemetryMaxObsDims &&
            copy.zone_temp_dim < copy.obs_len) {
          // The field sanity checks guard the pathological writer-writer
          // lap race (a producer stalled mid-write for a whole ring lap):
          // a torn record must never drive the forecast memcpy below past
          // its array (nor hand downstream readers an out-of-range obs
          // length/zone column), so implausible values count as lost.
          TelemetryRecord record;
          record.session = copy.session;
          record.decision_index = copy.decision_index;
          record.session_seed = copy.session_seed;
          record.policy_version = copy.policy_version;
          record.kind = copy.kind;
          record.forecast_truncated = copy.forecast_truncated;
          record.forecast_len = copy.forecast_len;
          record.action_index = copy.action_index;
          record.latency_seconds = copy.latency_seconds;
          record.obs_len = copy.obs_len;
          record.zone_temp_dim = copy.zone_temp_dim;
          std::memcpy(record.obs, copy.obs, sizeof(record.obs));
          record.heating_c = copy.heating_c;
          record.cooling_c = copy.cooling_c;
          if (copy.forecast_ticket != 0) {
            // Side ring lookup; a lapped forecast makes the whole record
            // unreplayable, so it counts as lost rather than emitted
            // half-empty.
            const std::uint64_t fticket = copy.forecast_ticket - 1;
            ForecastSlot& fslot = shard.forecast_slots[fticket & forecast_mask_];
            const std::uint64_t fpublished = 2 * fticket + 2;
            const std::uint64_t f1 = fslot.seq.load(std::memory_order_acquire);
            bool forecast_ok = false;
            if (f1 == fpublished) {
              std::memcpy(record.forecast, fslot.entries,
                          sizeof(TelemetryDisturbance) * copy.forecast_len);
              std::atomic_thread_fence(std::memory_order_acquire);
              forecast_ok = fslot.seq.load(std::memory_order_relaxed) == fpublished;
            }
            if (!forecast_ok) {
              ++lost;
              continue;
            }
          }
          out.push_back(record);
          continue;
        }
      }
      ++lost;  // lapped (or torn by a lapping writer) before we got to it
    }
    shard.tail = t;
  }
  lost_.fetch_add(lost, std::memory_order_relaxed);
  overwritten_.fetch_add(overwritten, std::memory_order_relaxed);
  if (lost > 0) obs_.lost->add(lost);
  if (overwritten > 0) obs_.overwritten->add(overwritten);
  return lost;
}

TelemetryLog::Stats TelemetryLog::stats() const {
  Stats stats;
  for (const auto& shard : shards_) {
    stats.recorded += shard->head.load(std::memory_order_relaxed);
  }
  stats.lost = lost_.load(std::memory_order_relaxed);
  stats.overwritten = overwritten_.load(std::memory_order_relaxed);
  stats.sampling_skips = sampling_skips_.load(std::memory_order_relaxed);
  return stats;
}

// ---------------------------------------------------------------------------
// Versioned binary trace format. Fields are written in declaration order
// with fixed widths (native little-endian); records store only the used
// forecast prefix, so DT-heavy traces stay compact.

namespace {

constexpr char kMagic[4] = {'V', 'H', 'T', 'L'};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("telemetry trace: truncated file");
  return value;
}

// One serializer, two sinks: the stream sink serves the trace file path,
// the buffer sink serves the durable store's hot writer (an inlined
// string::append per field instead of an ostream write). Routing both
// through write_record_to/write_session_to keeps the wire format defined
// exactly once — the byte-identity the segment format depends on.
struct StreamSink {
  std::ostream& out;
  void write(const void* data, std::size_t size) {
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  }
};

struct BufferSink {
  std::string& out;
  void write(const void* data, std::size_t size) {
    out.append(static_cast<const char*>(data), size);
  }
};

template <typename T, typename Sink>
void put_pod(Sink& sink, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  sink.write(&value, sizeof(T));
}

template <typename Sink>
void write_record_to(Sink& sink, const TelemetryRecord& r) {
  put_pod<std::uint64_t>(sink, r.session);
  put_pod<std::uint64_t>(sink, r.decision_index);
  put_pod<std::uint64_t>(sink, r.session_seed);
  put_pod<std::uint64_t>(sink, r.policy_version);
  put_pod<std::uint8_t>(sink, r.kind);
  put_pod<std::uint8_t>(sink, r.forecast_truncated);
  put_pod<std::uint16_t>(sink, r.forecast_len);
  put_pod<std::uint32_t>(sink, r.action_index);
  put_pod<std::uint16_t>(sink, r.obs_len);
  put_pod<std::uint16_t>(sink, r.zone_temp_dim);
  put_pod<double>(sink, r.latency_seconds);
  for (std::size_t i = 0; i < r.obs_len; ++i) put_pod<double>(sink, r.obs[i]);
  put_pod<double>(sink, r.heating_c);
  put_pod<double>(sink, r.cooling_c);
  for (std::size_t k = 0; k < r.forecast_len; ++k) {
    put_pod<TelemetryDisturbance>(sink, r.forecast[k]);
  }
}

template <typename Sink>
void write_session_to(Sink& sink, const TelemetrySession& session) {
  put_pod<std::uint64_t>(sink, session.id);
  put_pod<std::uint64_t>(sink, session.seed);
  put_pod<std::uint64_t>(sink, session.policy_key.size());
  sink.write(session.policy_key.data(), session.policy_key.size());
}

}  // namespace

namespace detail {

void write_record(std::ostream& out, const TelemetryRecord& r) {
  StreamSink sink{out};
  write_record_to(sink, r);
}

void append_record(std::string& out, const TelemetryRecord& r) {
  BufferSink sink{out};
  write_record_to(sink, r);
}

TelemetryRecord read_record(std::istream& in, std::uint32_t version) {
  TelemetryRecord r;
  r.session = read_pod<std::uint64_t>(in);
  r.decision_index = read_pod<std::uint64_t>(in);
  r.session_seed = read_pod<std::uint64_t>(in);
  r.policy_version = read_pod<std::uint64_t>(in);
  r.kind = read_pod<std::uint8_t>(in);
  r.forecast_truncated = read_pod<std::uint8_t>(in);
  r.forecast_len = read_pod<std::uint16_t>(in);
  r.action_index = read_pod<std::uint32_t>(in);
  if (version >= 2) {
    r.obs_len = read_pod<std::uint16_t>(in);
    r.zone_temp_dim = read_pod<std::uint16_t>(in);
    if (r.obs_len < 1 || r.obs_len > kTelemetryMaxObsDims || r.zone_temp_dim >= r.obs_len) {
      throw std::runtime_error("telemetry trace: observation length exceeds format cap");
    }
  } else {
    // v1 records are implicitly the baseline 6-dim layout with the zone
    // temperature in column 0.
    r.obs_len = static_cast<std::uint16_t>(env::kInputDims);
    r.zone_temp_dim = 0;
  }
  r.latency_seconds = read_pod<double>(in);
  for (std::size_t d = 0; d < r.obs_len; ++d) r.obs[d] = read_pod<double>(in);
  r.heating_c = read_pod<double>(in);
  r.cooling_c = read_pod<double>(in);
  if (r.forecast_len > kTelemetryMaxForecast) {
    throw std::runtime_error("telemetry trace: forecast length exceeds format cap");
  }
  for (std::size_t k = 0; k < r.forecast_len; ++k) {
    if (version >= 2) {
      r.forecast[k] = read_pod<TelemetryDisturbance>(in);
    } else {
      // v1 forecast entries carried only the five weather/occupancy
      // doubles; the temporal fields take their baseline defaults.
      r.forecast[k].outdoor_temp_c = read_pod<double>(in);
      r.forecast[k].humidity_pct = read_pod<double>(in);
      r.forecast[k].wind_mps = read_pod<double>(in);
      r.forecast[k].solar_wm2 = read_pod<double>(in);
      r.forecast[k].occupants = read_pod<double>(in);
    }
  }
  return r;
}

void write_session(std::ostream& out, const TelemetrySession& session) {
  StreamSink sink{out};
  write_session_to(sink, session);
}

void append_session(std::string& out, const TelemetrySession& session) {
  BufferSink sink{out};
  write_session_to(sink, session);
}

TelemetrySession read_session(std::istream& in) {
  TelemetrySession session;
  session.id = read_pod<std::uint64_t>(in);
  session.seed = read_pod<std::uint64_t>(in);
  const auto key_len = read_pod<std::uint64_t>(in);
  if (key_len > (1u << 20)) {
    throw std::runtime_error("telemetry trace: implausible session key length");
  }
  session.policy_key.resize(key_len);
  in.read(session.policy_key.data(), static_cast<std::streamsize>(key_len));
  if (!in) throw std::runtime_error("telemetry trace: truncated file");
  return session;
}

}  // namespace detail

void save_trace(const TelemetryTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("telemetry trace: cannot write " + path);

  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(out, kTelemetryTraceVersion);

  std::vector<TelemetrySession> sessions = trace.sessions;
  std::sort(sessions.begin(), sessions.end(),
            [](const TelemetrySession& a, const TelemetrySession& b) { return a.id < b.id; });
  write_pod<std::uint64_t>(out, sessions.size());
  for (const TelemetrySession& session : sessions) detail::write_session(out, session);

  write_pod<std::uint64_t>(out, trace.records.size());
  for (const TelemetryRecord& r : trace.records) detail::write_record(out, r);
  if (!out) throw std::runtime_error("telemetry trace: write failed for " + path);
}

TelemetryTrace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("telemetry trace: cannot read " + path);

  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("telemetry trace: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != 1 && version != kTelemetryTraceVersion) {
    throw std::runtime_error("telemetry trace: unsupported version " + std::to_string(version) +
                             " in " + path);
  }

  TelemetryTrace trace;
  const auto n_sessions = read_pod<std::uint64_t>(in);
  trace.sessions.reserve(n_sessions);
  for (std::uint64_t s = 0; s < n_sessions; ++s) {
    trace.sessions.push_back(detail::read_session(in));
  }

  const auto n_records = read_pod<std::uint64_t>(in);
  trace.records.reserve(n_records);
  for (std::uint64_t i = 0; i < n_records; ++i) {
    trace.records.push_back(detail::read_record(in, version));
  }
  return trace;
}

dyn::TransitionDataset trace_to_dataset(const TelemetryTrace& trace) {
  std::vector<const TelemetryRecord*> ordered;
  ordered.reserve(trace.records.size());
  for (const TelemetryRecord& r : trace.records) ordered.push_back(&r);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TelemetryRecord* a, const TelemetryRecord* b) {
                     if (a->session != b->session) return a->session < b->session;
                     return a->decision_index < b->decision_index;
                   });

  dyn::TransitionDataset dataset;
  // A fleet trace can mix schemas (heterogeneous registry keys); a
  // TransitionDataset holds one input width, so pair within the first
  // schema shape seen and leave foreign-shaped records for a separate
  // extraction pass.
  std::uint16_t width = 0;
  for (std::size_t i = 0; i + 1 < ordered.size(); ++i) {
    const TelemetryRecord& cur = *ordered[i];
    const TelemetryRecord& next = *ordered[i + 1];
    if (cur.session != next.session || next.decision_index != cur.decision_index + 1) {
      continue;  // capture gap: no fabricated transition
    }
    if (width == 0) width = cur.obs_len;
    if (cur.obs_len != width || next.obs_len != width) continue;
    dyn::Transition transition;
    transition.input = cur.obs_vector();
    transition.action.heating_c = cur.heating_c;
    transition.action.cooling_c = cur.cooling_c;
    transition.next_zone_temp = next.obs[next.zone_temp_dim];
    dataset.add(std::move(transition));
  }
  return dataset;
}

TraceReplayer::TraceReplayer(const ReplayAssets& assets, const ReplayConfig& config)
    : assets_(assets), actions_(config.action_space), rs_(config.rs, actions_, config.reward) {
  if (config.engine != nullptr) rs_.set_engine(config.engine);
}

TraceReplayer::Outcome TraceReplayer::replay(const TelemetryRecord& r, std::size_t& action_out) {
  if (r.request_kind() == serve::RequestKind::kDtPolicy) {
    const auto it = assets_.policies.find(r.policy_version);
    if (it == assets_.policies.end() || it->second->schema().dims() != r.obs_len) {
      return Outcome::kSkippedMissingAssets;
    }
    action_out = it->second->decide_index(r.obs_vector());
    return Outcome::kReplayed;
  }
  if (r.forecast_truncated != 0) return Outcome::kSkippedTruncated;
  const auto it = assets_.models.find(r.policy_version);
  if (it == assets_.models.end() || it->second->schema().dims() != r.obs_len) {
    // Missing model, or a model whose schema shape no longer matches the
    // record — either way the decision cannot be reconstructed.
    return Outcome::kSkippedMissingAssets;
  }
  // Rebuild the observation through the deciding model's schema — a
  // time-aware record's temporal columns land back in the temporal fields
  // instead of being misread as weather.
  const env::Observation obs = it->second->schema().to_observation(r.obs_vector());
  const std::vector<env::Disturbance> forecast = r.forecast_vector();
  // The decision's entire stochastic footprint, reconstructed from the
  // record's stream coordinates — the same derivation the scheduler used
  // at admission.
  Rng rng = Rng::stream(r.session_seed, r.decision_index);
  action_out = rs_.optimize(*it->second, obs, forecast, rng);
  return Outcome::kReplayed;
}

ReplayReport replay_trace(const TelemetryTrace& trace, const ReplayAssets& assets,
                          const ReplayConfig& config) {
  TraceReplayer replayer(assets, config);

  ReplayReport report;
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const TelemetryRecord& r = trace.records[i];
    std::size_t replayed_action = 0;
    switch (replayer.replay(r, replayed_action)) {
      case TraceReplayer::Outcome::kSkippedTruncated:
        ++report.skipped_truncated;
        continue;
      case TraceReplayer::Outcome::kSkippedMissingAssets:
        ++report.skipped_missing_assets;
        continue;
      case TraceReplayer::Outcome::kReplayed:
        break;
    }
    ++report.replayed;
    if (replayed_action == r.action_index) {
      ++report.matched;
    } else if (report.mismatches.size() < 16) {
      report.mismatches.push_back({i, static_cast<std::size_t>(r.action_index), replayed_action});
    }
  }
  return report;
}

}  // namespace verihvac::adapt
