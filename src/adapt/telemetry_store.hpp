// Durable telemetry: segment-rotated on-disk decision logs.
//
// TelemetryLog (telemetry.hpp) is deliberately volatile — wait-free rings
// sized for one drain interval. TelemetryStore is the layer that makes a
// production fleet debuggable after the fact: a background writer drains
// the log into an append-only directory of *segments*, each a framed,
// checksummed, self-contained slice of the decision stream:
//
//   seg-<base_seq:016x>.vhtseg        sealed (immutable, header final)
//   seg-<base_seq:016x>.vhtseg.open   the active tail (header provisional)
//
// Layout per segment: magic "VHTS", a fixed-width versioned header, then
// frames of [type u8 | body_len u32 | body_crc u32 | body]. A record
// frame's body is byte-identical to the same record in a v2 trace file
// (shared detail::write_record), so segment payloads inherit the trace
// format's locked byte layout; session frames carry the session table, so
// every segment replays on its own. The sealed header carries:
//
//   * a payload CRC chained over every frame header (each of which embeds
//     its body's CRC) — detects torn/flipped bits anywhere in the payload;
//   * session/decision ranges and a schema fingerprint — lets `trace ls`
//     and retention reason about a segment without scanning it;
//   * the monotonic open/close span — orders segments across restarts;
//   * a **replay fingerprint**: an FNV-1a digest of every record's
//     (session, decision_index, action). `trace verify` recomputes each
//     decision from its RNG stream coordinates (TraceReplayer) and digests
//     the *replayed* actions — fingerprint equality therefore certifies
//     the segment by the bit-identical-replay property itself, a strictly
//     stronger check than any checksum over stored bytes.
//
// Durability policy:
//   * rotation — the active segment seals when it exceeds the configured
//     byte/record/age budget, and a fresh one opens;
//   * crash recovery — on construction, any leftover `.open` tail is
//     scanned frame by frame; a torn tail is trimmed to the last whole
//     frame, counted (never silently replayed), sealed and kept;
//   * compaction — sealed segments merge oldest-first (bounded by the
//     segment byte budget), dropping records of evicted sessions. The
//     merge is crash-safe: the output is staged as a `.tmp`, a manifest
//     records the step, the tmp atomically replaces the oldest input,
//     and only then are the other inputs removed — recovery replays an
//     interrupted step from the manifest, so no point of failure loses
//     (or duplicates) sealed records;
//   * retention — oldest sealed segments are deleted beyond the
//     configured segment/byte bounds, their record counts accounted as
//     dropped;
//   * degrade — writer I/O failures (disk full is the expected failure
//     mode of a durable log) are caught, logged and counted; after a few
//     consecutive failures persistence disables itself while draining
//     and the fetch() hand-off keep serving the adaptation loop. A
//     telemetry disk error never takes the process down.
//
// The store is also the adaptation loop's drain seam: fetch() persists
// and hands the same batch to the caller, so AdaptationController and the
// durable log consume ONE TelemetryLog tap instead of racing for records.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adapt/telemetry.hpp"
#include "obs/instruments.hpp"

namespace verihvac::adapt {

/// Current segment container version (framing + header layout). Distinct
/// from kTelemetryTraceVersion, which governs record *bodies*; a header
/// carries both.
inline constexpr std::uint32_t kSegmentFormatVersion = 1;

/// Frame types inside a segment payload.
inline constexpr std::uint8_t kFrameSession = 0;
inline constexpr std::uint8_t kFrameRecord = 1;

/// Fixed on-disk size of a segment's file header: magic(4) +
/// serialized fields(109) + header_crc(4). Payload frames start here.
inline constexpr std::size_t kSegmentHeaderBytes = 117;

struct TelemetryStoreConfig {
  /// Segment directory (created if missing).
  std::string directory;
  /// Rotation budgets for the active segment; 0 disables that trigger.
  /// Payload bytes, not file bytes (the fixed header is excluded).
  std::uint64_t segment_max_bytes = 8ull << 20;
  std::uint64_t segment_max_records = 0;
  double segment_max_seconds = 0.0;
  /// Retention over *sealed* segments; 0 = unbounded. Deleting a segment
  /// counts its records as dropped (visible in stats + obs).
  std::size_t retain_max_segments = 0;
  std::uint64_t retain_max_bytes = 0;
  /// Compaction trigger: merge the oldest sealed run once at least this
  /// many sealed segments exist (0 disables background compaction;
  /// compact_now() always works).
  std::size_t compact_min_segments = 0;
  /// Background writer pacing.
  std::chrono::milliseconds flush_interval{20};
  /// Spawn the writer thread in the constructor. Off = the owner pumps
  /// manually (pump_once()/fetch()), which the controller-driven and test
  /// setups use.
  bool start_writer = true;
  /// Seal the active tail on destruction. Off leaves a torn `.open` tail
  /// behind — exactly what a crash leaves — for the recovery tests/bench.
  bool seal_on_close = true;
};

/// The fixed-width segment header (fields serialized in declaration
/// order; header_crc over the serialized bytes closes the file header).
struct SegmentHeader {
  std::uint32_t format_version = kSegmentFormatVersion;
  std::uint32_t trace_version = kTelemetryTraceVersion;
  std::uint8_t sealed = 0;
  std::uint64_t base_seq = 0;  ///< store-lifetime seq of the first record
  std::uint64_t record_count = 0;
  std::uint64_t session_count = 0;  ///< session frames in the payload
  std::uint64_t session_min = 0;
  std::uint64_t session_max = 0;
  std::uint64_t decision_min = 0;
  std::uint64_t decision_max = 0;
  /// FNV-1a over the sorted distinct (obs_len, zone_temp_dim) pairs seen.
  std::uint64_t schema_fingerprint = 0;
  /// Monotonic (steady_clock) open/close instants, nanoseconds.
  std::uint64_t open_steady_ns = 0;
  std::uint64_t close_steady_ns = 0;
  std::uint64_t payload_bytes = 0;
  /// Chained CRC over every frame *header* (type, body_len, body_crc).
  /// Bodies are sealed by their own body_crc, which the frame header
  /// embeds — so the seal covers body bytes transitively while the hot
  /// drain path checksums each body exactly once.
  std::uint32_t payload_crc = 0;
  /// FNV-1a over every record's (session, decision_index, action_index).
  std::uint64_t replay_fingerprint = 0;
};

/// One segment file as listed by list_segments(): path + parsed header.
struct SegmentInfo {
  std::string path;
  bool open = false;  ///< still the active tail (header provisional)
  SegmentHeader header;
};

/// Incremental replay-fingerprint step (FNV-1a 64). Fold the recorded
/// action to fingerprint what was served, or a replayed action to
/// fingerprint what replay reproduces — equal results mean bit-identical
/// replay of the whole sequence.
std::uint64_t replay_fingerprint_update(std::uint64_t h, const TelemetryRecord& record,
                                        std::uint64_t action_index);
inline constexpr std::uint64_t kReplayFingerprintSeed = 1469598103934665603ull;

class TelemetryStore {
 public:
  /// Scans `config.directory` for existing segments (running crash
  /// recovery on any `.open` tail), opens a fresh active segment lazily on
  /// first append, and starts the writer thread when configured.
  TelemetryStore(std::shared_ptr<TelemetryLog> log, TelemetryStoreConfig config);
  ~TelemetryStore();

  TelemetryStore(const TelemetryStore&) = delete;
  TelemetryStore& operator=(const TelemetryStore&) = delete;

  const TelemetryStoreConfig& config() const { return config_; }
  const std::string& directory() const { return config_.directory; }

  /// One writer step: drain the log, append frames to the active segment,
  /// then apply rotation, compaction and retention. Thread-safe (the
  /// writer thread and manual callers serialize internally).
  void pump_once();

  /// The adaptation-pump seam: pumps once, then moves every record drained
  /// since the last fetch into `out` and returns the capture losses
  /// accumulated over the same window (the TelemetryLog::drain contract).
  /// First use enables the hand-off queue; until then pump_once() persists
  /// and discards, so a store without an adaptation consumer stays
  /// bounded.
  std::uint64_t fetch(std::vector<TelemetryRecord>& out);
  void enable_fetch_queue();

  /// Marks sessions whose records compaction should drop (the controller
  /// forwards SessionManager eviction sweeps here).
  void note_sessions_evicted(const std::vector<serve::SessionId>& ids);

  /// Flushes pending records and seals the active segment (if any).
  void seal_active();
  /// One compaction pass regardless of the compact_min_segments trigger;
  /// returns whether a merge happened.
  bool compact_now();

  /// Stops the writer thread and, per config, seals the tail. Idempotent;
  /// the destructor calls it.
  void stop();

  struct Stats {
    std::uint64_t records_persisted = 0;
    std::uint64_t records_dropped_evicted = 0;    ///< compaction drops
    std::uint64_t records_dropped_retention = 0;  ///< deleted-segment records
    std::uint64_t records_dropped_torn = 0;       ///< partial tail frames trimmed
    std::uint64_t records_dropped_persist = 0;    ///< drained while persistence was down
    std::uint64_t bytes_written = 0;              ///< payload bytes appended
    std::uint64_t bytes_dropped_torn = 0;         ///< torn bytes discarded at recovery
    std::uint64_t rotations = 0;
    std::uint64_t compactions = 0;
    std::uint64_t truncations = 0;  ///< torn tails trimmed at recovery
    std::uint64_t capture_lost = 0; ///< TelemetryLog losses seen by this store's drains
    std::uint64_t persist_errors = 0;  ///< writer-side I/O failures swallowed (never fatal)
    std::uint64_t eviction_tombstones = 0;  ///< evicted-session ids compaction still tracks
  };
  Stats stats() const;

  /// True once repeated persist failures disabled disk writes for the rest
  /// of this store's lifetime (drain + fetch hand-off keep running).
  bool persistence_disabled() const { return persist_disabled_.load(std::memory_order_relaxed); }

 private:
  struct ActiveSegment {
    std::string path;  ///< the `.open` file
    std::ofstream file;
    SegmentHeader header;
    std::uint32_t crc = 0;                ///< rolling payload CRC
    std::set<std::uint64_t> schema_pairs; ///< (obs_len<<16)|zone_temp_dim
    std::uint64_t last_schema_pair = UINT64_MAX;
    std::chrono::steady_clock::time_point opened_at;
  };

  void recover_compactions();
  void recover_open_segments();
  void open_segment();
  void append_session_frame(const TelemetrySession& session);
  void append_record_frame(const TelemetryRecord& record);
  void seal_active_locked();
  void maybe_rotate_locked();
  bool compact_locked();
  void enforce_retention_locked();
  void refresh_segment_gauge_locked();
  void prune_evicted_locked();
  std::vector<SegmentInfo> sealed_segments_locked() const;
  /// The drain-and-append body of pump_once(); the only part of a pump
  /// that touches the disk and therefore the only part allowed to throw.
  void persist_locked();
  void note_persist_failure_locked(const char* what);

  std::shared_ptr<TelemetryLog> log_;
  TelemetryStoreConfig config_;

  mutable std::mutex mutex_;  ///< guards everything below
  std::unique_ptr<ActiveSegment> active_;
  std::uint64_t next_seq_ = 0;          ///< store-lifetime record sequence
  std::size_t sessions_written_ = 0;    ///< log session-table prefix already persisted
  std::set<serve::SessionId> session_ids_in_active_;
  std::set<serve::SessionId> evicted_;
  std::vector<TelemetryRecord> drain_buffer_;
  std::string frame_buffer_;  ///< reused per-frame serialization scratch
  std::vector<TelemetryRecord> fetch_queue_;
  std::uint64_t fetch_lost_ = 0;
  std::atomic<bool> fetch_enabled_{false};
  /// Persist-failure degrade: a disk error must never take serving (or the
  /// adaptation pump riding on fetch()) down, so writer I/O failures are
  /// counted and, after a few consecutive ones, persistence turns off.
  std::atomic<bool> persist_disabled_{false};
  std::uint32_t consecutive_persist_failures_ = 0;
  Stats stats_;
  /// Counter deltas batched across one pump (published once per pump_once).
  std::uint64_t pending_obs_records_ = 0;
  std::uint64_t pending_obs_bytes_ = 0;

  /// Process-wide obs instruments (resolved once at construction).
  struct ObsHandles {
    obs::Counter* persisted;
    obs::Counter* dropped;
    obs::Counter* bytes;
    obs::Counter* rotations;
    obs::Counter* compactions;
    obs::Counter* truncations;
    obs::Counter* persist_errors;
    obs::Gauge* segments;
    obs::Histogram* flush_seconds;
  };
  ObsHandles obs_;

  std::mutex worker_mutex_;
  std::condition_variable worker_cv_;
  bool stop_requested_ = false;
  std::thread worker_;
};

// ---------------------------------------------------------------------------
// Directory-level read side (CLI + tests; no TelemetryStore needed).

/// Parses one segment's header; throws std::runtime_error on bad magic,
/// unsupported version or a header-CRC mismatch.
SegmentHeader read_segment_header(const std::string& path);

/// Every segment in the directory, sorted by base_seq (sealed and open).
/// Throws on an unreadable/corrupt header.
std::vector<SegmentInfo> list_segments(const std::string& directory);

/// Appends one sealed segment's sessions + records into `into`, verifying
/// the payload CRC and every frame CRC; throws std::runtime_error on any
/// mismatch or torn frame — a corrupted segment is never silently loaded.
void read_segment(const std::string& path, TelemetryTrace& into);

/// Loads a whole directory into one trace: segments in base_seq order,
/// sessions deduplicated by id. The result is record-for-record identical
/// to the in-memory trace the same decisions produced (bench-gated).
TelemetryTrace load_directory(const std::string& directory);

/// Streaming dataset build: consumes segments one frame at a time and
/// pairs session-consecutive records on the fly, holding only one pending
/// record per session — never a whole TelemetryTrace. Produces exactly
/// trace_to_dataset(load_directory(dir)) (test-locked).
dyn::TransitionDataset directory_to_dataset(const std::string& directory);

/// verify: structural pass (CRCs, header ranges, recorded-action
/// fingerprint) plus — when assets are supplied — a replay pass that
/// recomputes every decision and digests the replayed actions.
struct SegmentVerifyReport {
  std::string path;
  bool structure_ok = false;   ///< frames + CRCs + header consistency
  bool fingerprint_ok = false; ///< recorded-action digest == header
  /// Replay pass (assets supplied): per-record outcomes and the digest of
  /// replayed actions. replay_ok means every replayable record reproduced
  /// its recorded action AND the digest matches the header fingerprint.
  bool replayed_pass = false;
  bool replay_ok = false;
  std::size_t records = 0;
  std::size_t replayed = 0;
  std::size_t matched = 0;
  std::size_t skipped_truncated = 0;
  std::size_t skipped_missing_assets = 0;
  std::uint64_t replay_fingerprint = 0;
  std::string error;  ///< first structural failure, empty when structure_ok

  bool ok() const { return structure_ok && fingerprint_ok && (!replayed_pass || replay_ok); }
};

SegmentVerifyReport verify_segment(const std::string& path, const ReplayAssets* assets = nullptr,
                                   const ReplayConfig* config = nullptr);

}  // namespace verihvac::adapt
