// Fleet telemetry capture — the observation end of the adaptation loop.
//
// TelemetryLog is a serve::DecisionTap: every decision the scheduler
// answers lands as one fixed-size record in a per-shard lock-free ring.
// The write path is the whole point — it sits on the DT fast path, whose
// overhead budget is single-digit percent of a sub-microsecond decision:
//
//   * claim: one relaxed fetch_add on the shard's ticket counter
//     (wait-free; producers never loop, never block, never allocate);
//   * publish: per-slot seqlock — the slot's sequence goes odd (writing),
//     the POD payload is copied, and the sequence goes even at the
//     claiming ticket's lap (release);
//   * slots are *compact* (~2 cache lines): MBRL forecasts go to a
//     separate, much smaller side ring referenced by ticket, so the
//     common DT record write stays cache-resident instead of streaming a
//     ~1 KB slot through DRAM;
//   * optionally, DT decisions are sampled deterministically
//     (TelemetryConfig::dt_sample_period) in runs of two consecutive
//     decision indices — transition pairing still works, the fast-path
//     duty cycle drops by ~period/2, and which decisions are recorded is
//     a pure function of the decision index (thread- and replay-stable).
//
// When producers outrun the (single) consumer the ring *laps*: the oldest
// unread records are overwritten and counted as lost — load shedding on
// the observation path, never back-pressure on serving. drain() detects
// both forms (lap skips and torn slots via the seqlock re-check) and
// reports them, so capture completeness is an observable property: the
// replay/dataset tests size the ring to the workload and assert zero
// loss. One pathological interleaving — a producer stalled *mid-write*
// for an entire ring lap while another producer claims the same slot —
// can in principle defeat the per-slot sequence re-check; drain therefore
// also sanity-checks the copied record's fixed-range fields and counts
// implausible ones as lost, so a torn record can never corrupt a dataset
// build or index out of the forecast arrays. Size rings so a lap takes
// far longer than any producer's ~100 ns write and the window is moot.
//
// Records are self-describing for replay: they carry the decision's RNG
// stream coordinates (session seed + decision index — the Rng::stream
// keystone), the 6-dim observation, the served action, the bundle version
// or model generation that decided, and (for MBRL) the disturbance
// forecast the optimizer planned against. A trace (records + session
// table) therefore supports both offline uses:
//
//   * trace_to_dataset(): pair session-consecutive records — decision
//     d+1's observation is decision d's next state — into a
//     dyn::TransitionDataset ready for fine-tuning;
//   * replay_trace(): recompute every decision from its record alone and
//     compare bit-for-bit with what was served (DT: one tree walk; MBRL:
//     RandomShooting::optimize on Rng::stream(seed, d), which the
//     scheduler's micro-batched path is test-locked against).
//
// The on-disk format is versioned binary (kTelemetryTraceVersion);
// save/load round-trips are byte-identical.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "control/random_shooting.hpp"
#include "core/dt_policy.hpp"
#include "dynamics/dataset.hpp"
#include "obs/instruments.hpp"
#include "serve/decision_tap.hpp"

namespace verihvac::adapt {

/// Forecast steps stored inline per record — sized for the paper's
/// planning horizon (20); longer forecasts are truncated and flagged
/// (such records cannot be replayed, only counted).
inline constexpr std::size_t kTelemetryMaxForecast = 20;

/// Observation dims stored inline per record — sized with headroom over
/// the largest schema preset (time-aware: 9) so a future schema does not
/// force another trace-format bump. Records carry their actual length.
inline constexpr std::size_t kTelemetryMaxObsDims = 12;

/// One disturbance step, flattened for POD storage. Carries the temporal
/// features (hour encoding, occupancy forecast) alongside the weather so
/// time-aware MBRL decisions replay bit-identically; baseline records
/// store the field defaults.
struct TelemetryDisturbance {
  double outdoor_temp_c = 0.0;
  double humidity_pct = 0.0;
  double wind_mps = 0.0;
  double solar_wm2 = 0.0;
  double occupants = 0.0;
  double hour_sin = 0.0;
  double hour_cos = 1.0;
  double occupants_ahead = 0.0;
};

/// One served decision. Trivially copyable by construction: the seqlock
/// ring publishes records with raw copies, and the binary trace format
/// writes them field by field.
struct TelemetryRecord {
  serve::SessionId session = 0;
  std::uint64_t decision_index = 0;  ///< RNG stream id (fixed at admission)
  std::uint64_t session_seed = 0;
  /// DT: bundle registry version; MBRL: scheduler model generation.
  std::uint64_t policy_version = 0;
  std::uint8_t kind = 0;  ///< serve::RequestKind
  std::uint8_t forecast_truncated = 0;
  std::uint16_t forecast_len = 0;
  std::uint32_t action_index = 0;
  /// Number of observation dims actually used (the deciding artifact's
  /// schema dimension); the tail of `obs` is zero.
  std::uint16_t obs_len = static_cast<std::uint16_t>(env::kInputDims);
  /// Which obs column is the zone temperature (the schema's state role) —
  /// transition pairing reads next states by this, not by index 0.
  std::uint16_t zone_temp_dim = 0;
  double latency_seconds = 0.0;
  double obs[kTelemetryMaxObsDims] = {};  ///< flattened (s, d) policy input
  double heating_c = 0.0;
  double cooling_c = 0.0;
  TelemetryDisturbance forecast[kTelemetryMaxForecast] = {};

  serve::RequestKind request_kind() const { return static_cast<serve::RequestKind>(kind); }
  std::vector<double> obs_vector() const { return {obs, obs + obs_len}; }
  /// Rebuilds the optimizer forecast (empty for DT records).
  std::vector<env::Disturbance> forecast_vector() const;
};
static_assert(std::is_trivially_copyable_v<TelemetryRecord>,
              "the seqlock ring and the binary trace format both require POD records");

struct TelemetryConfig {
  /// Independent rings; a session's records always land in the same shard
  /// (session id masked by the shard count, rounded up to a power of two
  /// so the fast path avoids an integer division), so per-session order
  /// is the ticket order.
  std::size_t shards = 4;
  /// Slots per shard, rounded up to a power of two. Size to the expected
  /// drain interval: producers overwrite (and drain() counts as lost)
  /// anything older than one lap. Slots are compact (~128 B — forecasts
  /// live in their own ring), so the default ring stays cache-resident
  /// and the fast-path write never streams through DRAM.
  std::size_t capacity_per_shard = 4096;
  /// Forecast ring slots per shard (MBRL records only; one ~800 B entry
  /// per decision). MBRL traffic is orders of magnitude rarer than DT, so
  /// this ring can be much smaller.
  std::size_t forecast_capacity_per_shard = 512;
  /// Deterministic DT sampling: 1 records every DT decision (full-fidelity
  /// capture for replay tests); a power-of-two period P > 1 records DT
  /// decisions in runs of two — decision_index % P in {0, 1} — so
  /// transition pairing still works while the fast-path duty cycle (and
  /// hence capture overhead) drops by ~P/2. Index-based, so sampling is
  /// reproducible and independent of threads. MBRL decisions are always
  /// recorded (they are thousands of times more expensive than the tap).
  std::size_t dt_sample_period = 1;
};

/// Session metadata recorded off the hot path (register_session), keyed
/// into the trace so records stay fixed-size.
struct TelemetrySession {
  serve::SessionId id = 0;
  std::uint64_t seed = 0;
  std::string policy_key;
};

/// A drained capture: everything needed to rebuild datasets and replay.
struct TelemetryTrace {
  std::vector<TelemetrySession> sessions;  ///< sorted by id on save
  std::vector<TelemetryRecord> records;
};

class TelemetryLog : public serve::DecisionTap {
 public:
  explicit TelemetryLog(TelemetryConfig config = {});

  TelemetryLog(const TelemetryLog&) = delete;
  TelemetryLog& operator=(const TelemetryLog&) = delete;

  const TelemetryConfig& config() const { return config_; }
  std::size_t capacity_per_shard() const;

  /// Registers session metadata (seed + policy key) for the trace. Not on
  /// the serving path: call it when the session opens (the fleet harness's
  /// on_session_open hook does).
  void register_session(serve::SessionId id, std::uint64_t seed, const std::string& policy_key);
  std::vector<TelemetrySession> sessions() const;
  /// Registered-session count without copying the table (registrations
  /// only ever add, so a size change is a valid cache invalidator).
  std::size_t session_count() const;

  /// The tap: wait-free record of one decision (see file comment).
  void on_decision(const serve::DecisionEvent& event) noexcept override;

  /// Appends every record published since the last drain to `out` and
  /// returns how many were lost (lapped or torn) in the drained window.
  /// Single consumer: drains from concurrent threads must be externally
  /// serialized (the adaptation controller's pump is that consumer).
  std::uint64_t drain(std::vector<TelemetryRecord>& out);

  /// Monotonic counters. `recorded` counts successful ring publications;
  /// `lost` accumulates drain()-detected losses, of which `overwritten`
  /// is the lap-overwrite share (the rest are torn slots or lapped
  /// forecasts); `sampling_skips` counts DT decisions the deterministic
  /// sampler chose not to record. Dual-published: this per-log snapshot
  /// stays exact; every field also lands in the process-wide obs registry
  /// (`telemetry_*` instruments), so durable-log capture gaps show on the
  /// same dashboard as everything else.
  struct Stats {
    std::uint64_t recorded = 0;
    std::uint64_t lost = 0;
    std::uint64_t overwritten = 0;
    std::uint64_t sampling_skips = 0;
  };
  Stats stats() const;

 private:
  /// Ring payload without the forecast block: ~2 cache lines, so a DT
  /// record write stays resident instead of streaming a ~1 KB slot.
  struct CompactRecord {
    serve::SessionId session = 0;
    std::uint64_t decision_index = 0;
    std::uint64_t session_seed = 0;
    std::uint64_t policy_version = 0;
    std::uint8_t kind = 0;
    std::uint8_t forecast_truncated = 0;
    std::uint16_t forecast_len = 0;
    std::uint32_t action_index = 0;
    std::uint16_t obs_len = static_cast<std::uint16_t>(env::kInputDims);
    std::uint16_t zone_temp_dim = 0;
    double latency_seconds = 0.0;
    double obs[kTelemetryMaxObsDims] = {};
    double heating_c = 0.0;
    double cooling_c = 0.0;
    /// Ticket into the shard's forecast ring; kNoForecast for DT records.
    std::uint64_t forecast_ticket = 0;
  };

  struct Slot {
    /// Seqlock: 2*ticket+1 while writing, 2*ticket+2 once published.
    std::atomic<std::uint64_t> seq{0};
    CompactRecord record;
  };

  struct ForecastSlot {
    std::atomic<std::uint64_t> seq{0};
    TelemetryDisturbance entries[kTelemetryMaxForecast];
  };

  struct Shard {
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> head{0};  ///< next ticket to claim
    std::uint64_t tail = 0;              ///< next ticket to drain (consumer-owned)
    std::vector<ForecastSlot> forecast_slots;
    std::atomic<std::uint64_t> forecast_head{0};
  };

  TelemetryConfig config_;
  std::size_t shard_mask_ = 0;
  std::size_t slot_mask_ = 0;
  std::size_t forecast_mask_ = 0;
  std::size_t dt_sample_mask_ = 0;  ///< 0 = record every DT decision
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> lost_{0};
  std::atomic<std::uint64_t> overwritten_{0};
  std::atomic<std::uint64_t> sampling_skips_{0};

  /// Process-wide obs instruments (resolved once at construction).
  struct ObsHandles {
    obs::Counter* records;
    obs::Counter* lost;
    obs::Counter* overwritten;
    obs::Counter* sampling_skips;
  };
  ObsHandles obs_;

  mutable std::mutex sessions_mutex_;
  std::map<serve::SessionId, TelemetrySession> sessions_;
};

/// Current binary trace version (bumped on any layout change; readers
/// reject versions they do not understand). v2 adds per-record obs_len /
/// zone_temp_dim with a length-prefixed observation block and the temporal
/// forecast fields; v1 traces still load, as implicit baseline 6-dim.
inline constexpr std::uint32_t kTelemetryTraceVersion = 2;

/// Writes the trace (sessions sorted by id, records in vector order).
/// Throws std::runtime_error on I/O failure.
void save_trace(const TelemetryTrace& trace, const std::string& path);
/// Reads a trace; throws std::runtime_error on bad magic, unsupported
/// version or a short file.
TelemetryTrace load_trace(const std::string& path);

/// Pairs session-consecutive decisions (d, d+1) into transitions: decision
/// d's observation + action, with d+1's zone temperature as the observed
/// next state. Records separated by capture loss produce no transition.
dyn::TransitionDataset trace_to_dataset(const TelemetryTrace& trace);

/// Serving artifacts for replay, keyed the way records reference them.
struct ReplayAssets {
  /// DT bundles by registry version (PolicyRegistry::install order).
  std::map<std::uint64_t, std::shared_ptr<const core::DtPolicy>> policies;
  /// MBRL models by scheduler generation (install_model return values).
  std::map<std::uint64_t, std::shared_ptr<const dyn::DynamicsModel>> models;
};

struct ReplayConfig {
  /// Must match the serving scheduler's optimizer/action/reward setup —
  /// replay recomputes decisions, it does not approximate them.
  control::RandomShootingConfig rs;
  control::ActionSpaceConfig action_space;
  env::RewardConfig reward;
  /// Engine for batched candidate scoring (null = serial). Decisions are
  /// bit-identical for any thread count (the PR 1/3 invariants), which the
  /// replay tests sweep.
  std::shared_ptr<const control::RolloutEngine> engine;
};

struct ReplayReport {
  std::size_t replayed = 0;
  std::size_t matched = 0;
  std::size_t skipped_truncated = 0;  ///< forecast longer than the inline cap
  std::size_t skipped_missing_assets = 0;
  /// (record index, recorded action, replayed action) of the first
  /// mismatches, for diagnostics.
  std::vector<std::array<std::size_t, 3>> mismatches;

  bool bit_identical() const { return replayed > 0 && matched == replayed; }
};

/// Streaming per-record replay: one optimizer instance, one record at a
/// time — replay_trace() is built on this, and the durable store's
/// `trace verify` path uses it to recompute segment decisions without
/// materializing a whole TelemetryTrace.
class TraceReplayer {
 public:
  enum class Outcome : std::uint8_t {
    kReplayed = 0,
    kSkippedTruncated = 1,      ///< forecast longer than the inline cap
    kSkippedMissingAssets = 2,  ///< no artifact for the record's version
  };

  TraceReplayer(const ReplayAssets& assets, const ReplayConfig& config);

  /// Recomputes the record's decision from its RNG stream coordinates;
  /// on kReplayed, `action_out` holds the replayed action index.
  Outcome replay(const TelemetryRecord& record, std::size_t& action_out);

 private:
  const ReplayAssets& assets_;
  control::ActionSpace actions_;
  control::RandomShooting rs_;
};

/// Recomputes every replayable decision in the trace from its record alone
/// and compares with what was served. A trace captured with a large-enough
/// ring replays bit-identically at any VERI_HVAC_THREADS (test-locked).
ReplayReport replay_trace(const TelemetryTrace& trace, const ReplayAssets& assets,
                          const ReplayConfig& config);

namespace detail {
/// Field-by-field binary (de)serialization of one record/session, exactly
/// the layout save_trace()/load_trace() use — shared with the durable
/// store's framed segments so a segment record is byte-identical to the
/// same record in a v1-trace file. Readers throw std::runtime_error on a
/// short stream or out-of-range lengths.
void write_record(std::ostream& out, const TelemetryRecord& record);
TelemetryRecord read_record(std::istream& in, std::uint32_t version);
void write_session(std::ostream& out, const TelemetrySession& session);
TelemetrySession read_session(std::istream& in);
/// Buffer-append variants of the writers (same wire bytes, one inlined
/// memcpy per field) — the durable store's per-record fast path.
void append_record(std::string& out, const TelemetryRecord& record);
void append_session(std::string& out, const TelemetrySession& session);
}  // namespace detail

}  // namespace verihvac::adapt
