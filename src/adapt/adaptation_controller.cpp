#include "adapt/adaptation_controller.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "adapt/telemetry_store.hpp"

#include "common/logging.hpp"
#include "common/timing.hpp"
#include "control/mbrl_agent.hpp"
#include "control/rollout_engine.hpp"
#include "core/decision_data.hpp"
#include "core/verification.hpp"
#include "envlib/env.hpp"
#include "obs/trace.hpp"

namespace verihvac::adapt {

namespace {

/// Deterministic per-(generation, stage) seed derivation — SplitMix64-style
/// mixing so successive generations' streams are unrelated.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t generation, std::uint64_t stage) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (generation * 8 + stage + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

ShadowReport shadow_evaluate(const core::DtPolicy& policy, const dyn::DynamicsModel& model,
                             const dyn::TransitionDataset& holdout,
                             const env::ComfortRange& comfort) {
  ShadowReport report;
  dyn::PredictScratch scratch;
  const std::size_t occ_dim = model.schema().occupancy_index();
  for (const dyn::Transition& transition : holdout.transitions()) {
    ++report.transitions;
    if (transition.input[occ_dim] <= 0.5) continue;
    ++report.occupied;
    const std::size_t index = policy.decide_index(transition.input);
    const sim::SetpointPair action = policy.actions().action(index);
    const double next = model.predict(transition.input, action, scratch);
    if (!comfort.contains(next)) ++report.predicted_violations;
  }
  return report;
}

AdaptationController::AdaptationController(AdaptationConfig config,
                                           std::shared_ptr<TelemetryLog> telemetry,
                                           std::shared_ptr<serve::PolicyRegistry> registry,
                                           std::shared_ptr<serve::SessionManager> sessions,
                                           serve::RequestScheduler& scheduler,
                                           std::shared_ptr<const common::TaskPool> pool)
    : config_(std::move(config)),
      telemetry_(std::move(telemetry)),
      registry_(std::move(registry)),
      sessions_(std::move(sessions)),
      scheduler_(scheduler),
      pool_(pool != nullptr ? std::move(pool) : common::TaskPool::shared()),
      engine_(pool_),
      monitor_(config_.drift),
      obs_{&obs::counter("adapt_records_drained_total"),
           &obs::counter("adapt_records_lost_total"),
           &obs::counter("adapt_transitions_total"),
           &obs::counter("adapt_drift_events_total"),
           &obs::counter("adapt_attempts_total"),
           &obs::counter("adapt_promotions_total"),
           &obs::counter("adapt_sessions_evicted_total"),
           &obs::histogram("adapt_generation_seconds")} {
  if (telemetry_ == nullptr || registry_ == nullptr || sessions_ == nullptr) {
    throw std::invalid_argument(
        "AdaptationController: telemetry, registry and sessions must be non-null");
  }
}

AdaptationController::~AdaptationController() { stop(); }

void AdaptationController::register_cluster(const std::string& key, ClusterAssets assets) {
  if (assets.model == nullptr) {
    throw std::invalid_argument("AdaptationController: cluster '" + key + "' needs a model");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Cluster cluster;
  cluster.assets = std::move(assets);
  cluster.recert_cache =
      std::make_shared<core::CertificateCache>(config_.recert_cache_entries);
  clusters_[key] = std::move(cluster);
}

void AdaptationController::attach_store(std::shared_ptr<TelemetryStore> store) {
  std::lock_guard<std::mutex> pump_lock(pump_mutex_);
  if (store != nullptr) store->enable_fetch_queue();
  store_ = std::move(store);
}

std::vector<AdaptationController::PendingTransition> AdaptationController::pair_records(
    const std::vector<TelemetryRecord>& records) {
  // Session -> policy key, registered off the hot path at session open.
  // Registrations are append-only, so the cached map is rebuilt only when
  // the count moved — not per pump.
  if (telemetry_->session_count() != session_keys_.size()) {
    session_keys_.clear();
    for (const TelemetrySession& session : telemetry_->sessions()) {
      session_keys_[session.id] = session.policy_key;
    }
  }
  const std::map<serve::SessionId, std::string>& keys = session_keys_;

  std::vector<PendingTransition> out;
  for (const TelemetryRecord& record : records) {
    // Pair with the session's previous decision: its observation is this
    // record's predecessor state, this record's observation the outcome.
    const auto pending_it = pending_records_.find(record.session);
    if (pending_it != pending_records_.end() &&
        pending_it->second.decision_index + 1 == record.decision_index) {
      const TelemetryRecord& prev = pending_it->second;
      PendingTransition item;
      const auto key_it = keys.find(record.session);
      item.key = key_it != keys.end() ? key_it->second : std::string("(unknown)");
      item.transition.input = prev.obs_vector();
      item.transition.action.heating_c = prev.heating_c;
      item.transition.action.cooling_c = prev.cooling_c;
      item.transition.next_zone_temp = record.obs[record.zone_temp_dim];
      const auto cluster_it = clusters_.find(item.key);
      if (cluster_it != clusters_.end()) {
        item.model = cluster_it->second.assets.model;
        item.ensemble = cluster_it->second.assets.ensemble;
      }
      out.push_back(std::move(item));
    }
    pending_records_[record.session] = record;
  }
  return out;
}

std::size_t AdaptationController::pump() {
  std::lock_guard<std::mutex> pump_lock(pump_mutex_);

  drain_buffer_.clear();
  // With a durable store attached the store is the single log consumer:
  // fetch() persists the batch to segments and hands the same records to
  // this pump. The store degrades internally on disk errors, but this
  // pump runs on a worker std::thread where any escaped exception is
  // std::terminate — adaptation failures must never take serving down,
  // so a failing store falls back to draining the log directly.
  std::uint64_t lost = 0;
  if (store_ != nullptr) {
    try {
      lost = store_->fetch(drain_buffer_);
    } catch (const std::exception& error) {
      log_warn("adapt: telemetry store fetch failed (", error.what(),
               "); draining the log directly this pump");
      drain_buffer_.clear();
      lost = telemetry_->drain(drain_buffer_);
    }
  } else {
    lost = telemetry_->drain(drain_buffer_);
  }

  std::vector<PendingTransition> fresh;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.records_drained += drain_buffer_.size();
    stats_.records_lost += lost;
    if (!drain_buffer_.empty()) fresh = pair_records(drain_buffer_);
  }
  if (!drain_buffer_.empty()) obs_.records_drained->add(drain_buffer_.size());
  if (lost > 0) obs_.records_lost->add(lost);

  // Residual scoring — per-transition model/ensemble forwards — runs
  // outside mutex_ so stats()/history() readers never wait on inference;
  // the monitor carries its own lock. Unregistered clusters' transitions
  // are counted but never scored or adapted.
  struct Alarm {
    std::string key;
    DriftEvent event;
  };
  std::vector<Alarm> alarms;
  dyn::PredictScratch scratch;
  // The scoring pass that fires an alarm is the first span of the
  // adaptation generation's trace: emitted retroactively (start pinned at
  // loop entry) only when an alarm actually fires.
  obs::TraceCollector& trace = obs::TraceCollector::global();
  const std::uint64_t scan_start_ns = trace.enabled() && !fresh.empty() ? trace.now_ns() : 0;
  for (const PendingTransition& item : fresh) {
    if (item.model == nullptr && item.ensemble == nullptr) continue;
    // Residual: ensemble one-step mean when available (the epistemic
    // signal), else the serving model.
    const double predicted =
        item.ensemble != nullptr && item.ensemble->trained()
            ? item.ensemble->predict(item.transition.input, item.transition.action).mean
            : item.model->predict(item.transition.input, item.transition.action, scratch);
    const double residual = std::abs(predicted - item.transition.next_zone_temp);
    if (auto event = monitor_.observe(item.key, residual)) {
      log_info("adapt[", item.key, "]: drift detected after ", event->samples,
               " samples (mean residual ", event->mean_residual, ")");
      alarms.push_back({item.key, std::move(*event)});
    }
  }
  if (!alarms.empty() && trace.enabled()) {
    const std::uint64_t end_ns = trace.now_ns();
    trace.emit("adapt.drift_alarm", "adapt", scan_start_ns,
               end_ns > scan_start_ns ? end_ns - scan_start_ns : 1);
  }

  struct Work {
    std::string key;
    ClusterAssets assets;
    std::shared_ptr<core::CertificateCache> recert_cache;
    dyn::TransitionDataset snapshot;
    std::uint64_t generation = 0;
    DriftEvent trigger;
  };
  std::vector<Work> work;
  if (!fresh.empty()) obs_.transitions->add(fresh.size());
  if (!alarms.empty()) obs_.drift_events->add(alarms.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.transitions += fresh.size();
    for (PendingTransition& item : fresh) {
      const auto cluster_it = clusters_.find(item.key);
      if (cluster_it != clusters_.end()) {
        cluster_it->second.pending.add(std::move(item.transition));
      }
    }
    for (Alarm& alarm : alarms) {
      ++stats_.drift_events;
      const auto cluster_it = clusters_.find(alarm.key);
      if (cluster_it != clusters_.end()) {
        cluster_it->second.drift_armed = true;
        cluster_it->second.trigger = std::move(alarm.event);
      }
    }

    for (auto& [key, cluster] : clusters_) {
      if (!cluster.drift_armed) continue;
      if (cluster.pending.size() < std::max(config_.min_transitions, cluster.retry_floor)) {
        continue;
      }
      if (cluster.generation >= config_.max_generations) continue;
      Work item;
      item.key = key;
      item.assets = cluster.assets;
      item.recert_cache = cluster.recert_cache;
      item.snapshot = cluster.pending;
      item.generation = cluster.generation;
      item.trigger = cluster.trigger;
      work.push_back(std::move(item));
      cluster.drift_armed = false;  // consumed; re-armed below on failure
      ++cluster.generation;
    }
  }

  // Heavy lifting outside mutex_: fine-tune, distill, certify, shadow.
  for (Work& item : work) {
    AdaptOutcome outcome = adapt_cluster(item.key, item.assets, item.snapshot, item.generation,
                                         item.trigger, item.recert_cache.get());
    obs_.attempts->add(1);
    if (outcome.report.promoted) obs_.promotions->add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.adaptations_attempted;
    auto cluster_it = clusters_.find(item.key);
    if (outcome.report.promoted) {
      ++stats_.adaptations_promoted;
      if (cluster_it != clusters_.end()) {
        // The fine-tuned model/ensemble are the new residual baseline;
        // telemetry accumulated against the stale model is discarded and
        // the Page-Hinkley statistics restart clean.
        cluster_it->second.assets.model = outcome.model;
        if (outcome.ensemble != nullptr) cluster_it->second.assets.ensemble = outcome.ensemble;
        cluster_it->second.pending = dyn::TransitionDataset();
        cluster_it->second.retry_floor = 0;
      }
      monitor_.reset(item.key);
    } else if (cluster_it != clusters_.end() &&
               cluster_it->second.generation < config_.max_generations) {
      // The alarm stays latched in the monitor, so no new event will ever
      // arrive for this cluster: re-arm explicitly and require materially
      // fresh telemetry before the retry (no tight retrain storms).
      cluster_it->second.drift_armed = true;
      cluster_it->second.retry_floor = item.snapshot.size() + config_.min_transitions;
    }
    history_.push_back(std::move(outcome.report));
  }

  // Housekeeping: idle-session eviction plus dropping the pairing state
  // of sessions that no longer exist (close/evict would otherwise leak
  // one trailing record per session forever).
  if (config_.evict_idle_decisions > 0) {
    evicted_ids_buffer_.clear();
    const std::size_t evicted = sessions_->evict_idle(
        config_.evict_idle_decisions, store_ != nullptr ? &evicted_ids_buffer_ : nullptr);
    if (store_ != nullptr && !evicted_ids_buffer_.empty()) {
      store_->note_sessions_evicted(evicted_ids_buffer_);
    }
    if (evicted > 0) {
      obs_.sessions_evicted->add(evicted);
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.sessions_evicted += evicted;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = pending_records_.begin(); it != pending_records_.end();) {
      it = sessions_->contains(it->first) ? std::next(it) : pending_records_.erase(it);
    }
  }
  return work.size();
}

AdaptationController::AdaptOutcome AdaptationController::adapt_cluster(
    const std::string& key, const ClusterAssets& assets, const dyn::TransitionDataset& snapshot,
    std::uint64_t generation, const DriftEvent& trigger, core::CertificateCache* recert_cache) {
  const auto t0 = std::chrono::steady_clock::now();
  const obs::TraceSpan generation_span("adapt.generation", "adapt");
  AdaptOutcome outcome;
  AdaptationReport& report = outcome.report;
  report.cluster = key;
  report.generation = generation;
  report.trigger = trigger;

  try {
    // 1. Snapshot split: trailing holdout is never trained on.
    const std::size_t holdout_n = std::min(
        snapshot.size() - 1,
        std::max<std::size_t>(1, static_cast<std::size_t>(config_.holdout_fraction *
                                                          static_cast<double>(snapshot.size()))));
    const std::size_t train_n = snapshot.size() - holdout_n;
    dyn::TransitionDataset train;
    dyn::TransitionDataset holdout;
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      (i < train_n ? train : holdout).add(snapshot.at(i));
    }
    report.train_transitions = train.size();
    report.holdout_transitions = holdout.size();

    // 2. Fine-tune clones — the incumbent model keeps serving untouched,
    // and the live ensemble (the residual baseline) only moves if this
    // attempt is promoted.
    auto candidate_model = std::make_shared<dyn::DynamicsModel>(*assets.model);
    std::shared_ptr<dyn::EnsembleDynamics> candidate_ensemble;
    {
      const obs::TraceSpan span("adapt.fine_tune", "adapt");
      report.fine_tune_val_loss =
          candidate_model->fine_tune(train, config_.fine_tune_epochs, generation).final_val_loss;
      if (assets.ensemble != nullptr) {
        candidate_ensemble = std::make_shared<dyn::EnsembleDynamics>(*assets.ensemble);
        if (candidate_ensemble->trained()) {
          candidate_ensemble->fine_tune(train, config_.fine_tune_epochs, generation);
        } else {
          candidate_ensemble->train(train);
        }
      }
    }

    // 3. Re-distill: VIPER against the fine-tuned teacher.
    std::shared_ptr<core::DtPolicy> candidate;
    {
      const obs::TraceSpan span("adapt.redistill", "adapt");
      control::RandomShootingConfig teacher_rs = config_.teacher_rs;
      teacher_rs.refine_first_action = true;
      control::MbrlAgent teacher(*candidate_model, teacher_rs,
                                 control::ActionSpace(config_.action_space), config_.reward,
                                 derive_seed(config_.seed, generation, 1));
      teacher.set_engine(control::RolloutEngine::shared());
      core::ViperConfig viper = config_.viper;
      viper.seed = derive_seed(config_.seed, generation, 2);
      env::BuildingEnv viper_env(assets.env);
      core::ViperResult distilled = core::viper_extract(teacher, viper_env, viper);
      if (distilled.policy == nullptr) {
        throw std::runtime_error("VIPER produced no policy");
      }
      candidate = std::make_shared<core::DtPolicy>(*distilled.policy);
    }

    // 4. Certify: Algorithm 1 with correction, clean formal re-check, then
    // criterion #1 Monte-Carlo over the snapshot's input distribution.
    obs::TraceSpan recertify_span("adapt.recertify", "adapt");
    core::verify_formal(*candidate, config_.criteria, /*correct=*/true);
    report.formal = core::verify_formal(*candidate, config_.criteria, /*correct=*/false);
    // Certification distribution: fresh telemetry plus the cluster's
    // baseline history, so criterion #1 always sees the full operating
    // envelope (telemetry alone may cover only one slice of the day).
    dyn::TransitionDataset certification_data = train;
    certification_data.append(assets.baseline);
    const core::AugmentedSampler sampler(certification_data.policy_inputs(),
                                         config_.noise_level, candidate_model->schema());
    report.probabilistic = engine_.verify_probabilistic(
        *candidate, *candidate_model, sampler, config_.criteria, config_.probabilistic_samples,
        derive_seed(config_.seed, generation, 3));
    // Sound interval certification of the candidate. Incremental mode
    // splices everything drift left untouched from the cluster's cache
    // (grid-aligned slicing so re-split leaves share interior cells); the
    // report is bit-identical to a from-scratch run either way.
    if (config_.recert_mode == RecertMode::kIncremental && recert_cache != nullptr) {
      core::IntervalVerifyConfig interval = config_.interval;
      interval.grid_aligned = true;
      report.interval = engine_.verify_interval_incremental(
          *candidate, *candidate_model, config_.criteria, *recert_cache,
          config_.interval_bounds, interval, config_.recert, &report.recert);
    } else {
      report.interval = engine_.verify_interval(*candidate, *candidate_model, config_.criteria,
                                                config_.interval_bounds, config_.interval);
      report.recert.cells_total = report.recert.cells_computed = 0;
      for (const core::IntervalLeafResult& r : report.interval.results) {
        report.recert.cells_total += r.cells;
        report.recert.cells_computed += r.cells;
      }
    }
    report.certified = report.formal.all_pass() &&
                       report.probabilistic.passes(config_.criteria) &&
                       report.interval.certified_fraction() >= config_.min_certified_fraction;
    recertify_span.finish();

    // 5. Shadow gate on held-out telemetry, both bundles scored through
    // the candidate model (the best available picture of the drifted
    // plant).
    {
      const obs::TraceSpan span("adapt.shadow_gate", "adapt");
      const serve::PolicySnapshot incumbent = registry_->try_lookup(key);
      report.shadow_candidate =
          shadow_evaluate(*candidate, *candidate_model, holdout, config_.criteria.comfort);
      if (incumbent.policy != nullptr) {
        report.shadow_incumbent =
            shadow_evaluate(*incumbent.policy, *candidate_model, holdout,
                            config_.criteria.comfort);
        report.shadow_passed = report.shadow_candidate.violation_rate() <=
                               report.shadow_incumbent.violation_rate() + config_.shadow_margin;
      } else {
        report.shadow_passed = true;
      }
    }

    // 6. Promote only a certified, shadow-passed bundle. Registry install
    // is a hot swap: in-flight decisions finish on their snapshots.
    if (report.certified && report.shadow_passed) {
      const obs::TraceSpan span("adapt.hot_swap", "adapt");
      report.promoted_policy_version = registry_->install(key, candidate);
      report.promoted_model_generation = scheduler_.install_model(key, candidate_model);
      report.promoted = true;
      outcome.model = candidate_model;
      outcome.ensemble = candidate_ensemble;
      log_info("adapt[", key, "]: promoted generation ", generation, " as bundle v",
               report.promoted_policy_version, " (safe prob ",
               report.probabilistic.safe_probability, ", interval cert ",
               report.interval.certified_fraction(), ", recert cells ",
               report.recert.cells_computed, "/", report.recert.cells_total, " computed",
               report.recert.fallback_full ? ", full fallback" : "", ")");
    } else {
      log_info("adapt[", key, "]: generation ", generation, " NOT promoted (certified=",
               report.certified, ", shadow=", report.shadow_passed, ", interval cert ",
               report.interval.certified_fraction(), ", recert cells ",
               report.recert.cells_computed, "/", report.recert.cells_total, " computed",
               report.recert.fallback_full ? ", full fallback" : "", ")");
    }
  } catch (const std::exception& error) {
    // An adaptation failure must never take serving down: the incumbent
    // bundle stays, the report records the attempt.
    report.certified = false;
    report.promoted = false;
    log_warn("adapt[", key, "]: adaptation failed: ", error.what());
  }

  report.seconds = seconds_since(t0);
  obs_.generation_seconds->observe(report.seconds);
  return outcome;
}

void AdaptationController::start() {
  if (running()) return;
  stop_requested_ = false;
  worker_ = std::thread([this] {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(worker_mutex_);
        worker_cv_.wait_for(lock, config_.poll_interval, [this] { return stop_requested_; });
        if (stop_requested_) return;
      }
      // Last line of defense for the never-take-serving-down invariant:
      // an exception escaping a std::thread is std::terminate.
      try {
        pump();
      } catch (const std::exception& error) {
        log_warn("adapt: pump failed: ", error.what());
      }
    }
  });
}

void AdaptationController::stop() {
  if (!worker_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(worker_mutex_);
    stop_requested_ = true;
  }
  worker_cv_.notify_all();
  worker_.join();
  stop_requested_ = false;
}

AdaptationController::Stats AdaptationController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<AdaptationReport> AdaptationController::history() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return history_;
}

}  // namespace verihvac::adapt
