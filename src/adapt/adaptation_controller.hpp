// Verified retrain -> certify -> hot-swap adaptation loop.
//
// Closes the loop PR 4 left open: the serving stack can hot-swap bundles,
// but nothing produced a new one. The controller watches telemetry, and
// when a building cluster's dynamics drift it manufactures a *certified*
// replacement and promotes it — never anything uncertified:
//
//   pump():  drain TelemetryLog -> pair records into transitions ->
//            one-step residuals against the cluster's model/ensemble ->
//            DriftMonitor (Welford + Page-Hinkley)
//   drift fired (and enough fresh transitions):
//     1. snapshot telemetry into a dataset; split train / held-out tail
//     2. fine-tune a *clone* of the serving dyn::DynamicsModel (and the
//        cluster's dyn::EnsembleDynamics) on the train split — frozen
//        normalizers, warm-started weights, generation-salted seeds
//     3. re-distill: VIPER against the fine-tuned teacher (the MBRL agent
//        over the candidate model) in the cluster's environment
//     4. re-certify: Algorithm 1 formal check with correction, a clean
//        formal re-check, criterion #1 Monte-Carlo, and sound interval
//        certification through the parallel core::VerificationEngine
//        (shared TaskPool) — incrementally by default: unchanged
//        (leaf × cell) certificates splice from the cluster's
//        CertificateCache, only drift-invalidated cells recompute, and
//        broad invalidation falls back to a full run (see
//        core/certificate_cache.hpp)
//     5. shadow-evaluate: candidate vs incumbent bundle on the held-out
//        telemetry, both scored through the candidate model — the
//        candidate must not predict more comfort violations
//     6. promote iff certified AND shadow-passed: PolicyRegistry::install
//        (in-flight decisions finish on their snapshots — zero drops) +
//        RequestScheduler::install_model, then reset the cluster's drift
//        baseline
//
// Determinism: every stochastic step draws from seeds derived from
// (config.seed, cluster generation) — two controllers fed the same
// telemetry produce bit-identical candidate bundles for any
// VERI_HVAC_THREADS (the engines' invariants), which the tests lock.
//
// Threading: pump() is safe to call manually and is what the background
// worker (start()/stop(), condition-variable paced) calls on its own
// thread; the heavy lifting inside an adaptation — batched rollouts,
// Monte-Carlo verification — fans out over the shared common::TaskPool.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "adapt/drift_monitor.hpp"
#include "adapt/telemetry.hpp"
#include "core/certificate_cache.hpp"
#include "core/verification_engine.hpp"
#include "core/viper.hpp"
#include "dynamics/ensemble.hpp"
#include "obs/instruments.hpp"
#include "serve/request_scheduler.hpp"

namespace verihvac::adapt {

class TelemetryStore;

/// How the certify step runs interval certification. Incremental keeps a
/// per-cluster CertificateCache: adaptation typically perturbs a handful
/// of policy subtrees, and the unchanged (leaf × cell) certificates splice
/// from the cache instead of re-running IBP — certification cost becomes
/// proportional to drift, not policy size. Full re-runs Algorithm 1's
/// interval pass from scratch every generation (bit-identical reports
/// either way).
enum class RecertMode : std::uint8_t {
  kFull = 0,
  kIncremental = 1,
};

struct AdaptationConfig {
  DriftMonitorConfig drift;
  /// Fresh telemetry transitions a cluster needs before a fired alarm is
  /// acted on (fine-tuning on a handful of points would overfit).
  std::size_t min_transitions = 64;
  /// Trailing fraction of the snapshot held out for the shadow gate
  /// (never trained on).
  double holdout_fraction = 0.25;
  std::size_t fine_tune_epochs = 30;
  /// Candidate may predict at most this much more violation than the
  /// incumbent on held-out telemetry (0 = must be no worse).
  double shadow_margin = 0.0;
  core::VerificationCriteria criteria;
  std::size_t probabilistic_samples = 500;
  /// Eq. 5 noise level for the certification sampler over the snapshot.
  double noise_level = 0.01;
  /// Interval (sound) certification of every candidate, §3.3.2 extension.
  /// Incremental mode splices unchanged certificates from the cluster's
  /// cache (grid-aligned slicing forced on so re-split leaves share
  /// interior cells); `recert.fallback_fraction` gates the automatic
  /// full-certification fallback on broad invalidation — note a fine-tune
  /// always moves the dynamics hash, so generations that retrain the
  /// model take the fallback and the cache pays off when the *policy*
  /// drifts against stable dynamics (distillation-only refreshes,
  /// campaign-style sweeps).
  RecertMode recert_mode = RecertMode::kIncremental;
  core::RecertConfig recert;
  core::IntervalVerifyConfig interval;
  /// Climate envelope the interval certificates are issued for.
  core::DisturbanceBounds interval_bounds;
  /// Promotion gate on IntervalReport::certified_fraction(). 0 = record
  /// only: the report and splice accounting land in the history/logs but
  /// never block (IBP abstention on wide toy boxes must not veto bundles
  /// that pass the paper's criteria).
  double min_certified_fraction = 0.0;
  /// Per-cluster certificate-cache bound (entries ≈ cells per policy ×
  /// retained generations).
  std::size_t recert_cache_entries = core::CertificateCache::kDefaultMaxEntries;
  core::ViperConfig viper;
  /// Teacher optimizer for re-distillation (refine_first_action is forced
  /// on, matching the pipeline's sharpened supervision).
  control::RandomShootingConfig teacher_rs{128, 5, 0.99};
  control::ActionSpaceConfig action_space;
  env::RewardConfig reward;
  std::uint64_t seed = 2027;
  /// Adaptations attempted per cluster before the controller stops trying
  /// (a safety valve against retrain storms on unadaptable drift).
  std::size_t max_generations = 4;
  /// Background worker pacing.
  std::chrono::milliseconds poll_interval{50};
  /// Housekeeping: evict sessions idle for more than this many manager
  /// admissions on every pump (0 = disabled).
  std::uint64_t evict_idle_decisions = 0;
};

/// Per-cluster serving assets the controller adapts. The model is the one
/// installed in the scheduler; the ensemble (optional; if supplied
/// untrained it is first trained — on a clone — during the first
/// promoted adaptation) provides the drift residual signal, falling back
/// to the model when absent; the env config drives VIPER's student
/// rollouts; the baseline dataset (the
/// pipeline's historical collection, optional) widens the certification
/// sampler beyond whatever operating slice the fresh telemetry happens to
/// cover — a drift detected overnight must still certify against occupied
/// daytime states.
struct ClusterAssets {
  std::shared_ptr<const dyn::DynamicsModel> model;
  std::shared_ptr<dyn::EnsembleDynamics> ensemble;
  env::EnvConfig env;
  dyn::TransitionDataset baseline;
};

/// Predicted comfort outcome of a bundle on held-out telemetry.
struct ShadowReport {
  std::size_t transitions = 0;
  std::size_t occupied = 0;
  std::size_t predicted_violations = 0;

  double violation_rate() const {
    return occupied == 0
               ? 0.0
               : static_cast<double>(predicted_violations) / static_cast<double>(occupied);
  }
};

/// Everything one adaptation attempt did, promoted or not.
struct AdaptationReport {
  std::string cluster;
  std::uint64_t generation = 0;
  DriftEvent trigger;
  std::size_t train_transitions = 0;
  std::size_t holdout_transitions = 0;
  double fine_tune_val_loss = 0.0;
  core::FormalReport formal;          ///< clean re-check after correction
  core::ProbabilisticReport probabilistic;
  core::IntervalReport interval;  ///< sound one-step certification
  core::RecertStats recert;       ///< splice/compute accounting for `interval`
  bool certified = false;
  ShadowReport shadow_candidate;
  ShadowReport shadow_incumbent;
  bool shadow_passed = false;
  bool promoted = false;
  std::uint64_t promoted_policy_version = 0;
  std::uint64_t promoted_model_generation = 0;
  double seconds = 0.0;
};

/// Scores `policy` on `holdout` through `model`: for each held-out
/// occupied state, apply the policy's action, advance one step through the
/// model, flag a predicted comfort violation. Exposed for tests.
ShadowReport shadow_evaluate(const core::DtPolicy& policy, const dyn::DynamicsModel& model,
                             const dyn::TransitionDataset& holdout,
                             const env::ComfortRange& comfort);

class AdaptationController {
 public:
  /// The scheduler reference must outlive the controller (the fleet
  /// harness and benches own both). `pool` defaults to the shared
  /// VERI_HVAC_THREADS pool.
  AdaptationController(AdaptationConfig config, std::shared_ptr<TelemetryLog> telemetry,
                       std::shared_ptr<serve::PolicyRegistry> registry,
                       std::shared_ptr<serve::SessionManager> sessions,
                       serve::RequestScheduler& scheduler,
                       std::shared_ptr<const common::TaskPool> pool = nullptr);
  ~AdaptationController();

  AdaptationController(const AdaptationController&) = delete;
  AdaptationController& operator=(const AdaptationController&) = delete;

  const AdaptationConfig& config() const { return config_; }
  const DriftMonitor& monitor() const { return monitor_; }

  /// Registers a cluster (policy key) for adaptation. Unregistered keys'
  /// telemetry is monitored but never adapted.
  void register_cluster(const std::string& key, ClusterAssets assets);

  /// Durable-telemetry seam: once attached, pump() drains through
  /// TelemetryStore::fetch() — every record lands in the on-disk segments
  /// AND feeds adaptation, one consumer for the shared tap — and each
  /// eviction sweep forwards the closed session ids so store compaction
  /// can drop their records. The store must wrap the same TelemetryLog
  /// this controller was constructed with.
  void attach_store(std::shared_ptr<TelemetryStore> store);

  /// One observe/decide/adapt cycle (see file comment). Serialized
  /// internally, so manual pumps and the background worker can coexist.
  /// Returns the number of adaptations attempted this cycle.
  std::size_t pump();

  /// Background worker: pump() every poll_interval until stop().
  void start();
  void stop();
  bool running() const { return worker_.joinable(); }

  /// Exact per-controller counters (under mutex_). Every field is also
  /// published — process-cumulatively — into the obs registry
  /// (`adapt_*_total`), and each generation's wall time feeds
  /// `adapt_generation_seconds`; the stage breakdown lands in trace spans
  /// (adapt.generation > fine_tune/redistill/recertify/shadow_gate/hot_swap).
  struct Stats {
    std::uint64_t records_drained = 0;
    std::uint64_t records_lost = 0;
    std::uint64_t transitions = 0;
    std::uint64_t drift_events = 0;
    std::uint64_t adaptations_attempted = 0;
    std::uint64_t adaptations_promoted = 0;
    std::uint64_t sessions_evicted = 0;
  };
  Stats stats() const;

  /// Reports of every adaptation attempted so far (copy).
  std::vector<AdaptationReport> history() const;

 private:
  struct Cluster {
    ClusterAssets assets;
    /// Certificate cache for incremental re-certification; shared into
    /// each adaptation attempt (pump cycles are serialized, so one writer).
    std::shared_ptr<core::CertificateCache> recert_cache;
    dyn::TransitionDataset pending;  ///< transitions since last promotion
    std::uint64_t generation = 0;
    bool drift_armed = false;  ///< alarm seen, waiting for min_transitions
    /// After a failed attempt the alarm re-arms, but the next attempt
    /// waits until pending grows past this floor — retries happen on
    /// materially fresh telemetry, not in a tight retrain storm.
    std::size_t retry_floor = 0;
    DriftEvent trigger;
  };

  /// What one adaptation attempt hands back to the pump for commit.
  struct AdaptOutcome {
    AdaptationReport report;
    /// Non-null iff promoted: the fine-tuned model now serving the key.
    std::shared_ptr<const dyn::DynamicsModel> model;
    /// Fine-tuned ensemble clone, committed as the residual baseline only
    /// on promotion (a failed attempt must not shift drift detection).
    std::shared_ptr<dyn::EnsembleDynamics> ensemble;
  };

  /// One paired transition plus the handles needed to score its residual
  /// outside the state lock.
  struct PendingTransition {
    std::string key;
    dyn::Transition transition;
    std::shared_ptr<const dyn::DynamicsModel> model;  ///< null if unregistered
    std::shared_ptr<dyn::EnsembleDynamics> ensemble;  ///< optional
  };

  /// Pairs drained records into transitions and snapshots per-cluster
  /// scoring handles. Caller holds mutex_.
  std::vector<PendingTransition> pair_records(const std::vector<TelemetryRecord>& records);
  AdaptOutcome adapt_cluster(const std::string& key, const ClusterAssets& assets,
                             const dyn::TransitionDataset& snapshot, std::uint64_t generation,
                             const DriftEvent& trigger, core::CertificateCache* recert_cache);

  AdaptationConfig config_;
  std::shared_ptr<TelemetryLog> telemetry_;
  /// Optional durable store (attach_store); guarded by pump_mutex_.
  std::shared_ptr<TelemetryStore> store_;
  std::vector<serve::SessionId> evicted_ids_buffer_;
  std::shared_ptr<serve::PolicyRegistry> registry_;
  std::shared_ptr<serve::SessionManager> sessions_;
  serve::RequestScheduler& scheduler_;
  std::shared_ptr<const common::TaskPool> pool_;
  core::VerificationEngine engine_;
  DriftMonitor monitor_;

  /// Serializes whole pump cycles (manual pumps and the background worker
  /// may interleave); heavy adaptation work runs under this lock alone so
  /// stats()/history() stay responsive.
  std::mutex pump_mutex_;
  mutable std::mutex mutex_;  ///< guards clusters_, pending_records_, history_, stats_
  std::map<std::string, Cluster> clusters_;
  /// Last record per session, awaiting its successor for transition pairing.
  std::map<serve::SessionId, TelemetryRecord> pending_records_;
  /// Session -> policy key cache (telemetry registrations are append-only;
  /// refreshed only when the registration count changes).
  std::map<serve::SessionId, std::string> session_keys_;
  std::vector<TelemetryRecord> drain_buffer_;
  std::vector<AdaptationReport> history_;
  Stats stats_;

  /// Process-wide obs instruments mirroring Stats (resolved once; the
  /// global registry outlives every controller).
  struct ObsHandles {
    obs::Counter* records_drained;
    obs::Counter* records_lost;
    obs::Counter* transitions;
    obs::Counter* drift_events;
    obs::Counter* attempts;
    obs::Counter* promotions;
    obs::Counter* sessions_evicted;
    obs::Histogram* generation_seconds;
  };
  ObsHandles obs_;

  std::mutex worker_mutex_;
  std::condition_variable worker_cv_;
  bool stop_requested_ = false;
  std::thread worker_;
};

}  // namespace verihvac::adapt
