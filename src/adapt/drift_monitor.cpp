#include "adapt/drift_monitor.hpp"

#include <algorithm>

namespace verihvac::adapt {

DriftMonitor::DriftMonitor(DriftMonitorConfig config)
    : config_(config),
      obs_{&obs::histogram("adapt_drift_residual"), &obs::counter("adapt_drift_alarms_total")} {}

std::optional<DriftEvent> DriftMonitor::observe(const std::string& cluster, double residual) {
  std::lock_guard<std::mutex> lock(mutex_);
  Cluster& state = clusters_[cluster];
  state.residuals.add(residual);
  obs_.residual->observe(residual);

  // One-sided Page-Hinkley on residual increase, against the running mean.
  state.ph_m += residual - state.residuals.mean() - config_.ph_delta;
  state.ph_min = std::min(state.ph_min, state.ph_m);
  const double ph = state.ph_m - state.ph_min;

  if (!state.fired && state.residuals.count() >= config_.min_samples && ph > config_.ph_lambda) {
    state.fired = true;
    obs_.alarms->add(1);
    DriftEvent event;
    event.cluster = cluster;
    event.samples = state.residuals.count();
    event.mean_residual = state.residuals.mean();
    event.ph_statistic = ph;
    return event;
  }
  return std::nullopt;
}

bool DriftMonitor::drifted(const std::string& cluster) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = clusters_.find(cluster);
  return it != clusters_.end() && it->second.fired;
}

DriftStats DriftMonitor::stats(const std::string& cluster) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = clusters_.find(cluster);
  DriftStats stats;
  if (it == clusters_.end()) return stats;
  const Cluster& state = it->second;
  stats.samples = state.residuals.count();
  stats.mean = state.residuals.mean();
  stats.stddev = state.residuals.stddev();
  stats.max_residual = state.residuals.count() > 0 ? state.residuals.max() : 0.0;
  stats.ph_statistic = state.ph_m - state.ph_min;
  stats.drifted = state.fired;
  return stats;
}

std::vector<std::string> DriftMonitor::clusters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(clusters_.size());
  for (const auto& [name, state] : clusters_) {
    (void)state;
    out.push_back(name);
  }
  return out;
}

void DriftMonitor::reset(const std::string& cluster) {
  std::lock_guard<std::mutex> lock(mutex_);
  clusters_.erase(cluster);
}

}  // namespace verihvac::adapt
