#include "adapt/telemetry_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "common/timing.hpp"
#include "obs/trace.hpp"

namespace verihvac::adapt {

namespace fs = std::filesystem;

namespace {

constexpr char kSegmentMagic[4] = {'V', 'H', 'T', 'S'};
constexpr const char* kSealedSuffix = ".vhtseg";
constexpr const char* kOpenSuffix = ".vhtseg.open";
constexpr const char* kCompactTmpSuffix = ".vhtseg.tmp";
constexpr const char* kCompactManifestSuffix = ".vhtseg.compact";

/// Consecutive pump I/O failures tolerated before persistence turns
/// itself off for the store's lifetime (transient hiccups get retries;
/// a full disk does not get to stall the writer forever).
constexpr std::uint32_t kMaxConsecutivePersistFailures = 3;

/// Serialized header field bytes (declaration order, fixed widths):
/// 2*u32 + u8 + 12*u64 + u32 = 109. The on-disk header is
/// magic(4) + fields(109) + header_crc(4).
constexpr std::size_t kHeaderFieldBytes = 109;
static_assert(kSegmentHeaderBytes == sizeof(kSegmentMagic) + kHeaderFieldBytes + 4,
              "exported header size must match the serialized layout");

/// Generous per-frame body bound: a max-forecast record serializes to
/// ~1.5 KB; session frames carry a policy key (bounded on read). Anything
/// larger is torn bytes, not a frame.
constexpr std::uint32_t kMaxFrameBody = 1u << 21;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("telemetry segment: truncated header");
  return value;
}

std::string serialize_header_fields(const SegmentHeader& h) {
  std::ostringstream out(std::ios::binary);
  write_pod<std::uint32_t>(out, h.format_version);
  write_pod<std::uint32_t>(out, h.trace_version);
  write_pod<std::uint8_t>(out, h.sealed);
  write_pod<std::uint64_t>(out, h.base_seq);
  write_pod<std::uint64_t>(out, h.record_count);
  write_pod<std::uint64_t>(out, h.session_count);
  write_pod<std::uint64_t>(out, h.session_min);
  write_pod<std::uint64_t>(out, h.session_max);
  write_pod<std::uint64_t>(out, h.decision_min);
  write_pod<std::uint64_t>(out, h.decision_max);
  write_pod<std::uint64_t>(out, h.schema_fingerprint);
  write_pod<std::uint64_t>(out, h.open_steady_ns);
  write_pod<std::uint64_t>(out, h.close_steady_ns);
  write_pod<std::uint64_t>(out, h.payload_bytes);
  write_pod<std::uint32_t>(out, h.payload_crc);
  write_pod<std::uint64_t>(out, h.replay_fingerprint);
  std::string bytes = out.str();
  if (bytes.size() != kHeaderFieldBytes) {
    throw std::logic_error("telemetry segment: header layout drifted from kHeaderFieldBytes");
  }
  return bytes;
}

SegmentHeader parse_header_fields(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  SegmentHeader h;
  h.format_version = read_pod<std::uint32_t>(in);
  h.trace_version = read_pod<std::uint32_t>(in);
  h.sealed = read_pod<std::uint8_t>(in);
  h.base_seq = read_pod<std::uint64_t>(in);
  h.record_count = read_pod<std::uint64_t>(in);
  h.session_count = read_pod<std::uint64_t>(in);
  h.session_min = read_pod<std::uint64_t>(in);
  h.session_max = read_pod<std::uint64_t>(in);
  h.decision_min = read_pod<std::uint64_t>(in);
  h.decision_max = read_pod<std::uint64_t>(in);
  h.schema_fingerprint = read_pod<std::uint64_t>(in);
  h.open_steady_ns = read_pod<std::uint64_t>(in);
  h.close_steady_ns = read_pod<std::uint64_t>(in);
  h.payload_bytes = read_pod<std::uint64_t>(in);
  h.payload_crc = read_pod<std::uint32_t>(in);
  h.replay_fingerprint = read_pod<std::uint64_t>(in);
  return h;
}

void write_header_at_start(std::ostream& out, const SegmentHeader& h) {
  const std::string fields = serialize_header_fields(h);
  out.write(kSegmentMagic, sizeof(kSegmentMagic));
  out.write(fields.data(), static_cast<std::streamsize>(fields.size()));
  write_pod<std::uint32_t>(out, common::crc32(fields.data(), fields.size()));
}

SegmentHeader read_header_stream(std::istream& in, const std::string& path) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    throw std::runtime_error("telemetry segment: bad magic in " + path);
  }
  std::string fields(kHeaderFieldBytes, '\0');
  in.read(fields.data(), static_cast<std::streamsize>(fields.size()));
  if (!in) throw std::runtime_error("telemetry segment: truncated header in " + path);
  const auto stored_crc = read_pod<std::uint32_t>(in);
  if (common::crc32(fields.data(), fields.size()) != stored_crc) {
    throw std::runtime_error("telemetry segment: header CRC mismatch in " + path);
  }
  SegmentHeader h = parse_header_fields(fields);
  if (h.format_version != kSegmentFormatVersion) {
    throw std::runtime_error("telemetry segment: unsupported format version " +
                             std::to_string(h.format_version) + " in " + path);
  }
  if (h.trace_version != 1 && h.trace_version != kTelemetryTraceVersion) {
    throw std::runtime_error("telemetry segment: unsupported trace version " +
                             std::to_string(h.trace_version) + " in " + path);
  }
  return h;
}

std::string segment_basename(std::uint64_t base_seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "seg-%016llx", static_cast<unsigned long long>(base_seq));
  return std::string(buf);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xFFu;
    h *= 1099511628211ull;
  }
  return h;
}

/// One frame, serialized: [type u8 | body_len u32 | body_crc u32 | body].
std::string make_frame(std::uint8_t type, const std::string& body) {
  std::ostringstream out(std::ios::binary);
  write_pod<std::uint8_t>(out, type);
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(body.size()));
  write_pod<std::uint32_t>(out, common::crc32(body.data(), body.size()));
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  return out.str();
}

inline constexpr std::size_t kFrameHeaderBytes = 9;  // type + body_len + body_crc

/// Folds one frame header into the segment's rolling payload CRC. The
/// payload CRC seals frame headers only; each body is covered by the
/// body_crc embedded in its header, so corruption anywhere in the payload
/// still lands on exactly one failed check.
std::uint32_t chain_frame_header(std::uint32_t crc, std::uint8_t type, std::uint32_t body_len,
                                 std::uint32_t body_crc) {
  unsigned char hdr[kFrameHeaderBytes];
  hdr[0] = type;
  std::memcpy(hdr + 1, &body_len, sizeof body_len);
  std::memcpy(hdr + 1 + sizeof body_len, &body_crc, sizeof body_crc);
  return common::crc32_update(crc, hdr, sizeof hdr);
}

/// Builds one frame in place in `out` (reused across calls): reserves the
/// frame header, appends the body through `append_body` (one of the
/// detail::append_* writers), then patches type/len/crc. Byte-identical to
/// make_frame — the writer fast path and the cold readers share one wire
/// format.
template <typename AppendBody>
void build_frame(std::string& out, std::uint8_t type, AppendBody&& append_body) {
  out.clear();
  out.resize(kFrameHeaderBytes);
  append_body(out);
  const auto body_len = static_cast<std::uint32_t>(out.size() - kFrameHeaderBytes);
  const std::uint32_t body_crc = common::crc32(out.data() + kFrameHeaderBytes, body_len);
  out[0] = static_cast<char>(type);
  std::memcpy(&out[1], &body_len, sizeof body_len);
  std::memcpy(&out[1 + sizeof body_len], &body_crc, sizeof body_crc);
}

/// Accumulates the header bookkeeping a writer/scanner needs per record.
struct PayloadTally {
  std::uint64_t records = 0;
  std::uint64_t sessions = 0;
  std::uint64_t session_min = UINT64_MAX;
  std::uint64_t session_max = 0;
  std::uint64_t decision_min = UINT64_MAX;
  std::uint64_t decision_max = 0;
  std::set<std::uint64_t> schema_pairs;
  std::uint64_t replay_fp = kReplayFingerprintSeed;

  void add_record(const TelemetryRecord& r) {
    ++records;
    session_min = std::min(session_min, static_cast<std::uint64_t>(r.session));
    session_max = std::max(session_max, static_cast<std::uint64_t>(r.session));
    decision_min = std::min(decision_min, r.decision_index);
    decision_max = std::max(decision_max, r.decision_index);
    schema_pairs.insert((static_cast<std::uint64_t>(r.obs_len) << 16) | r.zone_temp_dim);
    replay_fp = replay_fingerprint_update(replay_fp, r, r.action_index);
  }

  std::uint64_t schema_fingerprint() const {
    std::uint64_t h = kReplayFingerprintSeed;
    for (const std::uint64_t pair : schema_pairs) h = fnv_mix(h, pair);
    return h;
  }

  void fill(SegmentHeader& h) const {
    h.record_count = records;
    h.session_count = sessions;
    h.session_min = records > 0 ? session_min : 0;
    h.session_max = session_max;
    h.decision_min = records > 0 ? decision_min : 0;
    h.decision_max = decision_max;
    h.schema_fingerprint = schema_fingerprint();
    h.replay_fingerprint = replay_fp;
  }
};

struct ScannedPayload {
  PayloadTally tally;
  std::uint64_t good_bytes = 0;  ///< offset past the last whole frame
  std::uint32_t crc = 0;         ///< rolling CRC over the good bytes
  bool torn_tail = false;        ///< trailing bytes did not form a frame
  std::vector<TelemetrySession> sessions;
  std::vector<TelemetryRecord> records;  ///< filled only when keep_payload
};

/// Frame-by-frame scan from the current stream position. Stops (without
/// throwing) at the first torn/invalid frame; structural readers treat a
/// torn tail as an error, recovery treats it as the trim point.
ScannedPayload scan_payload(std::istream& in, std::uint32_t trace_version, bool keep_payload) {
  ScannedPayload out;
  while (true) {
    std::uint8_t type = 0;
    if (!in.read(reinterpret_cast<char*>(&type), 1)) break;  // clean EOF
    std::uint32_t body_len = 0;
    std::uint32_t body_crc = 0;
    if (!in.read(reinterpret_cast<char*>(&body_len), 4) ||
        !in.read(reinterpret_cast<char*>(&body_crc), 4)) {
      out.torn_tail = true;
      break;
    }
    if ((type != kFrameSession && type != kFrameRecord) || body_len > kMaxFrameBody) {
      out.torn_tail = true;
      break;
    }
    std::string body(body_len, '\0');
    if (!in.read(body.data(), static_cast<std::streamsize>(body_len))) {
      out.torn_tail = true;
      break;
    }
    if (common::crc32(body.data(), body.size()) != body_crc) {
      out.torn_tail = true;
      break;
    }
    std::istringstream body_in(body, std::ios::binary);
    try {
      if (type == kFrameRecord) {
        TelemetryRecord record = detail::read_record(body_in, trace_version);
        out.tally.add_record(record);
        if (keep_payload) out.records.push_back(record);
      } else {
        TelemetrySession session = detail::read_session(body_in);
        ++out.tally.sessions;
        out.sessions.push_back(std::move(session));
      }
    } catch (const std::runtime_error&) {
      // CRC held but the body does not parse as its frame type — torn by
      // a writer that died mid-frame-header; trim here.
      out.torn_tail = true;
      break;
    }
    out.crc = chain_frame_header(out.crc, type, body_len, body_crc);
    out.good_bytes += kFrameHeaderBytes + body_len;
  }
  return out;
}

}  // namespace

std::uint64_t replay_fingerprint_update(std::uint64_t h, const TelemetryRecord& record,
                                        std::uint64_t action_index) {
  h = fnv_mix(h, record.session);
  h = fnv_mix(h, record.decision_index);
  h = fnv_mix(h, action_index);
  return h;
}

// ---------------------------------------------------------------------------
// TelemetryStore

TelemetryStore::TelemetryStore(std::shared_ptr<TelemetryLog> log, TelemetryStoreConfig config)
    : log_(std::move(log)),
      config_(std::move(config)),
      obs_{&obs::counter("telemetry_store_records_persisted_total"),
           &obs::counter("telemetry_store_records_dropped_total"),
           &obs::counter("telemetry_store_bytes_written_total"),
           &obs::counter("telemetry_store_rotations_total"),
           &obs::counter("telemetry_store_compactions_total"),
           &obs::counter("telemetry_store_truncations_total"),
           &obs::counter("telemetry_store_persist_errors_total"),
           &obs::gauge("telemetry_store_segments"),
           &obs::histogram("telemetry_store_flush_seconds")} {
  if (log_ == nullptr) throw std::invalid_argument("TelemetryStore: null telemetry log");
  if (config_.directory.empty()) throw std::invalid_argument("TelemetryStore: empty directory");
  fs::create_directories(config_.directory);

  recover_compactions();
  recover_open_segments();
  for (const SegmentInfo& info : sealed_segments_locked()) {
    next_seq_ = std::max(next_seq_, info.header.base_seq + info.header.record_count);
  }
  refresh_segment_gauge_locked();

  if (config_.start_writer) {
    worker_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(worker_mutex_);
      while (!stop_requested_) {
        worker_cv_.wait_for(lock, config_.flush_interval);
        if (stop_requested_) break;
        lock.unlock();
        // pump_once() degrades internally on I/O failure; the extra catch
        // is the last line of defense — an escaped exception in a
        // std::thread would std::terminate the whole serving process.
        try {
          pump_once();
        } catch (const std::exception& error) {
          log_warn("telemetry store: writer pump failed: ", error.what());
        }
        lock.lock();
      }
    });
  }
}

TelemetryStore::~TelemetryStore() { stop(); }

void TelemetryStore::stop() {
  {
    std::lock_guard<std::mutex> lock(worker_mutex_);
    stop_requested_ = true;
  }
  worker_cv_.notify_all();
  if (worker_.joinable()) worker_.join();

  if (config_.seal_on_close) {
    // stop() runs from the destructor: a failed final flush/seal must be
    // logged, never thrown.
    try {
      pump_once();
      seal_active();
    } catch (const std::exception& error) {
      log_warn("telemetry store: final seal failed: ", error.what());
    }
  } else {
    // Crash simulation: leave the `.open` tail exactly as last flushed.
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_ != nullptr) {
      active_->file.close();
      active_.reset();
    }
  }
}

void TelemetryStore::recover_compactions() {
  // Finish (or roll back) a compaction a crash interrupted. The manifest
  // is written only after the merged `.tmp` is complete, so the disk can
  // only be in one of three states:
  //   manifest + tmp    crash before the atomic rename — finish the swap;
  //   manifest, no tmp  crash mid input removal — finish the removes;
  //   tmp, no manifest  crash mid merge write — the inputs are intact and
  //                     authoritative, the tmp is garbage.
  std::vector<std::string> manifests;
  std::vector<std::string> tmps;
  for (const auto& entry : fs::directory_iterator(config_.directory)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    if (ends_with(path, kCompactManifestSuffix)) {
      manifests.push_back(path);
    } else if (ends_with(path, kCompactTmpSuffix)) {
      tmps.push_back(path);
    }
  }

  for (const std::string& manifest_path : manifests) {
    std::string final_name;
    std::string tmp_name;
    std::vector<std::string> inputs;
    {
      std::ifstream in(manifest_path);
      std::string line;
      if (std::getline(in, final_name) && std::getline(in, tmp_name)) {
        while (std::getline(in, line)) {
          if (!line.empty()) inputs.push_back(line);
        }
      }
    }
    if (final_name.empty() || tmp_name.empty() || inputs.empty()) {
      // Torn manifest: nothing was renamed or removed yet, the inputs are
      // still complete. Roll back (the orphan-tmp sweep below cleans up).
      fs::remove(manifest_path);
      continue;
    }
    const fs::path dir(config_.directory);
    const fs::path tmp = dir / tmp_name;
    if (fs::exists(tmp)) fs::rename(tmp, dir / final_name);
    for (const std::string& input : inputs) {
      if (input == final_name) continue;
      const fs::path victim = dir / input;
      if (fs::exists(victim)) fs::remove(victim);
    }
    fs::remove(manifest_path);
    log_info("telemetry store: finished interrupted compaction into ", final_name);
  }

  for (const std::string& tmp : tmps) {
    if (fs::exists(tmp)) fs::remove(tmp);
  }
}

void TelemetryStore::recover_open_segments() {
  std::vector<std::string> open_paths;
  for (const auto& entry : fs::directory_iterator(config_.directory)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    if (ends_with(path, kOpenSuffix)) open_paths.push_back(path);
  }
  std::sort(open_paths.begin(), open_paths.end());

  for (const std::string& path : open_paths) {
    SegmentHeader header;
    ScannedPayload scanned;
    try {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw std::runtime_error("telemetry segment: cannot read " + path);
      header = read_header_stream(in, path);
      scanned = scan_payload(in, header.trace_version, /*keep_payload=*/false);
    } catch (const std::runtime_error& error) {
      // Even the header is torn: nothing recoverable. Quarantine rather
      // than delete so the operator can inspect; readers ignore .corrupt.
      const std::uint64_t lost_bytes = fs::file_size(path);
      fs::rename(path, path + ".corrupt");
      ++stats_.truncations;
      stats_.bytes_dropped_torn += lost_bytes;
      obs_.truncations->add(1);
      log_warn("telemetry store: quarantined ", path, " (", lost_bytes,
               " byte(s), unreadable header: ", error.what(), ")");
      continue;
    }

    const std::uint64_t file_size = fs::file_size(path);
    const std::uint64_t good_size = kSegmentHeaderBytes + scanned.good_bytes;
    const bool trimmed = file_size > good_size;
    const std::uint64_t torn_bytes = trimmed ? file_size - good_size : 0;
    if (scanned.tally.records == 0 && scanned.tally.sessions == 0) {
      // Nothing whole survived; keep the torn bytes out of the read path.
      fs::remove(path);
      if (trimmed || scanned.torn_tail) {
        ++stats_.truncations;
        ++stats_.records_dropped_torn;
        stats_.bytes_dropped_torn += torn_bytes;
        obs_.truncations->add(1);
        obs_.dropped->add(1);
        log_warn("telemetry store: removed torn tail ", path, " (", torn_bytes,
                 " unrecoverable byte(s), no whole frame)");
      }
      continue;
    }
    if (trimmed) {
      fs::resize_file(path, good_size);
      ++stats_.truncations;
      // A clean crash tears at most the one frame being appended, but a
      // mid-file flip discards every frame after it — the record ledger
      // can only attest "at least one", so the byte span is what sizes
      // the real loss. Both are accounted, never zero.
      ++stats_.records_dropped_torn;
      stats_.bytes_dropped_torn += torn_bytes;
      obs_.truncations->add(1);
      obs_.dropped->add(1);
      log_warn("telemetry store: trimmed ", torn_bytes, " torn byte(s) from ", path, " (",
               scanned.tally.records, " whole record(s) kept)");
    }

    // Seal in place: final header over the surviving payload, then drop
    // the .open suffix. next_seq_ advances past the recovered records.
    scanned.tally.fill(header);
    header.sealed = 1;
    header.payload_bytes = scanned.good_bytes;
    header.payload_crc = scanned.crc;
    if (header.close_steady_ns == 0) header.close_steady_ns = header.open_steady_ns;
    {
      std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
      if (!out) throw std::runtime_error("telemetry segment: cannot reseal " + path);
      write_header_at_start(out, header);
      if (!out) throw std::runtime_error("telemetry segment: reseal write failed for " + path);
    }
    const std::string sealed_path = path.substr(0, path.size() - std::strlen(".open"));
    fs::rename(path, sealed_path);
    next_seq_ = std::max(next_seq_, header.base_seq + header.record_count);
  }
}

void TelemetryStore::open_segment() {
  auto active = std::make_unique<ActiveSegment>();
  active->header.base_seq = next_seq_;
  active->header.open_steady_ns = steady_ns();
  active->header.replay_fingerprint = kReplayFingerprintSeed;
  active->opened_at = std::chrono::steady_clock::now();
  active->path = (fs::path(config_.directory) / (segment_basename(next_seq_) + kOpenSuffix)).string();
  active->file.open(active->path, std::ios::binary | std::ios::trunc);
  if (!active->file) {
    throw std::runtime_error("TelemetryStore: cannot create " + active->path);
  }
  write_header_at_start(active->file, active->header);  // provisional
  active_ = std::move(active);
  session_ids_in_active_.clear();

  // Self-contained segments: every session known so far is written into
  // the fresh segment before any of its records.
  for (const TelemetrySession& session : log_->sessions()) append_session_frame(session);
  sessions_written_ = session_ids_in_active_.size();
  refresh_segment_gauge_locked();
}

void TelemetryStore::append_session_frame(const TelemetrySession& session) {
  if (session_ids_in_active_.count(session.id) > 0) return;
  std::string& frame = frame_buffer_;
  build_frame(frame, kFrameSession,
              [&session](std::string& body) { detail::append_session(body, session); });
  active_->file.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  active_->crc = common::crc32_update(active_->crc, frame.data(), kFrameHeaderBytes);
  active_->header.payload_bytes += frame.size();
  ++active_->header.session_count;
  session_ids_in_active_.insert(session.id);
  stats_.bytes_written += frame.size();
  obs_.bytes->add(frame.size());
}

void TelemetryStore::append_record_frame(const TelemetryRecord& record) {
  std::string& frame = frame_buffer_;
  build_frame(frame, kFrameRecord,
              [&record](std::string& body) { detail::append_record(body, record); });
  active_->file.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  active_->crc = common::crc32_update(active_->crc, frame.data(), kFrameHeaderBytes);

  SegmentHeader& h = active_->header;
  h.payload_bytes += frame.size();
  if (h.record_count == 0) {
    h.session_min = record.session;
    h.session_max = record.session;
    h.decision_min = record.decision_index;
    h.decision_max = record.decision_index;
  } else {
    h.session_min = std::min(h.session_min, static_cast<std::uint64_t>(record.session));
    h.session_max = std::max(h.session_max, static_cast<std::uint64_t>(record.session));
    h.decision_min = std::min(h.decision_min, record.decision_index);
    h.decision_max = std::max(h.decision_max, record.decision_index);
  }
  ++h.record_count;
  h.replay_fingerprint = replay_fingerprint_update(h.replay_fingerprint, record, record.action_index);
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(record.obs_len) << 16) | record.zone_temp_dim;
  if (pair != active_->last_schema_pair) {  // one tree probe per schema change, not per record
    active_->schema_pairs.insert(pair);
    active_->last_schema_pair = pair;
  }
  ++next_seq_;
  ++stats_.records_persisted;
  stats_.bytes_written += frame.size();
  // Counter publication is batched per pump (pump_once), not per record.
  pending_obs_records_ += 1;
  pending_obs_bytes_ += frame.size();
}

void TelemetryStore::seal_active_locked() {
  if (active_ == nullptr) return;
  obs::TraceSpan span("telemetry.rotate", "telemetry");

  SegmentHeader& h = active_->header;
  h.sealed = 1;
  h.close_steady_ns = steady_ns();
  h.payload_crc = active_->crc;
  std::uint64_t schema_fp = kReplayFingerprintSeed;
  for (const std::uint64_t pair : active_->schema_pairs) schema_fp = fnv_mix(schema_fp, pair);
  h.schema_fingerprint = schema_fp;
  if (h.record_count == 0) h.replay_fingerprint = kReplayFingerprintSeed;

  active_->file.seekp(0);
  write_header_at_start(active_->file, h);
  active_->file.flush();
  if (!active_->file) {
    throw std::runtime_error("TelemetryStore: seal write failed for " + active_->path);
  }
  active_->file.close();
  const std::string sealed_path =
      active_->path.substr(0, active_->path.size() - std::strlen(".open"));
  fs::rename(active_->path, sealed_path);
  active_.reset();
  ++stats_.rotations;
  obs_.rotations->add(1);
  refresh_segment_gauge_locked();
}

void TelemetryStore::maybe_rotate_locked() {
  if (active_ == nullptr) return;
  const SegmentHeader& h = active_->header;
  bool rotate = false;
  if (config_.segment_max_bytes > 0 && h.payload_bytes >= config_.segment_max_bytes) rotate = true;
  if (config_.segment_max_records > 0 && h.record_count >= config_.segment_max_records)
    rotate = true;
  if (config_.segment_max_seconds > 0.0) {
    const double age =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - active_->opened_at)
            .count();
    if (age >= config_.segment_max_seconds) rotate = true;
  }
  if (!rotate) return;
  seal_active_locked();

  if (config_.compact_min_segments > 0 &&
      sealed_segments_locked().size() >= config_.compact_min_segments) {
    compact_locked();
  }
  enforce_retention_locked();
}

void TelemetryStore::pump_once() {
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);

  drain_buffer_.clear();
  const std::uint64_t lost = log_->drain(drain_buffer_);
  stats_.capture_lost += lost;
  if (fetch_enabled_.load(std::memory_order_relaxed)) {
    fetch_lost_ += lost;
    fetch_queue_.insert(fetch_queue_.end(), drain_buffer_.begin(), drain_buffer_.end());
  }

  // Disk I/O is fenced off from the drain/fetch path: a telemetry disk
  // error (full disk, yanked volume) degrades to counted drops — it never
  // propagates into the writer thread or the adaptation pump.
  if (!persist_disabled_.load(std::memory_order_relaxed)) {
    try {
      persist_locked();
      consecutive_persist_failures_ = 0;
    } catch (const std::exception& error) {
      note_persist_failure_locked(error.what());
    }
  } else if (!drain_buffer_.empty()) {
    // Drained but not written: the durable-log gap stays visible in the
    // same drop ledger as every other loss.
    stats_.records_dropped_persist += drain_buffer_.size();
    obs_.dropped->add(drain_buffer_.size());
  }

  if (pending_obs_records_ > 0) {
    obs_.persisted->add(pending_obs_records_);
    obs_.bytes->add(pending_obs_bytes_);
    pending_obs_records_ = 0;
    pending_obs_bytes_ = 0;
  }
  obs_.flush_seconds->observe(seconds_since(t0));
}

void TelemetryStore::persist_locked() {
  if (!drain_buffer_.empty() || log_->session_count() > sessions_written_) {
    if (active_ == nullptr) open_segment();
    // New sessions registered since the segment opened get their frames
    // before the records that may reference them.
    if (log_->session_count() > sessions_written_) {
      for (const TelemetrySession& session : log_->sessions()) append_session_frame(session);
      sessions_written_ = std::max(sessions_written_, session_ids_in_active_.size());
    }
    for (const TelemetryRecord& record : drain_buffer_) {
      // Per-record rotation check: one oversized drain batch still splits
      // across segment boundaries instead of blowing past the budget.
      if (active_ == nullptr) open_segment();
      append_record_frame(record);
      maybe_rotate_locked();
    }
    if (active_ != nullptr) {
      active_->file.flush();
      if (!active_->file) {
        throw std::runtime_error("TelemetryStore: flush failed for " + active_->path);
      }
    }
  }
  // Age-based rotation also fires on idle flush ticks, not just appends.
  maybe_rotate_locked();
}

void TelemetryStore::note_persist_failure_locked(const char* what) {
  ++stats_.persist_errors;
  obs_.persist_errors->add(1);
  ++consecutive_persist_failures_;

  // pending_obs_records_ counts the appends that succeeded this pump; the
  // rest of the drained batch never reached the segment.
  const std::uint64_t appended = pending_obs_records_;
  const std::uint64_t unwritten =
      drain_buffer_.size() > appended ? drain_buffer_.size() - appended : 0;
  if (unwritten > 0) {
    stats_.records_dropped_persist += unwritten;
    obs_.dropped->add(unwritten);
  }

  // Abandon the active tail — its stream may be poisoned mid-frame. The
  // `.open` file stays on disk; the next startup trims it to the last
  // whole frame like any other crash leftover.
  if (active_ != nullptr) {
    active_->file.close();
    active_.reset();
  }

  if (consecutive_persist_failures_ >= kMaxConsecutivePersistFailures) {
    if (!persist_disabled_.exchange(true, std::memory_order_relaxed)) {
      log_warn("telemetry store: disabling persistence after ", consecutive_persist_failures_,
               " consecutive failures (last: ", what,
               "); draining and fetch hand-off continue without disk writes");
    }
  } else {
    log_warn("telemetry store: persist failed (", what, "), ", unwritten,
             " record(s) dropped this pump");
  }
}

std::uint64_t TelemetryStore::fetch(std::vector<TelemetryRecord>& out) {
  enable_fetch_queue();
  pump_once();
  std::lock_guard<std::mutex> lock(mutex_);
  out.insert(out.end(), fetch_queue_.begin(), fetch_queue_.end());
  fetch_queue_.clear();
  const std::uint64_t lost = fetch_lost_;
  fetch_lost_ = 0;
  return lost;
}

void TelemetryStore::enable_fetch_queue() { fetch_enabled_.store(true, std::memory_order_relaxed); }

void TelemetryStore::note_sessions_evicted(const std::vector<serve::SessionId>& ids) {
  std::lock_guard<std::mutex> lock(mutex_);
  evicted_.insert(ids.begin(), ids.end());
}

void TelemetryStore::seal_active() {
  std::lock_guard<std::mutex> lock(mutex_);
  seal_active_locked();
}

bool TelemetryStore::compact_now() {
  std::lock_guard<std::mutex> lock(mutex_);
  return compact_locked();
}

std::vector<SegmentInfo> TelemetryStore::sealed_segments_locked() const {
  std::vector<SegmentInfo> out;
  for (const SegmentInfo& info : list_segments(config_.directory)) {
    if (!info.open) out.push_back(info);
  }
  return out;
}

bool TelemetryStore::compact_locked() {
  const std::vector<SegmentInfo> sealed = sealed_segments_locked();
  if (sealed.size() < 2) return false;

  // Merge the oldest run that fits the segment byte budget (all of them
  // when no budget is set); a run of one would be a rewrite, not a merge.
  std::size_t take = 0;
  std::uint64_t bytes = 0;
  for (const SegmentInfo& info : sealed) {
    if (take >= 2 && config_.segment_max_bytes > 0 &&
        bytes + info.header.payload_bytes > config_.segment_max_bytes) {
      break;
    }
    bytes += info.header.payload_bytes;
    ++take;
  }
  if (take < 2) return false;

  obs::TraceSpan span("telemetry.compact", "telemetry");

  // Materialize the run (bounded by the byte budget), dropping evicted
  // sessions' records and session frames.
  TelemetryTrace merged;
  for (std::size_t i = 0; i < take; ++i) read_segment(sealed[i].path, merged);

  std::uint64_t dropped = 0;
  PayloadTally tally;
  std::vector<TelemetryRecord> kept;
  kept.reserve(merged.records.size());
  for (const TelemetryRecord& record : merged.records) {
    if (evicted_.count(record.session) > 0) {
      ++dropped;
      continue;
    }
    kept.push_back(record);
    tally.add_record(record);
  }
  std::vector<TelemetrySession> sessions;
  std::set<serve::SessionId> seen;
  for (const TelemetrySession& session : merged.sessions) {
    if (evicted_.count(session.id) > 0 || !seen.insert(session.id).second) continue;
    sessions.push_back(session);
  }
  tally.sessions = sessions.size();

  SegmentHeader header;
  header.base_seq = sealed.front().header.base_seq;
  header.open_steady_ns = sealed.front().header.open_steady_ns;
  header.close_steady_ns = sealed[take - 1].header.close_steady_ns;
  header.sealed = 1;
  tally.fill(header);

  const std::string sealed_path =
      (fs::path(config_.directory) / (segment_basename(header.base_seq) + kSealedSuffix)).string();
  const std::string tmp_path = sealed_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("TelemetryStore: cannot create " + tmp_path);
    write_header_at_start(out, header);  // provisional (payload fields open)
    std::uint32_t crc = 0;
    std::uint64_t payload_bytes = 0;
    const auto append = [&](std::uint8_t type, const std::string& body) {
      const std::string frame = make_frame(type, body);
      out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
      crc = common::crc32_update(crc, frame.data(), kFrameHeaderBytes);
      payload_bytes += frame.size();
    };
    for (const TelemetrySession& session : sessions) {
      std::ostringstream body(std::ios::binary);
      detail::write_session(body, session);
      append(kFrameSession, body.str());
    }
    for (const TelemetryRecord& record : kept) {
      std::ostringstream body(std::ios::binary);
      detail::write_record(body, record);
      append(kFrameRecord, body.str());
    }
    header.payload_bytes = payload_bytes;
    header.payload_crc = crc;
    out.seekp(0);
    write_header_at_start(out, header);
    if (!out) throw std::runtime_error("TelemetryStore: compaction write failed for " + tmp_path);
  }

  // Crash-safe swap: stage a manifest naming the output and every input,
  // atomically replace the oldest input with the merged segment, then
  // remove the rest. recover_compactions() finishes whatever prefix of
  // this sequence a crash leaves behind, so no point of failure loses
  // (or duplicates) sealed records.
  const std::string manifest_path = sealed_path + ".compact";
  {
    std::ofstream manifest(manifest_path, std::ios::trunc);
    if (!manifest) throw std::runtime_error("TelemetryStore: cannot create " + manifest_path);
    manifest << fs::path(sealed_path).filename().string() << "\n";
    manifest << fs::path(tmp_path).filename().string() << "\n";
    for (std::size_t i = 0; i < take; ++i) {
      manifest << fs::path(sealed[i].path).filename().string() << "\n";
    }
    manifest.flush();
    if (!manifest) {
      throw std::runtime_error("TelemetryStore: manifest write failed for " + manifest_path);
    }
  }
  fs::rename(tmp_path, sealed_path);
  for (std::size_t i = 0; i < take; ++i) {
    if (sealed[i].path != sealed_path) fs::remove(sealed[i].path);
  }
  fs::remove(manifest_path);

  ++stats_.compactions;
  stats_.records_dropped_evicted += dropped;
  obs_.compactions->add(1);
  if (dropped > 0) obs_.dropped->add(dropped);
  refresh_segment_gauge_locked();
  prune_evicted_locked();
  return true;
}

void TelemetryStore::prune_evicted_locked() {
  // Eviction tombstones only matter while some segment might still hold
  // the session's records; once compaction has purged them, drop the id
  // so the set cannot grow without bound over a long-lived store. (Stale
  // session *frames* in not-yet-compacted segments are harmless metadata
  // and do not pin a tombstone.)
  if (evicted_.empty()) return;
  const std::vector<SegmentInfo> sealed = sealed_segments_locked();
  for (auto it = evicted_.begin(); it != evicted_.end();) {
    const auto id = static_cast<std::uint64_t>(*it);
    bool covered = active_ != nullptr && session_ids_in_active_.count(*it) > 0;
    for (const SegmentInfo& info : sealed) {
      if (covered) break;
      covered = info.header.record_count > 0 && id >= info.header.session_min &&
                id <= info.header.session_max;
    }
    it = covered ? std::next(it) : evicted_.erase(it);
  }
}

void TelemetryStore::enforce_retention_locked() {
  if (config_.retain_max_segments == 0 && config_.retain_max_bytes == 0) return;
  std::vector<SegmentInfo> sealed = sealed_segments_locked();
  std::uint64_t total_bytes = 0;
  for (const SegmentInfo& info : sealed) total_bytes += info.header.payload_bytes;

  std::size_t begin = 0;
  while (begin < sealed.size()) {
    const bool over_count =
        config_.retain_max_segments > 0 && sealed.size() - begin > config_.retain_max_segments;
    const bool over_bytes = config_.retain_max_bytes > 0 && total_bytes > config_.retain_max_bytes &&
                            sealed.size() - begin > 1;
    if (!over_count && !over_bytes) break;
    const SegmentInfo& victim = sealed[begin];
    fs::remove(victim.path);
    stats_.records_dropped_retention += victim.header.record_count;
    if (victim.header.record_count > 0) obs_.dropped->add(victim.header.record_count);
    total_bytes -= victim.header.payload_bytes;
    ++begin;
  }
  if (begin > 0) refresh_segment_gauge_locked();
}

void TelemetryStore::refresh_segment_gauge_locked() {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(config_.directory)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    if (ends_with(path, kSealedSuffix) || ends_with(path, kOpenSuffix)) ++n;
  }
  obs_.segments->set(static_cast<double>(n));
}

TelemetryStore::Stats TelemetryStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.eviction_tombstones = evicted_.size();
  return out;
}

// ---------------------------------------------------------------------------
// Directory-level read side

SegmentHeader read_segment_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("telemetry segment: cannot read " + path);
  return read_header_stream(in, path);
}

std::vector<SegmentInfo> list_segments(const std::string& directory) {
  std::vector<SegmentInfo> out;
  if (!fs::is_directory(directory)) {
    throw std::runtime_error("telemetry segment: not a directory: " + directory);
  }
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    SegmentInfo info;
    if (ends_with(path, kOpenSuffix)) {
      info.open = true;
    } else if (ends_with(path, kSealedSuffix)) {
      info.open = false;
    } else {
      continue;  // .tmp / .corrupt / foreign files
    }
    info.path = path;
    info.header = read_segment_header(path);
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(), [](const SegmentInfo& a, const SegmentInfo& b) {
    if (a.header.base_seq != b.header.base_seq) return a.header.base_seq < b.header.base_seq;
    return a.path < b.path;
  });
  return out;
}

void read_segment(const std::string& path, TelemetryTrace& into) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("telemetry segment: cannot read " + path);
  const SegmentHeader header = read_header_stream(in, path);
  if (header.sealed == 0) {
    throw std::runtime_error("telemetry segment: refusing unsealed segment " + path +
                             " (reopen the store to run crash recovery, or seal it)");
  }
  ScannedPayload scanned = scan_payload(in, header.trace_version, /*keep_payload=*/true);
  if (scanned.torn_tail || scanned.good_bytes != header.payload_bytes ||
      scanned.crc != header.payload_crc || scanned.tally.records != header.record_count) {
    throw std::runtime_error("telemetry segment: payload does not match sealed header in " + path +
                             " (torn or corrupted - refusing to load)");
  }
  into.sessions.insert(into.sessions.end(), scanned.sessions.begin(), scanned.sessions.end());
  into.records.insert(into.records.end(), scanned.records.begin(), scanned.records.end());
}

TelemetryTrace load_directory(const std::string& directory) {
  TelemetryTrace trace;
  std::set<serve::SessionId> seen;
  for (const SegmentInfo& info : list_segments(directory)) {
    if (info.open) {
      throw std::runtime_error("telemetry segment: active/torn tail present in " + directory +
                               " - seal the store (or reopen it to recover) before loading");
    }
    TelemetryTrace one;
    read_segment(info.path, one);
    for (TelemetrySession& session : one.sessions) {
      if (seen.insert(session.id).second) trace.sessions.push_back(std::move(session));
    }
    trace.records.insert(trace.records.end(), one.records.begin(), one.records.end());
  }
  std::sort(trace.sessions.begin(), trace.sessions.end(),
            [](const TelemetrySession& a, const TelemetrySession& b) { return a.id < b.id; });
  return trace;
}

dyn::TransitionDataset directory_to_dataset(const std::string& directory) {
  // Streaming pairing: segments arrive in seq order and a session's
  // records are decision-ordered within the stream (same-shard rings,
  // append-order segments), so one pending record per session suffices.
  struct Candidate {
    dyn::Transition transition;
    std::uint16_t cur_len = 0;
    std::uint16_t next_len = 0;
  };
  std::map<serve::SessionId, TelemetryRecord> pending;
  std::map<serve::SessionId, std::vector<Candidate>> per_session;

  for (const SegmentInfo& info : list_segments(directory)) {
    if (info.open) {
      throw std::runtime_error("telemetry segment: active/torn tail present in " + directory +
                               " - seal the store (or reopen it to recover) before loading");
    }
    std::ifstream in(info.path, std::ios::binary);
    if (!in) throw std::runtime_error("telemetry segment: cannot read " + info.path);
    const SegmentHeader header = read_header_stream(in, info.path);
    if (header.sealed == 0) {
      throw std::runtime_error("telemetry segment: refusing unsealed segment " + info.path);
    }
    std::uint64_t records_seen = 0;
    std::uint64_t bytes_seen = 0;
    std::uint32_t crc = 0;
    while (bytes_seen < header.payload_bytes) {
      std::uint8_t type = 0;
      std::uint32_t body_len = 0;
      std::uint32_t body_crc = 0;
      if (!in.read(reinterpret_cast<char*>(&type), 1) ||
          !in.read(reinterpret_cast<char*>(&body_len), 4) ||
          !in.read(reinterpret_cast<char*>(&body_crc), 4) || body_len > kMaxFrameBody) {
        throw std::runtime_error("telemetry segment: torn frame in " + info.path);
      }
      std::string body(body_len, '\0');
      if (!in.read(body.data(), static_cast<std::streamsize>(body_len)) ||
          common::crc32(body.data(), body.size()) != body_crc) {
        throw std::runtime_error("telemetry segment: frame CRC mismatch in " + info.path);
      }
      crc = chain_frame_header(crc, type, body_len, body_crc);
      bytes_seen += kFrameHeaderBytes + body_len;
      if (type != kFrameRecord) continue;
      std::istringstream body_in(body, std::ios::binary);
      const TelemetryRecord record = detail::read_record(body_in, header.trace_version);
      ++records_seen;

      const auto it = pending.find(record.session);
      if (it != pending.end() && record.decision_index == it->second.decision_index + 1) {
        const TelemetryRecord& cur = it->second;
        Candidate candidate;
        candidate.transition.input = cur.obs_vector();
        candidate.transition.action.heating_c = cur.heating_c;
        candidate.transition.action.cooling_c = cur.cooling_c;
        candidate.transition.next_zone_temp = record.obs[record.zone_temp_dim];
        candidate.cur_len = cur.obs_len;
        candidate.next_len = record.obs_len;
        per_session[record.session].push_back(std::move(candidate));
      }
      pending[record.session] = record;
    }
    if (crc != header.payload_crc || records_seen != header.record_count) {
      throw std::runtime_error("telemetry segment: payload does not match sealed header in " +
                               info.path + " (torn or corrupted - refusing to load)");
    }
  }

  // Same width discipline as trace_to_dataset(): the first session-ordered
  // candidate pair fixes the dataset's input width.
  dyn::TransitionDataset dataset;
  std::uint16_t width = 0;
  for (auto& [session, candidates] : per_session) {
    (void)session;
    for (Candidate& candidate : candidates) {
      if (width == 0) width = candidate.cur_len;
      if (candidate.cur_len != width || candidate.next_len != width) continue;
      dataset.add(std::move(candidate.transition));
    }
  }
  return dataset;
}

SegmentVerifyReport verify_segment(const std::string& path, const ReplayAssets* assets,
                                   const ReplayConfig* config) {
  SegmentVerifyReport report;
  report.path = path;

  SegmentHeader header;
  ScannedPayload scanned;
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + path);
    header = read_header_stream(in, path);
    if (header.sealed == 0) throw std::runtime_error("segment not sealed: " + path);
    scanned = scan_payload(in, header.trace_version, /*keep_payload=*/true);
    if (scanned.torn_tail) throw std::runtime_error("torn frame in payload of " + path);
    if (scanned.good_bytes != header.payload_bytes) {
      throw std::runtime_error("payload byte count does not match header in " + path);
    }
    if (scanned.crc != header.payload_crc) {
      throw std::runtime_error("payload CRC mismatch in " + path);
    }
    if (scanned.tally.records != header.record_count ||
        scanned.tally.sessions != header.session_count) {
      throw std::runtime_error("frame counts do not match header in " + path);
    }
    report.structure_ok = true;
  } catch (const std::exception& e) {
    report.error = e.what();
    return report;
  }

  report.records = scanned.records.size();
  report.fingerprint_ok = scanned.tally.replay_fp == header.replay_fingerprint &&
                          scanned.tally.schema_fingerprint() == header.schema_fingerprint;
  // Until a replay pass overwrites it, expose the scanned recorded-action
  // digest so a structural-only FAIL diagnoses with the real value.
  report.replay_fingerprint = scanned.tally.replay_fp;
  if (!report.fingerprint_ok && report.error.empty()) {
    report.error = "recorded-action fingerprint does not match header in " + path;
  }

  if (assets != nullptr && config != nullptr) {
    report.replayed_pass = true;
    TraceReplayer replayer(*assets, *config);
    std::uint64_t fp = kReplayFingerprintSeed;
    bool all_matched = true;
    for (const TelemetryRecord& record : scanned.records) {
      std::size_t action = 0;
      switch (replayer.replay(record, action)) {
        case TraceReplayer::Outcome::kSkippedTruncated:
          ++report.skipped_truncated;
          fp = replay_fingerprint_update(fp, record, record.action_index);
          continue;
        case TraceReplayer::Outcome::kSkippedMissingAssets:
          ++report.skipped_missing_assets;
          fp = replay_fingerprint_update(fp, record, record.action_index);
          continue;
        case TraceReplayer::Outcome::kReplayed:
          break;
      }
      ++report.replayed;
      if (action == record.action_index) {
        ++report.matched;
      } else {
        all_matched = false;
      }
      // Digest the *replayed* decision: fingerprint equality with the
      // header certifies the segment by bit-identical replay itself.
      fp = replay_fingerprint_update(fp, record, static_cast<std::uint64_t>(action));
    }
    report.replay_fingerprint = fp;
    report.replay_ok = all_matched && fp == header.replay_fingerprint;
  }
  return report;
}

}  // namespace verihvac::adapt
