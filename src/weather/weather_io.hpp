// Serialization of weather series to/from CSV (EPW-like interchange).
//
// Lets users persist a synthesized series, hand-edit it, or substitute real
// measured data in the same column layout:
//   step, outdoor_temp_c, humidity_pct, wind_mps, solar_wm2
#pragma once

#include <string>

#include "weather/weather_generator.hpp"

namespace verihvac::weather {

/// Writes `series` to a CSV file at `path`.
void save_series_csv(const WeatherSeries& series, const std::string& path);

/// Loads a series from CSV; profile/seed metadata is not stored in the CSV
/// and is left defaulted (records only).
WeatherSeries load_series_csv(const std::string& path);

}  // namespace verihvac::weather
