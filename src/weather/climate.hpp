// Per-city climate profiles.
//
// The paper evaluates on TMY3 weather for Pittsburgh (ASHRAE climate zone
// 4A) and Tucson (2B), plus New York (also 4A) in the Fig. 3 noise-level
// calibration. We do not ship proprietary TMY3 files; instead each city is
// parameterized by its January climate normals (mean temperature, diurnal
// amplitude, synoptic variability, humidity, wind, cloudiness, latitude)
// and a seeded stochastic generator synthesizes consistent weather series
// (see weather_generator.hpp). What the paper's algorithms consume is the
// *distribution* of inputs per city, which these normals determine.
#pragma once

#include <string>
#include <vector>

namespace verihvac::weather {

/// ASHRAE 169 climate-zone tag (only the ones used by the paper).
enum class ClimateZone { k2B, k4A };

std::string to_string(ClimateZone zone);

/// Parameters of the synthetic-climate model for one city, for the month
/// under simulation (January, as in the paper's evaluation).
struct ClimateProfile {
  std::string name;
  ClimateZone zone = ClimateZone::k4A;
  double latitude_deg = 40.0;

  // Outdoor dry-bulb temperature model [degC].
  double mean_temp_c = 0.0;       ///< monthly mean
  double diurnal_amp_c = 4.0;     ///< half peak-to-trough of the daily cycle
  double synoptic_sigma_c = 3.5;  ///< std-dev of the multi-day OU residual
  double synoptic_tau_hours = 36.0;  ///< OU time constant (weather fronts)

  // Relative humidity model [%].
  double mean_rh = 65.0;
  double rh_sigma = 12.0;
  /// Coupling of RH to the temperature anomaly (warm fronts -> drier here).
  double rh_temp_coupling = -1.5;

  // Wind model [m/s].
  double mean_wind = 3.5;
  double wind_sigma = 1.8;
  double wind_tau_hours = 6.0;

  // Solar model [W/m^2].
  double clear_sky_peak = 450.0;  ///< January solar noon horizontal irradiance
  double mean_cloud_cover = 0.6;  ///< [0,1]; attenuates clear-sky irradiance
  double cloud_sigma = 0.25;
  double cloud_tau_hours = 8.0;
};

/// Pittsburgh, PA — ASHRAE 4A (cold/humid January).
ClimateProfile pittsburgh();
/// Tucson, AZ — ASHRAE 2B (mild/sunny January).
ClimateProfile tucson();
/// New York, NY — ASHRAE 4A, the "similar city" of the Fig. 3 calibration.
ClimateProfile new_york();
/// Tucson, AZ in July — the cooling-season profile for the summer-comfort
/// extension (the paper evaluates January only; the comfort machinery is
/// seasonal, Eq. 2 / §2.1).
ClimateProfile tucson_july();

/// Lookup by case-insensitive name; throws std::invalid_argument on miss.
ClimateProfile profile_by_name(const std::string& name);
/// Names accepted by profile_by_name.
std::vector<std::string> available_profiles();

}  // namespace verihvac::weather
