// Seeded stochastic weather synthesis (TMY3 substitute).
//
// Model per 15-minute step:
//   temp(t)  = mean + diurnal harmonic (coldest pre-dawn) + OU synoptic residual
//   rh(t)    = mean + coupling * temp anomaly + OU noise, clamped to [5, 100]
//   wind(t)  = |mean + OU noise|
//   solar(t) = clear-sky half-sine over the photoperiod * (1 - 0.75*cloud(t))
// where cloud(t) is an OU process clamped to [0, 1]. All processes are
// driven by a single xoshiro seed, so a (city, seed) pair fully determines
// the series — the reproducibility contract every experiment relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "weather/climate.hpp"

namespace verihvac::weather {

/// One 15-minute weather record — exactly the disturbance variables of
/// Table 1 of the paper, minus occupancy (which is a building schedule, see
/// occupancy.hpp).
struct WeatherRecord {
  double outdoor_temp_c = 0.0;   ///< Outdoor Air Drybulb Temperature [degC]
  double humidity_pct = 50.0;    ///< Outdoor Air Relative Humidity [%]
  double wind_mps = 0.0;         ///< Site Wind Speed [m/s]
  double solar_wm2 = 0.0;        ///< Site Total Radiation Rate per Area [W/m^2]
};

/// A synthesized series plus its provenance.
struct WeatherSeries {
  ClimateProfile profile;
  std::uint64_t seed = 0;
  int start_day = 0;                   ///< day-of-month offset (0-based)
  std::vector<WeatherRecord> records;  ///< one per 15-minute step

  std::size_t size() const { return records.size(); }
  const WeatherRecord& at(std::size_t step) const { return records[step]; }
};

class WeatherGenerator {
 public:
  WeatherGenerator(ClimateProfile profile, std::uint64_t seed);

  /// Generates `num_steps` 15-minute records starting at midnight of
  /// `start_day` (0-based day index within the simulated month).
  WeatherSeries generate(int start_day, std::size_t num_steps);

  /// Convenience: a full N-day series starting at day 0.
  WeatherSeries generate_days(int num_days);

  /// Photoperiod approximation for the profile's latitude in January:
  /// returns {sunrise_hour, sunset_hour}.
  static std::pair<double, double> daylight_hours(const ClimateProfile& profile);

 private:
  ClimateProfile profile_;
  std::uint64_t seed_;
};

}  // namespace verihvac::weather
